#!/usr/bin/env bash
# Builds and tests the plain (RelWithDebInfo) and sanitized
# (ASan+UBSan Debug) configurations via the CMake presets.
#
#   scripts/check.sh            both configurations
#   scripts/check.sh plain      just the regular build
#   scripts/check.sh sanitize   just the sanitizer build
set -euo pipefail

cd "$(dirname "$0")/.."

presets=("$@")
if [ ${#presets[@]} -eq 0 ]; then
  presets=(plain sanitize)
fi

for preset in "${presets[@]}"; do
  echo "==> configure [$preset]"
  cmake --preset "$preset"
  echo "==> build [$preset]"
  cmake --build --preset "$preset" -j "$(nproc)"
  echo "==> test [$preset]"
  ctest --preset "$preset"
done

echo "All checks passed: ${presets[*]}"
