#!/usr/bin/env bash
# Runs the horizontal scale-out benchmark (C11, docs/SCALING.md) and
# writes its JSON output as the BENCH_grid.json artifact:
#   - BM_GridScaling/G/R   closed-loop AJO-DAG throughput over the
#                          gateway x NJS replica surface (G, R in
#                          {1, 2, 4}), 10^5 certificate identities in
#                          the sharded UUDB; `jobs_per_vsec` is the
#                          virtual-time throughput and must rise >= 3x
#                          from 1x1 to 4x4
#   - BM_GridFailover      4x4 with one NJS replica killed mid-load:
#                          journal handoff (`handoffs` counter), every
#                          job still acked
#
# Usage: scripts/bench_grid.sh [build-dir] [out-file]
# Extra benchmark flags go through BENCH_FLAGS; CI smoke lowers the
# identity population with UNICORE_GRID_IDENTITIES.
set -euo pipefail

BUILD_DIR="${1:-build}"
OUT="${2:-BENCH_grid.json}"
FLAGS="${BENCH_FLAGS:-}"

"$BUILD_DIR/bench/bench_grid" \
  --benchmark_filter='BM_Grid' $FLAGS \
  --benchmark_out="$OUT" --benchmark_out_format=json

echo "wrote $OUT"
