#!/usr/bin/env bash
# Runs the server record-pipeline benchmark grid and writes its JSON
# output as the BENCH_server.json artifact:
#   - BM_ServerChannelThroughput    protected-payload throughput as the
#                                   concurrent-channel count grows 1 -> 10k
#   - BM_ServerSmallRecordBatching  many tiny records per instant — the
#                                   coalescing win
#
# Usage: scripts/bench_server.sh [build-dir] [out-file]
# Extra benchmark flags go through BENCH_FLAGS, e.g.
#   BENCH_FLAGS=--benchmark_min_time=0.01 scripts/bench_server.sh
set -euo pipefail

BUILD_DIR="${1:-build}"
OUT="${2:-BENCH_server.json}"
FLAGS="${BENCH_FLAGS:-}"

"$BUILD_DIR/bench/bench_server" \
  --benchmark_filter='BM_Server' $FLAGS \
  --benchmark_out="$OUT" --benchmark_out_format=json

echo "wrote $OUT"
