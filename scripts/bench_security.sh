#!/usr/bin/env bash
# Runs the security fast-path benchmarks and merges their JSON output
# into a single BENCH_security.json artifact:
#   - bench_handshake  BM_SecureHandshake     full vs resumed handshake
#   - bench_gateway    BM_AuthCache*          auth cache hit vs miss
#   - bench_crypto     seal/open + ctr        record-layer kernels
#
# Usage: scripts/bench_security.sh [build-dir] [out-file]
# Extra benchmark flags go through BENCH_FLAGS, e.g.
#   BENCH_FLAGS=--benchmark_min_time=0.01 scripts/bench_security.sh
set -euo pipefail

BUILD_DIR="${1:-build}"
OUT="${2:-BENCH_security.json}"
FLAGS="${BENCH_FLAGS:-}"

tmpdir="$(mktemp -d)"
trap 'rm -rf "$tmpdir"' EXIT

run() { # run <binary> <filter> <out.json>
  "$BUILD_DIR/bench/$1" --benchmark_filter="$2" $FLAGS \
    --benchmark_out="$tmpdir/$3" --benchmark_out_format=json
}

run bench_handshake 'BM_SecureHandshake' handshake.json
run bench_gateway 'BM_AuthCache(Hit|Miss)|BM_CertificateToUidMapping/1000$' \
  gateway.json
run bench_crypto 'BM_(Seal|Open|CtrCrypt)' crypto.json

# Merge: one top-level object keyed by suite, each value the unmodified
# google-benchmark JSON document. Plain bash + printf — no extra deps.
{
  printf '{\n'
  first=1
  for suite in handshake gateway crypto; do
    [ "$first" -eq 1 ] || printf ',\n'
    first=0
    printf '"%s": ' "$suite"
    cat "$tmpdir/$suite.json"
  done
  printf '\n}\n'
} > "$OUT"

echo "wrote $OUT"
