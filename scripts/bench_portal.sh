#!/usr/bin/env bash
# Runs the portal-layer benchmark grid and writes its JSON output as
# the BENCH_portal.json artifact:
#   - BM_SessionOpenClose          bearer-token sessions minted+closed
#                                  per second at the gateway broker
#   - BM_TokenRequestFastPath      per-request token validation cost
#                                  (generation-stamped fast path)
#   - BM_OneRunLatency             one_run end to end, cold handshake
#                                  vs ticket-resumed channel
#   - BM_ConcurrentTokenSessions   1 -> 10k live sessions, traffic
#                                  multiplexed over one pooled channel
#                                  (`active_sessions` is the broker's
#                                  high-water mark)
#
# Usage: scripts/bench_portal.sh [build-dir] [out-file]
# Extra benchmark flags go through BENCH_FLAGS, e.g.
#   BENCH_FLAGS=--benchmark_min_time=0.01 scripts/bench_portal.sh
set -euo pipefail

BUILD_DIR="${1:-build}"
OUT="${2:-BENCH_portal.json}"
FLAGS="${BENCH_FLAGS:-}"

"$BUILD_DIR/bench/bench_portal" \
  --benchmark_filter='BM_(Session|TokenRequest|OneRun|Concurrent)' $FLAGS \
  --benchmark_out="$OUT" --benchmark_out_format=json

echo "wrote $OUT"
