#!/usr/bin/env bash
# Runs the content-addressed store benchmark grid and writes its JSON
# output as the BENCH_store.json artifact:
#   - BM_DatasetRestageColdVsWarm     cold stage-in vs dedup-warm restage
#                                     of one virtual dataset (16 MiB ..
#                                     4 GiB); `warm_payload_chunks` is the
#                                     number of chunk messages the warm
#                                     leg moved (headline: 0) and
#                                     `speedup` the cold/warm ratio
#   - BM_SmallFilesRestageColdVsWarm  the same comparison for a
#                                     directory of 64 KiB files
#   - BM_SmallFilesBundleVsPerFile    bundle transfer vs per-file chunked
#                                     opens for a tree of 16 KiB files
#                                     (10^3 / 10^4); `speedup` is the
#                                     per-file/bundle ratio, plus a
#                                     dedup-warm restage leg
#   - BM_SmallFilesBundleScale        bundle cold stage-in and warm
#                                     restage at 10^5 / 10^6 files
#                                     (warm_payload_chunks stays 0)
#   - BM_InternDedup                  local interning: SHA-256-bound
#                                     cold path vs the dedup fast path
#   - BM_SpillFaultRoundTrip          LRU eviction to the spill tier and
#                                     the fault-back on read
#
# Usage: scripts/bench_store.sh [build-dir] [out-file]
# Extra benchmark flags go through BENCH_FLAGS, e.g.
#   BENCH_FLAGS=--benchmark_min_time=0.01 scripts/bench_store.sh
set -euo pipefail

BUILD_DIR="${1:-build}"
OUT="${2:-BENCH_store.json}"
FLAGS="${BENCH_FLAGS:-}"

"$BUILD_DIR/bench/bench_store" \
  --benchmark_filter='BM_(Dataset|SmallFiles|Intern|Spill)' $FLAGS \
  --benchmark_out="$OUT" --benchmark_out_format=json

echo "wrote $OUT"
