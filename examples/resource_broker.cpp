// The §6 resource-broker enhancement in action: the user states an
// abstract requirement ("200 GFLOP-hours, scales to 256 PEs, needs an
// F90 compiler, done within 6 hours") and the broker — fed with the
// testbed's resource pages, live load, and tariffs — names the system
// and the concrete §5.4 resource request to submit.
//
// Run: ./resource_broker
#include <cstdio>

#include "broker/broker.h"
#include "broker/grid_adapter.h"
#include "client/client.h"
#include "client/job_builder.h"
#include "grid/testbed.h"

using namespace unicore;

int main() {
  std::printf("== UNICORE resource broker (the §6 enhancement) ==\n\n");

  grid::Grid grid(/*seed=*/66);
  grid::make_german_testbed(grid);
  crypto::Credential user =
      grid::add_testbed_user(grid, "Erika Mustermann", "erika@example.de");

  // Pre-load the Jülich T3E with competing work so the load feed
  // matters.
  {
    gateway::AuthenticatedUser auth{user.certificate.subject, "ucerika",
                                    {"project-a"}};
    for (int i = 0; i < 6; ++i) {
      client::JobBuilder builder("background-" + std::to_string(i));
      builder.destination("FZ-Juelich", "T3E-600").account_group("project-a");
      client::TaskOptions options;
      options.resources = {256, 40'000, 4'096, 0, 64};
      options.behavior.nominal_seconds = 20'000;
      builder.script("hog", "./hog\n", options);
      (void)grid.site("FZ-Juelich")
          ->njs()
          .consign(builder.build(user.certificate.subject).value(), auth,
                   user.certificate);
    }
    grid.engine().run_until(grid.engine().now() + sim::minutes(30));
  }

  // Survey the grid.
  broker::ResourceBroker broker;
  for (const std::string& site : grid.sites()) {
    auto surveys = broker::survey_usite(grid.site(site)->njs());
    broker::feed(broker, surveys, {site == "LRZ" ? 4.0 : 1.0});
    for (const auto& survey : surveys)
      std::printf("  surveyed %-11s/%-9s %4lld free PEs, %2zu queued, "
                  "mean wait %.0f s\n",
                  survey.load.usite.c_str(), survey.load.vsite.c_str(),
                  static_cast<long long>(survey.load.free_processors),
                  survey.load.queued_jobs, survey.load.recent_wait_seconds);
  }

  broker::AbstractRequirement requirement;
  requirement.gflop_hours = 200;
  requirement.max_useful_processors = 256;
  requirement.min_memory_mb = 2'048;
  requirement.required_software = {
      {resources::SoftwareKind::kCompiler, "f90", ""}};
  requirement.deadline_seconds = 6 * 3'600;

  std::printf("\nabstract requirement: %.0f GFLOP-hours, <=%lld PEs useful, "
              ">=%lld MB, F90, deadline %lld s\n\n",
              requirement.gflop_hours,
              static_cast<long long>(requirement.max_useful_processors),
              static_cast<long long>(requirement.min_memory_mb),
              static_cast<long long>(requirement.deadline_seconds));

  auto proposals = broker.propose(requirement);
  if (proposals.empty()) {
    std::printf("no feasible system.\n");
    return 1;
  }
  std::printf("%-11s %-9s %5s %9s %9s %8s %9s\n", "usite", "vsite", "PEs",
              "wait(s)", "run(s)", "cost", "score");
  for (const auto& p : proposals)
    std::printf("%-11s %-9s %5lld %9.0f %9.0f %8.1f %9.0f\n",
                p.usite.c_str(), p.vsite.c_str(),
                static_cast<long long>(p.request.processors),
                p.estimated_wait_seconds, p.estimated_run_seconds,
                p.estimated_cost, p.score);

  const broker::Proposal& best = proposals.front();
  std::printf("\nbroker selects %s/%s -> submitting there.\n",
              best.usite.c_str(), best.vsite.c_str());

  // Submit exactly what the broker proposed.
  gateway::AuthenticatedUser auth{user.certificate.subject, "login",
                                  {"project-a"}};
  client::JobBuilder builder("brokered job");
  builder.destination(best.usite, best.vsite).account_group("project-a");
  client::TaskOptions options;
  options.resources = best.request;
  options.behavior.nominal_seconds =
      requirement.gflop_hours * 3600.0 /
      static_cast<double>(best.request.processors);
  builder.script("solve", "./solve\n", options);
  sim::Time start = grid.engine().now();
  bool done = false;
  ajo::ActionStatus final_status = ajo::ActionStatus::kPending;
  (void)grid.site(best.usite)->njs().consign(
      builder.build(user.certificate.subject).value(), auth,
      user.certificate,
      [&](ajo::JobToken, const ajo::Outcome& outcome) {
        done = true;
        final_status = outcome.status;
      });
  while (!done && grid.engine().step()) {
  }
  std::printf("job finished %s after %.0f s (broker estimated %.0f s) — "
              "within the deadline: %s\n",
              ajo::action_status_name(final_status),
              sim::to_seconds(grid.engine().now() - start),
              best.estimated_turnaround(),
              sim::to_seconds(grid.engine().now() - start) <=
                      requirement.deadline_seconds
                  ? "yes"
                  : "no");
  return 0;
}
