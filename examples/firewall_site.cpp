// The firewall deployment of §4.2/§5.2: the Web-server/gateway half of
// the UNICORE server sits on the firewall host; the NJS runs on a
// machine inside. All gateway-NJS traffic crosses one IP socket on a
// site-selectable port, and the firewall admits only that flow.
//
// Run: ./firewall_site
#include <cstdio>

#include "batch/target_system.h"
#include "client/client.h"
#include "client/job_builder.h"
#include "client/sync_client.h"
#include "grid/grid.h"

using namespace unicore;

int main() {
  std::printf("== UNICORE firewall-split deployment ==\n\n");

  grid::Grid grid(/*seed=*/4711);
  grid::Grid::SiteSpec spec;
  spec.config.name = "FZ-Juelich";
  spec.config.gateway_host = "gw.fz-juelich.de";   // on the firewall
  spec.config.port = 4433;
  spec.config.njs_host = "njs.fz-juelich.de";      // inside
  spec.config.njs_port = 7700;                     // site-selectable port
  njs::Njs::VsiteConfig vsite;
  vsite.system = batch::make_cray_t3e("T3E-600", 256);
  spec.vsites.push_back(std::move(vsite));
  auto& site = grid.add_site(std::move(spec));

  std::printf("gateway: %s (firewall host)\n",
              site.config().gateway_host.c_str());
  std::printf("NJS:     %s:%u (inside the firewall)\n\n",
              site.config().njs_host.c_str(), site.config().njs_port);

  // Demonstrate the firewall: outside hosts cannot reach the NJS port.
  auto direct = grid.network().connect("attacker.example.com",
                                       {"njs.fz-juelich.de", 7700});
  std::printf("direct NJS access from the outside: %s\n",
              direct.ok() ? "PERMITTED (!!)"
                          : direct.error().to_string().c_str());
  auto via_gateway = grid.network().connect("gw.fz-juelich.de",
                                            {"njs.fz-juelich.de", 7700});
  std::printf("gateway -> NJS pipe:                 %s\n\n",
              via_gateway.ok() ? "permitted" : "blocked (!!)");

  // A regular user still works exactly as with a combined server.
  crypto::Credential user =
      grid.create_user("Jane Doe", "Uni Koeln", "jane@uni-koeln.de");
  (void)grid.map_user(user.certificate.subject, "FZ-Juelich", "ucjdoe",
                      {"project-a"});
  crypto::TrustStore trust = grid.make_trust_store();
  client::UnicoreClient::Config config;
  config.host = "ws.uni-koeln.de";
  config.user = user;
  config.trust = &trust;
  client::UnicoreClient async_client(grid.engine(), grid.network(),
                                     grid.rng(), config);
  client::SyncClient client(grid.engine(), async_client);
  util::Status handshake = client.connect(site.address());
  std::printf("user handshake through the firewall host: %s\n",
              handshake.to_string().c_str());

  client::JobBuilder builder("behind the firewall");
  builder.destination("FZ-Juelich", "T3E-600").account_group("project-a");
  client::TaskOptions options;
  options.resources = {32, 1'800, 2'048, 0, 64};
  options.behavior.nominal_seconds = 120;
  options.behavior.stdout_text = "computation finished\n";
  builder.script("compute", "mpprun -n 32 ./app\n", options);
  auto job = builder.build(user.certificate.subject);

  auto token = client.submit(job.value());
  std::printf("consigned through gateway->pipe->NJS: token %llu\n",
              static_cast<unsigned long long>(token.value_or(0)));

  if (token.ok()) {
    auto outcome = client.wait_for_completion(token.value(), sim::sec(30));
    if (outcome.ok())
      std::printf("\n%s", outcome.value().to_tree_string().c_str());
  }

  std::printf("\naudit log at the gateway:\n");
  for (const auto& record : site.gateway().audit_log())
    std::printf("  [%s] %-12s %s %s\n", record.accepted ? "OK" : "NO",
                record.action.c_str(), record.subject.c_str(),
                record.detail.c_str());
  return 0;
}
