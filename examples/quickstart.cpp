// Quickstart: the complete UNICORE flow on a single Usite.
//
//   1. Stand up a Usite (gateway + NJS + one Cray T3E Vsite).
//   2. Register a user: CA-issued certificate + UUDB login mapping.
//   3. Connect with mutual https-style authentication, download and
//      verify the signed JPA "applet" bundle.
//   4. Build a compile-link-execute job from the resource pages.
//   5. Submit, monitor (JMC-style polling), fetch stdout and results.
//   6. Open a portal session and run a multi-step workflow end to end
//      with one one_run() call (token-authenticated, docs/PORTAL.md).
//
// Run: ./quickstart
#include <cstdio>
#include <memory>

#include "batch/target_system.h"
#include "client/client.h"
#include "client/job_builder.h"
#include "client/sync_client.h"
#include "grid/grid.h"

using namespace unicore;

int main() {
  std::printf("== UNICORE quickstart: one Usite, one job ==\n\n");

  // --- 1. the Usite -----------------------------------------------------
  grid::Grid grid(/*seed=*/2026);
  grid::Grid::SiteSpec spec;
  spec.config.name = "FZ-Juelich";
  spec.config.gateway_host = "gw.fz-juelich.de";
  spec.config.port = 4433;
  njs::Njs::VsiteConfig vsite;
  vsite.system = batch::make_cray_t3e("T3E-600", 512);
  spec.vsites.push_back(std::move(vsite));
  auto& site = grid.add_site(std::move(spec));
  std::printf("Usite '%s' online at %s (Vsite T3E-600, 512 PEs)\n",
              site.config().name.c_str(), site.address().to_string().c_str());

  // --- 2. the user --------------------------------------------------------
  crypto::Credential jane =
      grid.create_user("Jane Doe", "University of Cologne",
                       "jane@uni-koeln.de");
  (void)grid.map_user(jane.certificate.subject, "FZ-Juelich", "ucjdoe",
                      {"project-a"});
  std::printf("User certificate: %s (serial %llu)\n",
              jane.certificate.subject.to_string().c_str(),
              static_cast<unsigned long long>(jane.certificate.serial));

  // --- 3. connect + fetch the applet ---------------------------------------
  crypto::TrustStore trust = grid.make_trust_store();
  client::UnicoreClient::Config client_config;
  client_config.host = "ws.uni-koeln.de";
  client_config.user = jane;
  client_config.trust = &trust;
  client::UnicoreClient async_client(grid.engine(), grid.network(),
                                     grid.rng(), client_config);
  // The blocking facade: every call below drives the engine until its
  // reply arrives, so the flow reads top-to-bottom.
  client::SyncClient client(grid.engine(), async_client);

  util::Status handshake = client.connect(site.address());
  std::printf("SSL-style handshake: %s\n", handshake.to_string().c_str());

  auto bundle = client.fetch_bundle("JPA");
  if (bundle.ok())
    std::printf("JPA applet v%u downloaded, signature verified (%s)\n",
                bundle.value().version,
                bundle.value().signer.subject.common_name.c_str());

  std::vector<resources::ResourcePage> pages =
      client.fetch_resource_pages().value_or({});
  for (const auto& page : pages)
    std::printf("Resource page: %s/%s, %s, max %lld PEs, %lld s\n",
                page.usite.c_str(), page.vsite.c_str(),
                resources::architecture_name(page.architecture),
                static_cast<long long>(page.maximum.processors),
                static_cast<long long>(page.maximum.wallclock_seconds));

  // --- 4. the job -----------------------------------------------------------
  client::JobBuilder builder("laplace solver");
  builder.destination("FZ-Juelich", "T3E-600").account_group("project-a");
  auto source = builder.import_from_workstation(
      "laplace.f90",
      util::to_bytes("      PROGRAM LAPLACE\n      END PROGRAM\n"));
  client::TaskOptions compile_options;
  compile_options.resources = {1, 600, 128, 0, 16};
  compile_options.behavior.nominal_seconds = 8;
  auto compile = builder.compile("compile", "laplace.f90", "laplace.o",
                                 compile_options, {"-O3"});
  client::TaskOptions link_options = compile_options;
  auto link = builder.link("link", {"laplace.o"}, "laplace", link_options);
  client::TaskOptions run_options;
  run_options.resources = {128, 3'600, 8'192, 0, 256};
  run_options.behavior.nominal_seconds = 400;
  run_options.behavior.stdout_text =
      "grid 1024x1024, 128 PEs\nconverged after 812 iterations\n";
  run_options.behavior.output_files = {{"solution.dat", 8 << 20}};
  auto run = builder.run("solve", "laplace", run_options, {"-grid", "1024"});
  auto save = builder.export_to_xspace("solution.dat", "home",
                                       "results/solution.dat");
  builder.after(source, compile, {"laplace.f90"});
  builder.after(compile, link, {"laplace.o"});
  builder.after(link, run, {"laplace"});
  builder.after(run, save, {"solution.dat"});

  auto job = builder.build_checked(jane.certificate.subject, pages);
  if (!job.ok()) {
    std::printf("job rejected by the JPA: %s\n",
                job.error().to_string().c_str());
    return 1;
  }
  std::printf("\nJob '%s' built: %zu actions, %zu dependencies\n",
              job.value().name().c_str(), job.value().children().size(),
              job.value().dependencies().size());

  // --- 5. submit & monitor -----------------------------------------------
  auto token = client.submit(job.value());
  if (!token.ok()) {
    std::printf("consignment rejected: %s\n",
                token.error().to_string().c_str());
    return 1;
  }
  std::printf("consigned: job token %llu\n",
              static_cast<unsigned long long>(token.value()));

  auto outcome = client.wait_for_completion(token.value(), sim::sec(30));
  if (outcome.ok()) {
    std::printf("\nJMC status tree at completion (t=%.1f s):\n%s",
                sim::to_seconds(grid.engine().now()),
                outcome.value().to_tree_string().c_str());
    const ajo::Outcome* solve = nullptr;
    for (const auto& child : outcome.value().children)
      if (child.name == "solve") solve = &child;
    if (solve != nullptr)
      if (const auto* detail =
              std::get_if<ajo::ExecuteOutcome>(&solve->detail))
        std::printf("stdout of 'solve':\n%s", detail->stdout_text.c_str());
  }

  auto blob = client.fetch_output(token.value(), "solution.dat");
  if (blob.ok())
    std::printf("fetched solution.dat: %llu bytes\n",
                static_cast<unsigned long long>(blob.value().size()));
  grid.engine().run();

  // --- 6. portal session + one_run workflow -------------------------------
  // One certificate-authenticated contact mints a bearer token; every
  // request after this — including the consign — rides the token.
  auto grant = client.open_session();
  if (!grant.ok()) {
    std::printf("session rejected: %s\n", grant.error().to_string().c_str());
    return 1;
  }
  std::printf("\nportal session opened for login '%s' (expires at epoch "
              "%lld)\n",
              grant.value().login.c_str(),
              static_cast<long long>(grant.value().expires_at));

  client::WorkflowStep prepare;
  prepare.name = "prepare";
  prepare.script = "grep converged solution.log > summary.txt\n";
  prepare.behavior.nominal_seconds = 5;
  prepare.behavior.stdout_text = "summary written\n";
  client::WorkflowStep analyse;
  analyse.name = "analyse";
  analyse.script = "./analyse summary.txt\n";
  analyse.after = {"prepare"};
  analyse.behavior.nominal_seconds = 30;
  analyse.behavior.stdout_text = "residual 1.2e-9\n";
  client::WorkflowStep report;
  report.name = "report";
  report.script = "mail -s done jane@uni-koeln.de < summary.txt\n";
  report.after = {"analyse"};
  report.behavior.nominal_seconds = 1;

  client::WorkflowParameters parameters;
  parameters.job_name = "post-processing";
  parameters.usite = "FZ-Juelich";
  parameters.vsite = "T3E-600";
  parameters.account_group = "project-a";
  parameters.poll_interval = sim::sec(30);

  client::WorkflowManager::Options workflow_options;
  workflow_options.clean_job_storages = true;  // reap the uspace after
  auto flow = client.one_run({prepare, analyse, report}, parameters,
                            workflow_options);
  if (!flow.ok()) {
    std::printf("workflow failed: %s\n", flow.error().to_string().c_str());
    return 1;
  }
  std::printf("one_run finished: job token %llu, %zu steps\n",
              static_cast<unsigned long long>(flow.value().token),
              flow.value().steps.size());
  for (const auto& [name, step] : flow.value().steps)
    std::printf("  %-8s %-14s exit=%d stdout=%s", name.c_str(),
                ajo::action_status_name(step.status), step.exit_code,
                step.stdout_text.empty() ? "-\n" : step.stdout_text.c_str());
  std::printf("working storage reaped: %s\n",
              flow.value().storage_reaped ? "yes" : "no");
  util::Status closed = client.close_session();
  std::printf("session closed: %s\n", closed.to_string().c_str());

  std::printf("\ndone: %llu request(s) served by the gateway, %.1f virtual "
              "seconds elapsed\n",
              static_cast<unsigned long long>(site.requests_served()),
              sim::to_seconds(grid.engine().now()));
  return 0;
}
