// Application-specific interfaces (§6, first enhancement): the user
// fills in a "Gaussian form" — an input deck and nothing else — and the
// launcher finds a site offering the package, builds the UNICORE job,
// and submits it. The WebSubmit-style experience (§2) on top of the JPA,
// running over a gateway session token the way a shared web portal
// would: one certificate handshake, then bearer-token requests
// (docs/PORTAL.md).
//
// Run: ./application_portal
#include <cstdio>

#include "batch/target_system.h"
#include "client/app_templates.h"
#include "client/client.h"
#include "client/sync_client.h"
#include "grid/grid.h"

using namespace unicore;

int main() {
  std::printf("== UNICORE application portal (Gaussian 94) ==\n\n");

  grid::Grid grid(/*seed=*/94);
  grid::Grid::SiteSpec spec;
  spec.config.name = "RUKA";
  spec.config.gateway_host = "gw.rz.uni-karlsruhe.de";
  njs::Njs::VsiteConfig vsite;
  vsite.system = batch::make_ibm_sp2("SP2", 64);
  vsite.software = {{resources::SoftwareKind::kPackage, "Gaussian", "94"},
                    {resources::SoftwareKind::kPackage, "Ansys", "5.5"}};
  spec.vsites.push_back(std::move(vsite));
  auto& site = grid.add_site(std::move(spec));

  crypto::Credential user =
      grid.create_user("Industry User", "ACME GmbH", "user@acme.de");
  (void)grid.map_user(user.certificate.subject, "RUKA", "kacme",
                      {"industry"});
  crypto::TrustStore trust = grid.make_trust_store();

  client::UnicoreClient::Config config;
  config.host = "pc.acme.de";
  config.user = user;
  config.trust = &trust;
  client::UnicoreClient async_client(grid.engine(), grid.network(),
                                     grid.rng(), config);
  client::SyncClient client(grid.engine(), async_client);
  (void)client.connect(site.address());

  // One certificate contact, then a bearer token for everything else —
  // the pattern that lets a web portal pool few channels for many users.
  auto grant = client.open_session();
  if (grant.ok())
    std::printf("portal session for login '%s' opened\n\n",
                grant.value().login.c_str());

  // The portal downloads the resource pages and knows the templates.
  std::vector<resources::ResourcePage> pages =
      client.fetch_resource_pages().value_or({});

  client::ApplicationLauncher launcher(pages);
  std::printf("packages with templates:");
  for (const std::string& name : launcher.packages())
    std::printf(" %s(%zu site%s)", name.c_str(),
                launcher.sites_offering(name).size(),
                launcher.sites_offering(name).size() == 1 ? "" : "s");
  std::printf("\n\n");

  // The user's entire input: the Gaussian deck.
  client::ApplicationJobRequest request;
  request.package = "Gaussian";
  request.input = util::to_bytes(
      "%chk=benzene\n# B3LYP/6-31G* opt freq\n\nbenzene optimisation\n");
  request.input_name = "benzene.com";
  request.output_name = "benzene.log";
  request.account_group = "industry";

  auto job = launcher.make_job(request, user.certificate.subject);
  if (!job.ok()) {
    std::printf("cannot build job: %s\n", job.error().to_string().c_str());
    return 1;
  }
  std::printf("portal built job '%s' -> %s/%s\n",
              job.value().name().c_str(), job.value().usite.c_str(),
              job.value().vsite.c_str());

  // Token consign: the AJO travels unsigned, the session is the proof.
  auto token = client.submit(job.value());
  if (!token.ok()) {
    std::printf("consignment rejected: %s\n",
                token.error().to_string().c_str());
    return 1;
  }

  auto outcome = client.wait_for_completion(token.value(), sim::sec(30));
  if (outcome.ok())
    std::printf("\n%s", outcome.value().to_tree_string().c_str());

  auto blob = client.fetch_output(token.value(), "benzene.log");
  if (blob.ok())
    std::printf("\nfetched benzene.log (%llu bytes)\n",
                static_cast<unsigned long long>(blob.value().size()));

  // Every submission owns a managed working storage; the portal lists
  // and reaps it once the results are safe (quota hygiene).
  auto storages = client.list_storages();
  if (storages.ok())
    for (const auto& storage : storages.value())
      std::printf("storage '%s': %llu bytes in %zu file(s)%s\n",
                  storage.name.c_str(),
                  static_cast<unsigned long long>(storage.used_bytes),
                  storage.files, storage.terminal ? " [terminal]" : "");
  auto freed = client.reap_storage(token.value());
  if (freed.ok())
    std::printf("reaped job storage: %llu bytes freed\n",
                static_cast<unsigned long long>(freed.value()));
  (void)client.close_session();
  return 0;
}
