// Application-specific interfaces (§6, first enhancement): the user
// fills in a "Gaussian form" — an input deck and nothing else — and the
// launcher finds a site offering the package, builds the UNICORE job,
// and submits it. The WebSubmit-style experience (§2) on top of the JPA.
//
// Run: ./application_portal
#include <cstdio>

#include "batch/target_system.h"
#include "client/app_templates.h"
#include "client/client.h"
#include "grid/grid.h"

using namespace unicore;

int main() {
  std::printf("== UNICORE application portal (Gaussian 94) ==\n\n");

  grid::Grid grid(/*seed=*/94);
  grid::Grid::SiteSpec spec;
  spec.config.name = "RUKA";
  spec.config.gateway_host = "gw.rz.uni-karlsruhe.de";
  njs::Njs::VsiteConfig vsite;
  vsite.system = batch::make_ibm_sp2("SP2", 64);
  vsite.software = {{resources::SoftwareKind::kPackage, "Gaussian", "94"},
                    {resources::SoftwareKind::kPackage, "Ansys", "5.5"}};
  spec.vsites.push_back(std::move(vsite));
  auto& site = grid.add_site(std::move(spec));

  crypto::Credential user =
      grid.create_user("Industry User", "ACME GmbH", "user@acme.de");
  (void)grid.map_user(user.certificate.subject, "RUKA", "kacme",
                      {"industry"});
  crypto::TrustStore trust = grid.make_trust_store();

  client::UnicoreClient::Config config;
  config.host = "pc.acme.de";
  config.user = user;
  config.trust = &trust;
  client::UnicoreClient client(grid.engine(), grid.network(), grid.rng(),
                               config);
  client.connect(site.address(), [](util::Status) {});
  grid.engine().run();

  // The portal downloads the resource pages and knows the templates.
  std::vector<resources::ResourcePage> pages;
  client.fetch_resource_pages(
      [&pages](util::Result<std::vector<resources::ResourcePage>> result) {
        if (result.ok()) pages = std::move(result.value());
      });
  grid.engine().run();

  client::ApplicationLauncher launcher(pages);
  std::printf("packages with templates:");
  for (const std::string& name : launcher.packages())
    std::printf(" %s(%zu site%s)", name.c_str(),
                launcher.sites_offering(name).size(),
                launcher.sites_offering(name).size() == 1 ? "" : "s");
  std::printf("\n\n");

  // The user's entire input: the Gaussian deck.
  client::ApplicationJobRequest request;
  request.package = "Gaussian";
  request.input = util::to_bytes(
      "%chk=benzene\n# B3LYP/6-31G* opt freq\n\nbenzene optimisation\n");
  request.input_name = "benzene.com";
  request.output_name = "benzene.log";
  request.account_group = "industry";

  auto job = launcher.make_job(request, user.certificate.subject);
  if (!job.ok()) {
    std::printf("cannot build job: %s\n", job.error().to_string().c_str());
    return 1;
  }
  std::printf("portal built job '%s' -> %s/%s\n",
              job.value().name().c_str(), job.value().usite.c_str(),
              job.value().vsite.c_str());

  ajo::JobToken token = 0;
  client.submit(job.value(), [&](util::Result<ajo::JobToken> result) {
    token = result.ok() ? result.value() : 0;
  });
  grid.engine().run_until(grid.engine().now() + sim::sec(1));

  client.wait_for_completion(token, sim::sec(30),
                             [&](util::Result<ajo::Outcome> outcome) {
                               if (outcome.ok())
                                 std::printf("\n%s",
                                             outcome.value()
                                                 .to_tree_string()
                                                 .c_str());
                             });
  grid.engine().run();

  client.fetch_output(token, "benzene.log",
                      [](util::Result<uspace::FileBlob> blob) {
                        if (blob.ok())
                          std::printf("\nfetched benzene.log (%llu bytes)\n",
                                      static_cast<unsigned long long>(
                                          blob.value().size()));
                      });
  grid.engine().run();
  return 0;
}
