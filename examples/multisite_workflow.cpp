// Multi-site workflow on the 1999 German testbed (Figure 2 / §5.7):
// a pre-process -> simulate -> post-process pipeline whose parts run at
// three different Usites on three different architectures, with UNICORE
// moving the intermediate data between the Uspaces.
//
// Run: ./multisite_workflow
#include <cstdio>
#include <memory>

#include "client/client.h"
#include "client/job_builder.h"
#include "client/sync_client.h"
#include "grid/grid.h"
#include "grid/testbed.h"

using namespace unicore;

namespace {

ajo::AbstractJobObject build_pipeline(const crypto::DistinguishedName& user) {
  // Pre-processing: mesh generation on the Karlsruhe SP-2.
  client::JobBuilder pre("mesh generation @ RUKA");
  pre.destination("RUKA", "SP2").account_group("project-a");
  client::TaskOptions pre_options;
  pre_options.resources = {8, 1'800, 512, 0, 64};
  pre_options.behavior.nominal_seconds = 30;
  pre_options.behavior.stdout_text = "mesh: 2.1M cells\n";
  pre_options.behavior.output_files = {{"mesh.dat", 24 << 20}};
  pre.script("genmesh", "./genmesh --cells 2.1M > mesh.dat\n", pre_options);

  // Main simulation: CFD on the Jülich T3E.
  client::JobBuilder main_job("cfd simulation @ FZ-Juelich");
  main_job.destination("FZ-Juelich", "T3E-600").account_group("project-a");
  client::TaskOptions cfd_options;
  cfd_options.resources = {256, 14'400, 16'384, 0, 1'024};
  cfd_options.behavior.nominal_seconds = 1'800;
  cfd_options.behavior.stdout_text = "t=1.0s reached, residual 1e-6\n";
  cfd_options.behavior.output_files = {{"field.out", 96 << 20}};
  main_job.script("cfd", "mpprun -n 256 ./cfd mesh.dat\n", cfd_options);

  // Post-processing: visualisation on the Munich VPP700.
  client::JobBuilder post("visualisation @ LRZ");
  post.destination("LRZ", "VPP700").account_group("project-a");
  client::TaskOptions viz_options;
  viz_options.resources = {1, 3'600, 2'048, 0, 256};
  viz_options.behavior.nominal_seconds = 60;
  viz_options.behavior.stdout_text = "rendered 120 frames\n";
  viz_options.behavior.output_files = {{"movie.mpg", 12 << 20}};
  post.script("render", "./render field.out -o movie.mpg\n", viz_options);

  client::JobBuilder root("three-site CFD pipeline");
  root.destination("FZ-Juelich", "");
  root.account_group("project-a");
  auto pre_id = root.add_subjob(pre.build(user).value());
  auto main_id = root.add_subjob(main_job.build(user).value());
  auto post_id = root.add_subjob(post.build(user).value());
  // The dependency files are what UNICORE guarantees to move between the
  // Uspaces at the three sites.
  root.after(pre_id, main_id, {"mesh.dat"});
  root.after(main_id, post_id, {"field.out"});
  return root.build(user).value();
}

}  // namespace

int main() {
  std::printf("== UNICORE multi-site workflow (German testbed, 1999) ==\n\n");

  grid::Grid grid(/*seed=*/1999);
  grid::make_german_testbed(grid);
  for (const std::string& name : grid.sites()) {
    auto* site = grid.site(name);
    std::printf("  %-11s %-28s vsites:", name.c_str(),
                site->address().to_string().c_str());
    for (const std::string& vsite : site->njs().vsites())
      std::printf(" %s", vsite.c_str());
    std::printf("\n");
  }

  crypto::Credential erika =
      grid::add_testbed_user(grid, "Erika Mustermann", "erika@example.de");
  std::printf("\nuser %s mapped at all %zu sites (different logins per "
              "site)\n\n",
              erika.certificate.subject.common_name.c_str(),
              grid.sites().size());

  crypto::TrustStore trust = grid.make_trust_store();
  client::UnicoreClient::Config config;
  config.host = "ws.uni-koeln.de";
  config.user = erika;
  config.trust = &trust;
  client::UnicoreClient client(grid.engine(), grid.network(), grid.rng(),
                               config);
  client::SyncClient sync(grid.engine(), client);
  util::Status connected = sync.connect(grid.site("FZ-Juelich")->address());
  std::printf("connected to FZ-Juelich gateway: %s\n",
              connected.to_string().c_str());

  ajo::AbstractJobObject pipeline =
      build_pipeline(erika.certificate.subject);
  std::printf("pipeline: %zu actions across 3 sites, depth %zu\n\n",
              pipeline.total_actions(), pipeline.depth());

  auto token = sync.submit(pipeline);
  if (!token.ok()) {
    std::printf("consignment rejected: %s\n",
                token.error().to_string().c_str());
    return 1;
  }

  // Poll like the JMC and narrate progress: each query goes through the
  // promise surface, rescheduling itself until the root is terminal.
  sim::Time last_print = 0;
  std::function<void()> poll = [&] {
    client.query(token.value(), ajo::QueryService::Detail::kJobGroups)
        .then([&](const util::Result<ajo::Outcome>& outcome) {
          if (!outcome.ok()) return;
          if (grid.engine().now() - last_print > sim::minutes(5)) {
            last_print = grid.engine().now();
            std::printf("t=%7.1f s  root=%s\n",
                        sim::to_seconds(grid.engine().now()),
                        ajo::action_status_name(outcome.value().status));
          }
          if (!ajo::is_terminal(outcome.value().status))
            grid.engine().after(sim::minutes(1), poll);
        });
  };
  poll();
  grid.engine().run();

  auto final_view = sync.query(token.value(),
                               ajo::QueryService::Detail::kTasks);
  if (final_view.ok())
    std::printf("\nfinal JMC view:\n%s\n",
                final_view.value().to_tree_string().c_str());

  std::printf("per-site consignments: ");
  for (const std::string& name : grid.sites())
    std::printf("%s=%llu ", name.c_str(),
                static_cast<unsigned long long>(
                    grid.site(name)->njs().jobs_consigned()));
  std::printf("\ntotal virtual time: %.1f s\n",
              sim::to_seconds(grid.engine().now()));
  return 0;
}
