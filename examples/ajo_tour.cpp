// A tour of the AJO protocol layer (Figure 3): the class hierarchy as
// implemented, the canonical wire encoding, signing, and the §5.7
// save/reload-for-resubmission flow.
//
// Run: ./ajo_tour
#include <cstdio>

#include "ajo/codec.h"
#include "ajo/generator.h"
#include "ajo/job.h"
#include "ajo/services.h"
#include "ajo/tasks.h"
#include "client/job_store.h"

using namespace unicore;

int main() {
  std::printf("== The Abstract Job Object, as in Figure 3 ==\n\n");
  std::printf(
      "AbstractAction\n"
      "├── AbstractJobObject            (recursive job groups)\n"
      "├── AbstractTaskObject           (carries the resource request)\n"
      "│   ├── ExecuteTask\n"
      "│   │   ├── CompileTask\n"
      "│   │   ├── LinkTask\n"
      "│   │   ├── UserTask\n"
      "│   │   └── ExecuteScriptTask\n"
      "│   └── FileTask\n"
      "│       ├── ImportTask\n"
      "│       ├── ExportTask\n"
      "│       └── TransferTask\n"
      "└── AbstractService\n"
      "    ├── ControlService\n"
      "    ├── ListService\n"
      "    └── QueryService\n\n");

  // Build a small job by hand.
  ajo::AbstractJobObject job;
  job.set_name("demo job");
  job.usite = "FZ-Juelich";
  job.vsite = "T3E-600";
  job.user.common_name = "Jane Doe";
  job.account_group = "project-a";

  auto import = std::make_unique<ajo::ImportTask>();
  import->set_name("stage source");
  import->source = ajo::ImportTask::Source::kUserWorkstation;
  import->inline_content = util::to_bytes("      PROGRAM DEMO\n      END\n");
  import->uspace_name = "demo.f90";
  ajo::ActionId stage = job.add(std::move(import));

  auto compile = std::make_unique<ajo::CompileTask>();
  compile->set_name("compile");
  compile->source_file = "demo.f90";
  compile->object_file = "demo.o";
  compile->set_resource_request({1, 300, 64, 0, 8});
  ajo::ActionId comp = job.add(std::move(compile));
  job.add_dependency(stage, comp, {"demo.f90"});

  std::printf("hand-built job '%s': %zu actions, validate() => %s\n",
              job.name().c_str(), job.total_actions(),
              job.validate().to_string().c_str());

  // Canonical wire encoding.
  util::Bytes wire = ajo::encode_action(job);
  std::printf("canonical encoding: %zu bytes, first 16: %s...\n",
              wire.size(),
              util::hex_encode(util::ByteView(wire).subspan(0, 16)).c_str());
  auto decoded = ajo::decode_action(wire);
  std::printf("decode -> re-encode identical: %s\n",
              ajo::encode_action(*decoded.value()) == wire ? "yes" : "NO");

  // Every action type prints its tag.
  std::printf("\naction type tags:\n");
  job.visit([](const ajo::AbstractAction& action) {
    std::printf("  id=%llu  %-18s %s\n",
                static_cast<unsigned long long>(action.id()),
                action.type_name(),
                action.name().empty() ? "-" : action.name().c_str());
  });

  // Random job graphs (the workload generator used by the benches).
  util::Rng rng(7);
  ajo::RandomJobOptions options;
  options.tasks_per_group = 8;
  options.max_depth = 3;
  ajo::AbstractJobObject random = ajo::random_job(rng, options, job.user);
  std::printf("\nrandom job graph: %zu actions, depth %zu, %zu bytes "
              "encoded\n",
              random.total_actions(), random.depth(),
              ajo::encode_action(random).size());

  // Save / reload for resubmission (§5.7).
  std::string path = "/tmp/unicore_demo_job.uj";
  if (client::save_job(path, job).ok()) {
    auto reloaded = client::load_job(path);
    std::printf("\nsaved to %s and reloaded: %s ('%s')\n", path.c_str(),
                reloaded.ok() ? "ok" : "FAILED",
                reloaded.ok() ? reloaded.value().name().c_str() : "");
    std::remove(path.c_str());
  }
  return 0;
}
