// Random job-graph generator: produces structurally valid AJOs with
// configurable size, nesting, and dependency density. Drives the codec
// property tests and the serialization/scheduling benchmarks.
#pragma once

#include <string>
#include <vector>

#include "ajo/job.h"
#include "util/rng.h"

namespace unicore::ajo {

struct RandomJobOptions {
  std::size_t tasks_per_group = 6;       // mean task count per job group
  std::size_t max_depth = 2;             // nesting of sub-jobs
  double subjob_probability = 0.25;      // chance a child is a sub-job
  double dependency_density = 0.3;       // chance of an edge i -> j (i<j)
  double file_edge_probability = 0.5;    // chance an edge carries files
  std::size_t inline_import_bytes = 256; // workstation import payloads
  std::vector<std::string> usites = {"FZ-Juelich"};
  std::vector<std::string> vsites = {"T3E-600"};
};

/// Generates a random, validate()-clean job for `user`.
AbstractJobObject random_job(util::Rng& rng, const RandomJobOptions& options,
                             const crypto::DistinguishedName& user);

}  // namespace unicore::ajo
