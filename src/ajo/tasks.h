// Concrete task classes of the AJO hierarchy (Figure 3): the ExecuteTask
// family (compile / link / user binary / script) and the FileTask family
// (import / export / transfer) implementing the Uspace/Xspace data model
// of §4 and §5.6.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "ajo/action.h"

namespace unicore::ajo {

/// A location in a Vsite's external file space (Xspace): a named volume
/// (filesystem) plus a path on it.
struct XspaceRef {
  std::string volume;
  std::string path;

  bool operator==(const XspaceRef&) const = default;
  std::string to_string() const { return volume + ":" + path; }
};

// ---- ExecuteTask family -------------------------------------------------

/// Common base of everything that runs on the destination system's batch
/// subsystem.
class ExecuteTask : public AbstractTaskObject {
 public:
  std::vector<std::string> arguments;
  std::map<std::string, std::string> environment;
  TaskBehavior behavior;

 protected:
  void encode_execute_fields(util::ByteWriter& w) const;
};

/// Compiles one source file in the Uspace into an object file. "At this
/// point in time the compile is implemented for F90." (§5.7)
class CompileTask final : public ExecuteTask {
 public:
  std::string source_file;             // Uspace name of the source
  std::string object_file;             // Uspace name of the result
  std::string language = "F90";
  std::vector<std::string> compiler_flags;

  ActionType type() const override { return ActionType::kCompileTask; }
  std::unique_ptr<AbstractAction> clone() const override {
    return std::make_unique<CompileTask>(*this);
  }
  void encode_body(util::ByteWriter& w) const override;
};

/// Links object files (plus site libraries) into an executable.
class LinkTask final : public ExecuteTask {
 public:
  std::vector<std::string> object_files;  // Uspace names
  std::string executable;                 // Uspace name of the result
  std::vector<std::string> libraries;     // site software catalogue names

  ActionType type() const override { return ActionType::kLinkTask; }
  std::unique_ptr<AbstractAction> clone() const override {
    return std::make_unique<LinkTask>(*this);
  }
  void encode_body(util::ByteWriter& w) const override;
};

/// Runs an executable already present in the Uspace (either imported or
/// produced by a LinkTask).
class UserTask final : public ExecuteTask {
 public:
  std::string executable;  // Uspace name

  ActionType type() const override { return ActionType::kUserTask; }
  std::unique_ptr<AbstractAction> clone() const override {
    return std::make_unique<UserTask>(*this);
  }
  void encode_body(util::ByteWriter& w) const override;
};

/// Runs a user-supplied script — the vehicle for "existing batch
/// applications" (§5.7).
class ExecuteScriptTask final : public ExecuteTask {
 public:
  std::string script;              // script text, shipped inside the AJO
  std::string interpreter = "sh";

  ActionType type() const override { return ActionType::kExecuteScriptTask; }
  std::unique_ptr<AbstractAction> clone() const override {
    return std::make_unique<ExecuteScriptTask>(*this);
  }
  void encode_body(util::ByteWriter& w) const override;
};

// ---- FileTask family ------------------------------------------------------

/// Base of the data-staging tasks. The data model distinguishes data
/// inside UNICORE (Uspace) from data outside (Xspace, user workstation);
/// every boundary crossing is an explicit task (§5.6).
class FileTask : public AbstractTaskObject {};

/// Brings data into the job's Uspace. Two sources, as in the paper:
/// the user's workstation (file content travels inside the AJO over the
/// https connection) or a UNIX filesystem at the Vsite (local copy).
class ImportTask final : public FileTask {
 public:
  enum class Source : std::uint8_t { kUserWorkstation = 0, kXspace = 1 };

  Source source = Source::kUserWorkstation;
  util::Bytes inline_content;  // workstation imports: payload in the AJO
  XspaceRef xspace_source;     // xspace imports: where to copy from
  std::string uspace_name;     // destination name in the Uspace

  ActionType type() const override { return ActionType::kImportTask; }
  std::unique_ptr<AbstractAction> clone() const override {
    return std::make_unique<ImportTask>(*this);
  }
  void encode_body(util::ByteWriter& w) const override;
};

/// Puts a Uspace file onto permanent file space at the Vsite (Xspace).
class ExportTask final : public FileTask {
 public:
  std::string uspace_name;
  XspaceRef destination;

  ActionType type() const override { return ActionType::kExportTask; }
  std::unique_ptr<AbstractAction> clone() const override {
    return std::make_unique<ExportTask>(*this);
  }
  void encode_body(util::ByteWriter& w) const override;
};

/// Moves a Uspace file to the Uspace of another job group — possibly at
/// a different Usite, in which case the transfer runs over NJS–NJS
/// communication via the gateways (§5.6).
class TransferTask final : public FileTask {
 public:
  std::string uspace_name;   // file in this job's Uspace
  ActionId target_job = 0;   // id of the sub-AJO whose Uspace receives it
  std::string rename_to;     // optional new name (empty keeps the name)

  ActionType type() const override { return ActionType::kTransferTask; }
  std::unique_ptr<AbstractAction> clone() const override {
    return std::make_unique<TransferTask>(*this);
  }
  void encode_body(util::ByteWriter& w) const override;
};

}  // namespace unicore::ajo
