// The AbstractService subtree of Figure 3: non-recursive requests for
// job monitoring and control, spoken from the JMC to an NJS.
#pragma once

#include <string>

#include "ajo/action.h"

namespace unicore::ajo {

/// Identifier a consigned root AJO receives at the NJS; services refer
/// to jobs by it.
using JobToken = std::uint64_t;

/// Controls a previously consigned job.
class ControlService final : public AbstractService {
 public:
  enum class Command : std::uint8_t {
    kAbort = 0,    // kill queued/running parts, mark job aborted
    kHold = 1,     // stop dispatching new parts
    kRelease = 2,  // resume dispatching after hold
    kDelete = 3,   // remove a finished job and its Uspace
  };

  Command command = Command::kAbort;
  JobToken target = 0;

  ActionType type() const override { return ActionType::kControlService; }
  std::unique_ptr<AbstractAction> clone() const override {
    return std::make_unique<ControlService>(*this);
  }
  void encode_body(util::ByteWriter& w) const override;
};

const char* control_command_name(ControlService::Command c);

/// Lists the calling user's jobs known to the NJS.
class ListService final : public AbstractService {
 public:
  ActionType type() const override { return ActionType::kListService; }
  std::unique_ptr<AbstractAction> clone() const override {
    return std::make_unique<ListService>(*this);
  }
  void encode_body(util::ByteWriter& w) const override;
};

/// Queries the status / outcome of one job, with a JMC-style level of
/// detail (§5.7: "Depending on the chosen level of detail the status is
/// displayed for job groups and/or tasks").
class QueryService final : public AbstractService {
 public:
  enum class Detail : std::uint8_t {
    kSummary = 0,   // root status only
    kJobGroups = 1, // root + job-group statuses
    kTasks = 2,     // full tree including task outcomes and output files
  };

  JobToken target = 0;
  Detail detail = Detail::kTasks;

  ActionType type() const override { return ActionType::kQueryService; }
  std::unique_ptr<AbstractAction> clone() const override {
    return std::make_unique<QueryService>(*this);
  }
  void encode_body(util::ByteWriter& w) const override;
};

}  // namespace unicore::ajo
