// AbstractJobObject — the recursive heart of the AJO (Figure 3, §3, §5.3).
//
// "The class AbstractJobObject contains the directed acyclic job graph
//  representing the job components (AbstractTaskObject and
//  AbstractJobObjects) together with their dependencies and information
//  about the destination site (Vsite), the user, site specific security,
//  and the user account group. The recursive structure of the AJO allows
//  for the AJO to contain sub-AJOs (corresponding to job groups in a
//  UNICORE job) which are intended for other execution systems."
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "ajo/action.h"
#include "crypto/x509.h"
#include "util/result.h"

namespace unicore::ajo {

/// An edge of the job graph. "Each dependency can be augmented by the
/// names of the files to be transferred from one to the other. UNICORE
/// then guarantees that the specified data sets created by the
/// predecessor are available to the successor." (§5.7)
struct Dependency {
  ActionId predecessor = 0;
  ActionId successor = 0;
  std::vector<std::string> files;  // Uspace names produced by predecessor

  bool operator==(const Dependency&) const = default;
};

class AbstractJobObject final : public AbstractAction {
 public:
  AbstractJobObject() = default;
  AbstractJobObject(const AbstractJobObject& other);
  AbstractJobObject& operator=(const AbstractJobObject& other);
  AbstractJobObject(AbstractJobObject&&) = default;
  AbstractJobObject& operator=(AbstractJobObject&&) = default;

  ActionType type() const override { return ActionType::kAbstractJobObject; }
  bool is_job() const override { return true; }
  std::unique_ptr<AbstractAction> clone() const override {
    return std::make_unique<AbstractJobObject>(*this);
  }
  void encode_body(util::ByteWriter& w) const override;

  // --- destination & identity ------------------------------------------
  std::string usite;          // destination UNICORE site
  std::string vsite;          // destination virtual site at that Usite
  crypto::DistinguishedName user;  // the unique UNICORE user identification
  std::string account_group;       // accounting group at the destination
  std::string site_security_info;  // opaque site-specific security data

  // --- children & dependency DAG ----------------------------------------
  /// Adds a child action; assigns and returns its id (unique within this
  /// job object's subtree root).
  ActionId add(std::unique_ptr<AbstractAction> action);

  /// Declares that `successor` must not start before `predecessor`
  /// completed successfully, optionally carrying files across.
  void add_dependency(ActionId predecessor, ActionId successor,
                      std::vector<std::string> files = {});

  const std::vector<std::unique_ptr<AbstractAction>>& children() const {
    return children_;
  }
  const std::vector<Dependency>& dependencies() const { return dependencies_; }

  /// Looks up a direct child by id (not recursive); nullptr if absent.
  AbstractAction* find_child(ActionId id) const;

  // --- structure queries -------------------------------------------------
  /// Number of actions in the whole subtree, this job included.
  std::size_t total_actions() const;
  /// Deepest nesting of sub-jobs (a leaf-only job has depth 1).
  std::size_t depth() const;
  /// Applies fn to every action in the subtree (pre-order, this first).
  void visit(const std::function<void(const AbstractAction&)>& fn) const;

  /// Topological order of the direct children (dependency-respecting);
  /// fails on cycles.
  util::Result<std::vector<ActionId>> topological_order() const;

  /// Structural validation of the whole subtree:
  ///  - dependency endpoints exist and differ,
  ///  - the dependency graph is acyclic,
  ///  - ids are unique within this level,
  ///  - TransferTask targets are sub-jobs of this level,
  ///  - sub-jobs carry a destination Vsite (the root may leave its own
  ///    destination empty only if all children are sub-jobs).
  util::Status validate() const;

  /// Reassigns fresh ids across the whole subtree (used by builders after
  /// assembling from pieces). Returns the next unused id.
  ActionId renumber(ActionId first = 1);

 private:
  std::vector<std::unique_ptr<AbstractAction>> children_;
  std::vector<Dependency> dependencies_;
  ActionId next_child_id_ = 1;
};

/// A root AJO signed by the user's credential — what actually crosses
/// the wire to a gateway. The signature covers the canonical encoding,
/// binding the job to the certificate that the gateway maps to a login.
struct SignedAjo {
  AbstractJobObject job;
  crypto::Certificate user_certificate;
  crypto::Signature signature;

  util::Bytes encode() const;
  static util::Result<SignedAjo> decode(util::ByteView wire);
};

/// Signs `job` with the user credential.
SignedAjo sign_ajo(const AbstractJobObject& job,
                   const crypto::Credential& user);

/// Verifies the signature against the embedded certificate (chain
/// validation against a trust store is the gateway's separate concern).
bool verify_ajo_signature(const SignedAjo& signed_ajo);

}  // namespace unicore::ajo
