#include "ajo/job.h"

#include <algorithm>
#include <deque>
#include <map>
#include <set>

#include "ajo/codec.h"
#include "ajo/tasks.h"

namespace unicore::ajo {

using util::ErrorCode;
using util::Result;
using util::Status;

AbstractJobObject::AbstractJobObject(const AbstractJobObject& other)
    : AbstractAction(other),
      usite(other.usite),
      vsite(other.vsite),
      user(other.user),
      account_group(other.account_group),
      site_security_info(other.site_security_info),
      dependencies_(other.dependencies_),
      next_child_id_(other.next_child_id_) {
  children_.reserve(other.children_.size());
  for (const auto& child : other.children_) children_.push_back(child->clone());
}

AbstractJobObject& AbstractJobObject::operator=(
    const AbstractJobObject& other) {
  if (this == &other) return *this;
  AbstractJobObject copy(other);
  *this = std::move(copy);
  return *this;
}

ActionId AbstractJobObject::add(std::unique_ptr<AbstractAction> action) {
  ActionId id = next_child_id_++;
  action->set_id(id);
  children_.push_back(std::move(action));
  return id;
}

void AbstractJobObject::add_dependency(ActionId predecessor,
                                       ActionId successor,
                                       std::vector<std::string> files) {
  dependencies_.push_back({predecessor, successor, std::move(files)});
}

AbstractAction* AbstractJobObject::find_child(ActionId id) const {
  for (const auto& child : children_)
    if (child->id() == id) return child.get();
  return nullptr;
}

std::size_t AbstractJobObject::total_actions() const {
  std::size_t count = 1;
  for (const auto& child : children_) {
    if (child->is_job())
      count += static_cast<const AbstractJobObject&>(*child).total_actions();
    else
      ++count;
  }
  return count;
}

std::size_t AbstractJobObject::depth() const {
  std::size_t deepest = 0;
  for (const auto& child : children_)
    if (child->is_job())
      deepest = std::max(
          deepest, static_cast<const AbstractJobObject&>(*child).depth());
  return deepest + 1;
}

void AbstractJobObject::visit(
    const std::function<void(const AbstractAction&)>& fn) const {
  fn(*this);
  for (const auto& child : children_) {
    if (child->is_job())
      static_cast<const AbstractJobObject&>(*child).visit(fn);
    else
      fn(*child);
  }
}

Result<std::vector<ActionId>> AbstractJobObject::topological_order() const {
  // Kahn's algorithm; among ready nodes the smallest id goes first so the
  // order is deterministic and matches insertion order absent constraints.
  std::map<ActionId, std::size_t> in_degree;
  std::map<ActionId, std::vector<ActionId>> successors;
  for (const auto& child : children_) in_degree[child->id()] = 0;
  for (const Dependency& dep : dependencies_) {
    successors[dep.predecessor].push_back(dep.successor);
    ++in_degree[dep.successor];
  }

  std::set<ActionId> ready;
  for (const auto& [id, degree] : in_degree)
    if (degree == 0) ready.insert(id);

  std::vector<ActionId> order;
  order.reserve(in_degree.size());
  while (!ready.empty()) {
    ActionId id = *ready.begin();
    ready.erase(ready.begin());
    order.push_back(id);
    for (ActionId next : successors[id])
      if (--in_degree[next] == 0) ready.insert(next);
  }
  if (order.size() != in_degree.size())
    return util::make_error(ErrorCode::kInvalidArgument,
                            "job graph contains a cycle");
  return order;
}

Status AbstractJobObject::validate() const {
  // Unique ids at this level.
  std::set<ActionId> ids;
  for (const auto& child : children_) {
    if (child->id() == 0)
      return util::make_error(ErrorCode::kInvalidArgument,
                              "child action with unassigned id");
    if (!ids.insert(child->id()).second)
      return util::make_error(ErrorCode::kInvalidArgument,
                              "duplicate action id " +
                                  std::to_string(child->id()));
  }

  // Dependency endpoints must exist at this level and differ.
  for (const Dependency& dep : dependencies_) {
    if (dep.predecessor == dep.successor)
      return util::make_error(ErrorCode::kInvalidArgument,
                              "self-dependency on action " +
                                  std::to_string(dep.predecessor));
    if (!ids.count(dep.predecessor) || !ids.count(dep.successor))
      return util::make_error(
          ErrorCode::kInvalidArgument,
          "dependency references unknown action " +
              std::to_string(ids.count(dep.predecessor) ? dep.successor
                                                        : dep.predecessor));
  }

  // Acyclicity.
  if (auto order = topological_order(); !order) return order.error();

  // Transfer targets must be sub-jobs at this level.
  for (const auto& child : children_) {
    if (child->type() != ActionType::kTransferTask) continue;
    const auto& transfer = static_cast<const TransferTask&>(*child);
    AbstractAction* target = find_child(transfer.target_job);
    if (target == nullptr || !target->is_job())
      return util::make_error(
          ErrorCode::kInvalidArgument,
          "transfer task " + std::to_string(child->id()) +
              " targets a non-job action " +
              std::to_string(transfer.target_job));
  }

  // A job level that contains tasks must name its destination Vsite.
  bool has_tasks = std::any_of(
      children_.begin(), children_.end(),
      [](const auto& child) { return child->is_task(); });
  if (has_tasks && vsite.empty())
    return util::make_error(ErrorCode::kInvalidArgument,
                            "job group with tasks lacks a destination vsite");

  // Recurse into sub-jobs.
  for (const auto& child : children_) {
    if (!child->is_job()) continue;
    const auto& sub = static_cast<const AbstractJobObject&>(*child);
    if (sub.usite.empty() && sub.vsite.empty() && usite.empty())
      return util::make_error(ErrorCode::kInvalidArgument,
                              "sub-job lacks a destination");
    if (auto status = sub.validate(); !status.ok()) return status;
  }
  return Status::ok_status();
}

ActionId AbstractJobObject::renumber(ActionId first) {
  // Fresh ids across the subtree, fixing up dependency and transfer-target
  // references at each level.
  std::map<ActionId, ActionId> remap;
  ActionId next = first;
  for (auto& child : children_) {
    remap[child->id()] = next;
    child->set_id(next++);
  }
  for (Dependency& dep : dependencies_) {
    dep.predecessor = remap.at(dep.predecessor);
    dep.successor = remap.at(dep.successor);
  }
  for (auto& child : children_) {
    if (child->type() == ActionType::kTransferTask) {
      auto& transfer = static_cast<TransferTask&>(*child);
      if (auto it = remap.find(transfer.target_job); it != remap.end())
        transfer.target_job = it->second;
    }
  }
  for (auto& child : children_) {
    if (child->is_job())
      next = static_cast<AbstractJobObject&>(*child).renumber(next);
  }
  next_child_id_ = next;
  return next;
}

// ---- SignedAjo ------------------------------------------------------------

util::Bytes SignedAjo::encode() const {
  util::ByteWriter w;
  util::Bytes job_wire = encode_action(job);
  w.blob(job_wire);
  w.blob(user_certificate.der());
  w.u64(signature.value);
  return w.take();
}

Result<SignedAjo> SignedAjo::decode(util::ByteView wire) {
  try {
    util::ByteReader r(wire);
    util::Bytes job_wire = r.blob();
    auto action = decode_action(job_wire);
    if (!action) return action.error();
    if (!action.value()->is_job())
      return util::make_error(ErrorCode::kInvalidArgument,
                              "signed AJO root is not a job object");
    SignedAjo out;
    out.job = std::move(static_cast<AbstractJobObject&>(*action.value()));
    util::Bytes cert_der = r.blob();
    auto cert = crypto::Certificate::from_der(cert_der);
    if (!cert) return cert.error();
    out.user_certificate = std::move(cert.value());
    out.signature.value = r.u64();
    if (!r.done())
      return util::make_error(ErrorCode::kInvalidArgument,
                              "signed AJO has trailing bytes");
    return out;
  } catch (const std::out_of_range&) {
    return util::make_error(ErrorCode::kInvalidArgument,
                            "signed AJO truncated");
  }
}

SignedAjo sign_ajo(const AbstractJobObject& job,
                   const crypto::Credential& user) {
  SignedAjo out;
  out.job = job;
  out.user_certificate = user.certificate;
  out.signature = crypto::sign_message(user.key, encode_action(out.job));
  return out;
}

bool verify_ajo_signature(const SignedAjo& signed_ajo) {
  return crypto::verify_message(signed_ajo.user_certificate.subject_key,
                                encode_action(signed_ajo.job),
                                signed_ajo.signature);
}

}  // namespace unicore::ajo
