#include "ajo/codec.h"

#include <stdexcept>

#include "ajo/job.h"
#include "ajo/services.h"
#include "ajo/tasks.h"

namespace unicore::ajo {

using util::ByteReader;
using util::Bytes;
using util::ByteView;
using util::ByteWriter;
using util::ErrorCode;
using util::Result;

const char* action_type_name(ActionType type) {
  switch (type) {
    case ActionType::kAbstractJobObject: return "AbstractJobObject";
    case ActionType::kCompileTask: return "CompileTask";
    case ActionType::kLinkTask: return "LinkTask";
    case ActionType::kUserTask: return "UserTask";
    case ActionType::kExecuteScriptTask: return "ExecuteScriptTask";
    case ActionType::kImportTask: return "ImportTask";
    case ActionType::kExportTask: return "ExportTask";
    case ActionType::kTransferTask: return "TransferTask";
    case ActionType::kControlService: return "ControlService";
    case ActionType::kListService: return "ListService";
    case ActionType::kQueryService: return "QueryService";
  }
  return "?";
}

const char* control_command_name(ControlService::Command c) {
  switch (c) {
    case ControlService::Command::kAbort: return "abort";
    case ControlService::Command::kHold: return "hold";
    case ControlService::Command::kRelease: return "release";
    case ControlService::Command::kDelete: return "delete";
  }
  return "?";
}

// ---- helpers ------------------------------------------------------------

namespace {

void write_string_list(ByteWriter& w, const std::vector<std::string>& list) {
  w.varint(list.size());
  for (const auto& s : list) w.str(s);
}

std::vector<std::string> read_string_list(ByteReader& r) {
  std::uint64_t n = r.varint();
  std::vector<std::string> out;
  out.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) out.push_back(r.str());
  return out;
}

void write_resources(ByteWriter& w, const resources::ResourceSet& rs) {
  w.i64(rs.processors);
  w.i64(rs.wallclock_seconds);
  w.i64(rs.memory_mb);
  w.i64(rs.permanent_disk_mb);
  w.i64(rs.temporary_disk_mb);
}

resources::ResourceSet read_resources(ByteReader& r) {
  resources::ResourceSet rs;
  rs.processors = r.i64();
  rs.wallclock_seconds = r.i64();
  rs.memory_mb = r.i64();
  rs.permanent_disk_mb = r.i64();
  rs.temporary_disk_mb = r.i64();
  return rs;
}

void write_behavior(ByteWriter& w, const TaskBehavior& b) {
  w.f64(b.nominal_seconds);
  w.u32(static_cast<std::uint32_t>(b.exit_code));
  w.str(b.stdout_text);
  w.str(b.stderr_text);
  w.varint(b.output_files.size());
  for (const auto& [name, size] : b.output_files) {
    w.str(name);
    w.u64(size);
  }
}

TaskBehavior read_behavior(ByteReader& r) {
  TaskBehavior b;
  b.nominal_seconds = r.f64();
  b.exit_code = static_cast<std::int32_t>(r.u32());
  b.stdout_text = r.str();
  b.stderr_text = r.str();
  std::uint64_t n = r.varint();
  b.output_files.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    std::string name = r.str();
    std::uint64_t size = r.u64();
    b.output_files.emplace_back(std::move(name), size);
  }
  return b;
}

void write_environment(ByteWriter& w,
                       const std::map<std::string, std::string>& env) {
  w.varint(env.size());
  for (const auto& [key, value] : env) {
    w.str(key);
    w.str(value);
  }
}

std::map<std::string, std::string> read_environment(ByteReader& r) {
  std::map<std::string, std::string> env;
  std::uint64_t n = r.varint();
  for (std::uint64_t i = 0; i < n; ++i) {
    std::string key = r.str();
    env[key] = r.str();
  }
  return env;
}

void write_dn(ByteWriter& w, const crypto::DistinguishedName& dn) {
  w.str(dn.country);
  w.str(dn.organization);
  w.str(dn.organizational_unit);
  w.str(dn.common_name);
  w.str(dn.email);
}

crypto::DistinguishedName read_dn(ByteReader& r) {
  crypto::DistinguishedName dn;
  dn.country = r.str();
  dn.organization = r.str();
  dn.organizational_unit = r.str();
  dn.common_name = r.str();
  dn.email = r.str();
  return dn;
}

void read_execute_fields(ByteReader& r, ExecuteTask& task) {
  task.set_resource_request(read_resources(r));
  task.arguments = read_string_list(r);
  task.environment = read_environment(r);
  task.behavior = read_behavior(r);
}

}  // namespace

// ---- encode_body implementations ---------------------------------------

void ExecuteTask::encode_execute_fields(ByteWriter& w) const {
  write_resources(w, resource_request());
  write_string_list(w, arguments);
  write_environment(w, environment);
  write_behavior(w, behavior);
}

void CompileTask::encode_body(ByteWriter& w) const {
  encode_execute_fields(w);
  w.str(source_file);
  w.str(object_file);
  w.str(language);
  write_string_list(w, compiler_flags);
}

void LinkTask::encode_body(ByteWriter& w) const {
  encode_execute_fields(w);
  write_string_list(w, object_files);
  w.str(executable);
  write_string_list(w, libraries);
}

void UserTask::encode_body(ByteWriter& w) const {
  encode_execute_fields(w);
  w.str(executable);
}

void ExecuteScriptTask::encode_body(ByteWriter& w) const {
  encode_execute_fields(w);
  w.str(script);
  w.str(interpreter);
}

void ImportTask::encode_body(ByteWriter& w) const {
  write_resources(w, resource_request());
  w.u8(static_cast<std::uint8_t>(source));
  w.blob(inline_content);
  w.str(xspace_source.volume);
  w.str(xspace_source.path);
  w.str(uspace_name);
}

void ExportTask::encode_body(ByteWriter& w) const {
  write_resources(w, resource_request());
  w.str(uspace_name);
  w.str(destination.volume);
  w.str(destination.path);
}

void TransferTask::encode_body(ByteWriter& w) const {
  write_resources(w, resource_request());
  w.str(uspace_name);
  w.varint(target_job);
  w.str(rename_to);
}

void ControlService::encode_body(ByteWriter& w) const {
  w.u8(static_cast<std::uint8_t>(command));
  w.varint(target);
}

void ListService::encode_body(ByteWriter&) const {}

void QueryService::encode_body(ByteWriter& w) const {
  w.varint(target);
  w.u8(static_cast<std::uint8_t>(detail));
}

void AbstractJobObject::encode_body(ByteWriter& w) const {
  w.str(usite);
  w.str(vsite);
  write_dn(w, user);
  w.str(account_group);
  w.str(site_security_info);
  w.varint(children_.size());
  for (const auto& child : children_) encode_action(w, *child);
  w.varint(dependencies_.size());
  for (const Dependency& dep : dependencies_) {
    w.varint(dep.predecessor);
    w.varint(dep.successor);
    write_string_list(w, dep.files);
  }
}

// ---- top-level codec ------------------------------------------------------

void encode_action(ByteWriter& w, const AbstractAction& action) {
  w.u8(static_cast<std::uint8_t>(action.type()));
  w.varint(action.id());
  w.str(action.name());
  action.encode_body(w);
}

Bytes encode_action(const AbstractAction& action) {
  ByteWriter w;
  encode_action(w, action);
  return w.take();
}

namespace {

Result<std::unique_ptr<AbstractAction>> decode_action_impl(ByteReader& r) {
  auto type = static_cast<ActionType>(r.u8());
  ActionId id = r.varint();
  std::string name = r.str();

  std::unique_ptr<AbstractAction> action;
  switch (type) {
    case ActionType::kCompileTask: {
      auto task = std::make_unique<CompileTask>();
      read_execute_fields(r, *task);
      task->source_file = r.str();
      task->object_file = r.str();
      task->language = r.str();
      task->compiler_flags = read_string_list(r);
      action = std::move(task);
      break;
    }
    case ActionType::kLinkTask: {
      auto task = std::make_unique<LinkTask>();
      read_execute_fields(r, *task);
      task->object_files = read_string_list(r);
      task->executable = r.str();
      task->libraries = read_string_list(r);
      action = std::move(task);
      break;
    }
    case ActionType::kUserTask: {
      auto task = std::make_unique<UserTask>();
      read_execute_fields(r, *task);
      task->executable = r.str();
      action = std::move(task);
      break;
    }
    case ActionType::kExecuteScriptTask: {
      auto task = std::make_unique<ExecuteScriptTask>();
      read_execute_fields(r, *task);
      task->script = r.str();
      task->interpreter = r.str();
      action = std::move(task);
      break;
    }
    case ActionType::kImportTask: {
      auto task = std::make_unique<ImportTask>();
      task->set_resource_request(read_resources(r));
      task->source = static_cast<ImportTask::Source>(r.u8());
      task->inline_content = r.blob();
      task->xspace_source.volume = r.str();
      task->xspace_source.path = r.str();
      task->uspace_name = r.str();
      action = std::move(task);
      break;
    }
    case ActionType::kExportTask: {
      auto task = std::make_unique<ExportTask>();
      task->set_resource_request(read_resources(r));
      task->uspace_name = r.str();
      task->destination.volume = r.str();
      task->destination.path = r.str();
      action = std::move(task);
      break;
    }
    case ActionType::kTransferTask: {
      auto task = std::make_unique<TransferTask>();
      task->set_resource_request(read_resources(r));
      task->uspace_name = r.str();
      task->target_job = r.varint();
      task->rename_to = r.str();
      action = std::move(task);
      break;
    }
    case ActionType::kControlService: {
      auto service = std::make_unique<ControlService>();
      service->command = static_cast<ControlService::Command>(r.u8());
      service->target = r.varint();
      action = std::move(service);
      break;
    }
    case ActionType::kListService: {
      action = std::make_unique<ListService>();
      break;
    }
    case ActionType::kQueryService: {
      auto service = std::make_unique<QueryService>();
      service->target = r.varint();
      service->detail = static_cast<QueryService::Detail>(r.u8());
      action = std::move(service);
      break;
    }
    case ActionType::kAbstractJobObject: {
      auto job = std::make_unique<AbstractJobObject>();
      job->usite = r.str();
      job->vsite = r.str();
      job->user = read_dn(r);
      job->account_group = r.str();
      job->site_security_info = r.str();
      std::uint64_t n_children = r.varint();
      for (std::uint64_t i = 0; i < n_children; ++i) {
        auto child = decode_action_impl(r);
        if (!child) return child.error();
        // Bypass add(): ids come from the wire, not the counter.
        ActionId child_id = child.value()->id();
        job->add(std::move(child.value()));
        job->children().back()->set_id(child_id);
      }
      std::uint64_t n_deps = r.varint();
      for (std::uint64_t i = 0; i < n_deps; ++i) {
        ActionId predecessor = r.varint();
        ActionId successor = r.varint();
        job->add_dependency(predecessor, successor, read_string_list(r));
      }
      action = std::move(job);
      break;
    }
    default:
      return util::make_error(ErrorCode::kInvalidArgument,
                              "ajo: unknown action type tag " +
                                  std::to_string(static_cast<int>(type)));
  }
  action->set_id(id);
  action->set_name(std::move(name));
  return action;
}

}  // namespace

Result<std::unique_ptr<AbstractAction>> decode_action(ByteReader& r) {
  try {
    return decode_action_impl(r);
  } catch (const std::out_of_range& e) {
    return util::make_error(ErrorCode::kInvalidArgument,
                            std::string("ajo: truncated encoding: ") +
                                e.what());
  }
}

Result<std::unique_ptr<AbstractAction>> decode_action(ByteView wire) {
  ByteReader r(wire);
  auto action = decode_action(r);
  if (!action) return action;
  if (!r.done())
    return util::make_error(ErrorCode::kInvalidArgument,
                            "ajo: trailing bytes after action");
  return action;
}

}  // namespace unicore::ajo
