// The Outcome hierarchy (§5.3): "A Java class Outcome is defined to
// contain the status of an abstract action and the results of its
// execution. Outcome contains a subclass for each subclass of
// AbstractAction which are associated to give the results of an abstract
// action." Reproduced here as one Outcome node per action with a
// per-family detail payload, recursing for job groups.
#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "ajo/action.h"
#include "sim/engine.h"
#include "util/bytes.h"
#include "util/result.h"

namespace unicore::ajo {

/// Lifecycle of an action as observed by the JMC. The JPA/JMC colour
/// their icons from this value (§5.7).
enum class ActionStatus : std::uint8_t {
  kPending = 0,        // known to the NJS, predecessors not yet done
  kHeld = 1,           // dispatch suspended by ControlService(kHold)
  kConsigned = 2,      // shipped to a peer NJS, awaiting its report
  kQueued = 3,         // in the destination batch queue
  kRunning = 4,        // executing on the destination system
  kSuccessful = 5,
  kNotSuccessful = 6,  // ran and failed (nonzero exit, limit kill, ...)
  kAborted = 7,        // killed by ControlService(kAbort)
  kNeverRun = 8,       // skipped because a predecessor failed
};

const char* action_status_name(ActionStatus s);

/// True for the states in which no further change can occur.
bool is_terminal(ActionStatus s);

/// Results specific to the ExecuteTask family.
struct ExecuteOutcome {
  std::int32_t exit_code = 0;
  std::string stdout_text;
  std::string stderr_text;
  bool operator==(const ExecuteOutcome&) const = default;
};

/// Results specific to the FileTask family.
struct FileOutcome {
  std::vector<std::string> files;  // files created / moved
  std::uint64_t bytes_moved = 0;
  bool operator==(const FileOutcome&) const = default;
};

/// Results of a service invocation (listing text, acknowledgements).
struct ServiceOutcome {
  std::string reply;
  bool operator==(const ServiceOutcome&) const = default;
};

/// Status + results of one abstract action; recursive for job groups.
struct Outcome {
  ActionId action = 0;
  ActionType type = ActionType::kAbstractJobObject;
  std::string name;
  ActionStatus status = ActionStatus::kPending;
  std::string message;  // human-readable diagnostic

  // Timestamps in simulation time; -1 = not reached.
  sim::Time submitted_at = -1;
  sim::Time started_at = -1;
  sim::Time finished_at = -1;

  std::variant<std::monostate, ExecuteOutcome, FileOutcome, ServiceOutcome>
      detail;

  std::vector<Outcome> children;  // populated for AbstractJobObjects

  bool operator==(const Outcome&) const = default;

  /// Finds the outcome node for `id` in this subtree (nullptr if absent).
  const Outcome* find(ActionId id) const;
  Outcome* find(ActionId id);

  /// Counts subtree nodes whose status satisfies `pred`.
  std::size_t count_if(bool (*pred)(ActionStatus)) const;

  /// True when every node in the subtree reached a terminal status.
  bool all_terminal() const;

  void encode(util::ByteWriter& w) const;
  static util::Result<Outcome> decode(util::ByteReader& r);

  /// Renders an indented status tree (the textual analogue of the JMC's
  /// coloured icon display).
  std::string to_tree_string(int indent = 0) const;
};

}  // namespace unicore::ajo
