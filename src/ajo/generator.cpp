#include "ajo/generator.h"

#include "ajo/services.h"
#include "ajo/tasks.h"

namespace unicore::ajo {

namespace {

resources::ResourceSet random_resources(util::Rng& rng) {
  resources::ResourceSet r;
  r.processors = rng.range(1, 64);
  r.wallclock_seconds = rng.range(60, 7'200);
  r.memory_mb = rng.range(32, 2'048);
  r.permanent_disk_mb = rng.range(0, 512);
  r.temporary_disk_mb = rng.range(1, 1'024);
  return r;
}

TaskBehavior random_behavior(util::Rng& rng, const std::string& tag) {
  TaskBehavior b;
  b.nominal_seconds = 0.5 + rng.uniform() * 30.0;
  b.exit_code = 0;
  b.stdout_text = "output of " + tag + "\n";
  if (rng.chance(0.3))
    b.output_files.emplace_back(tag + ".out", rng.range(1024, 1 << 20));
  return b;
}

std::unique_ptr<AbstractAction> random_task(util::Rng& rng,
                                            std::size_t index) {
  std::string tag = "t" + std::to_string(index);
  switch (rng.below(6)) {
    case 0: {
      auto task = std::make_unique<CompileTask>();
      task->set_name("compile " + tag);
      task->source_file = tag + ".f90";
      task->object_file = tag + ".o";
      task->compiler_flags = {"-O2"};
      task->set_resource_request(random_resources(rng));
      task->behavior = random_behavior(rng, tag);
      return task;
    }
    case 1: {
      auto task = std::make_unique<LinkTask>();
      task->set_name("link " + tag);
      task->object_files = {tag + ".o"};
      task->executable = tag + ".exe";
      task->set_resource_request(random_resources(rng));
      task->behavior = random_behavior(rng, tag);
      return task;
    }
    case 2: {
      auto task = std::make_unique<UserTask>();
      task->set_name("run " + tag);
      task->executable = tag + ".exe";
      task->arguments = {"-v", std::to_string(rng.below(100))};
      task->environment = {{"OMP_NUM_THREADS", "4"}};
      task->set_resource_request(random_resources(rng));
      task->behavior = random_behavior(rng, tag);
      return task;
    }
    case 3: {
      auto task = std::make_unique<ExecuteScriptTask>();
      task->set_name("script " + tag);
      task->script = "echo " + tag + "\n./step_" + tag + "\n";
      task->set_resource_request(random_resources(rng));
      task->behavior = random_behavior(rng, tag);
      return task;
    }
    case 4: {
      auto task = std::make_unique<ImportTask>();
      task->set_name("import " + tag);
      if (rng.chance(0.5)) {
        task->source = ImportTask::Source::kUserWorkstation;
        task->inline_content = rng.bytes(128);
      } else {
        task->source = ImportTask::Source::kXspace;
        task->xspace_source = {"home", "data/" + tag + ".in"};
      }
      task->uspace_name = tag + ".in";
      return task;
    }
    default: {
      auto task = std::make_unique<ExportTask>();
      task->set_name("export " + tag);
      task->uspace_name = tag + ".out";
      task->destination = {"home", "results/" + tag + ".out"};
      return task;
    }
  }
}

AbstractJobObject random_group(util::Rng& rng, const RandomJobOptions& options,
                               std::size_t depth, std::size_t& counter) {
  AbstractJobObject group;
  group.set_name("group-" + std::to_string(counter));
  group.usite = options.usites[rng.below(options.usites.size())];
  group.vsite = options.vsites[rng.below(options.vsites.size())];

  std::size_t count =
      1 + rng.below(std::max<std::size_t>(1, options.tasks_per_group * 2));
  std::vector<ActionId> ids;
  for (std::size_t i = 0; i < count; ++i) {
    ++counter;
    if (depth + 1 < options.max_depth && rng.chance(options.subjob_probability)) {
      auto sub = std::make_unique<AbstractJobObject>(
          random_group(rng, options, depth + 1, counter));
      ids.push_back(group.add(std::move(sub)));
    } else {
      ids.push_back(group.add(random_task(rng, counter)));
    }
  }

  // Forward edges only (i -> j with i < j) keep the graph acyclic by
  // construction.
  for (std::size_t i = 0; i < ids.size(); ++i) {
    for (std::size_t j = i + 1; j < ids.size(); ++j) {
      if (!rng.chance(options.dependency_density)) continue;
      std::vector<std::string> files;
      if (rng.chance(options.file_edge_probability))
        files.push_back("f" + std::to_string(ids[i]) + ".dat");
      group.add_dependency(ids[i], ids[j], std::move(files));
    }
  }
  return group;
}

}  // namespace

AbstractJobObject random_job(util::Rng& rng, const RandomJobOptions& options,
                             const crypto::DistinguishedName& user) {
  std::size_t counter = 0;
  AbstractJobObject job = random_group(rng, options, 0, counter);
  job.set_name("random-job");
  std::function<void(AbstractJobObject&)> set_user =
      [&](AbstractJobObject& node) {
        node.user = user;
        for (const auto& child : node.children())
          if (child->is_job())
            set_user(static_cast<AbstractJobObject&>(*child));
      };
  set_user(job);
  job.renumber();
  return job;
}

}  // namespace unicore::ajo
