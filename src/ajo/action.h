// The Abstract Job Object protocol — base classes (Figure 3).
//
// "The UNICORE protocol is implemented as a Java object called the
//  abstract job object (AJO). It specifies all actions to be performed
//  by the NJS which are grouped together in the Java class
//  AbstractAction." (§5.3)
//
// The hierarchy reproduced here, exactly as in Figure 3:
//
//   AbstractAction
//   ├── AbstractJobObject                  (recursive job groups; job.h)
//   ├── AbstractTaskObject                 (this file + tasks.h)
//   │   ├── ExecuteTask
//   │   │   ├── CompileTask
//   │   │   ├── LinkTask
//   │   │   ├── UserTask
//   │   │   └── ExecuteScriptTask
//   │   └── FileTask
//   │       ├── ImportTask
//   │       ├── ExportTask
//   │       └── TransferTask
//   └── AbstractService                    (services.h)
//       ├── ControlService
//       ├── ListService
//       └── QueryService
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "resources/resource_set.h"
#include "util/bytes.h"

namespace unicore::ajo {

/// Identifier of an action, unique within its enclosing root AJO.
using ActionId = std::uint64_t;

/// Wire/type tag of every concrete action class.
enum class ActionType : std::uint8_t {
  kAbstractJobObject = 1,
  kCompileTask = 2,
  kLinkTask = 3,
  kUserTask = 4,
  kExecuteScriptTask = 5,
  kImportTask = 6,
  kExportTask = 7,
  kTransferTask = 8,
  kControlService = 9,
  kListService = 10,
  kQueryService = 11,
};

const char* action_type_name(ActionType type);

/// What a task will do when the simulated batch subsystem runs it.
/// The real UNICORE executes the incarnated script on the target
/// machine; the reproduction's batch simulator interprets this
/// behaviour spec instead (see DESIGN.md §2).
struct TaskBehavior {
  /// Runtime on a 1-GFLOPS reference system, in seconds; the batch
  /// simulator scales it by the Vsite's per-processor performance.
  double nominal_seconds = 1.0;
  /// Exit code the task will report (non-zero => NOT_SUCCESSFUL).
  std::int32_t exit_code = 0;
  std::string stdout_text;
  std::string stderr_text;
  /// Files (name, size in bytes) the task creates in the job's Uspace.
  std::vector<std::pair<std::string, std::uint64_t>> output_files;

  bool operator==(const TaskBehavior&) const = default;
};

/// Root of the hierarchy. Every action has an id (assigned when added to
/// a job), a human-readable name, and knows how to encode its body.
class AbstractAction {
 public:
  virtual ~AbstractAction() = default;

  virtual ActionType type() const = 0;
  const char* type_name() const { return action_type_name(type()); }

  ActionId id() const { return id_; }
  void set_id(ActionId id) { id_ = id; }

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  /// Position in the Figure 3 hierarchy.
  virtual bool is_job() const { return false; }
  virtual bool is_task() const { return false; }
  virtual bool is_service() const { return false; }

  /// Deep copy preserving the dynamic type.
  virtual std::unique_ptr<AbstractAction> clone() const = 0;

  /// Serializes the subclass body (header fields id/name are written by
  /// the codec).
  virtual void encode_body(util::ByteWriter& w) const = 0;

 protected:
  AbstractAction() = default;
  AbstractAction(const AbstractAction&) = default;
  AbstractAction& operator=(const AbstractAction&) = default;

  ActionId id_ = 0;
  std::string name_;
};

/// "A task is the unit which boils down to a batch job for the
///  destination system." Carries the resource request of §5.4.
class AbstractTaskObject : public AbstractAction {
 public:
  bool is_task() const final { return true; }

  const resources::ResourceSet& resource_request() const { return resources_; }
  void set_resource_request(resources::ResourceSet r) { resources_ = r; }

 protected:
  resources::ResourceSet resources_;
};

/// Base of the monitoring/control services (§5.3: "the abstract service
/// for job monitoring [is one of] the non-recursive parts of the AJO").
class AbstractService : public AbstractAction {
 public:
  bool is_service() const final { return true; }
};

}  // namespace unicore::ajo
