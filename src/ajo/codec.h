// Binary codec for the AJO protocol ("the transferable unit between the
// UNICORE components", §4.1).
//
// Layout of one action:  u8 type | varint id | str name | body
// Bodies are defined per class (see codec.cpp); AbstractJobObject bodies
// recurse. The encoding is canonical — field order is fixed and lengths
// are minimal — so SignedAjo signatures are stable.
#pragma once

#include <memory>

#include "ajo/action.h"
#include "util/bytes.h"
#include "util/result.h"

namespace unicore::ajo {

/// Serializes any action, including its header.
void encode_action(util::ByteWriter& w, const AbstractAction& action);
util::Bytes encode_action(const AbstractAction& action);

/// Inverse of encode_action; reconstructs the dynamic type from the tag.
util::Result<std::unique_ptr<AbstractAction>> decode_action(
    util::ByteReader& r);
util::Result<std::unique_ptr<AbstractAction>> decode_action(
    util::ByteView wire);

}  // namespace unicore::ajo
