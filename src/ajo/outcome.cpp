#include "ajo/outcome.h"

#include <stdexcept>

namespace unicore::ajo {

using util::ByteReader;
using util::ByteWriter;
using util::Result;

const char* action_status_name(ActionStatus s) {
  switch (s) {
    case ActionStatus::kPending: return "PENDING";
    case ActionStatus::kHeld: return "HELD";
    case ActionStatus::kConsigned: return "CONSIGNED";
    case ActionStatus::kQueued: return "QUEUED";
    case ActionStatus::kRunning: return "RUNNING";
    case ActionStatus::kSuccessful: return "SUCCESSFUL";
    case ActionStatus::kNotSuccessful: return "NOT_SUCCESSFUL";
    case ActionStatus::kAborted: return "ABORTED";
    case ActionStatus::kNeverRun: return "NEVER_RUN";
  }
  return "?";
}

bool is_terminal(ActionStatus s) {
  return s == ActionStatus::kSuccessful || s == ActionStatus::kNotSuccessful ||
         s == ActionStatus::kAborted || s == ActionStatus::kNeverRun;
}

const Outcome* Outcome::find(ActionId id) const {
  if (action == id) return this;
  for (const Outcome& child : children)
    if (const Outcome* hit = child.find(id)) return hit;
  return nullptr;
}

Outcome* Outcome::find(ActionId id) {
  return const_cast<Outcome*>(
      static_cast<const Outcome*>(this)->find(id));
}

std::size_t Outcome::count_if(bool (*pred)(ActionStatus)) const {
  std::size_t count = pred(status) ? 1 : 0;
  for (const Outcome& child : children) count += child.count_if(pred);
  return count;
}

bool Outcome::all_terminal() const {
  if (!is_terminal(status)) return false;
  for (const Outcome& child : children)
    if (!child.all_terminal()) return false;
  return true;
}

namespace {
enum DetailTag : std::uint8_t {
  kNone = 0,
  kExecute = 1,
  kFile = 2,
  kService = 3,
};
}  // namespace

void Outcome::encode(ByteWriter& w) const {
  w.varint(action);
  w.u8(static_cast<std::uint8_t>(type));
  w.str(name);
  w.u8(static_cast<std::uint8_t>(status));
  w.str(message);
  w.i64(submitted_at);
  w.i64(started_at);
  w.i64(finished_at);

  if (const auto* exec = std::get_if<ExecuteOutcome>(&detail)) {
    w.u8(kExecute);
    w.u32(static_cast<std::uint32_t>(exec->exit_code));
    w.str(exec->stdout_text);
    w.str(exec->stderr_text);
  } else if (const auto* file = std::get_if<FileOutcome>(&detail)) {
    w.u8(kFile);
    w.varint(file->files.size());
    for (const auto& f : file->files) w.str(f);
    w.u64(file->bytes_moved);
  } else if (const auto* service = std::get_if<ServiceOutcome>(&detail)) {
    w.u8(kService);
    w.str(service->reply);
  } else {
    w.u8(kNone);
  }

  w.varint(children.size());
  for (const Outcome& child : children) child.encode(w);
}

Result<Outcome> Outcome::decode(ByteReader& r) {
  try {
    Outcome out;
    out.action = r.varint();
    out.type = static_cast<ActionType>(r.u8());
    out.name = r.str();
    out.status = static_cast<ActionStatus>(r.u8());
    out.message = r.str();
    out.submitted_at = r.i64();
    out.started_at = r.i64();
    out.finished_at = r.i64();

    switch (r.u8()) {
      case kNone:
        break;
      case kExecute: {
        ExecuteOutcome exec;
        exec.exit_code = static_cast<std::int32_t>(r.u32());
        exec.stdout_text = r.str();
        exec.stderr_text = r.str();
        out.detail = std::move(exec);
        break;
      }
      case kFile: {
        FileOutcome file;
        std::uint64_t n = r.varint();
        file.files.reserve(n);
        for (std::uint64_t i = 0; i < n; ++i) file.files.push_back(r.str());
        file.bytes_moved = r.u64();
        out.detail = std::move(file);
        break;
      }
      case kService: {
        ServiceOutcome service;
        service.reply = r.str();
        out.detail = std::move(service);
        break;
      }
      default:
        return util::make_error(util::ErrorCode::kInvalidArgument,
                                "outcome: unknown detail tag");
    }

    std::uint64_t n_children = r.varint();
    out.children.reserve(n_children);
    for (std::uint64_t i = 0; i < n_children; ++i) {
      auto child = decode(r);
      if (!child) return child.error();
      out.children.push_back(std::move(child.value()));
    }
    return out;
  } catch (const std::out_of_range&) {
    return util::make_error(util::ErrorCode::kInvalidArgument,
                            "outcome: truncated encoding");
  }
}

std::string Outcome::to_tree_string(int indent) const {
  std::string out(static_cast<std::size_t>(indent) * 2, ' ');
  out += name.empty() ? std::string(action_type_name(type)) : name;
  out += " [";
  out += action_status_name(status);
  out += "]";
  if (!message.empty()) out += " — " + message;
  out += "\n";
  for (const Outcome& child : children)
    out += child.to_tree_string(indent + 1);
  return out;
}

}  // namespace unicore::ajo
