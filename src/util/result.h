// A small Result<T> / Error pair used throughout the middleware for
// recoverable failures (authentication rejections, quota violations,
// translation errors, ...). Exceptions remain reserved for programming
// errors and corrupt wire data.
#pragma once

#include <optional>
#include <stdexcept>
#include <string>
#include <utility>
#include <variant>

namespace unicore::util {

/// Coarse failure categories mirroring the middleware's trust and
/// resource boundaries; used for dispatch in tests and retry policies.
enum class ErrorCode {
  kInvalidArgument,
  kNotFound,
  kPermissionDenied,     // gateway / security rejections
  kAuthenticationFailed, // handshake and certificate failures
  kResourceExhausted,    // quotas, batch limits
  kUnavailable,          // network loss, peer down
  kFailedPrecondition,   // protocol misuse, wrong job state
  kInternal,
  kTimeout,              // no reply within the deadline (peer may have
                         // acted — retries must be idempotent)
};

/// Human-readable name of an ErrorCode ("permission_denied", ...).
const char* error_code_name(ErrorCode code);

/// The retry classification every tier agrees on: kUnavailable (peer
/// down / link lost), kTimeout (no reply in time) and
/// kResourceExhausted (quota or queue pressure that may clear) are
/// worth retrying; everything else is permanent and retrying would
/// only repeat the same rejection.
bool is_retryable(ErrorCode code);

struct Error {
  ErrorCode code = ErrorCode::kInternal;
  std::string message;

  std::string to_string() const {
    return std::string(error_code_name(code)) + ": " + message;
  }
};

inline Error make_error(ErrorCode code, std::string message) {
  return Error{code, std::move(message)};
}

/// Value-or-Error. `value()` throws std::runtime_error when holding an
/// error so that tests fail loudly on unchecked access.
template <typename T>
class Result {
 public:
  Result(T value) : data_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Error error) : data_(std::move(error)) {}  // NOLINT(google-explicit-constructor)

  bool ok() const { return std::holds_alternative<T>(data_); }
  explicit operator bool() const { return ok(); }

  T& value() & {
    ensure_ok();
    return std::get<T>(data_);
  }
  const T& value() const& {
    ensure_ok();
    return std::get<T>(data_);
  }
  T&& value() && {
    ensure_ok();
    return std::get<T>(std::move(data_));
  }

  const Error& error() const {
    if (ok()) throw std::runtime_error("Result: error() on ok result");
    return std::get<Error>(data_);
  }

  /// Value or `fallback` when holding an error.
  T value_or(T fallback) const {
    return ok() ? std::get<T>(data_) : std::move(fallback);
  }

 private:
  void ensure_ok() const {
    if (!ok())
      throw std::runtime_error("Result: value() on error: " +
                               std::get<Error>(data_).to_string());
  }

  std::variant<T, Error> data_;
};

/// Result specialisation for operations without a payload.
class Status {
 public:
  Status() = default;
  Status(Error error) : error_(std::move(error)) {}  // NOLINT(google-explicit-constructor)

  static Status ok_status() { return Status(); }

  bool ok() const { return !error_.has_value(); }
  explicit operator bool() const { return ok(); }

  const Error& error() const {
    if (ok()) throw std::runtime_error("Status: error() on ok status");
    return *error_;
  }

  std::string to_string() const { return ok() ? "ok" : error_->to_string(); }

 private:
  std::optional<Error> error_;
};

}  // namespace unicore::util
