// Retry policy building blocks shared by the client, the NJS batch
// submit path, and the NJS↔NJS peer link: truncated exponential backoff
// with jitter, and a per-target circuit breaker so a dead Vsite or peer
// Usite degrades fast instead of wedging callers behind full retry
// ladders. Times are plain int64 microseconds so the simulation clock
// plugs in directly.
#pragma once

#include <cstdint>

#include "util/rng.h"

namespace unicore::util {

/// Parameters of a truncated exponential backoff ladder. The delay
/// before retry n (1-based) is `initial * multiplier^(n-1)`, capped at
/// `max_us` and spread by ±`jitter` so synchronized retries de-correlate.
struct BackoffPolicy {
  std::int64_t initial_us = 200'000;     // 200 ms
  std::int64_t max_us = 10'000'000;      // 10 s cap
  double multiplier = 2.0;
  double jitter = 0.2;                   // ± fraction of the delay
  int max_attempts = 4;                  // total tries, first included
};

/// Delay to wait before retry number `attempt` (1 = the retry after the
/// first failure). Never negative.
std::int64_t backoff_delay_us(const BackoffPolicy& policy, int attempt,
                              Rng& rng);

/// Classic closed → open → half-open breaker. After `failure_threshold`
/// consecutive failures the breaker opens and `allow()` rejects
/// immediately; once `open_interval_us` has elapsed a single probe is
/// let through (half-open) and its outcome decides between closing and
/// re-opening.
class CircuitBreaker {
 public:
  struct Config {
    int failure_threshold = 3;
    std::int64_t open_interval_us = 30'000'000;  // 30 s cool-down
  };

  enum class State { kClosed, kOpen, kHalfOpen };

  CircuitBreaker() = default;
  explicit CircuitBreaker(Config config) : config_(config) {}

  /// May a request proceed at `now_us`? Transitions open → half-open
  /// when the cool-down elapsed; in half-open only one probe at a time.
  bool allow(std::int64_t now_us);
  void record_success();
  void record_failure(std::int64_t now_us);

  State state() const { return state_; }
  int consecutive_failures() const { return failures_; }

 private:
  Config config_;
  State state_ = State::kClosed;
  int failures_ = 0;
  std::int64_t opened_at_ = 0;
  bool probe_in_flight_ = false;
};

const char* circuit_state_name(CircuitBreaker::State state);

}  // namespace unicore::util
