#include "util/chash.h"

namespace unicore::util {
namespace {

std::uint64_t fnv1a(const std::string& text) {
  std::uint64_t hash = 14695981039346656037ull;
  for (unsigned char c : text) {
    hash ^= c;
    hash *= 1099511628211ull;
  }
  return hash;
}

std::string vnode_key(const std::string& node, std::size_t replica) {
  return node + "#" + std::to_string(replica);
}

}  // namespace

void ConsistentHash::add(const std::string& node) {
  bool fresh = false;
  for (std::size_t i = 0; i < vnodes_; ++i)
    fresh = ring_.emplace(fnv1a(vnode_key(node, i)), node).second || fresh;
  if (fresh) ++nodes_;
}

void ConsistentHash::remove(const std::string& node) {
  std::size_t removed = 0;
  for (auto it = ring_.begin(); it != ring_.end();) {
    if (it->second == node) {
      it = ring_.erase(it);
      ++removed;
    } else {
      ++it;
    }
  }
  if (removed != 0 && nodes_ != 0) --nodes_;
}

const std::string* ConsistentHash::node_for(const std::string& key) const {
  if (ring_.empty()) return nullptr;
  auto it = ring_.lower_bound(fnv1a(key));
  if (it == ring_.end()) it = ring_.begin();  // wrap around the ring
  return &it->second;
}

}  // namespace unicore::util
