#include "util/chash.h"

#include <algorithm>

namespace unicore::util {
namespace {

std::uint64_t fnv1a(const std::string& text) {
  std::uint64_t hash = 14695981039346656037ull;
  for (unsigned char c : text) {
    hash ^= c;
    hash *= 1099511628211ull;
  }
  return hash;
}

std::string vnode_key(const std::string& node, std::size_t replica) {
  return node + "#" + std::to_string(replica);
}

}  // namespace

void ConsistentHash::add(const std::string& node) {
  bool fresh = false;
  for (std::size_t i = 0; i < vnodes_; ++i)
    fresh = ring_.emplace(fnv1a(vnode_key(node, i)), node).second || fresh;
  if (fresh) ++nodes_;
}

void ConsistentHash::remove(const std::string& node) {
  std::size_t removed = 0;
  for (auto it = ring_.begin(); it != ring_.end();) {
    if (it->second == node) {
      it = ring_.erase(it);
      ++removed;
    } else {
      ++it;
    }
  }
  if (removed != 0 && nodes_ != 0) --nodes_;
}

const std::string* ConsistentHash::node_for(const std::string& key) const {
  if (ring_.empty()) return nullptr;
  auto it = ring_.lower_bound(fnv1a(key));
  if (it == ring_.end()) it = ring_.begin();  // wrap around the ring
  return &it->second;
}

std::vector<std::string> ConsistentHash::walk(const std::string& key) const {
  std::vector<std::string> out;
  if (ring_.empty()) return out;
  out.reserve(nodes_);
  auto it = ring_.lower_bound(fnv1a(key));
  for (std::size_t steps = 0; steps < ring_.size() && out.size() < nodes_;
       ++steps, ++it) {
    if (it == ring_.end()) it = ring_.begin();
    if (std::find(out.begin(), out.end(), it->second) == out.end())
      out.push_back(it->second);
  }
  return out;
}

}  // namespace unicore::util
