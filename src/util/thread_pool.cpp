#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <exception>

namespace unicore::util {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0)
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stop_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  // Chunk the index space so tiny bodies do not drown in queue overhead.
  std::size_t chunks = std::min(n, workers_.size() * 4);
  std::atomic<std::size_t> next_chunk{0};
  std::exception_ptr first_error;
  std::mutex error_mutex;

  std::vector<std::future<void>> futures;
  futures.reserve(chunks);
  for (std::size_t c = 0; c < chunks; ++c) {
    futures.push_back(submit([&, chunks, n] {
      for (;;) {
        std::size_t chunk = next_chunk.fetch_add(1);
        if (chunk >= chunks) return;
        std::size_t begin = chunk * n / chunks;
        std::size_t end = (chunk + 1) * n / chunks;
        for (std::size_t i = begin; i < end; ++i) {
          try {
            fn(i);
          } catch (...) {
            std::lock_guard lock(error_mutex);
            if (!first_error) first_error = std::current_exception();
            return;
          }
        }
      }
    }));
  }
  for (auto& f : futures) f.get();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace unicore::util
