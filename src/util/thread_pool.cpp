#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <exception>

namespace unicore::util {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0)
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stop_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  // Chunk the index space so tiny bodies do not drown in queue overhead.
  std::size_t chunks = std::min(n, workers_.size() * 4);

  // All state lives in a shared control block and the calling thread
  // drains chunks itself: parallel_for called from inside a worker makes
  // progress even when every other worker is busy (previously it
  // submitted helpers to its own pool and blocked on their futures — a
  // deadlock on a saturated pool). Helper tasks that wake up after the
  // caller already finished find no chunks left and exit.
  struct Control {
    std::size_t n;
    std::size_t chunks;
    std::function<void(std::size_t)> fn;
    std::atomic<std::size_t> next_chunk{0};
    std::atomic<std::size_t> done_chunks{0};
    std::atomic<bool> failed{false};
    std::exception_ptr first_error;
    std::mutex mutex;
    std::condition_variable done_cv;
  };
  auto control = std::make_shared<Control>();
  control->n = n;
  control->chunks = chunks;
  control->fn = fn;

  auto drain = [](const std::shared_ptr<Control>& ctl) {
    for (;;) {
      std::size_t chunk = ctl->next_chunk.fetch_add(1);
      if (chunk >= ctl->chunks) return;
      // After a failure the remaining chunks are claimed but skipped, so
      // done_chunks still reaches chunks and every waiter wakes.
      if (!ctl->failed.load(std::memory_order_acquire)) {
        std::size_t begin = chunk * ctl->n / ctl->chunks;
        std::size_t end = (chunk + 1) * ctl->n / ctl->chunks;
        for (std::size_t i = begin; i < end; ++i) {
          try {
            ctl->fn(i);
          } catch (...) {
            std::lock_guard lock(ctl->mutex);
            if (!ctl->first_error) ctl->first_error = std::current_exception();
            ctl->failed.store(true, std::memory_order_release);
            break;
          }
        }
      }
      if (ctl->done_chunks.fetch_add(1) + 1 == ctl->chunks) {
        std::lock_guard lock(ctl->mutex);
        ctl->done_cv.notify_all();
      }
    }
  };

  // One helper per chunk beyond the one the caller will start on.
  for (std::size_t c = 1; c < chunks; ++c) {
    std::lock_guard lock(mutex_);
    queue_.emplace_back([control, drain] { drain(control); });
  }
  if (chunks > 1) cv_.notify_all();

  drain(control);

  std::unique_lock lock(control->mutex);
  control->done_cv.wait(lock, [&] {
    return control->done_chunks.load() == control->chunks;
  });
  if (control->first_error) std::rethrow_exception(control->first_error);
}

}  // namespace unicore::util
