#include "util/log.h"

#include <atomic>
#include <iostream>
#include <mutex>

namespace unicore::util {

namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::mutex g_sink_mutex;
Log::Sink g_sink;  // empty => default stderr sink

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

}  // namespace

LogLevel Log::level() { return g_level.load(std::memory_order_relaxed); }

void Log::set_level(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}

void Log::set_sink(Sink sink) {
  std::lock_guard lock(g_sink_mutex);
  g_sink = std::move(sink);
}

void Log::write(LogLevel level, std::string_view source,
                std::string_view message) {
  if (level < Log::level()) return;
  std::lock_guard lock(g_sink_mutex);
  if (g_sink) {
    g_sink(level, source, message);
    return;
  }
  std::cerr << "[" << level_name(level) << "] " << source << ": " << message
            << "\n";
}

}  // namespace unicore::util
