// Lock-free single-producer / single-consumer ring buffer.
//
// The hand-off point between the secure channel's record pipeline and
// request handling: the decrypt stage (which may run its crypto on the
// ThreadPool) pushes plaintext records, the dispatch stage pops them in
// order. One producer, one consumer, no locks: each side owns one index
// and only reads the other's with acquire/release ordering, so neither
// stage ever blocks on the other's progress.
#pragma once

#include <atomic>
#include <cstddef>
#include <utility>
#include <vector>

namespace unicore::util {

template <typename T>
class SpscRing {
 public:
  /// Capacity is rounded up to a power of two (minimum 2) so index
  /// wrapping is a mask, not a modulo.
  explicit SpscRing(std::size_t capacity) {
    std::size_t size = 2;
    while (size < capacity) size <<= 1;
    slots_.resize(size);
    mask_ = size - 1;
  }

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  std::size_t capacity() const { return slots_.size(); }

  /// Producer side. Returns false when the ring is full (the producer
  /// decides whether to drain, spin, or drop).
  bool push(T&& value) {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    if (tail - head_.load(std::memory_order_acquire) == slots_.size())
      return false;
    slots_[tail & mask_] = std::move(value);
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side. Returns false when the ring is empty.
  bool pop(T& out) {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    if (head == tail_.load(std::memory_order_acquire)) return false;
    out = std::move(slots_[head & mask_]);
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  bool empty() const {
    return head_.load(std::memory_order_acquire) ==
           tail_.load(std::memory_order_acquire);
  }

  /// Approximate under concurrency; exact when either side is quiescent.
  std::size_t size() const {
    return tail_.load(std::memory_order_acquire) -
           head_.load(std::memory_order_acquire);
  }

 private:
  std::vector<T> slots_;
  std::size_t mask_ = 0;
  // Separate cache lines so the producer's tail writes never invalidate
  // the consumer's head line and vice versa.
  alignas(64) std::atomic<std::size_t> head_{0};  // consumer index
  alignas(64) std::atomic<std::size_t> tail_{0};  // producer index
};

}  // namespace unicore::util
