#include "util/bytes.h"

#include <bit>
#include <cstring>
#include <stdexcept>

namespace unicore::util {

void ByteWriter::f64(double v) {
  std::uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  u64(bits);
}

void ByteReader::need(std::size_t n) const {
  if (data_.size() - pos_ < n)
    throw std::out_of_range("ByteReader: truncated input");
}

std::uint8_t ByteReader::u8() {
  need(1);
  return data_[pos_++];
}

std::uint16_t ByteReader::u16() {
  need(2);
  std::uint16_t v = static_cast<std::uint16_t>(data_[pos_] << 8 | data_[pos_ + 1]);
  pos_ += 2;
  return v;
}

std::uint32_t ByteReader::u32() {
  need(4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v = v << 8 | data_[pos_ + i];
  pos_ += 4;
  return v;
}

std::uint64_t ByteReader::u64() {
  need(8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v = v << 8 | data_[pos_ + i];
  pos_ += 8;
  return v;
}

double ByteReader::f64() {
  std::uint64_t bits = u64();
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

std::uint64_t ByteReader::varint() {
  std::uint64_t v = 0;
  int shift = 0;
  for (;;) {
    need(1);
    std::uint8_t byte = data_[pos_++];
    if (shift >= 64) throw std::out_of_range("ByteReader: varint overflow");
    v |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
    if (!(byte & 0x80)) return v;
    shift += 7;
  }
}

Bytes ByteReader::raw(std::size_t n) {
  need(n);
  Bytes out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
            data_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
  pos_ += n;
  return out;
}

Bytes ByteReader::blob() {
  std::uint64_t n = varint();
  if (n > remaining()) throw std::out_of_range("ByteReader: blob length exceeds input");
  return raw(static_cast<std::size_t>(n));
}

std::string ByteReader::str() {
  Bytes b = blob();
  return std::string(b.begin(), b.end());
}

std::string hex_encode(ByteView b) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out;
  out.reserve(b.size() * 2);
  for (std::uint8_t byte : b) {
    out.push_back(kDigits[byte >> 4]);
    out.push_back(kDigits[byte & 0xf]);
  }
  return out;
}

namespace {
int hex_value(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  throw std::invalid_argument("hex_decode: bad digit");
}
}  // namespace

Bytes hex_decode(std::string_view s) {
  if (s.size() % 2 != 0) throw std::invalid_argument("hex_decode: odd length");
  Bytes out;
  out.reserve(s.size() / 2);
  for (std::size_t i = 0; i < s.size(); i += 2)
    out.push_back(static_cast<std::uint8_t>(hex_value(s[i]) << 4 | hex_value(s[i + 1])));
  return out;
}

bool constant_time_equal(ByteView a, ByteView b) {
  if (a.size() != b.size()) return false;
  std::uint8_t acc = 0;
  for (std::size_t i = 0; i < a.size(); ++i) acc |= a[i] ^ b[i];
  return acc == 0;
}

}  // namespace unicore::util
