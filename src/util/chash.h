// Consistent-hash ring (docs/SCALING.md): clients of a scaled-out Usite
// pick which gateway replica to connect to by hashing their identity
// onto a ring of virtual nodes. Adding or removing one replica moves
// only ~1/N of the keys — every other client keeps its gateway, its
// warm secure-channel session cache entry, and its resumption tickets.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace unicore::util {

class ConsistentHash {
 public:
  /// `vnodes` virtual points per node; more points = smoother balance.
  explicit ConsistentHash(std::size_t vnodes = 64) : vnodes_(vnodes) {}

  void add(const std::string& node);
  void remove(const std::string& node);

  /// The node owning `key`: the first virtual point at or clockwise of
  /// the key's hash. nullptr while the ring is empty. The pointer is
  /// invalidated by add/remove.
  const std::string* node_for(const std::string& key) const;

  /// Every distinct node in clockwise order starting from `key`'s
  /// owner: walk(key)[0] == *node_for(key), and the rest are the
  /// failover order a client should try when the owner is down.
  std::vector<std::string> walk(const std::string& key) const;

  std::size_t size() const { return nodes_; }
  bool empty() const { return ring_.empty(); }

 private:
  std::size_t vnodes_;
  std::size_t nodes_ = 0;
  std::map<std::uint64_t, std::string> ring_;
};

}  // namespace unicore::util
