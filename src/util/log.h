// Minimal leveled logger. Components log under a source tag
// ("njs/juelich", "gateway", ...); tests run with the level at kWarn so
// output stays quiet, examples raise it to kInfo to narrate the flow.
#pragma once

#include <functional>
#include <sstream>
#include <string>
#include <string_view>

namespace unicore::util {

enum class LogLevel { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

/// Process-wide log configuration.
class Log {
 public:
  using Sink = std::function<void(LogLevel, std::string_view source,
                                  std::string_view message)>;

  static LogLevel level();
  static void set_level(LogLevel level);

  /// Replaces the output sink (default writes to stderr). Passing nullptr
  /// restores the default sink.
  static void set_sink(Sink sink);

  static void write(LogLevel level, std::string_view source,
                    std::string_view message);
};

/// Stream-style log statement collector; emits on destruction.
class LogLine {
 public:
  LogLine(LogLevel level, std::string_view source)
      : level_(level), source_(source) {}
  ~LogLine() { Log::write(level_, source_, stream_.str()); }

  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::string source_;
  std::ostringstream stream_;
};

}  // namespace unicore::util

#define UNICORE_LOG(level_, source_)                                 \
  if (::unicore::util::Log::level() <= (level_))                     \
  ::unicore::util::LogLine((level_), (source_))

#define UNICORE_DEBUG(source) UNICORE_LOG(::unicore::util::LogLevel::kDebug, source)
#define UNICORE_INFO(source) UNICORE_LOG(::unicore::util::LogLevel::kInfo, source)
#define UNICORE_WARN(source) UNICORE_LOG(::unicore::util::LogLevel::kWarn, source)
#define UNICORE_ERROR(source) UNICORE_LOG(::unicore::util::LogLevel::kError, source)
