// Byte-buffer primitives shared by every wire format in the code base
// (ASN.1/DER, the AJO codec, the network record layer).
//
// All multi-byte integers are written big-endian so that encodings are
// byte-order independent and hash-stable across platforms.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace unicore::util {

using Bytes = std::vector<std::uint8_t>;
using ByteView = std::span<const std::uint8_t>;

/// Converts a string to its raw byte representation.
inline Bytes to_bytes(std::string_view s) {
  return Bytes(s.begin(), s.end());
}

/// Converts raw bytes back to a string (no encoding validation).
inline std::string to_string(ByteView b) {
  return std::string(b.begin(), b.end());
}

/// Appends `src` to `dst`.
inline void append(Bytes& dst, ByteView src) {
  dst.insert(dst.end(), src.begin(), src.end());
}

/// Sequential big-endian writer over an owned, growing buffer.
class ByteWriter {
 public:
  ByteWriter() = default;

  /// Pre-sizes the buffer for `n` further bytes (hot paths that know the
  /// frame size up front avoid the vector growth doublings).
  void reserve(std::size_t n) { buf_.reserve(buf_.size() + n); }

  void u8(std::uint8_t v) { buf_.push_back(v); }

  void u16(std::uint16_t v) {
    buf_.push_back(static_cast<std::uint8_t>(v >> 8));
    buf_.push_back(static_cast<std::uint8_t>(v));
  }

  void u32(std::uint32_t v) {
    for (int shift = 24; shift >= 0; shift -= 8)
      buf_.push_back(static_cast<std::uint8_t>(v >> shift));
  }

  void u64(std::uint64_t v) {
    for (int shift = 56; shift >= 0; shift -= 8)
      buf_.push_back(static_cast<std::uint8_t>(v >> shift));
  }

  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }

  void f64(double v);

  /// Unsigned LEB128-style variable-length integer; compact for the many
  /// small counts in AJO graphs.
  void varint(std::uint64_t v) {
    while (v >= 0x80) {
      buf_.push_back(static_cast<std::uint8_t>(v) | 0x80);
      v >>= 7;
    }
    buf_.push_back(static_cast<std::uint8_t>(v));
  }

  void raw(ByteView b) { append(buf_, b); }

  /// Appends `n` zero bytes (padding; models wire cost of content that
  /// is not materialised in memory).
  void pad(std::size_t n) { buf_.resize(buf_.size() + n, 0); }

  /// Length-prefixed (varint) byte string.
  void blob(ByteView b) {
    varint(b.size());
    raw(b);
  }

  /// Length-prefixed (varint) UTF-8 string.
  void str(std::string_view s) {
    varint(s.size());
    buf_.insert(buf_.end(), s.begin(), s.end());
  }

  void boolean(bool b) { u8(b ? 1 : 0); }

  const Bytes& bytes() const { return buf_; }
  Bytes take() { return std::move(buf_); }
  std::size_t size() const { return buf_.size(); }

 private:
  Bytes buf_;
};

/// Sequential reader over a borrowed buffer. All accessors throw
/// std::out_of_range on truncated input so that corrupt network data is
/// rejected rather than silently misparsed.
class ByteReader {
 public:
  explicit ByteReader(ByteView data) : data_(data) {}

  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u32();
  std::uint64_t u64();
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  double f64();
  std::uint64_t varint();
  bool boolean() { return u8() != 0; }

  /// Reads `n` raw bytes.
  Bytes raw(std::size_t n);
  /// Skips `n` bytes without copying.
  void skip(std::size_t n) {
    need(n);
    pos_ += n;
  }
  /// Reads a varint-length-prefixed byte string.
  Bytes blob();
  /// Reads a varint-length-prefixed UTF-8 string.
  std::string str();

  std::size_t remaining() const { return data_.size() - pos_; }
  bool done() const { return pos_ == data_.size(); }
  std::size_t position() const { return pos_; }

 private:
  void need(std::size_t n) const;

  ByteView data_;
  std::size_t pos_ = 0;
};

/// Lowercase hex encoding, e.g. for fingerprints and log output.
std::string hex_encode(ByteView b);

/// Inverse of hex_encode; throws std::invalid_argument on malformed input.
Bytes hex_decode(std::string_view s);

/// Constant-time byte comparison for MAC/signature checks.
bool constant_time_equal(ByteView a, ByteView b);

}  // namespace unicore::util
