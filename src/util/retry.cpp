#include "util/retry.h"

#include <algorithm>
#include <cmath>

namespace unicore::util {

std::int64_t backoff_delay_us(const BackoffPolicy& policy, int attempt,
                              Rng& rng) {
  if (attempt < 1) attempt = 1;
  double delay = static_cast<double>(policy.initial_us) *
                 std::pow(policy.multiplier, attempt - 1);
  delay = std::min(delay, static_cast<double>(policy.max_us));
  if (policy.jitter > 0)
    delay *= 1.0 + policy.jitter * (2.0 * rng.uniform() - 1.0);
  return std::max<std::int64_t>(0, static_cast<std::int64_t>(delay));
}

bool CircuitBreaker::allow(std::int64_t now_us) {
  switch (state_) {
    case State::kClosed:
      return true;
    case State::kOpen:
      if (now_us - opened_at_ >= config_.open_interval_us) {
        state_ = State::kHalfOpen;
        probe_in_flight_ = true;
        return true;
      }
      return false;
    case State::kHalfOpen:
      if (!probe_in_flight_) {
        probe_in_flight_ = true;
        return true;
      }
      return false;
  }
  return false;
}

void CircuitBreaker::record_success() {
  state_ = State::kClosed;
  failures_ = 0;
  probe_in_flight_ = false;
}

void CircuitBreaker::record_failure(std::int64_t now_us) {
  ++failures_;
  probe_in_flight_ = false;
  if (state_ == State::kHalfOpen || failures_ >= config_.failure_threshold) {
    state_ = State::kOpen;
    opened_at_ = now_us;
  }
}

const char* circuit_state_name(CircuitBreaker::State state) {
  switch (state) {
    case CircuitBreaker::State::kClosed: return "closed";
    case CircuitBreaker::State::kOpen: return "open";
    case CircuitBreaker::State::kHalfOpen: return "half-open";
  }
  return "unknown";
}

}  // namespace unicore::util
