#include "util/rng.h"

#include <cmath>

namespace unicore::util {

namespace {
std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(std::uint64_t seed) {
  for (auto& s : s_) s = splitmix64(seed);
  // xoshiro must not start from the all-zero state.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::next() {
  std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::below(std::uint64_t bound) {
  if (bound == 0) return 0;
  // Lemire's multiply-shift rejection method.
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    std::uint64_t threshold = -bound % bound;
    while (lo < threshold) {
      x = next();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::range(std::int64_t lo, std::int64_t hi) {
  auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(below(span));
}

double Rng::uniform() {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool Rng::chance(double p) {
  if (p <= 0) return false;
  if (p >= 1) return true;
  return uniform() < p;
}

double Rng::exponential(double mean) {
  double u = uniform();
  // Guard against log(0).
  if (u <= 0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

Bytes Rng::bytes(std::size_t n) {
  Bytes out(n);
  std::size_t i = 0;
  while (i < n) {
    std::uint64_t v = next();
    for (int b = 0; b < 8 && i < n; ++b, ++i)
      out[i] = static_cast<std::uint8_t>(v >> (8 * b));
  }
  return out;
}

Rng Rng::fork() { return Rng(next()); }

}  // namespace unicore::util
