#include "util/result.h"

namespace unicore::util {

const char* error_code_name(ErrorCode code) {
  switch (code) {
    case ErrorCode::kInvalidArgument: return "invalid_argument";
    case ErrorCode::kNotFound: return "not_found";
    case ErrorCode::kPermissionDenied: return "permission_denied";
    case ErrorCode::kAuthenticationFailed: return "authentication_failed";
    case ErrorCode::kResourceExhausted: return "resource_exhausted";
    case ErrorCode::kUnavailable: return "unavailable";
    case ErrorCode::kFailedPrecondition: return "failed_precondition";
    case ErrorCode::kInternal: return "internal";
    case ErrorCode::kTimeout: return "timeout";
  }
  return "unknown";
}

bool is_retryable(ErrorCode code) {
  switch (code) {
    case ErrorCode::kUnavailable:
    case ErrorCode::kTimeout:
    case ErrorCode::kResourceExhausted:
      return true;
    default:
      return false;
  }
}

}  // namespace unicore::util
