// Deterministic pseudo-random number generation.
//
// Every stochastic element of the middleware simulation (link loss, batch
// job durations, failure injection, workload generators) draws from an
// explicitly seeded Rng so that tests and benchmarks are reproducible
// bit-for-bit across runs and platforms. xoshiro256** is used for its
// quality/speed; SplitMix64 expands the seed.
#pragma once

#include <cstdint>

#include "util/bytes.h"

namespace unicore::util {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5eed'0000'cafe'f00dULL);

  /// Uniform 64-bit value.
  std::uint64_t next();

  /// Uniform in [0, bound) without modulo bias (Lemire reduction).
  std::uint64_t below(std::uint64_t bound);

  /// Uniform in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double uniform();

  /// True with probability p (clamped to [0,1]).
  bool chance(double p);

  /// Exponentially distributed value with the given mean (> 0).
  double exponential(double mean);

  /// `n` uniform random bytes.
  Bytes bytes(std::size_t n);

  /// Derives an independent child generator; used to give each simulated
  /// component its own stream so insertion order does not perturb others.
  Rng fork();

 private:
  std::uint64_t s_[4];
};

}  // namespace unicore::util
