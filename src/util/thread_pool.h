// A fixed-size worker pool for the genuinely parallel parts of the
// middleware: bulk checksum of staged files, fan-out incarnation of large
// job graphs, and benchmark ablations (serial vs parallel).
//
// The distributed-system behaviour itself runs on the deterministic
// discrete-event kernel (src/sim); the pool is only used for data-parallel
// work whose results are order-independent.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace unicore::util {

class ThreadPool {
 public:
  /// Creates `threads` workers; 0 selects hardware_concurrency (min 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueues a task; the returned future observes its completion and
  /// propagates exceptions.
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> future = task->get_future();
    {
      std::lock_guard lock(mutex_);
      queue_.emplace_back([task] { (*task)(); });
    }
    cv_.notify_one();
    return future;
  }

  /// Applies `fn(i)` for i in [0, n) across the pool and waits for all.
  /// Exceptions from any invocation are rethrown (first one wins; after a
  /// failure the remaining indexes are skipped). The calling thread
  /// participates in the work, so this is safe to call from inside a
  /// worker task — even on a fully saturated pool.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace unicore::util
