// The gateway's authentication fast path: successful
// authenticate_user results memoized per subject DN, sharded by the
// same DN hash as the UUDB.
//
// Each shard carries its own lock, hit/miss counters, and map, so N
// gateway replicas fronting one Usite can share a single cache (one
// fill warms every replica) while concurrent lookups contend only per
// shard. Entries stamp the trust-store generation and the generation
// of the *subject's UUDB shard*; a CRL change still flushes everything
// (trust is global), but a UUDB edit only invalidates the one shard it
// touched — every other subject's cached decision stays hot.
//
// Only positives are cached; rejections always re-run the full path.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "crypto/x509.h"
#include "obs/metrics.h"

namespace unicore::gateway {

/// Result of a successful authentication: who the certificate is locally.
struct AuthenticatedUser {
  crypto::DistinguishedName dn;
  std::string login;
  std::vector<std::string> account_groups;
};

class ShardedAuthCache {
 public:
  explicit ShardedAuthCache(std::size_t shard_count = 16);

  std::size_t shard_count() const { return shards_.size(); }

  /// Seconds a cached decision stays valid; 0 disables the cache.
  void set_ttl(std::int64_t seconds);
  std::int64_t ttl() const { return ttl_; }

  /// Counts hits/misses into unicore_gateway_auth_cache_total{usite,
  /// result} and keeps the per-shard gauges
  /// unicore_gateway_auth_shard_{hits,misses,entries}{usite,shard}
  /// current. nullptr detaches.
  void set_metrics(obs::MetricsRegistry* registry, std::string usite);

  /// A hit requires the presented certificate to equal the cached one
  /// byte for byte, both generation stamps to be current, the TTL to
  /// have time left, and the certificate itself to still be in its
  /// validity window. A stale entry is erased on the way through.
  std::optional<AuthenticatedUser> lookup(const crypto::Certificate& cert,
                                          std::int64_t now,
                                          std::uint64_t trust_generation,
                                          std::uint64_t uudb_generation);

  /// Caches a positive decision under the given generation stamps.
  void store(const crypto::Certificate& cert, const AuthenticatedUser& user,
             std::int64_t now, std::uint64_t trust_generation,
             std::uint64_t uudb_generation);

  /// Drops every cached decision (e.g. after an out-of-band revocation).
  void invalidate_all();

  // Aggregates across shards.
  std::uint64_t hits() const;
  std::uint64_t misses() const;
  std::size_t size() const;

  // Per-shard introspection for tests and the bench.
  std::uint64_t shard_hits(std::size_t shard) const;
  std::uint64_t shard_misses(std::size_t shard) const;
  std::size_t shard_size(std::size_t shard) const;

 private:
  struct Entry {
    crypto::Certificate certificate;  // must match the presented one
    AuthenticatedUser user;
    std::int64_t cached_at = 0;
    std::uint64_t trust_generation = 0;
    std::uint64_t uudb_generation = 0;
  };
  struct Shard {
    mutable std::mutex mutex;
    std::map<std::string, Entry> entries;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
  };

  Shard& shard_for(const std::string& subject);
  void count(const char* result);
  void publish_shard_gauges(std::size_t index, const Shard& shard);

  std::vector<std::unique_ptr<Shard>> shards_;
  std::int64_t ttl_ = 300;
  obs::MetricsRegistry* metrics_ = nullptr;
  std::string usite_;
};

}  // namespace unicore::gateway
