#include "gateway/uudb.h"

namespace unicore::gateway {

using util::ErrorCode;
using util::Result;
using util::Status;

std::size_t dn_shard_of(const std::string& dn, std::size_t shard_count) {
  if (shard_count <= 1) return 0;
  // FNV-1a, 64 bit: stable across processes so every gateway replica
  // maps a subject to the same shard.
  std::uint64_t h = 14695981039346656037ull;
  for (unsigned char c : dn) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return static_cast<std::size_t>(h % shard_count);
}

void UserDatabase::add_mapping(const crypto::DistinguishedName& dn,
                               UserEntry entry) {
  Shard& shard = shard_for(dn.to_string());
  shard.entries[dn.to_string()] = std::move(entry);
  ++shard.generation;
}

Status UserDatabase::remove_mapping(const crypto::DistinguishedName& dn) {
  Shard& shard = shard_for(dn.to_string());
  if (shard.entries.erase(dn.to_string()) == 0)
    return util::make_error(ErrorCode::kNotFound,
                            "no mapping for " + dn.to_string());
  ++shard.generation;
  return Status::ok_status();
}

Status UserDatabase::set_suspended(const crypto::DistinguishedName& dn,
                                   bool suspended) {
  Shard& shard = shard_for(dn.to_string());
  auto it = shard.entries.find(dn.to_string());
  if (it == shard.entries.end())
    return util::make_error(ErrorCode::kNotFound,
                            "no mapping for " + dn.to_string());
  it->second.suspended = suspended;
  ++shard.generation;
  return Status::ok_status();
}

Result<UserEntry> UserDatabase::lookup(
    const crypto::DistinguishedName& dn) const {
  const Shard& shard = shard_for(dn.to_string());
  auto it = shard.entries.find(dn.to_string());
  if (it == shard.entries.end())
    return util::make_error(ErrorCode::kPermissionDenied,
                            "no local mapping for " + dn.to_string());
  return it->second;
}

std::size_t UserDatabase::size() const {
  std::size_t total = 0;
  for (const Shard& shard : shards_) total += shard.entries.size();
  return total;
}

std::uint64_t UserDatabase::generation() const {
  std::uint64_t total = 0;
  for (const Shard& shard : shards_) total += shard.generation;
  return total;
}

}  // namespace unicore::gateway
