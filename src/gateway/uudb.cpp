#include "gateway/uudb.h"

namespace unicore::gateway {

using util::ErrorCode;
using util::Result;
using util::Status;

void UserDatabase::add_mapping(const crypto::DistinguishedName& dn,
                               UserEntry entry) {
  entries_[dn.to_string()] = std::move(entry);
  ++generation_;
}

Status UserDatabase::remove_mapping(const crypto::DistinguishedName& dn) {
  if (entries_.erase(dn.to_string()) == 0)
    return util::make_error(ErrorCode::kNotFound,
                            "no mapping for " + dn.to_string());
  ++generation_;
  return Status::ok_status();
}

Status UserDatabase::set_suspended(const crypto::DistinguishedName& dn,
                                   bool suspended) {
  auto it = entries_.find(dn.to_string());
  if (it == entries_.end())
    return util::make_error(ErrorCode::kNotFound,
                            "no mapping for " + dn.to_string());
  it->second.suspended = suspended;
  ++generation_;
  return Status::ok_status();
}

Result<UserEntry> UserDatabase::lookup(
    const crypto::DistinguishedName& dn) const {
  auto it = entries_.find(dn.to_string());
  if (it == entries_.end())
    return util::make_error(ErrorCode::kPermissionDenied,
                            "no local mapping for " + dn.to_string());
  return it->second;
}

}  // namespace unicore::gateway
