#include "gateway/gateway.h"

#include "crypto/sha256.h"

namespace unicore::gateway {

namespace {
/// Bound on the endorsement-verification memo; one entry per distinct
/// (input, signature, key) triple, so legitimate traffic stays far
/// below this and a flood of garbage signatures cannot grow it
/// unboundedly — it is simply wiped and rebuilt.
constexpr std::size_t kVerifyMemoLimit = 1024;
}  // namespace

using util::ErrorCode;
using util::Result;
using util::Status;

void Gateway::audit(std::int64_t now, const std::string& subject,
                    const std::string& action, bool accepted,
                    std::string detail) {
  if (metrics_)
    metrics_
        ->counter("unicore_gateway_auth_total",
                  {{"usite", usite_},
                   {"action", action},
                   {"result", accepted ? "accept" : "reject"}})
        .increment();
  audit_.push_back({now, subject, action, accepted, std::move(detail)});
}

Result<AuthenticatedUser> Gateway::authenticate_user(
    const crypto::Certificate& cert, std::int64_t now) {
  if (auto cached = auth_cache_->lookup(cert, now, trust_->generation(),
                                        uudb_->generation(cert.subject)))
    return *cached;

  crypto::ValidationOptions options;
  options.now = now;
  options.required_usage = crypto::kUsageClientAuth;
  if (auto status = trust_->validate(cert, {}, options); !status.ok()) {
    audit(now, cert.subject.to_string(), "authenticate", false,
          status.error().message);
    return status.error();
  }

  auto entry = uudb_->lookup(cert.subject);
  if (!entry) {
    audit(now, cert.subject.to_string(), "authenticate", false,
          entry.error().message);
    return entry.error();
  }
  if (entry.value().suspended) {
    audit(now, cert.subject.to_string(), "authenticate", false, "suspended");
    return util::make_error(ErrorCode::kPermissionDenied,
                            "user suspended at " + usite_ + ": " +
                                cert.subject.to_string());
  }

  AuthenticatedUser user;
  user.dn = cert.subject;
  user.login = entry.value().login;
  user.account_groups = entry.value().account_groups;
  audit(now, cert.subject.to_string(), "authenticate", true,
        "login=" + user.login);
  auth_cache_->store(cert, user, now, trust_->generation(),
                     uudb_->generation(cert.subject));
  return user;
}

bool Gateway::verify_endorsement(const crypto::PublicKey& key,
                                 util::ByteView signing_input,
                                 const crypto::Signature& signature) {
  const crypto::Digest digest = crypto::sha256(signing_input);
  VerifyKey memo_key{std::string(digest.begin(), digest.end()),
                     signature.value, key.n, key.e};
  if (auto it = verify_memo_.find(memo_key); it != verify_memo_.end())
    return it->second;
  const bool ok = crypto::verify_digest(key, digest, signature);
  if (verify_memo_.size() >= kVerifyMemoLimit) verify_memo_.clear();
  verify_memo_.emplace(std::move(memo_key), ok);
  return ok;
}

Status Gateway::authenticate_server(const crypto::Certificate& cert,
                                    std::int64_t now) {
  crypto::ValidationOptions options;
  options.now = now;
  options.required_usage = crypto::kUsageServerAuth;
  auto status = trust_->validate(cert, {}, options);
  audit(now, cert.subject.to_string(), "server-auth", status.ok(),
        status.ok() ? "" : status.error().message);
  return status;
}

Result<AuthenticatedUser> Gateway::check_consignment(
    const ajo::SignedAjo& signed_ajo, std::int64_t now) {
  const std::string subject = signed_ajo.user_certificate.subject.to_string();

  auto user = authenticate_user(signed_ajo.user_certificate, now);
  if (!user) {
    audit(now, subject, "consign", false, user.error().message);
    return user.error();
  }

  if (!ajo::verify_ajo_signature(signed_ajo)) {
    audit(now, subject, "consign", false, "AJO signature invalid");
    return util::make_error(ErrorCode::kAuthenticationFailed,
                            "AJO signature does not verify against the "
                            "presented certificate");
  }

  if (auto status = authorize_job(signed_ajo.job, user.value(),
                                  signed_ajo.user_certificate, now);
      !status.ok())
    return status.error();
  return user;
}

Status Gateway::authorize_job(const ajo::AbstractJobObject& job,
                              const AuthenticatedUser& user,
                              const crypto::Certificate& cert,
                              std::int64_t now) {
  const std::string subject = cert.subject.to_string();

  // The job must be consigned under the authenticated identity.
  if (job.user != cert.subject) {
    audit(now, subject, "consign", false, "AJO user != certificate subject");
    return util::make_error(ErrorCode::kPermissionDenied,
                            "AJO names a different user than the "
                            "authenticated identity");
  }

  // Account-group authorisation: an explicit group must be one of the
  // user's; an empty group falls back to the user's first group.
  const std::string& group = job.account_group;
  auto in_group = [&user](const std::string& g) {
    for (const auto& candidate : user.account_groups)
      if (candidate == g) return true;
    return false;
  };
  if (!group.empty() && !in_group(group)) {
    audit(now, subject, "consign", false, "group " + group + " not allowed");
    return util::make_error(ErrorCode::kPermissionDenied,
                            "account group not authorised: " + group);
  }

  if (auto status = job.validate(); !status.ok()) {
    audit(now, subject, "consign", false, status.error().message);
    return status.error();
  }

  if (site_hook_) {
    auto status = site_hook_(cert, job.site_security_info);
    if (!status.ok()) {
      audit(now, subject, "consign", false,
            "site auth: " + status.error().message);
      return status.error();
    }
  }

  audit(now, subject, "consign", true, "login=" + user.login);
  return Status();
}

Result<AuthenticatedUser> Gateway::check_forwarded_consignment(
    const ajo::AbstractJobObject& job,
    const crypto::Certificate& user_certificate,
    const crypto::Certificate& consignor_certificate,
    const crypto::Signature& signature, util::ByteView signing_input,
    std::int64_t now) {
  const std::string subject = user_certificate.subject.to_string() +
                              " via " +
                              consignor_certificate.subject.to_string();

  if (auto status = authenticate_server(consignor_certificate, now);
      !status.ok()) {
    audit(now, subject, "consign-forwarded", false, status.error().message);
    return status.error();
  }

  if (!verify_endorsement(consignor_certificate.subject_key, signing_input,
                          signature)) {
    audit(now, subject, "consign-forwarded", false,
          "endorsement signature invalid");
    return util::make_error(ErrorCode::kAuthenticationFailed,
                            "forwarded consignment endorsement does not "
                            "verify");
  }

  auto user = authenticate_user(user_certificate, now);
  if (!user) {
    audit(now, subject, "consign-forwarded", false, user.error().message);
    return user.error();
  }

  if (job.user != user_certificate.subject) {
    audit(now, subject, "consign-forwarded", false,
          "job user != certificate subject");
    return util::make_error(ErrorCode::kPermissionDenied,
                            "forwarded job names a different user than the "
                            "accompanying certificate");
  }

  const std::string& group = job.account_group;
  bool group_ok = group.empty();
  for (const auto& candidate : user.value().account_groups)
    if (candidate == group) group_ok = true;
  if (!group_ok) {
    audit(now, subject, "consign-forwarded", false,
          "group " + group + " not allowed");
    return util::make_error(ErrorCode::kPermissionDenied,
                            "account group not authorised: " + group);
  }

  if (auto status = job.validate(); !status.ok()) {
    audit(now, subject, "consign-forwarded", false, status.error().message);
    return status.error();
  }

  audit(now, subject, "consign-forwarded", true,
        "login=" + user.value().login);
  return user;
}

}  // namespace unicore::gateway
