// Gateway-issued portal sessions (docs/PORTAL.md).
//
// The paper's client story is certificate-per-request: every JPA/JMC
// interaction authenticates the channel's peer certificate. Production
// portals ("The Anatomy of a Grid portal") instead hand the user an
// opaque bearer token after one authenticated contact and multiplex all
// further traffic — possibly over pooled channels whose own peer
// certificate belongs to the portal, not the user.
//
// A token session maps onto an existing certificate identity and is
// never weaker than the certificate it wraps:
//   - it carries its own TTL (refresh extends, close revokes),
//   - it is stamped with the trust-store generation and the generation
//     of the *subject's UUDB shard* it was validated under; any CRL or
//     root change, or a UUDB edit touching that shard, forces the next
//     authentication through the gateway's full path again (which the
//     PR-4 auth cache keeps cheap), so a revoked or suspended user's
//     token fails exactly like their certificate — while edits to other
//     shards leave the fast path intact,
//   - the mapped login/groups refresh automatically on UUDB edits.
#pragma once

#include <cstdint>
#include <map>
#include <queue>
#include <string>
#include <utility>
#include <vector>

#include "gateway/gateway.h"
#include "obs/metrics.h"
#include "util/bytes.h"
#include "util/result.h"
#include "util/rng.h"

namespace unicore::gateway {

/// What kSessionOpen / kSessionRefresh return to the client.
struct SessionGrant {
  util::Bytes token;             // opaque bearer capsule
  std::int64_t expires_at = 0;   // epoch seconds
  std::string login;             // the mapped local identity
};

/// The identity a validated token resolves to.
struct SessionIdentity {
  AuthenticatedUser user;
  crypto::Certificate certificate;  // the certificate the session wraps
};

class SessionBroker {
 public:
  SessionBroker(Gateway& gateway, util::Rng& rng);

  /// Seconds a session lives without a refresh (default 1800; opens may
  /// request less, never more).
  void set_ttl(std::int64_t seconds) { ttl_seconds_ = seconds; }
  std::int64_t ttl() const { return ttl_seconds_; }
  /// Upper bound on concurrently open sessions (default 1 << 20);
  /// further opens are refused kResourceExhausted.
  void set_max_sessions(std::size_t limit) { max_sessions_ = limit; }

  /// Authenticates `cert` through the gateway (full path or auth-cache
  /// hit) and mints a new session.
  util::Result<SessionGrant> open(const crypto::Certificate& cert,
                                  std::int64_t now,
                                  std::int64_t requested_ttl = 0);
  /// Re-validates the session and extends its expiry by the TTL.
  util::Result<SessionGrant> refresh(util::ByteView token, std::int64_t now);
  /// Explicit logout; unknown tokens are kNotFound.
  util::Status close(util::ByteView token);

  /// Resolves a token to its identity — the per-request fast path. An
  /// unexpired token whose trust/UUDB generations are still current
  /// costs one map lookup; a stale one re-runs the gateway's
  /// certificate authentication and is dropped if that fails.
  util::Result<SessionIdentity> authenticate(util::ByteView token,
                                             std::int64_t now);

  std::size_t active() const { return sessions_.size(); }
  std::uint64_t opened() const { return opened_; }
  std::uint64_t refreshed() const { return refreshed_; }
  std::uint64_t closed() const { return closed_; }
  std::uint64_t expired() const { return expired_; }
  std::uint64_t rejected() const { return rejected_; }
  /// Token validations answered from the generation-stamped session
  /// record alone (no certificate re-validation).
  std::uint64_t fast_validations() const { return fast_validations_; }

  /// Counts session lifecycle events into `registry` as
  /// unicore_gateway_sessions_total{usite, action, result} and keeps the
  /// unicore_gateway_active_sessions{usite} gauge current.
  void set_metrics(obs::MetricsRegistry* registry) { metrics_ = registry; }

 private:
  struct Session {
    crypto::Certificate certificate;
    AuthenticatedUser user;
    std::int64_t issued_at = 0;
    std::int64_t expires_at = 0;
    std::uint64_t trust_generation = 0;
    std::uint64_t uudb_generation = 0;
    std::uint64_t refreshes = 0;
  };

  util::Bytes mint_token();
  /// Drops sessions past their expiry (called on open so the table
  /// cannot grow without bound under abandoned sessions). Amortized:
  /// a min-heap of (expires_at, token) deadlines is popped only down
  /// to `now`, so an open among 10⁵ live sessions does O(expired ·
  /// log n) work instead of scanning the whole table. Refreshing a
  /// session pushes a later deadline; the superseded heap entry is
  /// recognised (the session's actual expiry is re-checked at pop
  /// time) and skipped.
  void sweep(std::int64_t now);
  void count(const char* action, bool accepted);
  void update_gauge();
  /// Shared validation core of refresh/authenticate: TTL, generation
  /// stamps, and the certificate re-validation fallback.
  util::Result<Session*> validate(util::ByteView token, std::int64_t now);

  using ExpiryEntry = std::pair<std::int64_t, util::Bytes>;

  Gateway& gateway_;
  util::Rng rng_;
  std::map<util::Bytes, Session> sessions_;
  std::priority_queue<ExpiryEntry, std::vector<ExpiryEntry>,
                      std::greater<ExpiryEntry>>
      expiry_heap_;
  std::int64_t ttl_seconds_ = 1800;
  std::size_t max_sessions_ = 1ull << 20;
  std::uint64_t opened_ = 0;
  std::uint64_t refreshed_ = 0;
  std::uint64_t closed_ = 0;
  std::uint64_t expired_ = 0;
  std::uint64_t rejected_ = 0;
  std::uint64_t fast_validations_ = 0;
  obs::MetricsRegistry* metrics_ = nullptr;
};

}  // namespace unicore::gateway
