#include "gateway/session_broker.h"

#include <utility>

namespace unicore::gateway {

using util::Bytes;
using util::ByteView;
using util::ErrorCode;
using util::Result;
using util::Status;

namespace {
/// 128-bit bearer tokens: unguessable, and small enough that the
/// kTokenRequest envelope stays cheaper than a certificate blob.
constexpr std::size_t kTokenBytes = 16;
}  // namespace

SessionBroker::SessionBroker(Gateway& gateway, util::Rng& rng)
    : gateway_(gateway), rng_(rng.fork()) {}

Bytes SessionBroker::mint_token() {
  Bytes token = rng_.bytes(kTokenBytes);
  // Astronomically unlikely, but a collision must never splice two
  // users' sessions together.
  while (sessions_.count(token) != 0) token = rng_.bytes(kTokenBytes);
  return token;
}

void SessionBroker::count(const char* action, bool accepted) {
  if (!metrics_) return;
  metrics_
      ->counter("unicore_gateway_sessions_total",
                {{"usite", gateway_.usite()},
                 {"action", action},
                 {"result", accepted ? "accept" : "reject"}})
      .increment();
}

void SessionBroker::update_gauge() {
  if (!metrics_) return;
  metrics_
      ->gauge("unicore_gateway_active_sessions",
              {{"usite", gateway_.usite()}})
      .set(static_cast<double>(sessions_.size()));
}

void SessionBroker::sweep(std::int64_t now) {
  bool erased = false;
  while (!expiry_heap_.empty() && expiry_heap_.top().first <= now) {
    ExpiryEntry due = expiry_heap_.top();
    expiry_heap_.pop();
    auto it = sessions_.find(due.second);
    // Gone already (closed, or expired through validate), or refreshed
    // to a later deadline — the heap entry is stale; skip it.
    if (it == sessions_.end() || now < it->second.expires_at) continue;
    ++expired_;
    count("expire", true);
    sessions_.erase(it);
    erased = true;
  }
  if (erased) update_gauge();
}

Result<SessionGrant> SessionBroker::open(const crypto::Certificate& cert,
                                         std::int64_t now,
                                         std::int64_t requested_ttl) {
  sweep(now);
  if (sessions_.size() >= max_sessions_) {
    ++rejected_;
    count("open", false);
    return util::make_error(ErrorCode::kResourceExhausted,
                            "session table full at " + gateway_.usite());
  }

  auto user = gateway_.authenticate_user(cert, now);
  if (!user) {
    ++rejected_;
    count("open", false);
    return user.error();
  }

  std::int64_t ttl = ttl_seconds_;
  if (requested_ttl > 0 && requested_ttl < ttl) ttl = requested_ttl;

  Session session;
  session.certificate = cert;
  session.user = user.value();
  session.issued_at = now;
  session.expires_at = now + ttl;
  session.trust_generation = gateway_.trust_store().generation();
  // Per-shard stamp: a UUDB edit elsewhere leaves this session's
  // generation fast path intact.
  session.uudb_generation = gateway_.uudb().generation(cert.subject);

  Bytes token = mint_token();
  SessionGrant grant{token, session.expires_at, session.user.login};
  expiry_heap_.emplace(session.expires_at, token);
  sessions_.emplace(std::move(token), std::move(session));
  ++opened_;
  count("open", true);
  update_gauge();
  return grant;
}

Result<SessionBroker::Session*> SessionBroker::validate(ByteView token,
                                                        std::int64_t now) {
  auto it = sessions_.find(Bytes(token.begin(), token.end()));
  if (it == sessions_.end()) {
    ++rejected_;
    return util::make_error(ErrorCode::kAuthenticationFailed,
                            "unknown or closed session token");
  }
  Session& session = it->second;
  if (now >= session.expires_at) {
    ++expired_;
    count("expire", true);
    sessions_.erase(it);
    update_gauge();
    ++rejected_;
    return util::make_error(ErrorCode::kAuthenticationFailed,
                            "session token expired");
  }
  if (session.trust_generation == gateway_.trust_store().generation() &&
      session.uudb_generation ==
          gateway_.uudb().generation(session.certificate.subject)) {
    ++fast_validations_;
    return &session;
  }
  // The world changed underneath the session (CRL/root update or UUDB
  // edit). Re-run the gateway's certificate authentication — the same
  // decision a fresh certificate presentation would get — and either
  // re-stamp the session with the current generations or drop it, so a
  // revoked or suspended user's token dies exactly like their cert.
  auto user = gateway_.authenticate_user(session.certificate, now);
  if (!user) {
    sessions_.erase(it);
    update_gauge();
    ++rejected_;
    return user.error();
  }
  session.user = user.value();  // pick up login/group edits
  session.trust_generation = gateway_.trust_store().generation();
  session.uudb_generation =
      gateway_.uudb().generation(session.certificate.subject);
  return &session;
}

Result<SessionGrant> SessionBroker::refresh(ByteView token, std::int64_t now) {
  auto session = validate(token, now);
  if (!session) {
    count("refresh", false);
    return session.error();
  }
  session.value()->expires_at = now + ttl_seconds_;
  ++session.value()->refreshes;
  expiry_heap_.emplace(session.value()->expires_at,
                       Bytes(token.begin(), token.end()));
  ++refreshed_;
  count("refresh", true);
  return SessionGrant{Bytes(token.begin(), token.end()),
                      session.value()->expires_at,
                      session.value()->user.login};
}

Status SessionBroker::close(ByteView token) {
  auto it = sessions_.find(Bytes(token.begin(), token.end()));
  if (it == sessions_.end()) {
    count("close", false);
    return util::make_error(ErrorCode::kNotFound, "unknown session token");
  }
  sessions_.erase(it);
  ++closed_;
  count("close", true);
  update_gauge();
  return util::Status();
}

Result<SessionIdentity> SessionBroker::authenticate(ByteView token,
                                                    std::int64_t now) {
  auto session = validate(token, now);
  if (!session) {
    count("authenticate", false);
    return session.error();
  }
  count("authenticate", true);
  return SessionIdentity{session.value()->user,
                         session.value()->certificate};
}

}  // namespace unicore::gateway
