// The site's user database for certificate -> login mapping.
//
// "With the X.509 user certificate being the uniform and unique UNICORE
//  user identification a mapping process has been implemented in the
//  form of a Java servlet which maps the user's distinguished name to
//  the corresponding user-id. Each UNICORE site administration therefore
//  maintains a user data base for the local mapping." (§5.2)
//
// "This mechanism eliminates the need to install uniform UNIX uid/gid
//  pairs for UNICORE users." (§4)
//
// The database is sharded by a hash of the subject DN. Each shard keeps
// its own generation counter, bumped only by edits to that shard, so a
// consumer that memoizes a lookup (the gateway auth cache, the session
// broker) can stamp the generation of the *subject's* shard and stay
// valid across edits to every other shard. The aggregate generation()
// remains for coarse consumers that want "anything changed".
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "crypto/x509.h"
#include "util/result.h"

namespace unicore::gateway {

/// One mapping entry: the local identity a certificate resolves to.
struct UserEntry {
  std::string login;                         // local user-id at the Vsites
  std::vector<std::string> account_groups;   // groups the user may charge
  bool suspended = false;                    // site admin kill switch

  bool in_group(const std::string& group) const {
    for (const auto& g : account_groups)
      if (g == group) return true;
    return false;
  }
};

/// Stable shard index for a DN rendering (FNV-1a — identical across
/// processes, so every gateway replica of a Usite agrees on the shard).
std::size_t dn_shard_of(const std::string& dn, std::size_t shard_count);

class UserDatabase {
 public:
  static constexpr std::size_t kDefaultShards = 16;

  UserDatabase() : UserDatabase(kDefaultShards) {}
  explicit UserDatabase(std::size_t shard_count)
      : shards_(shard_count == 0 ? 1 : shard_count) {}

  /// Adds or replaces the mapping for `dn`.
  void add_mapping(const crypto::DistinguishedName& dn, UserEntry entry);

  util::Status remove_mapping(const crypto::DistinguishedName& dn);

  /// Marks/unmarks a user as suspended without removing the mapping.
  util::Status set_suspended(const crypto::DistinguishedName& dn,
                             bool suspended);

  util::Result<UserEntry> lookup(const crypto::DistinguishedName& dn) const;

  std::size_t size() const;

  std::size_t shard_count() const { return shards_.size(); }
  std::size_t shard_of(const crypto::DistinguishedName& dn) const {
    return dn_shard_of(dn.to_string(), shards_.size());
  }

  /// Generation of one shard; bumped only by edits to that shard.
  std::uint64_t shard_generation(std::size_t shard) const {
    return shards_[shard % shards_.size()].generation;
  }

  /// Generation of the *subject's* shard — what per-DN memoizers stamp.
  std::uint64_t generation(const crypto::DistinguishedName& dn) const {
    return shards_[shard_of(dn)].generation;
  }

  /// Aggregate generation: changes on every mapping edit anywhere.
  /// Coarse consumers that only need "did anything change" use this.
  std::uint64_t generation() const;

 private:
  // Keyed by the RFC 2253 rendering of the DN — distinct DNs render
  // distinctly because attribute order is fixed.
  struct Shard {
    std::map<std::string, UserEntry> entries;
    std::uint64_t generation = 1;
  };

  Shard& shard_for(const std::string& key) {
    return shards_[dn_shard_of(key, shards_.size())];
  }
  const Shard& shard_for(const std::string& key) const {
    return shards_[dn_shard_of(key, shards_.size())];
  }

  std::vector<Shard> shards_;
};

}  // namespace unicore::gateway
