// The site's user database for certificate -> login mapping.
//
// "With the X.509 user certificate being the uniform and unique UNICORE
//  user identification a mapping process has been implemented in the
//  form of a Java servlet which maps the user's distinguished name to
//  the corresponding user-id. Each UNICORE site administration therefore
//  maintains a user data base for the local mapping." (§5.2)
//
// "This mechanism eliminates the need to install uniform UNIX uid/gid
//  pairs for UNICORE users." (§4)
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "crypto/x509.h"
#include "util/result.h"

namespace unicore::gateway {

/// One mapping entry: the local identity a certificate resolves to.
struct UserEntry {
  std::string login;                         // local user-id at the Vsites
  std::vector<std::string> account_groups;   // groups the user may charge
  bool suspended = false;                    // site admin kill switch

  bool in_group(const std::string& group) const {
    for (const auto& g : account_groups)
      if (g == group) return true;
    return false;
  }
};

class UserDatabase {
 public:
  /// Adds or replaces the mapping for `dn`.
  void add_mapping(const crypto::DistinguishedName& dn, UserEntry entry);

  util::Status remove_mapping(const crypto::DistinguishedName& dn);

  /// Marks/unmarks a user as suspended without removing the mapping.
  util::Status set_suspended(const crypto::DistinguishedName& dn,
                             bool suspended);

  util::Result<UserEntry> lookup(const crypto::DistinguishedName& dn) const;

  std::size_t size() const { return entries_.size(); }

  /// Bumped on every mapping edit (add/remove/suspend). The gateway's
  /// authentication cache stamps the generation its entries were filled
  /// under, so any UUDB edit invalidates every cached decision.
  std::uint64_t generation() const { return generation_; }

 private:
  // Keyed by the RFC 2253 rendering of the DN — distinct DNs render
  // distinctly because attribute order is fixed.
  std::map<std::string, UserEntry> entries_;
  std::uint64_t generation_ = 1;
};

}  // namespace unicore::gateway
