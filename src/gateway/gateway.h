// The gateway (Java security servlet of §4.2/§5.2): authenticates
// certificates against the site's trust store, maps them to local
// logins through the UUDB, runs optional site-specific authentication
// (smart cards / DCE), authorises account groups, and keeps an audit
// trail. Every consignment entering a Usite — from a user's JPA/JMC or
// from a peer NJS — passes through here.
//
// A Usite may front itself with N Gateway instances. The trust store,
// the UUDB, and the sharded authentication cache are shared state
// (every replica sees the same mappings, and a cache fill on one
// replica warms all of them); the audit trail and the endorsement memo
// stay per-instance.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "ajo/job.h"
#include "crypto/x509.h"
#include "gateway/auth_cache.h"
#include "gateway/uudb.h"
#include "obs/metrics.h"
#include "util/result.h"

namespace unicore::gateway {

/// Hook for "sites that require the use of smart cards or run DCE"
/// (§4.2): called after certificate validation with the AJO's opaque
/// site_security_info; a failing status rejects the consignment.
using SiteAuthHook = std::function<util::Status(
    const crypto::Certificate& cert, const std::string& site_security_info)>;

struct AuditRecord {
  std::int64_t at_epoch_seconds = 0;
  std::string subject;   // DN string
  std::string action;    // "authenticate", "consign", "server-auth"
  bool accepted = false;
  std::string detail;
};

class Gateway {
 public:
  /// Sole owner of its security state (the single-gateway Usite).
  Gateway(std::string usite, crypto::TrustStore trust, UserDatabase uudb)
      : Gateway(std::move(usite),
                std::make_shared<crypto::TrustStore>(std::move(trust)),
                std::make_shared<UserDatabase>(std::move(uudb)),
                std::make_shared<ShardedAuthCache>()) {}

  /// A replica sharing the Usite's trust store, UUDB, and auth cache.
  Gateway(std::string usite, std::shared_ptr<crypto::TrustStore> trust,
          std::shared_ptr<UserDatabase> uudb,
          std::shared_ptr<ShardedAuthCache> auth_cache)
      : usite_(std::move(usite)),
        trust_(std::move(trust)),
        uudb_(std::move(uudb)),
        auth_cache_(std::move(auth_cache)) {}

  const std::string& usite() const { return usite_; }
  crypto::TrustStore& trust_store() { return *trust_; }
  const crypto::TrustStore& trust_store() const { return *trust_; }
  UserDatabase& uudb() { return *uudb_; }

  // Shared handles, for wiring additional replicas.
  const std::shared_ptr<crypto::TrustStore>& shared_trust_store() const {
    return trust_;
  }
  const std::shared_ptr<UserDatabase>& shared_uudb() const { return uudb_; }
  const std::shared_ptr<ShardedAuthCache>& shared_auth_cache() const {
    return auth_cache_;
  }

  void set_site_auth_hook(SiteAuthHook hook) { site_hook_ = std::move(hook); }

  /// Validates a *user* certificate (client-auth usage, chain, CRL) and
  /// maps it to the local identity.
  util::Result<AuthenticatedUser> authenticate_user(
      const crypto::Certificate& cert, std::int64_t now_epoch_seconds);

  /// Validates a *server* certificate presented by a peer NJS/gateway in
  /// NJS–NJS communication.
  util::Status authenticate_server(const crypto::Certificate& cert,
                                   std::int64_t now_epoch_seconds);

  /// Full consignment check for a signed AJO: user authentication, AJO
  /// signature over the canonical encoding, account-group authorisation,
  /// structural validation of the job, and the site hook.
  util::Result<AuthenticatedUser> check_consignment(
      const ajo::SignedAjo& signed_ajo, std::int64_t now_epoch_seconds);

  /// Authorisation half of a consignment check for an identity that is
  /// already authenticated (token consigns, docs/PORTAL.md): the job
  /// must name the authenticated subject, its account group must be one
  /// of the user's, it must validate structurally, and the site hook
  /// must pass. No AJO signature is verified — the session token (or
  /// whatever produced `user`) already proves the submitting identity.
  util::Status authorize_job(const ajo::AbstractJobObject& job,
                             const AuthenticatedUser& user,
                             const crypto::Certificate& cert,
                             std::int64_t now_epoch_seconds);

  /// Consignment check for a job group forwarded NJS-to-NJS (§4.3): the
  /// consigning *server* endorses the job with its own signature over
  /// `signing_input`; the original user's certificate is still mapped
  /// through the UUDB so the job runs under the local login.
  util::Result<AuthenticatedUser> check_forwarded_consignment(
      const ajo::AbstractJobObject& job,
      const crypto::Certificate& user_certificate,
      const crypto::Certificate& consignor_certificate,
      const crypto::Signature& signature, util::ByteView signing_input,
      std::int64_t now_epoch_seconds);

  const std::vector<AuditRecord>& audit_log() const { return audit_; }

  /// Counts every audited decision into `registry` as
  /// unicore_gateway_auth_total{usite, action, result}, and attaches the
  /// shared auth cache's counters/gauges. nullptr detaches.
  void set_metrics(obs::MetricsRegistry* registry) {
    metrics_ = registry;
    auth_cache_->set_metrics(registry, usite_);
  }

  // --- authentication fast path ---------------------------------------
  // Delegates to the shared ShardedAuthCache (gateway/auth_cache.h):
  // positives memoized per subject DN, sharded by DN hash, stamped with
  // the trust generation and the generation of the subject's UUDB
  // shard. A CRL change flushes everything; a UUDB edit only
  // invalidates the shard it touched.

  /// Seconds a cached decision stays valid; 0 disables the cache.
  void set_auth_cache_ttl(std::int64_t seconds) {
    auth_cache_->set_ttl(seconds);
  }
  std::int64_t auth_cache_ttl() const { return auth_cache_->ttl(); }
  /// Drops every cached decision (e.g. after an out-of-band revocation).
  void invalidate_auth_cache() { auth_cache_->invalidate_all(); }
  std::uint64_t auth_cache_hits() const { return auth_cache_->hits(); }
  std::uint64_t auth_cache_misses() const { return auth_cache_->misses(); }

 private:
  /// Key of a memoized endorsement-signature verification: digest of
  /// the signing input, the signature, and the verifying key.
  using VerifyKey =
      std::tuple<std::string, std::uint64_t, std::uint64_t, std::uint64_t>;

  void audit(std::int64_t now, const std::string& subject,
             const std::string& action, bool accepted, std::string detail);
  bool verify_endorsement(const crypto::PublicKey& key,
                          util::ByteView signing_input,
                          const crypto::Signature& signature);

  std::string usite_;
  std::shared_ptr<crypto::TrustStore> trust_;
  std::shared_ptr<UserDatabase> uudb_;
  std::shared_ptr<ShardedAuthCache> auth_cache_;
  SiteAuthHook site_hook_;
  std::vector<AuditRecord> audit_;
  obs::MetricsRegistry* metrics_ = nullptr;
  std::map<VerifyKey, bool> verify_memo_;
};

}  // namespace unicore::gateway
