// The gateway (Java security servlet of §4.2/§5.2): authenticates
// certificates against the site's trust store, maps them to local
// logins through the UUDB, runs optional site-specific authentication
// (smart cards / DCE), authorises account groups, and keeps an audit
// trail. Every consignment entering a Usite — from a user's JPA/JMC or
// from a peer NJS — passes through here.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <tuple>
#include <vector>

#include "ajo/job.h"
#include "crypto/x509.h"
#include "gateway/uudb.h"
#include "obs/metrics.h"
#include "util/result.h"

namespace unicore::gateway {

/// Result of a successful authentication: who the certificate is locally.
struct AuthenticatedUser {
  crypto::DistinguishedName dn;
  std::string login;
  std::vector<std::string> account_groups;
};

/// Hook for "sites that require the use of smart cards or run DCE"
/// (§4.2): called after certificate validation with the AJO's opaque
/// site_security_info; a failing status rejects the consignment.
using SiteAuthHook = std::function<util::Status(
    const crypto::Certificate& cert, const std::string& site_security_info)>;

struct AuditRecord {
  std::int64_t at_epoch_seconds = 0;
  std::string subject;   // DN string
  std::string action;    // "authenticate", "consign", "server-auth"
  bool accepted = false;
  std::string detail;
};

class Gateway {
 public:
  Gateway(std::string usite, crypto::TrustStore trust, UserDatabase uudb)
      : usite_(std::move(usite)),
        trust_(std::move(trust)),
        uudb_(std::move(uudb)) {}

  const std::string& usite() const { return usite_; }
  crypto::TrustStore& trust_store() { return trust_; }
  const crypto::TrustStore& trust_store() const { return trust_; }
  UserDatabase& uudb() { return uudb_; }

  void set_site_auth_hook(SiteAuthHook hook) { site_hook_ = std::move(hook); }

  /// Validates a *user* certificate (client-auth usage, chain, CRL) and
  /// maps it to the local identity.
  util::Result<AuthenticatedUser> authenticate_user(
      const crypto::Certificate& cert, std::int64_t now_epoch_seconds);

  /// Validates a *server* certificate presented by a peer NJS/gateway in
  /// NJS–NJS communication.
  util::Status authenticate_server(const crypto::Certificate& cert,
                                   std::int64_t now_epoch_seconds);

  /// Full consignment check for a signed AJO: user authentication, AJO
  /// signature over the canonical encoding, account-group authorisation,
  /// structural validation of the job, and the site hook.
  util::Result<AuthenticatedUser> check_consignment(
      const ajo::SignedAjo& signed_ajo, std::int64_t now_epoch_seconds);

  /// Authorisation half of a consignment check for an identity that is
  /// already authenticated (token consigns, docs/PORTAL.md): the job
  /// must name the authenticated subject, its account group must be one
  /// of the user's, it must validate structurally, and the site hook
  /// must pass. No AJO signature is verified — the session token (or
  /// whatever produced `user`) already proves the submitting identity.
  util::Status authorize_job(const ajo::AbstractJobObject& job,
                             const AuthenticatedUser& user,
                             const crypto::Certificate& cert,
                             std::int64_t now_epoch_seconds);

  /// Consignment check for a job group forwarded NJS-to-NJS (§4.3): the
  /// consigning *server* endorses the job with its own signature over
  /// `signing_input`; the original user's certificate is still mapped
  /// through the UUDB so the job runs under the local login.
  util::Result<AuthenticatedUser> check_forwarded_consignment(
      const ajo::AbstractJobObject& job,
      const crypto::Certificate& user_certificate,
      const crypto::Certificate& consignor_certificate,
      const crypto::Signature& signature, util::ByteView signing_input,
      std::int64_t now_epoch_seconds);

  const std::vector<AuditRecord>& audit_log() const { return audit_; }

  /// Counts every audited decision into `registry` as
  /// unicore_gateway_auth_total{usite, action, result}. nullptr detaches.
  void set_metrics(obs::MetricsRegistry* registry) { metrics_ = registry; }

  // --- authentication fast path ---------------------------------------
  // Successful authenticate_user results are memoized per subject DN.
  // A hit requires (a) the presented certificate to equal the cached
  // one byte for byte — so a different certificate with the same DN can
  // never borrow a cached decision — and (b) the trust-store and UUDB
  // generations recorded at caching time to still be current, so any
  // root/CRL change or UUDB edit invalidates every entry at once.
  // Only positives are cached; rejections always re-run the full path.
  // Cache hits are not written to the audit trail (they repeat the
  // recorded decision) but are counted in
  // unicore_gateway_auth_cache_total{usite, result}.

  /// Seconds a cached decision stays valid; 0 disables the cache.
  void set_auth_cache_ttl(std::int64_t seconds) {
    auth_cache_ttl_ = seconds;
    if (seconds == 0) auth_cache_.clear();
  }
  std::int64_t auth_cache_ttl() const { return auth_cache_ttl_; }
  /// Drops every cached decision (e.g. after an out-of-band revocation).
  void invalidate_auth_cache() { auth_cache_.clear(); }
  std::uint64_t auth_cache_hits() const { return auth_cache_hits_; }
  std::uint64_t auth_cache_misses() const { return auth_cache_misses_; }

 private:
  struct CachedAuth {
    crypto::Certificate certificate;  // must match the presented one
    AuthenticatedUser user;
    std::int64_t cached_at = 0;
    std::uint64_t trust_generation = 0;
    std::uint64_t uudb_generation = 0;
  };
  /// Key of a memoized endorsement-signature verification: digest of
  /// the signing input, the signature, and the verifying key.
  using VerifyKey =
      std::tuple<std::string, std::uint64_t, std::uint64_t, std::uint64_t>;

  void audit(std::int64_t now, const std::string& subject,
             const std::string& action, bool accepted, std::string detail);
  const AuthenticatedUser* auth_cache_lookup(const crypto::Certificate& cert,
                                             std::int64_t now);
  bool verify_endorsement(const crypto::PublicKey& key,
                          util::ByteView signing_input,
                          const crypto::Signature& signature);

  std::string usite_;
  crypto::TrustStore trust_;
  UserDatabase uudb_;
  SiteAuthHook site_hook_;
  std::vector<AuditRecord> audit_;
  obs::MetricsRegistry* metrics_ = nullptr;
  std::map<std::string, CachedAuth> auth_cache_;
  std::int64_t auth_cache_ttl_ = 300;
  std::uint64_t auth_cache_hits_ = 0;
  std::uint64_t auth_cache_misses_ = 0;
  std::map<VerifyKey, bool> verify_memo_;
};

}  // namespace unicore::gateway
