#include "gateway/auth_cache.h"

#include "gateway/uudb.h"

namespace unicore::gateway {

ShardedAuthCache::ShardedAuthCache(std::size_t shard_count) {
  if (shard_count == 0) shard_count = 1;
  shards_.reserve(shard_count);
  for (std::size_t i = 0; i < shard_count; ++i)
    shards_.push_back(std::make_unique<Shard>());
}

void ShardedAuthCache::set_ttl(std::int64_t seconds) {
  ttl_ = seconds;
  if (seconds == 0) invalidate_all();
}

void ShardedAuthCache::set_metrics(obs::MetricsRegistry* registry,
                                   std::string usite) {
  metrics_ = registry;
  usite_ = std::move(usite);
}

ShardedAuthCache::Shard& ShardedAuthCache::shard_for(
    const std::string& subject) {
  return *shards_[dn_shard_of(subject, shards_.size())];
}

void ShardedAuthCache::count(const char* result) {
  if (metrics_)
    metrics_
        ->counter("unicore_gateway_auth_cache_total",
                  {{"usite", usite_}, {"result", result}})
        .increment();
}

void ShardedAuthCache::publish_shard_gauges(std::size_t index,
                                            const Shard& shard) {
  if (!metrics_) return;
  obs::Labels labels{{"usite", usite_}, {"shard", std::to_string(index)}};
  metrics_->gauge("unicore_gateway_auth_shard_hits", labels)
      .set(static_cast<std::int64_t>(shard.hits));
  metrics_->gauge("unicore_gateway_auth_shard_misses", labels)
      .set(static_cast<std::int64_t>(shard.misses));
  metrics_->gauge("unicore_gateway_auth_shard_entries", labels)
      .set(static_cast<std::int64_t>(shard.entries.size()));
}

std::optional<AuthenticatedUser> ShardedAuthCache::lookup(
    const crypto::Certificate& cert, std::int64_t now,
    std::uint64_t trust_generation, std::uint64_t uudb_generation) {
  if (ttl_ == 0) return std::nullopt;
  const std::string subject = cert.subject.to_string();
  const std::size_t index = dn_shard_of(subject, shards_.size());
  Shard& shard = *shards_[index];
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.entries.find(subject);
  if (it != shard.entries.end()) {
    const Entry& cached = it->second;
    if (cached.certificate == cert &&
        cached.trust_generation == trust_generation &&
        cached.uudb_generation == uudb_generation &&
        now < cached.cached_at + ttl_ && cached.certificate.valid_at(now)) {
      ++shard.hits;
      count("hit");
      publish_shard_gauges(index, shard);
      return cached.user;
    }
    shard.entries.erase(it);  // stale — fall through to the full path
  }
  ++shard.misses;
  count("miss");
  publish_shard_gauges(index, shard);
  return std::nullopt;
}

void ShardedAuthCache::store(const crypto::Certificate& cert,
                             const AuthenticatedUser& user, std::int64_t now,
                             std::uint64_t trust_generation,
                             std::uint64_t uudb_generation) {
  if (ttl_ == 0) return;
  const std::string subject = cert.subject.to_string();
  const std::size_t index = dn_shard_of(subject, shards_.size());
  Shard& shard = *shards_[index];
  std::lock_guard<std::mutex> lock(shard.mutex);
  shard.entries[subject] = {cert, user, now, trust_generation,
                            uudb_generation};
  publish_shard_gauges(index, shard);
}

void ShardedAuthCache::invalidate_all() {
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    Shard& shard = *shards_[i];
    std::lock_guard<std::mutex> lock(shard.mutex);
    shard.entries.clear();
    publish_shard_gauges(i, shard);
  }
}

std::uint64_t ShardedAuthCache::hits() const {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    total += shard->hits;
  }
  return total;
}

std::uint64_t ShardedAuthCache::misses() const {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    total += shard->misses;
  }
  return total;
}

std::size_t ShardedAuthCache::size() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    total += shard->entries.size();
  }
  return total;
}

std::uint64_t ShardedAuthCache::shard_hits(std::size_t shard) const {
  const Shard& s = *shards_[shard % shards_.size()];
  std::lock_guard<std::mutex> lock(s.mutex);
  return s.hits;
}

std::uint64_t ShardedAuthCache::shard_misses(std::size_t shard) const {
  const Shard& s = *shards_[shard % shards_.size()];
  std::lock_guard<std::mutex> lock(s.mutex);
  return s.misses;
}

std::size_t ShardedAuthCache::shard_size(std::size_t shard) const {
  const Shard& s = *shards_[shard % shards_.size()];
  std::lock_guard<std::mutex> lock(s.mutex);
  return s.entries.size();
}

}  // namespace unicore::gateway
