#include "server/xfer_transport.h"

#include <stdexcept>
#include <utility>

namespace unicore::server {

using util::ByteReader;
using util::Bytes;
using util::Error;
using util::ErrorCode;
using util::Result;

RequestKind xfer_request_kind(xfer::Op op) {
  switch (op) {
    case xfer::Op::kOpen: return RequestKind::kXferOpen;
    case xfer::Op::kChunk: return RequestKind::kXferChunk;
    case xfer::Op::kClose: return RequestKind::kXferClose;
    case xfer::Op::kBundleOpen: return RequestKind::kXferBundleOpen;
    case xfer::Op::kBundleClose: return RequestKind::kXferBundleClose;
  }
  return RequestKind::kXferOpen;
}

std::shared_ptr<XferRails> XferRails::create(sim::Engine& engine,
                                             net::Network& network,
                                             util::Rng& rng, Config config) {
  auto rails = std::shared_ptr<XferRails>(
      new XferRails(engine, network, rng, std::move(config)));
  std::weak_ptr<XferRails> weak = rails;
  rails->pool_->set_receiver([weak](std::size_t index, Bytes&& wire) {
    if (auto self = weak.lock())
      self->handle_rail_message(index, std::move(wire));
  });
  rails->pool_->set_slot_failure([weak](std::size_t index,
                                        const Error& error) {
    if (auto self = weak.lock()) self->fail_rail(index, error);
  });
  return rails;
}

XferRails::XferRails(sim::Engine& engine, net::Network& network,
                     util::Rng& rng, Config config)
    : engine_(engine), config_(std::move(config)) {
  if (config_.streams == 0) config_.streams = 1;
  rails_.resize(config_.streams);

  net::ChannelPool::Config pool_config;
  pool_config.local_host = config_.local_host;
  pool_config.remote = config_.remote;
  pool_config.size = config_.streams;
  pool_config.channel.credential = config_.credential;
  pool_config.channel.trust = config_.trust;
  pool_config.channel.required_peer_usage = config_.required_peer_usage;
  pool_config.channel.features = config_.features;
  pool_config.channel.session_cache = config_.session_cache;
  pool_config.channel.record_pool = config_.record_pool;
  pool_config.required_features = net::kFeatureChunkedXfer;
  pool_ = net::ChannelPool::create(engine, network, rng,
                                   std::move(pool_config));
}

XferRails::~XferRails() = default;

void XferRails::shutdown() {
  pool_->shutdown();  // fires no failure callbacks; fail pendings below
  for (std::size_t i = 0; i < rails_.size(); ++i)
    fail_rail(i, util::make_error(ErrorCode::kUnavailable,
                                  "transfer rails shut down"));
}

void XferRails::call(std::size_t stream, xfer::Op op, Bytes body,
                     std::function<void(Result<Bytes>)> done) {
  if (stream >= rails_.size()) stream = stream % rails_.size();

  std::uint64_t request_id = next_request_id_++;
  Bytes wire = make_request(xfer_request_kind(op), request_id, body);

  Pending pending;
  pending.handler = std::move(done);
  std::weak_ptr<XferRails> weak = weak_from_this();
  pending.timeout =
      engine_.after(config_.request_timeout, [weak, stream, request_id] {
        auto self = weak.lock();
        if (!self) return;
        Rail& rail = self->rails_[stream];
        auto it = rail.pending.find(request_id);
        if (it == rail.pending.end()) return;
        auto handler = std::move(it->second.handler);
        rail.pending.erase(it);
        handler(util::make_error(ErrorCode::kTimeout,
                                 "transfer request timed out"));
      });
  rails_[stream].pending.emplace(request_id, std::move(pending));
  // Connect failure is synchronous: the pool's slot-failure callback
  // (fail_rail) has already failed the pending entry in that case.
  pool_->send_on(stream, std::move(wire));
}

void XferRails::fail_rail(std::size_t index, const Error& error) {
  Rail& rail = rails_[index];
  auto pending = std::move(rail.pending);
  rail.pending.clear();
  for (auto& [id, entry] : pending) {
    if (entry.timeout) engine_.cancel(*entry.timeout);
    entry.handler(error);
  }
}

void XferRails::handle_rail_message(std::size_t index, Bytes&& wire) {
  ByteReader r(wire);
  Result<Bytes> outcome =
      util::make_error(ErrorCode::kInternal, "malformed transfer reply");
  std::uint64_t request_id = 0;
  try {
    auto type = static_cast<MessageType>(r.u8());
    if (type != MessageType::kReply) return;  // rails only carry replies
    request_id = r.u64();
    bool ok = r.u8() != 0;
    if (ok) {
      outcome = r.raw(r.remaining());
    } else {
      outcome = decode_error(r);
    }
  } catch (const std::out_of_range&) {
    return;
  }
  Rail& rail = rails_[index];
  auto it = rail.pending.find(request_id);
  if (it == rail.pending.end()) return;  // already timed out
  if (it->second.timeout) engine_.cancel(*it->second.timeout);
  auto handler = std::move(it->second.handler);
  rail.pending.erase(it);
  handler(std::move(outcome));
}

}  // namespace unicore::server
