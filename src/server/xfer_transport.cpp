#include "server/xfer_transport.h"

#include <stdexcept>
#include <utility>

namespace unicore::server {

using util::ByteReader;
using util::Bytes;
using util::Error;
using util::ErrorCode;
using util::Result;

RequestKind xfer_request_kind(xfer::Op op) {
  switch (op) {
    case xfer::Op::kOpen: return RequestKind::kXferOpen;
    case xfer::Op::kChunk: return RequestKind::kXferChunk;
    case xfer::Op::kClose: return RequestKind::kXferClose;
  }
  return RequestKind::kXferOpen;
}

std::shared_ptr<XferRails> XferRails::create(sim::Engine& engine,
                                             net::Network& network,
                                             util::Rng& rng, Config config) {
  return std::shared_ptr<XferRails>(
      new XferRails(engine, network, rng, std::move(config)));
}

XferRails::XferRails(sim::Engine& engine, net::Network& network,
                     util::Rng& rng, Config config)
    : engine_(engine),
      network_(network),
      rng_(rng),
      config_(std::move(config)) {
  if (config_.streams == 0) config_.streams = 1;
  rails_.resize(config_.streams);
}

XferRails::~XferRails() {
  for (auto& rail : rails_) {
    if (rail.channel) rail.channel->close();
  }
}

void XferRails::shutdown() {
  for (std::size_t i = 0; i < rails_.size(); ++i)
    fail_rail(i, util::make_error(ErrorCode::kUnavailable,
                                  "transfer rails shut down"));
}

void XferRails::call(std::size_t stream, xfer::Op op, Bytes body,
                     std::function<void(Result<Bytes>)> done) {
  if (stream >= rails_.size()) stream = stream % rails_.size();

  std::uint64_t request_id = next_request_id_++;
  Bytes wire = make_request(xfer_request_kind(op), request_id, body);

  Pending pending;
  pending.handler = std::move(done);
  std::weak_ptr<XferRails> weak = weak_from_this();
  pending.timeout =
      engine_.after(config_.request_timeout, [weak, stream, request_id] {
        auto self = weak.lock();
        if (!self) return;
        Rail& rail = self->rails_[stream];
        auto it = rail.pending.find(request_id);
        if (it == rail.pending.end()) return;
        auto handler = std::move(it->second.handler);
        rail.pending.erase(it);
        handler(util::make_error(ErrorCode::kTimeout,
                                 "transfer request timed out"));
      });
  rails_[stream].pending.emplace(request_id, std::move(pending));

  ensure_rail(stream);
  Rail& rail = rails_[stream];
  if (!rail.channel) return;  // connect failed; pending already failed
  if (rail.established) {
    rail.channel->send(std::move(wire));
  } else {
    rail.backlog.push_back(std::move(wire));
  }
}

void XferRails::ensure_rail(std::size_t index) {
  Rail& rail = rails_[index];
  if (rail.channel && !rail.channel->failed()) return;
  if (rail.channel) {
    rail.channel = nullptr;
    rail.established = false;
  }

  auto endpoint = network_.connect(config_.local_host, config_.remote);
  if (!endpoint) {
    fail_rail(index, endpoint.error());
    return;
  }

  net::SecureChannel::Config channel_config;
  channel_config.credential = config_.credential;
  channel_config.trust = config_.trust;
  channel_config.required_peer_usage = config_.required_peer_usage;

  std::weak_ptr<XferRails> weak = weak_from_this();
  rail.established = false;
  rail.channel = net::SecureChannel::as_client(
      engine_, rng_, endpoint.value(), channel_config,
      [weak, index](util::Status status) {
        auto self = weak.lock();
        if (!self) return;
        if (!status.ok()) {
          self->fail_rail(index, status.error());
          return;
        }
        Rail& rail = self->rails_[index];
        if (!rail.channel) return;
        if (!rail.channel->feature_enabled(net::kFeatureChunkedXfer)) {
          self->fail_rail(index,
                          util::make_error(
                              ErrorCode::kFailedPrecondition,
                              "peer does not speak chunked transfer"));
          return;
        }
        rail.established = true;
        while (!rail.backlog.empty()) {
          rail.channel->send(std::move(rail.backlog.front()));
          rail.backlog.pop_front();
        }
      });
  rail.channel->set_receiver([weak, index](Bytes&& wire) {
    if (auto self = weak.lock())
      self->handle_rail_message(index, std::move(wire));
  });
  rail.channel->set_close_handler([weak, index] {
    if (auto self = weak.lock())
      self->fail_rail(index, util::make_error(ErrorCode::kUnavailable,
                                              "transfer rail closed"));
  });
  ++reconnects_;
}

void XferRails::fail_rail(std::size_t index, const Error& error) {
  Rail& rail = rails_[index];
  auto channel = std::move(rail.channel);
  rail.channel = nullptr;
  rail.established = false;
  rail.backlog.clear();
  auto pending = std::move(rail.pending);
  rail.pending.clear();
  if (channel) channel->close();
  for (auto& [id, entry] : pending) {
    if (entry.timeout) engine_.cancel(*entry.timeout);
    entry.handler(error);
  }
}

void XferRails::handle_rail_message(std::size_t index, Bytes&& wire) {
  ByteReader r(wire);
  Result<Bytes> outcome =
      util::make_error(ErrorCode::kInternal, "malformed transfer reply");
  std::uint64_t request_id = 0;
  try {
    auto type = static_cast<MessageType>(r.u8());
    if (type != MessageType::kReply) return;  // rails only carry replies
    request_id = r.u64();
    bool ok = r.u8() != 0;
    if (ok) {
      outcome = r.raw(r.remaining());
    } else {
      outcome = decode_error(r);
    }
  } catch (const std::out_of_range&) {
    return;
  }
  Rail& rail = rails_[index];
  auto it = rail.pending.find(request_id);
  if (it == rail.pending.end()) return;  // already timed out
  if (it->second.timeout) engine_.cancel(*it->second.timeout);
  auto handler = std::move(it->second.handler);
  rail.pending.erase(it);
  handler(std::move(outcome));
}

}  // namespace unicore::server
