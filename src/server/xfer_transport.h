// XferRails — the server-layer binding of xfer::ChunkTransport: N
// parallel mutually-authenticated secure channels ("rails") to one peer
// gateway, each carrying kXferOpen/kXferChunk/kXferClose envelopes.
//
// The simulated network serialises bandwidth per connection direction,
// exactly like a real TCP stream under one congestion window — so N
// rails approach N times the single-connection transfer rate. This is
// the mechanism behind the chunked engine's speedup over the legacy
// whole-blob kDeliverFile path (one message on one connection).
//
// The rails draw from a net::ChannelPool: slots connect lazily on
// first use, reconnect after failure, and — when a SessionCache is
// wired — resume from the peer's session ticket instead of repeating
// the full public-key handshake on every rail. Every in-flight request
// carries its own timeout.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "net/channel_pool.h"
#include "net/network.h"
#include "net/secure_channel.h"
#include "server/protocol.h"
#include "util/result.h"
#include "xfer/transfer.h"

namespace unicore::server {

class XferRails : public xfer::ChunkTransport,
                  public std::enable_shared_from_this<XferRails> {
 public:
  struct Config {
    std::string local_host;  // host the rails connect from
    net::Address remote;     // peer gateway (or own gateway for clients)
    std::size_t streams = 4;
    crypto::Credential credential;   // server or user credential
    const crypto::TrustStore* trust = nullptr;
    std::uint8_t required_peer_usage = crypto::kUsageServerAuth;
    sim::Time request_timeout = sim::sec(60);
    /// Session-resumption cache shared with the owner's other channels
    /// toward the same peer; nullptr disables resumption on the rails.
    net::SessionCache* session_cache = nullptr;
    /// Feature bits to advertise; rails always require chunked transfer
    /// on top of these.
    std::uint64_t features = net::kDefaultFeatures;
    /// Worker pool for each rail channel's batched record crypto.
    util::ThreadPool* record_pool = nullptr;
  };

  static std::shared_ptr<XferRails> create(sim::Engine& engine,
                                           net::Network& network,
                                           util::Rng& rng, Config config);

  ~XferRails() override;

  // xfer::ChunkTransport
  std::size_t streams() const override { return rails_.size(); }
  void call(std::size_t stream, xfer::Op op, util::Bytes body,
            std::function<void(util::Result<util::Bytes>)> done) override;

  /// Closes every rail; pending requests fail kUnavailable.
  void shutdown();

  /// Handshakes started over the rails' lifetime (> streams() after a
  /// reconnect).
  std::uint64_t reconnects() const { return pool_->connects(); }
  /// How many of those handshakes were session resumptions.
  std::uint64_t resumptions() const { return pool_->resumptions(); }

 private:
  struct Pending {
    std::function<void(util::Result<util::Bytes>)> handler;
    std::optional<sim::EventId> timeout;
  };
  struct Rail {
    std::map<std::uint64_t, Pending> pending;
  };

  XferRails(sim::Engine& engine, net::Network& network, util::Rng& rng,
            Config config);

  void fail_rail(std::size_t index, const util::Error& error);
  void handle_rail_message(std::size_t index, util::Bytes&& wire);

  sim::Engine& engine_;
  Config config_;
  std::shared_ptr<net::ChannelPool> pool_;
  std::vector<Rail> rails_;
  std::uint64_t next_request_id_ = 1;
};

/// RequestKind carrying each transfer operation.
RequestKind xfer_request_kind(xfer::Op op);

}  // namespace unicore::server
