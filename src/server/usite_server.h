// The UNICORE server of one Usite (§4.2): the https-like front end that
// serves resource pages and signed software bundles, the gateway
// (security servlet), and the NJS — deployable combined on one host or
// split across a firewall:
//
// "For sites using firewalls the UNICORE server can be separated into
//  the Web server and the NJS part with the firewall in between. ...
//  The communication between the two components is done via IP socket
//  connection to a site selectable port." (§4.2/§5.2)
//
// The server also implements njs::PeerLink: sub-AJOs, files, and control
// commands travel to peer Usites over mutually authenticated secure
// channels to the *peer's* gateway (§4.3, §5.6).
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "crypto/bundle.h"
#include "gateway/gateway.h"
#include "gateway/session_broker.h"
#include "net/channel_pool.h"
#include "net/network.h"
#include "net/secure_channel.h"
#include "net/session.h"
#include "njs/cluster.h"
#include "njs/njs.h"
#include "njs/peer_link.h"
#include "obs/metrics.h"
#include "server/protocol.h"
#include "server/xfer_transport.h"
#include "store/chunk_store.h"
#include "util/chash.h"
#include "util/result.h"
#include "util/retry.h"
#include "xfer/service.h"
#include "xfer/transfer.h"

namespace unicore::server {

struct UsiteConfig {
  std::string name;           // e.g. "FZ-Juelich"
  std::string gateway_host;   // public host (on the firewall if split)
  std::uint16_t port = 4433;  // the https-like port
  /// Empty or equal to gateway_host => combined deployment; otherwise
  /// the NJS runs on this host behind the firewall.
  std::string njs_host;
  std::uint16_t njs_port = 7700;  // the "site selectable port"

  // Horizontal scale-out (docs/SCALING.md). Gateway replica g listens
  // on port+g; all replicas share the trust store, UUDB, auth cache,
  // session broker, and ticket mint, so any client token or resumption
  // ticket validates on any replica. NJS replica i owns partition i of
  // the token space; consignments hash across the alive replicas and a
  // replica failure hands its journal to a surviving peer.
  std::size_t gateway_replicas = 1;
  std::size_t njs_replicas = 1;

  bool split() const {
    return !njs_host.empty() && njs_host != gateway_host;
  }
  std::string njs_side_host() const {
    return split() ? njs_host : gateway_host;
  }
};

class UsiteServer : public njs::PeerLink {
 public:
  UsiteServer(sim::Engine& engine, net::Network& network, util::Rng& rng,
              UsiteConfig config, crypto::Credential server_credential,
              crypto::TrustStore trust, gateway::UserDatabase uudb);
  ~UsiteServer() override;

  UsiteServer(const UsiteServer&) = delete;
  UsiteServer& operator=(const UsiteServer&) = delete;

  /// Binds the public listener (and the internal gateway–NJS pipe when
  /// split). Must be called once before any traffic.
  util::Status start();

  const UsiteConfig& config() const { return config_; }
  net::Address address() const { return {config_.gateway_host, config_.port}; }
  gateway::Gateway& gateway() { return gateway_; }
  njs::Njs& njs() { return njs_cluster_.primary(); }
  /// The portal-session mint/validator (docs/PORTAL.md).
  gateway::SessionBroker& session_broker() { return session_broker_; }

  // --- scale-out (docs/SCALING.md) ------------------------------------

  /// The NJS replica set behind this Usite (primary() == njs()).
  njs::NjsCluster& njs_cluster() { return njs_cluster_; }
  /// Gateway replica `index` (0 == gateway()); all replicas share auth
  /// state, so they differ only in listener address and audit trail.
  gateway::Gateway& gateway_replica(std::size_t index) {
    return index == 0 ? gateway_ : *gateway_replicas_[index - 1];
  }
  std::size_t gateway_replica_count() const {
    return 1 + gateway_replicas_.size();
  }
  /// Every public listener address, replica order (port, port+1, …).
  std::vector<net::Address> gateway_addresses() const;
  /// The listener a client with `dn` should contact: consistent-hash
  /// routing over the replica addresses.
  net::Address route_address(const crypto::DistinguishedName& dn) const;
  /// Failover order for `dn`: the ring owner first, then every other
  /// alive replica clockwise. A client whose connect (or session) dies
  /// tries the next entry — stopped replicas never appear.
  std::vector<net::Address> route_addresses(
      const crypto::DistinguishedName& dn) const;
  /// Kills gateway replica `index` (fault injection / drain): closes
  /// its listener and every session it accepted, and removes it from
  /// the routing ring so route_address re-routes around it.
  void stop_gateway_replica(std::size_t index);

  /// Modeled per-request processing cost of one gateway replica. Each
  /// replica is a serial server: its requests queue behind each other
  /// (M/D/1 per replica), so adding replicas adds real capacity. 0 (the
  /// default) models infinitely fast gateways — exactly the pre-scale-
  /// out behaviour.
  void set_gateway_service_time(sim::Time cost) {
    gateway_service_time_ = cost;
  }
  /// Modeled per-consignment admission cost of one NJS replica,
  /// serialized per replica like the gateway service time. 0 default.
  void set_njs_admission_cost(sim::Time cost) { njs_admission_cost_ = cost; }

  /// Installs default-deny firewall rules for a split deployment: only
  /// the gateway host may reach the NJS port.
  void apply_firewall_rules();

  /// Registers the gateway address of a peer Usite for NJS–NJS traffic.
  void add_peer(const std::string& usite, net::Address gateway_address);

  /// Publishes a signed client software bundle (the "applet", §5.2).
  void publish_bundle(crypto::SoftwareBundle bundle);

  // --- njs::PeerLink --------------------------------------------------
  void consign(const std::string& usite,
               const njs::ForwardedConsignment& consignment,
               std::function<void(util::Result<njs::RemoteJobHandle>)>
                   on_accepted,
               std::function<void(ajo::Outcome)> on_final) override;
  void deliver_file(const njs::RemoteJobHandle& target,
                    const std::string& uspace_name,
                    std::shared_ptr<const uspace::FileBlob> blob,
                    std::function<void(util::Status)> done) override;
  void fetch_file(const njs::RemoteJobHandle& source,
                  const std::string& uspace_name,
                  std::function<void(util::Result<uspace::FileBlob>)> done)
      override;
  /// Batch staging: one bundle manifest round trip for the whole set
  /// when the peer negotiated kFeatureBundleXfer; otherwise the
  /// PeerLink default (one transfer per file) takes over. A mid-flight
  /// kFailedPrecondition (peer restarted into a bundleless build) also
  /// falls back per file.
  void deliver_files(
      const njs::RemoteJobHandle& target,
      std::vector<std::pair<std::string,
                            std::shared_ptr<const uspace::FileBlob>>>
          files,
      std::function<void(util::Status)> done) override;
  void fetch_files(const njs::RemoteJobHandle& source,
                   std::vector<std::string> names,
                   std::function<
                       void(util::Result<std::vector<uspace::FileBlob>>)>
                       done) override;
  void control(const njs::RemoteJobHandle& target,
               ajo::ControlService::Command command,
               std::function<void(util::Status)> done) override;

  // Diagnostics.
  std::uint64_t requests_served() const { return requests_served_; }
  /// Peer requests re-sent after a retryable failure (timeouts, link
  /// loss) — each retry is covered by the consignment idempotency key.
  std::uint64_t peer_retries() const { return peer_retries_; }

  /// Retry/backoff parameters for NJS–NJS peer requests.
  void set_peer_backoff(util::BackoffPolicy policy) {
    peer_backoff_ = policy;
  }
  /// Per-request deadline after which a peer request fails kTimeout.
  void set_peer_request_timeout(sim::Time timeout) {
    peer_request_timeout_ = timeout;
  }

  /// Warm secure channels kept per peer Usite for NJS–NJS requests
  /// (defaults to 2). Must be set before the first peer request.
  void set_peer_pool_size(std::size_t size) {
    peer_pool_size_ = size == 0 ? 1 : size;
  }

  /// The listener's session-ticket mint — tests invalidate it to prove
  /// that resumed handshakes are refused after a revocation event.
  net::SessionTicketManager& ticket_manager() { return ticket_manager_; }
  /// This server's outbound session cache (peer pools and transfer
  /// rails share it, so one full handshake per peer warms everything).
  net::SessionCache& peer_sessions() { return peer_sessions_; }

  /// Shares a deployment-wide registry (set by the grid layer so one
  /// MonitorService snapshot covers gateway, NJS, batch, and network).
  /// By default the server uses the registry its NJS created.
  void set_metrics(std::shared_ptr<obs::MetricsRegistry> registry);
  const std::shared_ptr<obs::MetricsRegistry>& metrics() const {
    return metrics_;
  }

  // --- chunked transfer engine (src/xfer/) ----------------------------

  /// Sender-side tuning (chunk size proposal, window, retry ladder).
  void set_transfer_options(const xfer::TransferOptions& options) {
    transfer_options_ = options;
  }
  const xfer::TransferOptions& transfer_options() const {
    return transfer_options_;
  }
  /// Files of at least this many bytes move through the chunked engine
  /// when the peer negotiated kFeatureChunkedXfer; smaller files — and
  /// every file toward a v1 peer — use the legacy whole-blob requests.
  /// UINT64_MAX disables the engine outright (pulls included), which is
  /// how benches measure the legacy baseline.
  void set_transfer_threshold(std::uint64_t bytes) {
    transfer_threshold_ = bytes;
  }
  std::uint64_t transfer_threshold() const { return transfer_threshold_; }
  /// Parallel secure channels per peer transfer ("rails").
  void set_transfer_streams(std::size_t streams) {
    transfer_streams_ = streams == 0 ? 1 : streams;
  }

  /// Worker pool handed to every secure channel this server creates
  /// (inbound sessions, peer pools, transfer rails): the seal/open
  /// kernels of multi-record batch frames fan out over it, so request
  /// handling never serializes behind one channel's crypto. nullptr
  /// (the default) keeps all record crypto on the simulation thread.
  void set_record_pool(util::ThreadPool* pool) { record_pool_ = pool; }
  util::ThreadPool* record_pool() const { return record_pool_; }

  /// Feature bits this server advertises in the secure-channel
  /// handshake (both its listener and its outbound peer channels).
  /// Clearing net::kFeatureChunkedXfer emulates a v1 deployment: every
  /// transfer toward or from this site falls back to whole-blob
  /// requests. Must be set before channels are established.
  void set_advertised_features(std::uint64_t features) {
    advertised_features_ = features;
  }
  std::uint64_t advertised_features() const { return advertised_features_; }

  xfer::Service& xfer_service() { return *xfer_services_[0]; }
  /// NJS replica `index`'s transfer receiver (0 == xfer_service()).
  xfer::Service& xfer_service_replica(std::size_t index) {
    return *xfer_services_[index];
  }
  xfer::TransferManager& transfer_manager() { return xfer_manager_; }
  /// The site's content-addressed chunk store (shared by the NJS and
  /// the transfer receiver). Configure spill/budget through it.
  const std::shared_ptr<store::ChunkStore>& chunk_store() {
    return chunk_store_;
  }
  /// Which path outbound transfers took: chunked engine, or the legacy
  /// whole-blob fallback (v1 peer / sub-threshold size).
  const TransferStats& transfer_stats() const { return transfer_stats_; }

 private:
  struct ClientSession;
  struct PeerConnection;
  struct PendingPipeRequest;

  void accept_session(std::shared_ptr<net::Endpoint> endpoint,
                      std::size_t gateway_index);
  /// Entry point for inbound session messages: applies the gateway
  /// replica's modeled service-time queue, then processes.
  void handle_session_message(const std::shared_ptr<ClientSession>& session,
                              util::Bytes&& wire);
  void process_session_message(const std::shared_ptr<ClientSession>& session,
                               util::Bytes&& wire);
  /// `token` carries the session-token blob of a kTokenRequest envelope
  /// (portal facade); empty for plain kRequest messages.
  void handle_request(const std::shared_ptr<ClientSession>& session,
                      RequestKind kind, std::uint64_t request_id,
                      util::ByteReader& payload,
                      const std::optional<util::Bytes>& token);

  /// Runs the NJS part of a request. In a split deployment the packed
  /// request crosses the internal pipe; combined, it executes directly.
  void execute_at_njs(std::uint64_t session_id, util::Bytes packed,
                      std::function<void(util::Bytes)> reply);
  /// The NJS-side executor (runs on the NJS host). When a consignment
  /// is admitted under a modeled admission cost, `*ready_at` is set to
  /// when the owning replica's admission queue drains — the caller
  /// holds the reply until then.
  util::Bytes njs_execute(std::uint64_t session_id, util::ByteReader& packed,
                          sim::Time* ready_at = nullptr);
  /// Sends a raw wire message (reply or notification) toward a session,
  /// crossing the pipe first when running split.
  void notify_session_raw(std::uint64_t session_id, util::Bytes wire);
  void deliver_to_session(std::uint64_t session_id, util::Bytes wire);

  // Pipe plumbing (split mode).
  void handle_pipe_server_message(util::Bytes&& wire);  // NJS side
  void handle_pipe_client_message(util::Bytes&& wire);  // gateway side

  // Peer connections.
  PeerConnection& peer_connection(const std::string& usite);
  void fail_peer_slot(const std::string& usite, std::size_t slot,
                      const util::Error& error);
  void handle_peer_message(const std::string& usite, std::size_t slot,
                           util::Bytes&& wire);
  void send_peer_request(const std::string& usite, RequestKind kind,
                         util::Bytes payload,
                         std::function<void(util::Result<util::Bytes>)>
                             on_reply);
  /// send_peer_request plus the fault-tolerance envelope: a per-request
  /// timeout, exponential backoff retries on retryable errors, and a
  /// per-peer circuit breaker that fails fast while a peer is down.
  void peer_call(const std::string& usite, RequestKind kind,
                 util::Bytes payload, int attempt,
                 std::function<void(util::Result<util::Bytes>)> on_reply);

  // Chunked transfer plumbing.
  /// Calls `ready` with the peer channel's negotiated feature set once
  /// its handshake settles (immediately when already established).
  void with_peer_features(
      const std::string& usite,
      std::function<void(util::Result<std::uint64_t>)> ready);
  /// The rail bundle toward a peer's gateway (created lazily, reused
  /// across transfers to the same Usite).
  std::shared_ptr<XferRails> peer_rails(const std::string& usite);
  void push_file_chunked(const njs::RemoteJobHandle& target,
                         const std::string& uspace_name,
                         std::shared_ptr<const uspace::FileBlob> blob,
                         std::function<void(util::Status)> done);
  void pull_file_chunked(
      const njs::RemoteJobHandle& source, const std::string& uspace_name,
      std::function<void(util::Result<uspace::FileBlob>)> done);

  sim::Engine& engine_;
  net::Network& network_;
  util::Rng rng_;
  UsiteConfig config_;
  crypto::Credential credential_;
  gateway::Gateway gateway_;
  /// Gateway replicas 1..G-1 (replica 0 is gateway_); they share
  /// gateway_'s trust store, UUDB, and auth cache.
  std::vector<std::unique_ptr<gateway::Gateway>> gateway_replicas_;
  /// Consistent-hash ring over the replica indices for route_address.
  util::ConsistentHash gateway_ring_;
  /// Modeled service-time queues (one serial server per replica).
  sim::Time gateway_service_time_ = 0;
  sim::Time njs_admission_cost_ = 0;
  std::vector<sim::Time> gateway_busy_until_;
  std::vector<sim::Time> njs_busy_until_;
  njs::NjsCluster njs_cluster_;
  gateway::SessionBroker session_broker_;
  std::shared_ptr<obs::MetricsRegistry> metrics_;
  xfer::TransferManager xfer_manager_;
  /// One transfer receiver per NJS replica, ids strided to its
  /// partition so chunks and closes route back to their minter.
  std::vector<std::unique_ptr<xfer::Service>> xfer_services_;
  std::shared_ptr<store::ChunkStore> chunk_store_;
  xfer::TransferOptions transfer_options_;
  std::uint64_t transfer_threshold_ = 4ull * 1024 * 1024;
  std::size_t transfer_streams_ = 4;
  std::map<std::string, std::shared_ptr<XferRails>> peer_rails_;
  TransferStats transfer_stats_;
  std::uint64_t advertised_features_ = net::kDefaultFeatures;
  util::ThreadPool* record_pool_ = nullptr;
  std::map<std::string, crypto::SoftwareBundle> bundles_;

  std::map<std::uint64_t, std::shared_ptr<ClientSession>> sessions_;
  std::uint64_t next_session_id_ = 1;

  std::map<std::string, net::Address> peers_;
  std::map<std::string, std::unique_ptr<PeerConnection>> peer_connections_;
  std::size_t peer_pool_size_ = 2;
  net::SessionTicketManager ticket_manager_;
  net::SessionCache peer_sessions_;
  std::map<std::string, util::CircuitBreaker> peer_breakers_;
  util::BackoffPolicy peer_backoff_;
  sim::Time peer_request_timeout_ = sim::sec(60);
  std::uint64_t peer_retries_ = 0;
  std::uint64_t next_request_id_ = 1;

  // Split-mode pipe endpoints (gateway-side client, NJS-side server).
  std::shared_ptr<net::Endpoint> pipe_client_;
  std::shared_ptr<net::Endpoint> pipe_server_;
  std::map<std::uint64_t, std::function<void(util::Bytes)>> pipe_pending_;
  std::uint64_t next_pipe_id_ = 1;

  std::uint64_t requests_served_ = 0;
  bool started_ = false;
};

}  // namespace unicore::server
