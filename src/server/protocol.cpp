#include "server/protocol.h"

#include "ajo/codec.h"

namespace unicore::server {

using util::ByteReader;
using util::Bytes;
using util::ByteView;
using util::ByteWriter;
using util::Error;
using util::ErrorCode;
using util::Result;

const char* request_kind_name(RequestKind kind) {
  switch (kind) {
    case RequestKind::kConsign: return "consign";
    case RequestKind::kQuery: return "query";
    case RequestKind::kList: return "list";
    case RequestKind::kControl: return "control";
    case RequestKind::kFetchOutput: return "fetch-output";
    case RequestKind::kResourcePages: return "resource-pages";
    case RequestKind::kGetBundle: return "get-bundle";
    case RequestKind::kForwardConsign: return "forward-consign";
    case RequestKind::kDeliverFile: return "deliver-file";
    case RequestKind::kFetchFile: return "fetch-file";
    case RequestKind::kPeerControl: return "peer-control";
    case RequestKind::kMonitorMetrics: return "monitor-metrics";
    case RequestKind::kMonitorTrace: return "monitor-trace";
    case RequestKind::kJournalInspect: return "journal-inspect";
    case RequestKind::kXferOpen: return "xfer-open";
    case RequestKind::kXferChunk: return "xfer-chunk";
    case RequestKind::kXferClose: return "xfer-close";
    case RequestKind::kSessionOpen: return "session-open";
    case RequestKind::kSessionRefresh: return "session-refresh";
    case RequestKind::kSessionClose: return "session-close";
    case RequestKind::kStorageList: return "storage-list";
    case RequestKind::kStorageFiles: return "storage-files";
    case RequestKind::kStorageReap: return "storage-reap";
    case RequestKind::kXferBundleOpen: return "xfer-bundle-open";
    case RequestKind::kXferBundleClose: return "xfer-bundle-close";
  }
  return "?";
}

Bytes make_request(RequestKind kind, std::uint64_t request_id,
                   ByteView payload) {
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(MessageType::kRequest));
  w.u8(static_cast<std::uint8_t>(kind));
  w.u64(request_id);
  w.raw(payload);
  return w.take();
}

Bytes make_token_request(RequestKind kind, std::uint64_t request_id,
                         ByteView token, ByteView payload) {
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(MessageType::kTokenRequest));
  w.u8(static_cast<std::uint8_t>(kind));
  w.u64(request_id);
  w.blob(token);
  w.raw(payload);
  return w.take();
}

Bytes make_ok_reply(std::uint64_t request_id, ByteView payload) {
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(MessageType::kReply));
  w.u64(request_id);
  w.u8(1);
  w.raw(payload);
  return w.take();
}

Bytes make_error_reply(std::uint64_t request_id, const Error& error) {
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(MessageType::kReply));
  w.u64(request_id);
  w.u8(0);
  encode_error(w, error);
  return w.take();
}

Bytes make_notification(std::uint64_t job_token, const ajo::Outcome& outcome) {
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(MessageType::kNotification));
  w.u64(job_token);
  outcome.encode(w);
  return w.take();
}

void encode_user(ByteWriter& w, const gateway::AuthenticatedUser& user) {
  w.str(user.dn.country);
  w.str(user.dn.organization);
  w.str(user.dn.organizational_unit);
  w.str(user.dn.common_name);
  w.str(user.dn.email);
  w.str(user.login);
  w.varint(user.account_groups.size());
  for (const auto& group : user.account_groups) w.str(group);
}

gateway::AuthenticatedUser decode_user(ByteReader& r) {
  gateway::AuthenticatedUser user;
  user.dn.country = r.str();
  user.dn.organization = r.str();
  user.dn.organizational_unit = r.str();
  user.dn.common_name = r.str();
  user.dn.email = r.str();
  user.login = r.str();
  std::uint64_t n = r.varint();
  user.account_groups.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) user.account_groups.push_back(r.str());
  return user;
}

Bytes encode_forwarded(const njs::ForwardedConsignment& consignment) {
  ByteWriter w;
  w.blob(ajo::encode_action(consignment.job));
  w.blob(consignment.user_certificate.der());
  w.blob(consignment.consignor_certificate.der());
  w.u64(consignment.signature.value);
  w.varint(consignment.staged_files.size());
  for (const auto& [name, blob] : consignment.staged_files) {
    w.str(name);
    blob.encode(w);
  }
  return w.take();
}

Result<njs::ForwardedConsignment> decode_forwarded(ByteReader& r) {
  njs::ForwardedConsignment out;
  Bytes job_wire = r.blob();
  auto action = ajo::decode_action(job_wire);
  if (!action) return action.error();
  if (!action.value()->is_job())
    return util::make_error(ErrorCode::kInvalidArgument,
                            "forwarded consignment root is not a job");
  out.job = std::move(static_cast<ajo::AbstractJobObject&>(*action.value()));
  Bytes user_der = r.blob();
  auto user_cert = crypto::Certificate::from_der(user_der);
  if (!user_cert) return user_cert.error();
  out.user_certificate = std::move(user_cert.value());
  Bytes consignor_der = r.blob();
  auto consignor_cert = crypto::Certificate::from_der(consignor_der);
  if (!consignor_cert) return consignor_cert.error();
  out.consignor_certificate = std::move(consignor_cert.value());
  out.signature.value = r.u64();
  std::uint64_t n = r.varint();
  out.staged_files.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    std::string name = r.str();
    out.staged_files.emplace_back(std::move(name),
                                  uspace::FileBlob::decode(r));
  }
  return out;
}

void encode_error(ByteWriter& w, const Error& error) {
  w.u8(static_cast<std::uint8_t>(error.code));
  w.str(error.message);
}

Error decode_error(ByteReader& r) {
  Error error;
  error.code = static_cast<ErrorCode>(r.u8());
  error.message = r.str();
  return error;
}

}  // namespace unicore::server
