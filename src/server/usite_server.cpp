#include "server/usite_server.h"

#include <limits>

#include "ajo/codec.h"
#include "util/log.h"

namespace unicore::server {

using ajo::JobToken;
using util::ByteReader;
using util::Bytes;
using util::ByteWriter;
using util::ErrorCode;
using util::Result;
using util::Status;

namespace {

enum PipeMessage : std::uint8_t {
  kPipeRequest = 1,
  kPipeReply = 2,
  kPipeNotify = 3,
};

util::Error transport_error(const std::string& what) {
  return util::make_error(ErrorCode::kUnavailable, what);
}

}  // namespace

// ---- internal structures ---------------------------------------------------

struct UsiteServer::ClientSession {
  std::uint64_t id = 0;
  /// Which gateway replica's listener accepted this session.
  std::size_t gateway_index = 0;
  std::shared_ptr<net::SecureChannel> channel;
};

struct UsiteServer::PeerConnection {
  struct PendingPeer {
    std::function<void(Result<Bytes>)> handler;
    std::optional<sim::EventId> timeout;
    std::size_t slot = 0;  // pool slot the request went out on
  };
  struct FinalHandler {
    std::function<void(ajo::Outcome)> handler;
    /// The peer's NJS notifies through the session that carried the
    /// consignment — i.e. this slot's channel. If it dies, the
    /// notification path is gone and the outcome must be failed.
    std::size_t slot = 0;
  };

  std::string usite;
  std::shared_ptr<net::ChannelPool> pool;
  std::map<std::uint64_t, PendingPeer> pending;
  std::map<std::uint64_t, FinalHandler> finals;
  /// Slot of the most recently dispatched reply; valid only during the
  /// synchronous extent of that reply's handler.
  std::size_t last_reply_slot = 0;
};

// ---- construction ----------------------------------------------------------

UsiteServer::UsiteServer(sim::Engine& engine, net::Network& network,
                         util::Rng& rng, UsiteConfig config,
                         crypto::Credential server_credential,
                         crypto::TrustStore trust,
                         gateway::UserDatabase uudb)
    : engine_(engine),
      network_(network),
      rng_(rng.fork()),
      config_(std::move(config)),
      credential_(server_credential),
      gateway_(config_.name, std::move(trust), std::move(uudb)),
      njs_cluster_(engine, rng_, config_.name, std::move(server_credential),
                   config_.njs_replicas == 0 ? 1 : config_.njs_replicas),
      session_broker_(gateway_, rng_),
      metrics_(njs_cluster_.primary().metrics()),
      xfer_manager_(engine, rng_),
      ticket_manager_(rng_) {
  // One content-addressed chunk store per Usite (it models the site's
  // disk array, shared by every Uspace): the NJS interns delivered
  // files into it and the transfer receiver dedups inbound chunks
  // against it.
  chunk_store_ = std::make_shared<store::ChunkStore>();
  chunk_store_->set_metrics(metrics_, config_.name);
  // Every NJS replica gets the site-wide wiring plus its own transfer
  // receiver, ids strided to the replica's token partition.
  for (std::size_t i = 0; i < njs_cluster_.replica_count(); ++i) {
    njs::Njs& replica = njs_cluster_.replica(i);
    replica.set_peer_link(this);
    replica.set_chunk_store(chunk_store_);
    auto service = std::make_unique<xfer::Service>(engine, replica);
    service->set_id_partition(i);
    service->set_chunk_store(chunk_store_);
    replica.add_crash_participant(service.get());
    xfer_services_.push_back(std::move(service));
  }
  njs_cluster_.set_metrics(metrics_);
  // Gateway replicas 1..G-1 share replica 0's trust store, UUDB, and
  // auth cache: one CRL push or UUDB edit is visible on every listener,
  // and an identity cached by one replica is warm on all of them.
  for (std::size_t g = 1; g < config_.gateway_replicas; ++g)
    gateway_replicas_.push_back(std::make_unique<gateway::Gateway>(
        config_.name, gateway_.shared_trust_store(), gateway_.shared_uudb(),
        gateway_.shared_auth_cache()));
  gateway_.set_metrics(metrics_.get());
  for (auto& replica : gateway_replicas_) replica->set_metrics(metrics_.get());
  for (std::size_t g = 0; g < gateway_replica_count(); ++g)
    gateway_ring_.add(std::to_string(g));
  gateway_busy_until_.assign(gateway_replica_count(), 0);
  njs_busy_until_.assign(njs_cluster_.replica_count(), 0);
  session_broker_.set_metrics(metrics_.get());
  xfer_manager_.set_metrics(metrics_.get(), config_.name);
  // Any trust change (new root, new CRL) instantly kills every session
  // ticket this server has handed out.
  ticket_manager_.attach_trust(&gateway_.trust_store());
}

void UsiteServer::set_metrics(std::shared_ptr<obs::MetricsRegistry> registry) {
  if (registry == nullptr || registry == metrics_) return;
  metrics_ = std::move(registry);
  njs_cluster_.set_metrics(metrics_);
  chunk_store_->set_metrics(metrics_, config_.name);
  gateway_.set_metrics(metrics_.get());
  for (auto& replica : gateway_replicas_) replica->set_metrics(metrics_.get());
  session_broker_.set_metrics(metrics_.get());
  xfer_manager_.set_metrics(metrics_.get(), config_.name);
}

UsiteServer::~UsiteServer() = default;

Status UsiteServer::start() {
  if (started_)
    return util::make_error(ErrorCode::kFailedPrecondition,
                            "server already started");
  // Gateway replica g listens on port+g; every listener feeds the same
  // session table, broker, and ticket mint, so a client may contact any
  // of them (and resume tickets minted through any other).
  for (std::size_t g = 0; g < gateway_replica_count(); ++g) {
    net::Address listen_address{config_.gateway_host,
                                static_cast<std::uint16_t>(config_.port + g)};
    auto status = network_.listen(
        listen_address, [this, g](std::shared_ptr<net::Endpoint> endpoint) {
          accept_session(std::move(endpoint), g);
        });
    if (!status.ok()) return status;
  }
  Status status = Status::ok_status();

  if (config_.split()) {
    // The "IP socket connection to a site selectable port" between the
    // Web-server/gateway half (on the firewall) and the NJS inside.
    status = network_.listen(
        {config_.njs_host, config_.njs_port},
        [this](std::shared_ptr<net::Endpoint> endpoint) {
          // The pipe is a single long-lived connection from the gateway;
          // anything after it (port probes from the gateway host) is
          // refused so the pipe cannot be hijacked.
          if (pipe_server_ != nullptr && pipe_server_->is_open()) {
            endpoint->close();
            return;
          }
          pipe_server_ = std::move(endpoint);
          pipe_server_->set_receiver([this](Bytes&& wire) {
            handle_pipe_server_message(std::move(wire));
          });
        });
    if (!status.ok()) return status;
    auto pipe = network_.connect(config_.gateway_host,
                                 {config_.njs_host, config_.njs_port});
    if (!pipe) return pipe.error();
    pipe_client_ = std::move(pipe.value());
    pipe_client_->set_receiver([this](Bytes&& wire) {
      handle_pipe_client_message(std::move(wire));
    });
  }
  started_ = true;
  return Status::ok_status();
}

void UsiteServer::apply_firewall_rules() {
  if (!config_.split()) return;
  net::Firewall& inner = network_.firewall(config_.njs_host);
  inner.deny_all();
  inner.allow(config_.gateway_host, config_.njs_port);
}

void UsiteServer::add_peer(const std::string& usite,
                           net::Address gateway_address) {
  peers_[usite] = std::move(gateway_address);
}

std::vector<net::Address> UsiteServer::gateway_addresses() const {
  std::vector<net::Address> addresses;
  for (std::size_t g = 0; g < 1 + gateway_replicas_.size(); ++g)
    addresses.push_back({config_.gateway_host,
                         static_cast<std::uint16_t>(config_.port + g)});
  return addresses;
}

net::Address UsiteServer::route_address(
    const crypto::DistinguishedName& dn) const {
  const std::string* node = gateway_ring_.node_for(dn.to_string());
  std::size_t index = node == nullptr ? 0 : std::stoul(*node);
  return {config_.gateway_host,
          static_cast<std::uint16_t>(config_.port + index)};
}

std::vector<net::Address> UsiteServer::route_addresses(
    const crypto::DistinguishedName& dn) const {
  std::vector<net::Address> addresses;
  for (const std::string& node : gateway_ring_.walk(dn.to_string()))
    addresses.push_back(
        {config_.gateway_host,
         static_cast<std::uint16_t>(config_.port + std::stoul(node))});
  if (addresses.empty()) addresses.push_back(address());  // every replica dead
  return addresses;
}

void UsiteServer::stop_gateway_replica(std::size_t index) {
  if (index >= gateway_replica_count()) return;
  network_.close_listener(
      {config_.gateway_host,
       static_cast<std::uint16_t>(config_.port + index)});
  // Off the ring: route_address now hands out the next clockwise node,
  // and route_addresses stops listing this replica entirely.
  gateway_ring_.remove(std::to_string(index));
  // Sessions the dead replica accepted die with it (their channels
  // close mid-request from the client's point of view).
  std::vector<std::shared_ptr<ClientSession>> doomed;
  for (auto& [id, session] : sessions_)
    if (session->gateway_index == index) doomed.push_back(session);
  for (auto& session : doomed) {
    session->channel->close();
    sessions_.erase(session->id);
  }
}

void UsiteServer::publish_bundle(crypto::SoftwareBundle bundle) {
  bundles_[bundle.name] = std::move(bundle);
}

// ---- inbound sessions -------------------------------------------------------

void UsiteServer::accept_session(std::shared_ptr<net::Endpoint> endpoint,
                                 std::size_t gateway_index) {
  auto session = std::make_shared<ClientSession>();
  session->id = next_session_id_++;
  session->gateway_index = gateway_index;

  net::SecureChannel::Config channel_config;
  channel_config.credential = credential_;
  channel_config.trust = &gateway_.trust_store();
  channel_config.required_peer_usage = 0;  // user or server; checked per-op
  channel_config.features = advertised_features_;
  channel_config.ticket_manager = &ticket_manager_;
  channel_config.record_pool = record_pool_;

  std::uint64_t id = session->id;
  session->channel = net::SecureChannel::as_server(
      engine_, rng_, std::move(endpoint), channel_config,
      [this, id](Status status) {
        auto it = sessions_.find(id);
        if (it == sessions_.end()) return;
        std::shared_ptr<ClientSession> session = it->second;
        if (!status.ok()) {
          sessions_.erase(it);
          return;
        }
        session->channel->set_receiver([this, id](Bytes&& wire) {
          auto it = sessions_.find(id);
          if (it == sessions_.end()) return;
          handle_session_message(it->second, std::move(wire));
        });
        session->channel->set_close_handler([this, id] {
          sessions_.erase(id);
        });
      });
  // The map entry keeps the session alive; the channel callbacks only
  // capture the id, so erasing the entry tears everything down.
  sessions_[id] = std::move(session);
}

void UsiteServer::handle_session_message(
    const std::shared_ptr<ClientSession>& session, Bytes&& wire) {
  if (gateway_service_time_ > 0) {
    // The replica is a serial server: this request waits for everything
    // already queued on it, then occupies it for the service time.
    std::size_t g = session->gateway_index;
    sim::Time start = std::max(engine_.now(), gateway_busy_until_[g]);
    gateway_busy_until_[g] = start + gateway_service_time_;
    engine_.at(gateway_busy_until_[g],
               [this, session, wire = std::move(wire)]() mutable {
                 process_session_message(session, std::move(wire));
               });
    return;
  }
  process_session_message(session, std::move(wire));
}

void UsiteServer::process_session_message(
    const std::shared_ptr<ClientSession>& session, Bytes&& wire) {
  try {
    ByteReader reader{wire};
    auto type = static_cast<MessageType>(reader.u8());
    // Clients only send requests: plain, or the portal's token envelope.
    if (type != MessageType::kRequest && type != MessageType::kTokenRequest)
      return;
    auto kind = static_cast<RequestKind>(reader.u8());
    std::uint64_t request_id = reader.u64();
    std::optional<Bytes> token;
    if (type == MessageType::kTokenRequest) token = reader.blob();
    ++requests_served_;
    handle_request(session, kind, request_id, reader, token);
  } catch (const std::out_of_range&) {
    UNICORE_WARN("server/" + config_.name) << "malformed request dropped";
  }
}

namespace {

/// Packs the NJS half of a request for the (possibly remote) executor.
Bytes pack_njs_request(RequestKind kind, std::uint64_t request_id,
                       const gateway::AuthenticatedUser& user,
                       util::ByteView payload) {
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(kind));
  w.u64(request_id);
  encode_user(w, user);
  w.raw(payload);
  return w.take();
}

}  // namespace

void UsiteServer::handle_request(const std::shared_ptr<ClientSession>& session,
                                 RequestKind kind, std::uint64_t request_id,
                                 ByteReader& payload,
                                 const std::optional<Bytes>& token) {
  std::int64_t now_epoch = net::epoch_seconds(engine_.now());
  std::uint64_t session_id = session->id;
  // The replica whose listener carries this session authenticates it;
  // all replicas share trust/UUDB/auth-cache state, so the answer is
  // identical on any of them (and cache fills warm every listener).
  gateway::Gateway& gw = gateway_replica(session->gateway_index);

  auto reply_error = [session](std::uint64_t request_id,
                               const util::Error& error) {
    session->channel->send(make_error_reply(request_id, error));
  };
  // The reply callback runs on the gateway side in both deployments
  // (directly when combined; in handle_pipe_client_message when split),
  // so it hands the reply straight to the session.
  sim::Time received_at = engine_.now();
  metrics_
      ->counter("unicore_server_requests_total",
                {{"kind", request_kind_name(kind)}, {"usite", config_.name}})
      .increment();
  auto forward = [this, session, session_id, kind, received_at](Bytes packed) {
    execute_at_njs(
        session_id, std::move(packed),
        [this, session_id, kind, received_at](Bytes reply) {
          metrics_
              ->histogram("unicore_gateway_request_latency_seconds",
                          {{"kind", request_kind_name(kind)},
                           {"usite", config_.name}},
                          obs::latency_buckets())
              .observe(sim::to_seconds(engine_.now() - received_at));
          deliver_to_session(session_id, std::move(reply));
        });
  };

  // The portal facade — its six request kinds and the token envelope —
  // is negotiated at the hello exchange like the other v2 features.
  const bool portal_kind = kind == RequestKind::kSessionOpen ||
                           kind == RequestKind::kSessionRefresh ||
                           kind == RequestKind::kSessionClose ||
                           kind == RequestKind::kStorageList ||
                           kind == RequestKind::kStorageFiles ||
                           kind == RequestKind::kStorageReap;
  if ((portal_kind || token.has_value()) &&
      !session->channel->feature_enabled(net::kFeaturePortal))
    return reply_error(
        request_id,
        util::make_error(ErrorCode::kFailedPrecondition,
                         "portal facade requires the v2 channel feature "
                         "(peer negotiated v" +
                             std::to_string(
                                 session->channel->negotiated_version()) +
                             ")"));
  // Resolves the caller: the envelope's bearer token when present (the
  // channel may then belong to a portal pooling many users), otherwise
  // the channel's peer certificate.
  auto client_identity =
      [&]() -> Result<gateway::SessionIdentity> {
    if (token) return session_broker_.authenticate(*token, now_epoch);
    auto user = gw.authenticate_user(
        session->channel->peer_certificate(), now_epoch);
    if (!user) return user.error();
    return gateway::SessionIdentity{user.value(),
                                    session->channel->peer_certificate()};
  };

  switch (kind) {
    case RequestKind::kSessionOpen: {
      // The one certificate-authenticated contact: the channel's peer
      // (full or resumed handshake) is who the session is minted for.
      std::int64_t requested_ttl = payload.i64();
      auto grant = session_broker_.open(session->channel->peer_certificate(),
                                       now_epoch, requested_ttl);
      if (!grant) return reply_error(request_id, grant.error());
      ByteWriter out;
      out.blob(grant.value().token);
      out.i64(grant.value().expires_at);
      out.str(grant.value().login);
      return session->channel->send(make_ok_reply(request_id, out.bytes()));
    }
    case RequestKind::kSessionRefresh: {
      if (!token)
        return reply_error(
            request_id,
            util::make_error(ErrorCode::kInvalidArgument,
                             "session refresh must ride the token envelope"));
      auto grant = session_broker_.refresh(*token, now_epoch);
      if (!grant) return reply_error(request_id, grant.error());
      ByteWriter out;
      out.blob(grant.value().token);
      out.i64(grant.value().expires_at);
      out.str(grant.value().login);
      return session->channel->send(make_ok_reply(request_id, out.bytes()));
    }
    case RequestKind::kSessionClose: {
      if (!token)
        return reply_error(
            request_id,
            util::make_error(ErrorCode::kInvalidArgument,
                             "session close must ride the token envelope"));
      if (auto status = session_broker_.close(*token); !status.ok())
        return reply_error(request_id, status.error());
      return session->channel->send(make_ok_reply(request_id, {}));
    }
    case RequestKind::kGetBundle: {
      // Served by the Web-server half directly: the signed applet.
      std::string name = payload.str();
      auto it = bundles_.find(name);
      if (it == bundles_.end())
        return reply_error(request_id,
                           util::make_error(ErrorCode::kNotFound,
                                            "no such bundle: " + name));
      return session->channel->send(
          make_ok_reply(request_id, it->second.encode()));
    }
    case RequestKind::kConsign: {
      if (token) {
        // Portal consign: the bearer token proves the submitting
        // identity, so the AJO travels unsigned — no signature powmods
        // on this path, only the authorisation half of the check.
        auto identity = client_identity();
        if (!identity) return reply_error(request_id, identity.error());
        Bytes job_wire = payload.raw(payload.remaining());
        auto action = ajo::decode_action(job_wire);
        if (!action) return reply_error(request_id, action.error());
        if (!action.value()->is_job())
          return reply_error(
              request_id,
              util::make_error(ErrorCode::kInvalidArgument,
                               "consigned action is not a job"));
        auto& job = static_cast<ajo::AbstractJobObject&>(*action.value());
        if (auto status =
                gw.authorize_job(job, identity.value().user,
                                       identity.value().certificate,
                                       now_epoch);
            !status.ok())
          return reply_error(request_id, status.error());
        ByteWriter inner;
        inner.blob(job_wire);
        inner.blob(identity.value().certificate.der());
        return forward(pack_njs_request(kind, request_id,
                                        identity.value().user,
                                        inner.bytes()));
      }
      Bytes signed_wire = payload.raw(payload.remaining());
      auto signed_ajo = ajo::SignedAjo::decode(signed_wire);
      if (!signed_ajo) return reply_error(request_id, signed_ajo.error());
      auto user = gw.check_consignment(signed_ajo.value(), now_epoch);
      if (!user) return reply_error(request_id, user.error());
      ByteWriter inner;
      inner.blob(ajo::encode_action(signed_ajo.value().job));
      inner.blob(signed_ajo.value().user_certificate.der());
      return forward(
          pack_njs_request(kind, request_id, user.value(), inner.bytes()));
    }
    case RequestKind::kForwardConsign: {
      auto consignment = decode_forwarded(payload);
      if (!consignment) return reply_error(request_id, consignment.error());
      const auto& c = consignment.value();
      auto user = gw.check_forwarded_consignment(
          c.job, c.user_certificate, c.consignor_certificate, c.signature,
          njs::ForwardedConsignment::signing_input(c.job, c.user_certificate),
          now_epoch);
      if (!user) return reply_error(request_id, user.error());
      return forward(pack_njs_request(kind, request_id, user.value(),
                                      encode_forwarded(c)));
    }
    case RequestKind::kJournalInspect:
      // Negotiated at the hello exchange: a v1 channel never agreed to
      // this request kind, so it is refused before touching the NJS.
      if (!session->channel->feature_enabled(net::kFeatureJournalInspect))
        return reply_error(
            request_id,
            util::make_error(ErrorCode::kFailedPrecondition,
                             "journal-inspect requires the v2 channel "
                             "feature (peer negotiated v" +
                                 std::to_string(
                                     session->channel->negotiated_version()) +
                                 ")"));
      [[fallthrough]];
    case RequestKind::kQuery:
    case RequestKind::kList:
    case RequestKind::kControl:
    case RequestKind::kFetchOutput:
    case RequestKind::kMonitorMetrics:
    case RequestKind::kMonitorTrace:
    case RequestKind::kStorageList:
    case RequestKind::kStorageFiles:
    case RequestKind::kStorageReap: {
      // JMC operations: the session token or the channel's peer
      // certificate is the user.
      auto identity = client_identity();
      if (!identity) return reply_error(request_id, identity.error());
      Bytes rest = payload.raw(payload.remaining());
      return forward(pack_njs_request(kind, request_id,
                                      identity.value().user, rest));
    }
    case RequestKind::kDeliverFile:
    case RequestKind::kFetchFile:
    case RequestKind::kPeerControl: {
      // Peer-NJS operations: the channel peer must be a UNICORE server.
      auto status = gw.authenticate_server(
          session->channel->peer_certificate(), now_epoch);
      if (!status.ok()) return reply_error(request_id, status.error());
      gateway::AuthenticatedUser server_identity;
      server_identity.dn = session->channel->peer_certificate().subject;
      Bytes rest = payload.raw(payload.remaining());
      return forward(
          pack_njs_request(kind, request_id, server_identity, rest));
    }
    case RequestKind::kResourcePages: {
      gateway::AuthenticatedUser anonymous;
      return forward(pack_njs_request(kind, request_id, anonymous, {}));
    }
    case RequestKind::kXferOpen:
    case RequestKind::kXferChunk:
    case RequestKind::kXferClose:
    case RequestKind::kXferBundleOpen:
    case RequestKind::kXferBundleClose: {
      // Negotiated at the hello exchange like kJournalInspect: a v1
      // channel never agreed to the chunked protocol, so senders fall
      // back to kDeliverFile / kFetchFile on this error.
      if (!session->channel->feature_enabled(net::kFeatureChunkedXfer))
        return reply_error(
            request_id,
            util::make_error(ErrorCode::kFailedPrecondition,
                             "chunked transfer requires the v2 channel "
                             "feature (peer negotiated v" +
                                 std::to_string(
                                     session->channel->negotiated_version()) +
                                 ")"));
      // Bundles are a further negotiation on top of chunked transfer:
      // a chunked-but-bundleless peer gets the same error shape, and
      // senders fall back to one open per file.
      if ((kind == RequestKind::kXferBundleOpen ||
           kind == RequestKind::kXferBundleClose) &&
          !session->channel->feature_enabled(net::kFeatureBundleXfer))
        return reply_error(
            request_id,
            util::make_error(ErrorCode::kFailedPrecondition,
                             "bundle transfer requires the bundle channel "
                             "feature"));
      // The leading Role byte picks the authentication path: pushes and
      // peer pulls are NJS–NJS (server certificate), client pulls and
      // client pushes are JMC traffic (user certificate + ownership
      // check in the NJS).
      auto role = static_cast<xfer::Role>(payload.u8());
      bool server_peer = xfer::role_is_server_peer(role);
      gateway::AuthenticatedUser principal;
      if (server_peer) {
        auto status = gw.authenticate_server(
            session->channel->peer_certificate(), now_epoch);
        if (!status.ok()) return reply_error(request_id, status.error());
        principal.dn = session->channel->peer_certificate().subject;
      } else {
        auto user = gw.authenticate_user(
            session->channel->peer_certificate(), now_epoch);
        if (!user) return reply_error(request_id, user.error());
        principal = user.value();
      }
      ByteWriter body;
      body.u8(server_peer ? 1 : 0);
      body.u8(static_cast<std::uint8_t>(role));
      body.raw(payload.raw(payload.remaining()));
      return forward(
          pack_njs_request(kind, request_id, principal, body.bytes()));
    }
  }
  reply_error(request_id, util::make_error(ErrorCode::kInvalidArgument,
                                           "unknown request kind"));
}

// ---- the NJS-side executor --------------------------------------------------

Bytes UsiteServer::njs_execute(std::uint64_t session_id, ByteReader& packed,
                               sim::Time* ready_at) {
  auto kind = static_cast<RequestKind>(packed.u8());
  std::uint64_t request_id = packed.u64();
  gateway::AuthenticatedUser user = decode_user(packed);

  // Charges one admission to the token's owning replica (a serial
  // server, like the gateway's service queue) and reports when that
  // queue drains.
  auto charge_admission = [this, ready_at](JobToken token) {
    if (njs_admission_cost_ <= 0) return;
    auto owner = njs_cluster_.owner_of(token);
    if (!owner) return;
    sim::Time start = std::max(engine_.now(), njs_busy_until_[*owner]);
    njs_busy_until_[*owner] = start + njs_admission_cost_;
    if (ready_at != nullptr) *ready_at = njs_busy_until_[*owner];
  };

  // Token-addressed requests go to the partition's current owner: the
  // minting replica, or its adopter after a journal handoff. A dead,
  // unadopted partition answers kUnavailable (clients retry; the peer
  // link's idempotency keys make that safe).
  auto njs_for = [this](JobToken token) -> njs::Njs* {
    return njs_cluster_.replica_for_token(token);
  };
  auto replica_down = [request_id](JobToken token) {
    return make_error_reply(
        request_id,
        util::make_error(ErrorCode::kUnavailable,
                         "NJS replica owning job " + std::to_string(token) +
                             " is down"));
  };

  auto check_owner = [&user, &njs_for](JobToken token) -> Status {
    njs::Njs* replica = njs_for(token);
    if (replica == nullptr)
      return util::make_error(ErrorCode::kUnavailable,
                              "NJS replica owning job " +
                                  std::to_string(token) + " is down");
    auto owner = replica->owner(token);
    if (!owner) return owner.error();
    if (owner.value() != user.dn)
      return util::make_error(ErrorCode::kPermissionDenied,
                              "job belongs to a different user");
    return Status::ok_status();
  };

  try {
    switch (kind) {
      case RequestKind::kConsign: {
        Bytes job_wire = packed.blob();
        auto action = ajo::decode_action(job_wire);
        if (!action) return make_error_reply(request_id, action.error());
        Bytes cert_der = packed.blob();
        auto cert = crypto::Certificate::from_der(cert_der);
        if (!cert) return make_error_reply(request_id, cert.error());
        auto token = njs_cluster_.consign(
            static_cast<ajo::AbstractJobObject&>(*action.value()), user,
            cert.value());
        if (!token) return make_error_reply(request_id, token.error());
        charge_admission(token.value());
        ByteWriter out;
        out.u64(token.value());
        return make_ok_reply(request_id, out.bytes());
      }
      case RequestKind::kForwardConsign: {
        auto consignment = decode_forwarded(packed);
        if (!consignment)
          return make_error_reply(request_id, consignment.error());
        auto& c = consignment.value();
        // The digest of the signed consignment keys deduplication: a
        // retried kForwardConsign (sender timed out, we had accepted)
        // maps onto the existing job and returns its original token.
        Bytes key = c.idempotency_key();
        auto token = njs_cluster_.consign(
            c.job, user, c.user_certificate,
            [this, session_id](JobToken token, const ajo::Outcome& outcome) {
              notify_session_raw(session_id,
                                 make_notification(token, outcome));
            },
            std::move(c.staged_files), std::move(key));
        if (!token) return make_error_reply(request_id, token.error());
        charge_admission(token.value());
        ByteWriter out;
        out.u64(token.value());
        return make_ok_reply(request_id, out.bytes());
      }
      case RequestKind::kQuery: {
        JobToken token = packed.u64();
        auto detail = static_cast<ajo::QueryService::Detail>(packed.u8());
        if (auto status = check_owner(token); !status.ok())
          return make_error_reply(request_id, status.error());
        auto outcome = njs_for(token)->query(token, detail);
        if (!outcome) return make_error_reply(request_id, outcome.error());
        ByteWriter out;
        outcome.value().encode(out);
        return make_ok_reply(request_id, out.bytes());
      }
      case RequestKind::kList: {
        auto summaries = njs_cluster_.list(user.dn);
        ByteWriter out;
        out.varint(summaries.size());
        for (const auto& summary : summaries) {
          out.u64(summary.token);
          out.str(summary.name);
          out.u8(static_cast<std::uint8_t>(summary.status));
          out.i64(summary.consigned_at);
        }
        return make_ok_reply(request_id, out.bytes());
      }
      case RequestKind::kControl: {
        JobToken token = packed.u64();
        auto command = static_cast<ajo::ControlService::Command>(packed.u8());
        if (auto status = check_owner(token); !status.ok())
          return make_error_reply(request_id, status.error());
        if (auto status = njs_for(token)->control(token, command);
            !status.ok())
          return make_error_reply(request_id, status.error());
        return make_ok_reply(request_id, {});
      }
      case RequestKind::kFetchOutput: {
        JobToken token = packed.u64();
        std::string name = packed.str();
        if (auto status = check_owner(token); !status.ok())
          return make_error_reply(request_id, status.error());
        auto blob = njs_for(token)->read_output(token, name);
        if (!blob) return make_error_reply(request_id, blob.error());
        ByteWriter out;
        blob.value().encode(out);
        return make_ok_reply(request_id, out.bytes());
      }
      case RequestKind::kResourcePages: {
        auto pages = njs_cluster_.primary().resource_pages();
        ByteWriter out;
        out.varint(pages.size());
        for (const auto& page : pages) out.blob(page.encode());
        return make_ok_reply(request_id, out.bytes());
      }
      case RequestKind::kDeliverFile: {
        JobToken token = packed.u64();
        std::string name = packed.str();
        uspace::FileBlob blob = uspace::FileBlob::decode(packed);
        njs::Njs* replica = njs_for(token);
        if (replica == nullptr) return replica_down(token);
        if (auto status = replica->deliver_file(token, name, std::move(blob));
            !status.ok())
          return make_error_reply(request_id, status.error());
        return make_ok_reply(request_id, {});
      }
      case RequestKind::kFetchFile: {
        JobToken token = packed.u64();
        std::string name = packed.str();
        njs::Njs* replica = njs_for(token);
        if (replica == nullptr) return replica_down(token);
        auto blob = replica->fetch_file(token, name);
        if (!blob) return make_error_reply(request_id, blob.error());
        ByteWriter out;
        blob.value().encode(out);
        return make_ok_reply(request_id, out.bytes());
      }
      case RequestKind::kPeerControl: {
        JobToken token = packed.u64();
        auto command = static_cast<ajo::ControlService::Command>(packed.u8());
        // Authorised by the gateway's server authentication; the job was
        // consigned here by the requesting NJS in the first place.
        njs::Njs* replica = njs_for(token);
        if (replica == nullptr) return replica_down(token);
        if (auto status = replica->control(token, command); !status.ok())
          return make_error_reply(request_id, status.error());
        return make_ok_reply(request_id, {});
      }
      case RequestKind::kMonitorMetrics: {
        // MonitorService: a point-in-time snapshot of every metric the
        // Usite (and, with a shared registry, the whole grid) recorded.
        for (std::size_t i = 0; i < njs_cluster_.replica_count(); ++i)
          njs_cluster_.replica(i).refresh_gauges();
        njs_cluster_.refresh_gauges();
        obs::MetricsSnapshot snapshot = metrics_->snapshot();
        ByteWriter out;
        snapshot.encode(out);
        return make_ok_reply(request_id, out.bytes());
      }
      case RequestKind::kMonitorTrace: {
        JobToken token = packed.u64();
        if (auto status = check_owner(token); !status.ok())
          return make_error_reply(request_id, status.error());
        auto timeline = njs_for(token)->trace(token);
        if (!timeline) return make_error_reply(request_id, timeline.error());
        ByteWriter out;
        timeline.value()->encode(out);
        return make_ok_reply(request_id, out.bytes());
      }
      case RequestKind::kJournalInspect: {
        // Recovery diagnostics: journal depth plus the fault counters,
        // summed across the replica set.
        ByteWriter out;
        auto journal = njs_cluster_.primary().journal();
        std::size_t records = 0;
        std::uint64_t recoveries = 0, deduped = 0, retries = 0;
        for (std::size_t i = 0; i < njs_cluster_.replica_count(); ++i) {
          const njs::Njs& replica = njs_cluster_.replica(i);
          if (replica.journal() != nullptr)
            records += replica.journal()->records();
          recoveries += replica.recoveries();
          deduped += replica.consigns_deduped();
          retries += replica.batch_retries();
        }
        out.u8(journal != nullptr ? 1 : 0);
        out.varint(records);
        out.u64(recoveries);
        out.u64(deduped);
        out.u64(retries);
        return make_ok_reply(request_id, out.bytes());
      }
      case RequestKind::kXferOpen:
      case RequestKind::kXferChunk:
      case RequestKind::kXferClose:
      case RequestKind::kXferBundleOpen:
      case RequestKind::kXferBundleClose: {
        bool server_peer = packed.u8() != 0;
        auto role = static_cast<xfer::Role>(packed.u8());
        // Route to the partition owner's transfer receiver. Opens carry
        // the job token, so they follow the job — after a handoff that
        // is the adopter. Chunks and closes carry the transfer id,
        // which is strided by the service that minted it; an id from a
        // crashed replica's table answers kNotFound and the sender
        // re-opens by durable key (landing on the adopter).
        bool is_open = kind == RequestKind::kXferOpen ||
                       kind == RequestKind::kXferBundleOpen;
        std::size_t target = 0;
        {
          ByteReader peek = packed;  // routing must not consume the body
          if (is_open) {
            JobToken token;
            if (xfer::role_is_push(role)) {
              peek.blob();  // transfer key (single-file or bundle)
              token = peek.u64();
            } else {
              token = peek.u64();
            }
            auto owner = njs_cluster_.owner_of(token);
            if (!owner) return replica_down(token);
            target = *owner;
          } else {
            std::uint64_t transfer_id = peek.u64();
            std::uint64_t partition =
                transfer_id >> njs::kTokenPartitionShift;
            if (partition >= xfer_services_.size())
              return make_error_reply(
                  request_id,
                  util::make_error(ErrorCode::kNotFound,
                                   "no such transfer id"));
            target = partition;
          }
        }
        xfer::Service& service = *xfer_services_[target];
        Result<Bytes> reply = util::make_error(ErrorCode::kInternal, "");
        switch (kind) {
          case RequestKind::kXferOpen:
            reply = service.open(user.dn, server_peer, role, packed);
            break;
          case RequestKind::kXferChunk:
            reply = service.chunk(user.dn, server_peer, role, packed);
            break;
          case RequestKind::kXferClose:
            reply = service.close(user.dn, server_peer, role, packed);
            break;
          case RequestKind::kXferBundleOpen:
            reply = service.bundle_open(user.dn, server_peer, role, packed);
            break;
          default:
            reply = service.bundle_close(user.dn, server_peer, role, packed);
            break;
        }
        if (!reply) return make_error_reply(request_id, reply.error());
        return make_ok_reply(request_id, reply.value());
      }
      case RequestKind::kStorageList: {
        auto storages = njs_cluster_.storages(user.dn);
        ByteWriter out;
        out.varint(storages.size());
        for (const auto& storage : storages) {
          out.u64(storage.token);
          out.str(storage.name);
          out.u64(storage.used_bytes);
          out.u64(storage.quota_bytes);
          out.varint(storage.files);
          out.u8(storage.terminal ? 1 : 0);
          out.u8(storage.reaped ? 1 : 0);
          out.i64(storage.consigned_at);
        }
        return make_ok_reply(request_id, out.bytes());
      }
      case RequestKind::kStorageFiles: {
        JobToken token = packed.u64();
        if (auto status = check_owner(token); !status.ok())
          return make_error_reply(request_id, status.error());
        auto files = njs_for(token)->storage_files(token);
        if (!files) return make_error_reply(request_id, files.error());
        ByteWriter out;
        out.varint(files.value().size());
        for (const auto& name : files.value()) out.str(name);
        return make_ok_reply(request_id, out.bytes());
      }
      case RequestKind::kStorageReap: {
        JobToken token = packed.u64();
        if (auto status = check_owner(token); !status.ok())
          return make_error_reply(request_id, status.error());
        auto freed = njs_for(token)->reap_storage(token);
        if (!freed) return make_error_reply(request_id, freed.error());
        ByteWriter out;
        out.u64(freed.value());
        return make_ok_reply(request_id, out.bytes());
      }
      case RequestKind::kSessionOpen:
      case RequestKind::kSessionRefresh:
      case RequestKind::kSessionClose:
      case RequestKind::kGetBundle:
        break;  // handled at the gateway; never reaches the NJS
    }
  } catch (const std::out_of_range&) {
    return make_error_reply(request_id,
                            util::make_error(ErrorCode::kInvalidArgument,
                                             "malformed NJS request"));
  }
  return make_error_reply(request_id,
                          util::make_error(ErrorCode::kInvalidArgument,
                                           "unhandled request kind"));
}

void UsiteServer::execute_at_njs(std::uint64_t session_id, Bytes packed,
                                 std::function<void(Bytes)> reply) {
  if (!config_.split() || pipe_client_ == nullptr) {
    ByteReader reader{packed};
    sim::Time ready_at = 0;
    Bytes out = njs_execute(session_id, reader, &ready_at);
    // An admission-cost model holds the consign ack until the owning
    // replica's queue drains — that back-pressure is what the closed-
    // loop generators measure.
    if (ready_at > engine_.now()) {
      engine_.at(ready_at, [reply = std::move(reply),
                            out = std::move(out)]() mutable {
        reply(std::move(out));
      });
      return;
    }
    reply(std::move(out));
    return;
  }
  std::uint64_t pipe_id = next_pipe_id_++;
  pipe_pending_[pipe_id] = std::move(reply);
  ByteWriter w;
  w.u8(kPipeRequest);
  w.u64(pipe_id);
  w.u64(session_id);
  w.raw(packed);
  pipe_client_->send(w.take());
}

void UsiteServer::handle_pipe_server_message(Bytes&& wire) {
  // Runs on the NJS host: execute and send the reply back across.
  try {
    ByteReader reader{wire};
    auto type = static_cast<PipeMessage>(reader.u8());
    if (type != kPipeRequest) return;
    std::uint64_t pipe_id = reader.u64();
    std::uint64_t session_id = reader.u64();
    sim::Time ready_at = 0;
    Bytes reply = njs_execute(session_id, reader, &ready_at);
    ByteWriter w;
    w.u8(kPipeReply);
    w.u64(pipe_id);
    w.raw(reply);
    Bytes framed = w.take();
    if (ready_at > engine_.now()) {
      engine_.at(ready_at, [this, framed = std::move(framed)]() mutable {
        if (pipe_server_) pipe_server_->send(std::move(framed));
      });
      return;
    }
    if (pipe_server_) pipe_server_->send(std::move(framed));
  } catch (const std::out_of_range&) {
    UNICORE_WARN("server/" + config_.name) << "malformed pipe request";
  }
}

void UsiteServer::handle_pipe_client_message(Bytes&& wire) {
  // Runs on the gateway host: route replies and notifications out.
  try {
    ByteReader reader{wire};
    auto type = static_cast<PipeMessage>(reader.u8());
    if (type == kPipeReply) {
      std::uint64_t pipe_id = reader.u64();
      auto it = pipe_pending_.find(pipe_id);
      if (it == pipe_pending_.end()) return;
      auto handler = std::move(it->second);
      pipe_pending_.erase(it);
      handler(reader.raw(reader.remaining()));
    } else if (type == kPipeNotify) {
      std::uint64_t session_id = reader.u64();
      deliver_to_session(session_id, reader.raw(reader.remaining()));
    }
  } catch (const std::out_of_range&) {
    UNICORE_WARN("server/" + config_.name) << "malformed pipe reply";
  }
}

void UsiteServer::notify_session_raw(std::uint64_t session_id, Bytes wire) {
  // On the NJS host of a split deployment, traffic to clients goes back
  // through the gateway across the pipe.
  if (config_.split() && pipe_server_ != nullptr) {
    ByteWriter w;
    w.u8(kPipeNotify);
    w.u64(session_id);
    w.raw(wire);
    pipe_server_->send(w.take());
    return;
  }
  deliver_to_session(session_id, std::move(wire));
}

void UsiteServer::deliver_to_session(std::uint64_t session_id, Bytes wire) {
  auto it = sessions_.find(session_id);
  if (it == sessions_.end()) return;
  if (!it->second->channel->established()) return;
  it->second->channel->send(std::move(wire));
}

// ---- PeerLink ----------------------------------------------------------------

UsiteServer::PeerConnection& UsiteServer::peer_connection(
    const std::string& usite) {
  auto it = peer_connections_.find(usite);
  if (it != peer_connections_.end()) return *it->second;

  auto connection = std::make_unique<PeerConnection>();
  connection->usite = usite;

  net::ChannelPool::Config pool_config;
  pool_config.local_host = config_.njs_side_host();
  pool_config.remote = peers_.at(usite);
  pool_config.size = peer_pool_size_;
  pool_config.channel.credential = credential_;
  pool_config.channel.trust = &gateway_.trust_store();
  pool_config.channel.required_peer_usage = crypto::kUsageServerAuth;
  pool_config.channel.features = advertised_features_;
  pool_config.channel.session_cache = &peer_sessions_;
  pool_config.channel.record_pool = record_pool_;
  connection->pool =
      net::ChannelPool::create(engine_, network_, rng_,
                               std::move(pool_config));

  std::string peer_name = usite;
  connection->pool->set_receiver(
      [this, peer_name](std::size_t slot, Bytes&& wire) {
        handle_peer_message(peer_name, slot, std::move(wire));
      });
  connection->pool->set_slot_failure(
      [this, peer_name](std::size_t slot, const util::Error& error) {
        fail_peer_slot(peer_name, slot, error);
      });

  PeerConnection& ref = *connection;
  peer_connections_[usite] = std::move(connection);
  return ref;
}

void UsiteServer::fail_peer_slot(const std::string& usite, std::size_t slot,
                                 const util::Error& error) {
  auto it = peer_connections_.find(usite);
  if (it == peer_connections_.end()) return;
  PeerConnection& connection = *it->second;
  // Only the failed slot's work dies — requests and outcome watchers on
  // the pool's other slots are untouched. Collect before invoking:
  // handlers may re-enter and register new work.
  std::vector<std::function<void(Result<Bytes>)>> failed;
  for (auto pit = connection.pending.begin();
       pit != connection.pending.end();) {
    if (pit->second.slot == slot) {
      if (pit->second.timeout) engine_.cancel(*pit->second.timeout);
      failed.push_back(std::move(pit->second.handler));
      pit = connection.pending.erase(pit);
    } else {
      ++pit;
    }
  }
  std::vector<std::function<void(ajo::Outcome)>> lost_finals;
  for (auto fit = connection.finals.begin();
       fit != connection.finals.end();) {
    if (fit->second.slot == slot) {
      lost_finals.push_back(std::move(fit->second.handler));
      fit = connection.finals.erase(fit);
    } else {
      ++fit;
    }
  }
  for (auto& handler : failed) handler(error);
  // Jobs already consigned remotely are reported unsuccessful: the
  // session that would have carried their outcome is gone.
  for (auto& handler : lost_finals) {
    ajo::Outcome outcome;
    outcome.status = ajo::ActionStatus::kNotSuccessful;
    outcome.message = "peer link to " + usite + " lost: " + error.message;
    handler(std::move(outcome));
  }
}

void UsiteServer::handle_peer_message(const std::string& usite,
                                      std::size_t slot, Bytes&& wire) {
  auto it = peer_connections_.find(usite);
  if (it == peer_connections_.end()) return;
  PeerConnection& connection = *it->second;
  try {
    ByteReader reader{wire};
    auto type = static_cast<MessageType>(reader.u8());
    if (type == MessageType::kReply) {
      std::uint64_t request_id = reader.u64();
      bool ok = reader.u8() != 0;
      auto handler_it = connection.pending.find(request_id);
      if (handler_it == connection.pending.end()) return;  // after timeout
      if (handler_it->second.timeout) engine_.cancel(*handler_it->second.timeout);
      auto handler = std::move(handler_it->second.handler);
      connection.pending.erase(handler_it);
      connection.last_reply_slot = slot;
      if (ok)
        handler(reader.raw(reader.remaining()));
      else
        handler(decode_error(reader));
    } else if (type == MessageType::kNotification) {
      std::uint64_t token = reader.u64();
      auto outcome = ajo::Outcome::decode(reader);
      if (!outcome) return;
      auto final_it = connection.finals.find(token);
      if (final_it == connection.finals.end()) return;
      auto handler = std::move(final_it->second.handler);
      connection.finals.erase(final_it);
      handler(std::move(outcome.value()));
    }
  } catch (const std::out_of_range&) {
    UNICORE_WARN("server/" + config_.name)
        << "malformed peer message from " << usite;
  }
}

void UsiteServer::send_peer_request(
    const std::string& usite, RequestKind kind, Bytes payload,
    std::function<void(Result<Bytes>)> on_reply) {
  if (!peers_.count(usite)) {
    on_reply(util::make_error(ErrorCode::kNotFound,
                              "unknown peer usite: " + usite));
    return;
  }
  PeerConnection& connection = peer_connection(usite);
  std::uint64_t request_id = next_request_id_++;
  std::size_t slot = connection.pool->next_slot();
  PeerConnection::PendingPeer pending;
  pending.handler = std::move(on_reply);
  pending.slot = slot;
  // A lost request or reply must not hang the caller forever: after the
  // deadline the request fails kTimeout — retryable, and the peer may
  // have acted, which is why consignments carry idempotency keys.
  pending.timeout =
      engine_.after(peer_request_timeout_, [this, usite, request_id] {
        auto conn_it = peer_connections_.find(usite);
        if (conn_it == peer_connections_.end()) return;
        auto it = conn_it->second->pending.find(request_id);
        if (it == conn_it->second->pending.end()) return;
        auto handler = std::move(it->second.handler);
        conn_it->second->pending.erase(it);
        metrics_
            ->counter("unicore_peer_request_timeouts_total",
                      {{"usite", config_.name}})
            .increment();
        handler(util::make_error(ErrorCode::kTimeout,
                                 "peer request to " + usite + " timed out"));
      });
  connection.pending[request_id] = std::move(pending);
  // A synchronous connect failure fails the entry we just registered
  // through the pool's slot-failure callback.
  connection.pool->send_on(slot, make_request(kind, request_id, payload));
}

void UsiteServer::peer_call(const std::string& usite, RequestKind kind,
                            Bytes payload, int attempt,
                            std::function<void(Result<Bytes>)> on_reply) {
  util::CircuitBreaker& breaker = peer_breakers_[usite];
  if (!breaker.allow(engine_.now())) {
    metrics_
        ->counter("unicore_peer_circuit_rejections_total",
                  {{"usite", config_.name}, {"peer", usite}})
        .increment();
    on_reply(util::make_error(
        ErrorCode::kUnavailable,
        "peer circuit open: " + usite + " (" +
            util::circuit_state_name(breaker.state()) + ")"));
    return;
  }
  Bytes wire_payload = payload;  // the original is retained for retries
  auto handler = [this, usite, kind, payload = std::move(payload), attempt,
                  on_reply = std::move(on_reply)](Result<Bytes> reply) mutable {
    util::CircuitBreaker& breaker = peer_breakers_[usite];
    if (reply) {
      breaker.record_success();
      on_reply(std::move(reply));
      return;
    }
    if (!util::is_retryable(reply.error().code)) {
      // A real rejection; the breaker only counts transport-level
      // failures, and retrying would repeat the same answer.
      on_reply(std::move(reply));
      return;
    }
    breaker.record_failure(engine_.now());
    if (attempt >= peer_backoff_.max_attempts) {
      on_reply(std::move(reply));
      return;
    }
    ++peer_retries_;
    metrics_
        ->counter("unicore_peer_retries_total",
                  {{"usite", config_.name}, {"peer", usite}})
        .increment();
    sim::Time delay = util::backoff_delay_us(peer_backoff_, attempt, rng_);
    UNICORE_DEBUG("server/" + config_.name)
        << "peer request to " << usite << " failed ("
        << reply.error().to_string() << "); retry " << attempt + 1 << " in "
        << delay << "us";
    engine_.after(delay, [this, usite, kind, payload = std::move(payload),
                          attempt, on_reply = std::move(on_reply)]() mutable {
      peer_call(usite, kind, std::move(payload), attempt + 1,
                std::move(on_reply));
    });
  };
  send_peer_request(usite, kind, std::move(wire_payload), std::move(handler));
}

void UsiteServer::consign(
    const std::string& usite, const njs::ForwardedConsignment& consignment,
    std::function<void(Result<njs::RemoteJobHandle>)> on_accepted,
    std::function<void(ajo::Outcome)> on_final) {
  peer_call(
      usite, RequestKind::kForwardConsign, encode_forwarded(consignment), 1,
      [this, usite, on_accepted = std::move(on_accepted),
       on_final = std::move(on_final)](Result<Bytes> reply) {
        if (!reply) {
          on_accepted(reply.error());
          return;
        }
        ByteReader reader{reply.value()};
        njs::RemoteJobHandle handle;
        handle.usite = usite;
        handle.token = reader.u64();
        // Bind the outcome watcher to the slot whose session carried
        // the consignment — the peer notifies through that session.
        if (auto it = peer_connections_.find(usite);
            it != peer_connections_.end() && on_final)
          it->second->finals[handle.token] = {std::move(on_final),
                                              it->second->last_reply_slot};
        on_accepted(handle);
      });
}

// ---- file movement: chunked engine with legacy fallback --------------------

void UsiteServer::with_peer_features(
    const std::string& usite,
    std::function<void(Result<std::uint64_t>)> ready) {
  if (!peers_.count(usite)) {
    ready(util::make_error(ErrorCode::kNotFound,
                           "unknown peer usite: " + usite));
    return;
  }
  peer_connection(usite).pool->with_features(std::move(ready));
}

std::shared_ptr<XferRails> UsiteServer::peer_rails(const std::string& usite) {
  auto it = peer_rails_.find(usite);
  if (it != peer_rails_.end() && it->second->streams() == transfer_streams_)
    return it->second;

  XferRails::Config config;
  config.local_host = config_.njs_side_host();
  config.remote = peers_.at(usite);
  config.streams = transfer_streams_;
  config.credential = credential_;
  config.trust = &gateway_.trust_store();
  config.required_peer_usage = crypto::kUsageServerAuth;
  config.request_timeout = peer_request_timeout_;
  config.session_cache = &peer_sessions_;
  config.features = advertised_features_;
  config.record_pool = record_pool_;
  auto rails = XferRails::create(engine_, network_, rng_, std::move(config));
  peer_rails_[usite] = rails;
  return rails;
}

void UsiteServer::push_file_chunked(
    const njs::RemoteJobHandle& target, const std::string& uspace_name,
    std::shared_ptr<const uspace::FileBlob> blob,
    std::function<void(Status)> done) {
  ++transfer_stats_.chunked;
  xfer::PushSpec spec;
  spec.source = config_.name;
  spec.token = target.token;
  spec.name = uspace_name;
  xfer_manager_.push(peer_rails(target.usite), spec, std::move(blob),
                     transfer_options_,
                     [done = std::move(done)](Result<xfer::TransferStats> r) {
                       if (!r)
                         done(r.error());
                       else
                         done(Status::ok_status());
                     });
}

void UsiteServer::pull_file_chunked(
    const njs::RemoteJobHandle& source, const std::string& uspace_name,
    std::function<void(Result<uspace::FileBlob>)> done) {
  ++transfer_stats_.chunked;
  xfer::PullSpec spec;
  spec.role = xfer::Role::kPeerPull;
  spec.token = source.token;
  spec.name = uspace_name;
  spec.store = chunk_store_;  // open-reply manifest dedup on the pull path
  xfer_manager_.pull(peer_rails(source.usite), spec, transfer_options_,
                     [done = std::move(done)](Result<xfer::PullResult> r) {
                       if (!r)
                         done(r.error());
                       else
                         done(std::move(r.value().blob));
                     });
}

void UsiteServer::deliver_file(const njs::RemoteJobHandle& target,
                               const std::string& uspace_name,
                               std::shared_ptr<const uspace::FileBlob> blob,
                               std::function<void(Status)> done) {
  if (blob == nullptr) {
    done(util::make_error(ErrorCode::kInvalidArgument,
                          "deliver_file: null blob"));
    return;
  }
  auto done_ptr =
      std::make_shared<std::function<void(Status)>>(std::move(done));
  auto legacy = [this, target, uspace_name, done_ptr](
                    std::shared_ptr<const uspace::FileBlob> blob) {
    ++transfer_stats_.legacy;
    ByteWriter payload;
    payload.u64(target.token);
    payload.str(uspace_name);
    blob->encode(payload);
    peer_call(target.usite, RequestKind::kDeliverFile, payload.take(), 1,
              [done_ptr](Result<Bytes> reply) {
                if (!reply)
                  (*done_ptr)(reply.error());
                else
                  (*done_ptr)(Status::ok_status());
              });
  };
  if (blob->size() < transfer_threshold_) {
    legacy(std::move(blob));
    return;
  }
  with_peer_features(
      target.usite,
      [this, target, uspace_name, blob = std::move(blob), done_ptr,
       legacy](Result<std::uint64_t> features) mutable {
        if (features &&
            (features.value() & net::kFeatureChunkedXfer) != 0) {
          push_file_chunked(
              target, uspace_name, blob,
              [done_ptr, legacy, blob](Status status) mutable {
                // The chunked protocol got refused mid-flight (e.g. the
                // peer restarted into an old build): repeat through the
                // legacy whole-blob request once.
                if (!status.ok() &&
                    status.error().code == ErrorCode::kFailedPrecondition)
                  legacy(std::move(blob));
                else
                  (*done_ptr)(status);
              });
          return;
        }
        // v1 peer — or the feature probe itself failed, in which case
        // the legacy path's own retry ladder takes over.
        legacy(std::move(blob));
      });
}

void UsiteServer::fetch_file(
    const njs::RemoteJobHandle& source, const std::string& uspace_name,
    std::function<void(Result<uspace::FileBlob>)> done) {
  auto legacy = [this, source, uspace_name](
                    std::function<void(Result<uspace::FileBlob>)> done) {
    ++transfer_stats_.legacy;
    ByteWriter payload;
    payload.u64(source.token);
    payload.str(uspace_name);
    peer_call(source.usite, RequestKind::kFetchFile, payload.take(), 1,
              [done = std::move(done)](Result<Bytes> reply) {
                if (!reply) {
                  done(reply.error());
                  return;
                }
                try {
                  ByteReader reader{reply.value()};
                  done(uspace::FileBlob::decode(reader));
                } catch (const std::out_of_range&) {
                  done(util::make_error(ErrorCode::kInvalidArgument,
                                        "malformed file reply"));
                }
              });
  };
  // Pull size is unknown up front, so every fetch from a chunked peer
  // goes through the engine; its inline-open fast path keeps small
  // files at one round trip.
  if (transfer_threshold_ == std::numeric_limits<std::uint64_t>::max()) {
    legacy(std::move(done));
    return;
  }
  with_peer_features(
      source.usite,
      [this, source, uspace_name, done = std::move(done),
       legacy = std::move(legacy)](Result<std::uint64_t> features) mutable {
        if (features &&
            (features.value() & net::kFeatureChunkedXfer) != 0) {
          pull_file_chunked(
              source, uspace_name,
              [done = std::move(done),
               legacy](Result<uspace::FileBlob> result) mutable {
                // Chunked pull refused mid-flight: whole-blob fallback.
                if (!result && result.error().code ==
                                   ErrorCode::kFailedPrecondition)
                  legacy(std::move(done));
                else
                  done(std::move(result));
              });
          return;
        }
        legacy(std::move(done));
      });
}

void UsiteServer::deliver_files(
    const njs::RemoteJobHandle& target,
    std::vector<std::pair<std::string,
                          std::shared_ptr<const uspace::FileBlob>>>
        files,
    std::function<void(Status)> done) {
  if (files.empty()) {
    done(Status::ok_status());
    return;
  }
  for (const auto& [name, blob] : files) {
    if (blob == nullptr) {
      done(util::make_error(ErrorCode::kInvalidArgument,
                            "deliver_files: null blob for " + name));
      return;
    }
  }
  with_peer_features(
      target.usite,
      [this, target, files = std::move(files),
       done = std::move(done)](Result<std::uint64_t> features) mutable {
        constexpr std::uint64_t kBundleBits =
            net::kFeatureChunkedXfer | net::kFeatureBundleXfer;
        if (!features || (features.value() & kBundleBits) != kBundleBits) {
          // v1 or bundleless peer: the PeerLink default walks the batch
          // one deliver_file at a time (each still picking chunked vs
          // legacy per file).
          njs::PeerLink::deliver_files(target, std::move(files),
                                       std::move(done));
          return;
        }
        ++transfer_stats_.bundled;
        xfer::BundlePushSpec spec;
        spec.source = config_.name;
        spec.token = target.token;
        std::vector<xfer::BundleFile> bundle;
        bundle.reserve(files.size());
        for (const auto& [name, blob] : files)
          bundle.push_back({name, blob});
        xfer_manager_.push_tree(
            peer_rails(target.usite), spec, std::move(bundle),
            transfer_options_,
            [this, target, files = std::move(files), done = std::move(done)](
                Result<xfer::BundleStats> r) mutable {
              // Bundle refused mid-flight (peer restarted into a
              // bundleless build): repeat through per-file delivery.
              if (!r && r.error().code == ErrorCode::kFailedPrecondition) {
                njs::PeerLink::deliver_files(target, std::move(files),
                                             std::move(done));
                return;
              }
              if (!r)
                done(r.error());
              else
                done(Status::ok_status());
            });
      });
}

void UsiteServer::fetch_files(
    const njs::RemoteJobHandle& source, std::vector<std::string> names,
    std::function<void(Result<std::vector<uspace::FileBlob>>)> done) {
  if (names.empty()) {
    done(std::vector<uspace::FileBlob>{});
    return;
  }
  if (transfer_threshold_ == std::numeric_limits<std::uint64_t>::max()) {
    // The chunked engine is disabled outright: per-file legacy requests.
    njs::PeerLink::fetch_files(source, std::move(names), std::move(done));
    return;
  }
  with_peer_features(
      source.usite,
      [this, source, names = std::move(names),
       done = std::move(done)](Result<std::uint64_t> features) mutable {
        constexpr std::uint64_t kBundleBits =
            net::kFeatureChunkedXfer | net::kFeatureBundleXfer;
        if (!features || (features.value() & kBundleBits) != kBundleBits) {
          njs::PeerLink::fetch_files(source, std::move(names),
                                     std::move(done));
          return;
        }
        ++transfer_stats_.bundled;
        xfer::BundlePullSpec spec;
        spec.role = xfer::Role::kPeerPull;
        spec.token = source.token;
        spec.names = names;
        spec.store = chunk_store_;
        xfer_manager_.pull_tree(
            peer_rails(source.usite), spec, transfer_options_,
            [this, source, names = std::move(names), done = std::move(done)](
                Result<xfer::BundlePullResult> r) mutable {
              if (!r && r.error().code == ErrorCode::kFailedPrecondition) {
                njs::PeerLink::fetch_files(source, std::move(names),
                                           std::move(done));
                return;
              }
              if (!r)
                done(r.error());
              else
                done(std::move(r.value().blobs));
            });
      });
}

void UsiteServer::control(const njs::RemoteJobHandle& target,
                          ajo::ControlService::Command command,
                          std::function<void(Status)> done) {
  ByteWriter payload;
  payload.u64(target.token);
  payload.u8(static_cast<std::uint8_t>(command));
  peer_call(target.usite, RequestKind::kPeerControl, payload.take(), 1,
            [done = std::move(done)](Result<Bytes> reply) {
                      if (!reply)
                        done(reply.error());
                      else
                        done(Status::ok_status());
                    });
}

}  // namespace unicore::server
