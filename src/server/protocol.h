// The UNICORE high-level protocol (§5.3): "a client-server type of
// communication. JPA/JMC act as client while NJS (resp. the gateway)
// acts as both client and server depending on the partner. ... It is an
// asynchronous protocol."
//
// Message envelopes over a SecureChannel:
//   kRequest      u8 | kind u8 | request_id u64 | payload
//   kReply        u8 | request_id u64 | ok u8 | payload-or-error
//   kNotification u8 | job token u64 | Outcome      (server -> client push
//                                                    for forwarded jobs)
#pragma once

#include <cstdint>
#include <string>

#include "ajo/job.h"
#include "ajo/outcome.h"
#include "ajo/services.h"
#include "gateway/gateway.h"
#include "njs/njs.h"
#include "njs/peer_link.h"
#include "util/bytes.h"
#include "util/result.h"

namespace unicore::server {

enum class MessageType : std::uint8_t {
  kRequest = 1,
  kReply = 2,
  kNotification = 3,
};

enum class RequestKind : std::uint8_t {
  kConsign = 1,        // JPA: SignedAjo
  kQuery = 2,          // JMC: token + detail
  kList = 3,           // JMC
  kControl = 4,        // JMC: token + command
  kFetchOutput = 5,    // JMC: token + file name
  kResourcePages = 6,  // JPA: resource info for the Usite's Vsites
  kGetBundle = 7,      // "applet" download: bundle name
  kForwardConsign = 8, // peer NJS: ForwardedConsignment
  kDeliverFile = 9,    // peer NJS: token + name + blob
  kFetchFile = 10,     // peer NJS: token + name
  kPeerControl = 11,   // peer NJS: token + command
  kMonitorMetrics = 12,  // MonitorService: Usite metrics snapshot
  kMonitorTrace = 13,    // MonitorService: token -> job trace timeline
  kJournalInspect = 14,  // recovery diagnostics: NJS journal stats
                         // (requires the kFeatureJournalInspect channel
                         // feature — v1 peers get kUnimplemented)
  // Chunked transfer engine (src/xfer/). All three require the
  // kFeatureChunkedXfer channel feature — v1 peers get
  // kFailedPrecondition and the sender falls back to kDeliverFile /
  // kFetchFile. Bodies start with a xfer::Role byte that selects the
  // authentication path (push / peer pull: server certificate; client
  // pull: user certificate).
  kXferOpen = 15,   // open or resume a transfer by durable key
  kXferChunk = 16,  // one chunk (push) or one chunk request (pull)
  kXferClose = 17,  // verify + commit (push) / release (pull)
};

const char* request_kind_name(RequestKind kind);

// --- envelope builders ---------------------------------------------------

util::Bytes make_request(RequestKind kind, std::uint64_t request_id,
                         util::ByteView payload);
util::Bytes make_ok_reply(std::uint64_t request_id, util::ByteView payload);
util::Bytes make_error_reply(std::uint64_t request_id,
                             const util::Error& error);
util::Bytes make_notification(std::uint64_t job_token,
                              const ajo::Outcome& outcome);

// --- payload codecs --------------------------------------------------------

void encode_user(util::ByteWriter& w, const gateway::AuthenticatedUser& user);
gateway::AuthenticatedUser decode_user(util::ByteReader& r);

util::Bytes encode_forwarded(const njs::ForwardedConsignment& consignment);
util::Result<njs::ForwardedConsignment> decode_forwarded(
    util::ByteReader& r);

void encode_error(util::ByteWriter& w, const util::Error& error);
util::Error decode_error(util::ByteReader& r);

}  // namespace unicore::server
