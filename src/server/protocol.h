// The UNICORE high-level protocol (§5.3): "a client-server type of
// communication. JPA/JMC act as client while NJS (resp. the gateway)
// acts as both client and server depending on the partner. ... It is an
// asynchronous protocol."
//
// Message envelopes over a SecureChannel:
//   kRequest      u8 | kind u8 | request_id u64 | payload
//   kReply        u8 | request_id u64 | ok u8 | payload-or-error
//   kNotification u8 | job token u64 | Outcome      (server -> client push
//                                                    for forwarded jobs)
//   kTokenRequest u8 | kind u8 | request_id u64 | token blob | payload
//                 (portal facade: the bearer token selects the identity
//                  instead of the channel's peer certificate; requires
//                  the negotiated kFeaturePortal channel feature)
#pragma once

#include <cstdint>
#include <string>

#include "ajo/job.h"
#include "ajo/outcome.h"
#include "ajo/services.h"
#include "gateway/gateway.h"
#include "njs/njs.h"
#include "njs/peer_link.h"
#include "util/bytes.h"
#include "util/result.h"

namespace unicore::server {

enum class MessageType : std::uint8_t {
  kRequest = 1,
  kReply = 2,
  kNotification = 3,
  kTokenRequest = 4,  // kRequest with a leading session-token blob
};

enum class RequestKind : std::uint8_t {
  kConsign = 1,        // JPA: SignedAjo
  kQuery = 2,          // JMC: token + detail
  kList = 3,           // JMC
  kControl = 4,        // JMC: token + command
  kFetchOutput = 5,    // JMC: token + file name
  kResourcePages = 6,  // JPA: resource info for the Usite's Vsites
  kGetBundle = 7,      // "applet" download: bundle name
  kForwardConsign = 8, // peer NJS: ForwardedConsignment
  kDeliverFile = 9,    // peer NJS: token + name + blob
  kFetchFile = 10,     // peer NJS: token + name
  kPeerControl = 11,   // peer NJS: token + command
  kMonitorMetrics = 12,  // MonitorService: Usite metrics snapshot
  kMonitorTrace = 13,    // MonitorService: token -> job trace timeline
  kJournalInspect = 14,  // recovery diagnostics: NJS journal stats
                         // (requires the kFeatureJournalInspect channel
                         // feature — v1 peers get kUnimplemented)
  // Chunked transfer engine (src/xfer/). All three require the
  // kFeatureChunkedXfer channel feature — v1 peers get
  // kFailedPrecondition and the sender falls back to kDeliverFile /
  // kFetchFile. Bodies start with a xfer::Role byte that selects the
  // authentication path (push / peer pull: server certificate; client
  // pull: user certificate).
  kXferOpen = 15,   // open or resume a transfer by durable key
  kXferChunk = 16,  // one chunk (push) or one chunk request (pull)
  kXferClose = 17,  // verify + commit (push) / release (pull)
  // Portal facade (docs/PORTAL.md). All six require the negotiated
  // kFeaturePortal channel feature — v1 peers get kFailedPrecondition.
  // kSessionOpen authenticates the channel's peer certificate (the one
  // full- or resumed-handshake contact) and mints a bearer token; the
  // other five normally ride the kTokenRequest envelope.
  kSessionOpen = 18,     // ttl request -> token + expiry + login
  kSessionRefresh = 19,  // envelope token -> extended expiry
  kSessionClose = 20,    // envelope token -> explicit logout
  kStorageList = 21,     // caller's per-job working storages
  kStorageFiles = 22,    // job token -> names in that job's storage
  kStorageReap = 23,     // job token -> empty the storage, free quota
  // Bundle transfers (docs/DATA.md §3): one open carries the manifests
  // of up to xfer::kMaxBundleFiles files; their chunks interleave over
  // ordinary kXferChunk frames tagged with an in-bundle file index; one
  // close commits the lot. Requires kFeatureChunkedXfer AND
  // kFeatureBundleXfer — peers without the bundle bit get
  // kFailedPrecondition and the sender falls back to one transfer per
  // file.
  kXferBundleOpen = 24,   // open or resume a bundle by durable key
  kXferBundleClose = 25,  // commit (push) / release (pull) the bundle
};

const char* request_kind_name(RequestKind kind);

/// File-movement counters shared by both ends of the fetch/deliver API:
/// which wire path each transfer took. The chunked engine and the
/// legacy whole-blob requests are an internal fallback pair — callers
/// see one entry point and these stats.
struct TransferStats {
  std::uint64_t chunked = 0;  // through the chunked engine (src/xfer/)
  std::uint64_t legacy = 0;   // whole-blob kDeliverFile / kFetchFile
  std::uint64_t bundled = 0;  // batches moved as bundle manifests
  std::uint64_t total() const { return chunked + legacy + bundled; }
};

// --- envelope builders ---------------------------------------------------

util::Bytes make_request(RequestKind kind, std::uint64_t request_id,
                         util::ByteView payload);
/// A request authenticated by a gateway-issued session token instead of
/// the channel's peer certificate (portal facade).
util::Bytes make_token_request(RequestKind kind, std::uint64_t request_id,
                               util::ByteView token, util::ByteView payload);
util::Bytes make_ok_reply(std::uint64_t request_id, util::ByteView payload);
util::Bytes make_error_reply(std::uint64_t request_id,
                             const util::Error& error);
util::Bytes make_notification(std::uint64_t job_token,
                              const ajo::Outcome& outcome);

// --- payload codecs --------------------------------------------------------

void encode_user(util::ByteWriter& w, const gateway::AuthenticatedUser& user);
gateway::AuthenticatedUser decode_user(util::ByteReader& r);

util::Bytes encode_forwarded(const njs::ForwardedConsignment& consignment);
util::Result<njs::ForwardedConsignment> decode_forwarded(
    util::ByteReader& r);

void encode_error(util::ByteWriter& w, const util::Error& error);
util::Error decode_error(util::ByteReader& r);

}  // namespace unicore::server
