// Fault-injection harness: schedules network faults (partitions, drop
// bursts, latency spikes) and arbitrary fault callbacks (process crash /
// restart, batch-subsystem offline) at simulation times, so recovery
// tests read as a timeline instead of hand-woven engine events.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "net/network.h"
#include "sim/engine.h"

namespace unicore::net {

class FaultInjector {
 public:
  FaultInjector(sim::Engine& engine, Network& network)
      : engine_(engine), network_(network) {}

  /// Severs the path between two hosts at `when`.
  void partition_at(sim::Time when, const std::string& a, const std::string& b);

  /// Restores the path between two hosts at `when`.
  void heal_at(sim::Time when, const std::string& a, const std::string& b);

  /// Severs the path at `when` and restores it `duration` later.
  void partition_for(sim::Time when, sim::Time duration, const std::string& a,
                     const std::string& b);

  /// From `when` until `when + duration`, every message between the two
  /// hosts takes `extra` additional latency.
  void latency_spike_at(sim::Time when, const std::string& a,
                        const std::string& b, sim::Time extra,
                        sim::Time duration);

  /// At `when`, arms a burst that drops the next `count` messages sent
  /// from `from` to `to`.
  void drop_next_at(sim::Time when, const std::string& from,
                    const std::string& to, int count);

  /// Schedules an arbitrary fault action (crash an NJS, take a batch
  /// subsystem offline, ...) at `when`.
  void at(sim::Time when, std::function<void()> action);

  /// Number of fault events scheduled so far.
  int scheduled() const { return scheduled_; }

 private:
  sim::Engine& engine_;
  Network& network_;
  int scheduled_ = 0;
};

}  // namespace unicore::net
