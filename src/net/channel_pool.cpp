#include "net/channel_pool.h"

#include <utility>

namespace unicore::net {

using util::Bytes;
using util::ErrorCode;

std::shared_ptr<ChannelPool> ChannelPool::create(sim::Engine& engine,
                                                 Network& network,
                                                 util::Rng& rng,
                                                 Config config) {
  return std::shared_ptr<ChannelPool>(
      new ChannelPool(engine, network, rng, std::move(config)));
}

ChannelPool::ChannelPool(sim::Engine& engine, Network& network, util::Rng& rng,
                         Config config)
    : engine_(engine),
      network_(network),
      rng_(rng.fork()),
      config_(std::move(config)) {
  if (config_.size == 0) config_.size = 1;
  if (config_.channel.session_key.empty())
    config_.channel.session_key = SessionCache::key_for(
        config_.remote.host, config_.remote.port);
  slots_.resize(config_.size);
}

ChannelPool::~ChannelPool() {
  for (auto& slot : slots_) {
    if (slot.channel) slot.channel->close();
  }
}

void ChannelPool::shutdown() {
  for (auto& slot : slots_) {
    if (slot.channel) slot.channel->close();
    slot.channel = nullptr;
    slot.established = false;
    slot.backlog.clear();
  }
  feature_waiters_.clear();
}

bool ChannelPool::any_established() const {
  for (const auto& slot : slots_)
    if (slot.established) return true;
  return false;
}

void ChannelPool::send_on(std::size_t slot_index, Bytes wire) {
  if (slot_index >= slots_.size()) slot_index %= slots_.size();
  ensure_slot(slot_index);
  Slot& slot = slots_[slot_index];
  if (!slot.channel) return;  // connect failed; failure handler already ran
  if (slot.established)
    slot.channel->send(std::move(wire));
  else
    slot.backlog.push_back(std::move(wire));
}

void ChannelPool::with_features(FeatureHandler ready) {
  for (const auto& slot : slots_) {
    if (slot.established) {
      ready(slot.channel->negotiated_features());
      return;
    }
  }
  feature_waiters_.push_back(std::move(ready));
  ensure_slot(0);
  // A synchronous connect failure has already flushed the waiters.
}

void ChannelPool::ensure_slot(std::size_t index) {
  Slot& slot = slots_[index];
  if (slot.channel && !slot.channel->failed()) return;
  if (slot.channel) {
    slot.channel = nullptr;
    slot.established = false;
  }

  auto endpoint = network_.connect(config_.local_host, config_.remote);
  if (!endpoint) {
    fail_slot(index, endpoint.error());
    return;
  }

  std::weak_ptr<ChannelPool> weak = weak_from_this();
  slot.established = false;
  ++connects_;
  slot.channel = SecureChannel::as_client(
      engine_, rng_, endpoint.value(), config_.channel,
      [weak, index](util::Status status) {
        auto self = weak.lock();
        if (!self) return;
        if (!status.ok()) {
          self->fail_slot(index, status.error());
          return;
        }
        Slot& slot = self->slots_[index];
        if (!slot.channel) return;
        if (slot.channel->resumed()) ++self->resumptions_;
        if (self->config_.required_features != 0 &&
            (slot.channel->negotiated_features() &
             self->config_.required_features) !=
                self->config_.required_features) {
          self->fail_slot(index,
                          util::make_error(ErrorCode::kFailedPrecondition,
                                           "peer lacks required channel "
                                           "features"));
          return;
        }
        slot.established = true;
        while (!slot.backlog.empty()) {
          slot.channel->send(std::move(slot.backlog.front()));
          slot.backlog.pop_front();
        }
        auto waiters = std::move(self->feature_waiters_);
        self->feature_waiters_.clear();
        std::uint64_t features = slot.channel->negotiated_features();
        for (auto& waiter : waiters) waiter(features);
      });
  slot.channel->set_receiver([weak, index](Bytes&& wire) {
    auto self = weak.lock();
    if (!self) return;
    if (self->on_message_) self->on_message_(index, std::move(wire));
  });
  slot.channel->set_close_handler([weak, index] {
    if (auto self = weak.lock())
      self->fail_slot(index, util::make_error(ErrorCode::kUnavailable,
                                              "pooled channel closed"));
  });
}

void ChannelPool::fail_slot(std::size_t index, util::Error error) {
  Slot& slot = slots_[index];
  auto channel = std::move(slot.channel);
  slot.channel = nullptr;
  slot.established = false;
  slot.backlog.clear();
  if (channel) channel->close();
  // Feature waiters fail only when no slot can answer them any more —
  // another established slot keeps them satisfied.
  if (!any_established() && !feature_waiters_.empty()) {
    auto waiters = std::move(feature_waiters_);
    feature_waiters_.clear();
    for (auto& waiter : waiters) waiter(error);
  }
  if (on_slot_failure_) on_slot_failure_(index, error);
}

}  // namespace unicore::net
