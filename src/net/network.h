// Simulated network substrate.
//
// Hosts are named ("gateway.fz-juelich.de"); connections are reliable,
// ordered, message-oriented pipes except for configurable per-message
// loss — exactly the "unreliability of the underlying communication
// mechanism" the paper's asynchronous protocol is designed to tolerate
// (§5.3). Links have latency and bandwidth so benches can measure
// transfer-rate effects (§5.6). Firewalls model the split-server
// deployment of §4.2/§5.2.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "net/reactor.h"
#include "obs/metrics.h"
#include "sim/engine.h"
#include "util/bytes.h"
#include "util/result.h"
#include "util/rng.h"

namespace unicore::net {

/// Seconds since the Unix epoch at simulation time 0 — 1999-08-25, the
/// date of the paper's final revision. Certificate validity is expressed
/// in epoch seconds, simulation time in microseconds since this instant.
constexpr std::int64_t kSimulationEpoch = 935'536'000;

/// Converts simulation time to certificate-validity epoch seconds.
constexpr std::int64_t epoch_seconds(sim::Time t) {
  return kSimulationEpoch + t / 1'000'000;
}

struct Address {
  std::string host;
  std::uint16_t port = 0;

  bool operator==(const Address&) const = default;
  auto operator<=>(const Address&) const = default;
  std::string to_string() const {
    return host + ":" + std::to_string(port);
  }
};

/// Quality of the path between two hosts.
struct LinkProfile {
  sim::Time latency = sim::msec(5);
  double bandwidth_bytes_per_sec = 10e6;
  double loss_probability = 0.0;
};

/// Per-host inbound packet filter. Default-allow until a rule or
/// deny_all() flips the host to default-deny; rules then whitelist
/// (source-host, port) pairs, with "*" matching any source.
class Firewall {
 public:
  void deny_all() { default_allow_ = false; }
  void allow(std::string source_host, std::uint16_t port) {
    default_allow_ = false;
    rules_.push_back({std::move(source_host), port});
  }
  void allow_from_any(std::uint16_t port) { allow("*", port); }

  bool permits(const std::string& source_host, std::uint16_t port) const {
    if (default_allow_) return true;
    for (const auto& rule : rules_)
      if (rule.port == port && (rule.source == "*" || rule.source == source_host))
        return true;
    return false;
  }

 private:
  struct Rule {
    std::string source;
    std::uint16_t port;
  };
  bool default_allow_ = true;
  std::vector<Rule> rules_;
};

class Network;

/// One side of an established connection. Message-oriented: each send()
/// arrives as one receive callback (or is dropped by link loss).
class Endpoint : public std::enable_shared_from_this<Endpoint> {
 public:
  using Receiver = std::function<void(util::Bytes&&)>;
  using BatchReceiver = std::function<void(std::vector<util::Bytes>&&)>;

  /// Queues a message toward the peer. Silently drops on closed
  /// connections (like writing to a dead TCP socket whose RST has not
  /// arrived yet).
  void send(util::Bytes message);

  /// Installs the receive callback; any messages that arrived before the
  /// receiver was set are delivered immediately (same event).
  void set_receiver(Receiver receiver);

  /// Installs a batch receive callback. When set, it takes precedence
  /// over the per-message receiver: the reactor hands over every message
  /// that became ready in the same tick as one vector, preserving arrival
  /// order. Messages queued in the inbox are flushed to it immediately.
  void set_batch_receiver(BatchReceiver receiver);

  /// Installs a callback fired once when the connection closes.
  void set_close_handler(std::function<void()> handler);

  /// Closes this side immediately; the peer observes the close only
  /// after every message already in flight toward it has arrived (FIFO:
  /// a close may not overtake data).
  void close();
  bool is_open() const;

  const std::string& local_host() const { return local_host_; }
  const std::string& remote_host() const { return remote_host_; }
  std::uint16_t remote_port() const { return remote_port_; }

  /// Total payload bytes *attempted* by send() on this side (counted
  /// before link loss, like interface TX counters).
  std::uint64_t bytes_sent() const { return bytes_sent_; }
  /// Payload bytes actually handed to the peer's receiver/inbox.
  std::uint64_t bytes_delivered() const { return bytes_delivered_; }

  /// The owning network's metrics registry; nullptr when none is wired.
  obs::MetricsRegistry* metrics() const;

 private:
  friend class Network;
  struct ConnectionState;

  std::shared_ptr<ConnectionState> state_;
  std::string local_host_;
  std::string remote_host_;
  std::uint16_t remote_port_ = 0;
  bool is_initiator_ = false;
  Receiver receiver_;
  BatchReceiver batch_receiver_;
  std::function<void()> close_handler_;
  std::deque<util::Bytes> inbox_;
  std::uint64_t bytes_sent_ = 0;
  std::uint64_t bytes_delivered_ = 0;

  void deliver(util::Bytes&& message);
  void handle_peer_close();
};

/// The network fabric: host link profiles, firewalls, listeners.
class Network {
 public:
  Network(sim::Engine& engine, util::Rng rng)
      : engine_(engine), rng_(std::move(rng)) {}

  sim::Engine& engine() { return engine_; }

  void set_default_link(LinkProfile profile) { default_link_ = profile; }

  /// Sets the (symmetric) profile between two hosts.
  void set_link(const std::string& a, const std::string& b,
                LinkProfile profile);

  const LinkProfile& link_between(const std::string& a,
                                  const std::string& b) const;

  Firewall& firewall(const std::string& host) { return firewalls_[host]; }

  using Acceptor = std::function<void(std::shared_ptr<Endpoint>)>;

  /// Binds an acceptor to `address`. Fails if already bound.
  util::Status listen(const Address& address, Acceptor acceptor);
  void close_listener(const Address& address);

  /// Opens a connection from `from_host` to `to`. Fails when nothing
  /// listens there or the destination firewall rejects the source.
  /// Connection setup itself is instantaneous (the cost is modelled in
  /// the handshake round trips that follow).
  util::Result<std::shared_ptr<Endpoint>> connect(const std::string& from_host,
                                                  const Address& to);

  /// Messages handed to transmit (counted whether or not they survive the
  /// trip); the fabric maintains sent = delivered + dropped.
  std::uint64_t messages_sent() const { return messages_sent_; }
  std::uint64_t messages_delivered() const { return messages_delivered_; }
  std::uint64_t messages_dropped() const { return messages_dropped_; }

  /// The delivery reactor for `host` (created on first use). Exposed for
  /// tests and benches that assert on batching behaviour.
  Reactor& reactor_for(const std::string& host);

  // --- fault injection ---------------------------------------------------
  // Knobs consulted per message in transmit(); see net/faults.h for the
  // scheduling harness that drives them from tests.

  /// Severs the path between two hosts (both directions): messages are
  /// dropped and new connects fail with kUnavailable.
  void partition(const std::string& a, const std::string& b);
  void heal(const std::string& a, const std::string& b);
  bool partitioned(const std::string& a, const std::string& b) const;

  /// Drops the next `count` messages sent from `from` to `to` (one
  /// direction only); models a burst of loss on an otherwise good link.
  void drop_next(const std::string& from, const std::string& to, int count);

  /// Adds `extra` latency to every message between two hosts until
  /// simulation time `until` (a latency spike).
  void add_latency_spike(const std::string& a, const std::string& b,
                         sim::Time extra, sim::Time until);

  /// Messages dropped by partitions or drop schedules (a subset of
  /// messages_dropped()).
  std::uint64_t messages_dropped_by_faults() const {
    return messages_dropped_by_faults_;
  }

  /// Routes fabric-level byte/message/drop counters through `registry`
  /// (shared with the Usites so one snapshot covers the whole grid).
  void set_metrics(std::shared_ptr<obs::MetricsRegistry> registry);
  obs::MetricsRegistry* metrics() const { return metrics_.get(); }

 private:
  friend class Endpoint;
  friend class Reactor;

  void transmit(Endpoint& from, util::Bytes message);
  void transmit_close(Endpoint& from, const std::shared_ptr<Endpoint>& peer);

  /// Reactor callbacks: a batch of ready messages for one endpoint
  /// (`target` may be null when every weak reference expired) and a close
  /// notice reaching the peer.
  void dispatch_batch(const std::shared_ptr<Endpoint>& target,
                      std::vector<Reactor::Item>&& batch);
  void dispatch_close(const std::shared_ptr<Endpoint>& target);

  struct LatencySpike {
    sim::Time extra = 0;
    sim::Time until = 0;
  };
  /// Shared capacity of one direction of the pipe between a host pair:
  /// every connection a->b serializes through the same link, and arrival
  /// times are clamped monotonic so nothing — data or close — overtakes
  /// on the wire (e.g. when a latency spike expires mid-stream).
  struct LinkQueue {
    sim::Time busy_until = 0;
    sim::Time last_arrival = 0;
  };
  static std::pair<std::string, std::string> host_pair(const std::string& a,
                                                       const std::string& b) {
    return a <= b ? std::make_pair(a, b) : std::make_pair(b, a);
  }

  /// Extra delay from an active latency spike between two hosts; expired
  /// spikes are garbage-collected here.
  sim::Time spike_extra(const std::string& a, const std::string& b);

  /// Computes the arrival time of `bytes` payload bytes sent now from
  /// `from` to `to`, advancing the shared link queue. Used by data and
  /// close notices alike so FIFO holds across both.
  sim::Time link_arrival(const std::string& from, const std::string& to,
                         std::size_t bytes, const LinkProfile& link);

  void count_drop(std::size_t n = 1);

  sim::Engine& engine_;
  util::Rng rng_;
  LinkProfile default_link_;
  std::map<std::pair<std::string, std::string>, LinkProfile> links_;
  std::map<std::string, Firewall> firewalls_;
  std::map<Address, Acceptor> listeners_;
  std::map<std::pair<std::string, std::string>, bool> partitions_;
  std::map<std::pair<std::string, std::string>, int> drop_schedules_;
  std::map<std::pair<std::string, std::string>, LatencySpike> spikes_;
  std::map<std::pair<std::string, std::string>, LinkQueue> link_queues_;
  std::map<std::string, std::unique_ptr<Reactor>> reactors_;
  std::uint64_t messages_sent_ = 0;
  std::uint64_t messages_delivered_ = 0;
  std::uint64_t messages_dropped_ = 0;
  std::uint64_t messages_dropped_by_faults_ = 0;
  std::shared_ptr<obs::MetricsRegistry> metrics_;
  obs::Counter* bytes_sent_counter_ = nullptr;
  obs::Counter* bytes_delivered_counter_ = nullptr;
  obs::Counter* sent_counter_ = nullptr;
  obs::Counter* delivered_counter_ = nullptr;
  obs::Counter* dropped_counter_ = nullptr;
};

}  // namespace unicore::net
