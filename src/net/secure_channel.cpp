#include "net/secure_channel.h"

#include <algorithm>

#include "crypto/hmac.h"
#include "util/log.h"
#include "util/thread_pool.h"

namespace unicore::net {

using crypto::Certificate;
using util::Bytes;
using util::ByteReader;
using util::ByteWriter;
using util::Error;
using util::ErrorCode;
using util::Status;

namespace {

enum MessageType : std::uint8_t {
  kClientHello = 1,
  kServerHello = 2,
  kClientCert = 3,
  kRecord = 4,
  kAlert = 5,
  kServerFinished = 6,  // key confirmation after client-cert validation
  kClientHelloResumed = 7,
  kServerHelloResumed = 8,
  kHelloRetry = 9,  // resumption refused: restart with a full ClientHello
  kRecordBatch = 10,  // coalesced records (kFeatureBatchRecords)
};

// Batched record framing limits. A record within a batch carries at most
// kFragmentLimit plaintext bytes — larger messages are split into
// fragment records (flags below) that the receiver reassembles. A frame
// coalesces records up to roughly kMaxFrameBytes of payload.
constexpr std::size_t kFragmentLimit = 256 * 1024;
constexpr std::size_t kMaxFrameBytes = 1024 * 1024;
constexpr std::uint64_t kMaxRecordsPerFrame = 4096;
/// Upper bound a peer can announce for a fragmented message — caps the
/// reassembly allocation a corrupt length field could demand.
constexpr std::uint64_t kMaxReassemblyBytes = 1ull << 30;

// Per-record fragmentation flags (authenticated via the record AAD).
enum RecordFlags : std::uint8_t {
  kComplete = 0,  // one record == one application message
  kFirst = 1,     // first fragment; carries the total plaintext size
  kMiddle = 2,
  kFinal = 3,
};

/// Record AAD: direction byte + big-endian sequence number, and for
/// batched records the fragmentation flags (plus the announced total for
/// first fragments) so a tampered flag or total fails the MAC, not the
/// reassembly.
std::size_t encode_record_aad(std::uint8_t* out, std::uint8_t direction,
                              std::uint64_t seq) {
  out[0] = direction;
  for (int i = 0; i < 8; ++i)
    out[1 + i] = static_cast<std::uint8_t>(seq >> (56 - 8 * i));
  return 9;
}

std::size_t encode_batch_aad(std::uint8_t* out, std::uint8_t direction,
                             std::uint64_t seq, std::uint8_t flags,
                             std::uint64_t total) {
  std::size_t n = encode_record_aad(out, direction, seq);
  out[n++] = flags;
  if (flags == kFirst)
    for (int i = 0; i < 8; ++i)
      out[n++] = static_cast<std::uint8_t>(total >> (56 - 8 * i));
  return n;
}

constexpr std::string_view kKdfLabel = "unicore-secure-channel-v1";
constexpr std::string_view kResumeKdfLabel = "unicore-secure-channel-resume";
constexpr std::string_view kBinderLabel = "unicore-resume-binder";

// The binder key proves possession of the ticket's master secret: only
// the two original handshake parties can derive it, so a stolen or
// replayed ticket without the secret fails the binder check.
Bytes resumption_binder_key(const Bytes& master_secret) {
  crypto::Digest prk{};
  std::copy(master_secret.begin(), master_secret.end(), prk.begin());
  return crypto::hkdf_expand(prk, util::to_bytes(std::string(kBinderLabel)),
                             32);
}

void write_chain(ByteWriter& w, const Certificate& leaf) {
  // This reproduction issues user/server certificates directly from the
  // root CA, so chains have length 1; the wire format still carries a
  // count for forward compatibility with intermediates.
  w.varint(1);
  w.blob(leaf.der());
}

}  // namespace

std::shared_ptr<SecureChannel> SecureChannel::as_client(
    sim::Engine& engine, util::Rng& rng, std::shared_ptr<Endpoint> endpoint,
    Config config, EstablishedHandler on_established) {
  auto channel = std::shared_ptr<SecureChannel>(
      new SecureChannel(engine, rng, std::move(endpoint), std::move(config),
                        std::move(on_established), /*is_client=*/true));
  channel->start();
  return channel;
}

std::shared_ptr<SecureChannel> SecureChannel::as_server(
    sim::Engine& engine, util::Rng& rng, std::shared_ptr<Endpoint> endpoint,
    Config config, EstablishedHandler on_established) {
  auto channel = std::shared_ptr<SecureChannel>(
      new SecureChannel(engine, rng, std::move(endpoint), std::move(config),
                        std::move(on_established), /*is_client=*/false));
  channel->start();
  return channel;
}

SecureChannel::SecureChannel(sim::Engine& engine, util::Rng& rng,
                             std::shared_ptr<Endpoint> endpoint, Config config,
                             EstablishedHandler on_established, bool is_client)
    : engine_(engine),
      rng_(rng.fork()),
      endpoint_(std::move(endpoint)),
      config_(std::move(config)),
      on_established_(std::move(on_established)),
      is_client_(is_client),
      state_(is_client ? State::kClientAwaitServerHello
                       : State::kServerAwaitClientHello) {}

void SecureChannel::start() {
  // Weak captures: the endpoint outlives the channel (the network owns
  // it), so strong captures here would form an endpoint -> handler ->
  // channel -> endpoint cycle and no channel would ever be destroyed.
  // The channel's owner (session, peer table, client) keeps it alive.
  std::weak_ptr<SecureChannel> weak = shared_from_this();
  endpoint_->set_receiver([weak](Bytes&& wire) {
    if (auto self = weak.lock()) self->handle_wire_message(std::move(wire));
  });
  // Reactor batch delivery: one callback per drained batch instead of one
  // per wire message. Frames still process strictly in order; a failure
  // mid-batch discards the rest, matching per-message semantics (the
  // channel is dead either way).
  endpoint_->set_batch_receiver([weak](std::vector<Bytes>&& frames) {
    auto self = weak.lock();
    if (!self) return;
    for (Bytes& frame : frames) {
      if (self->state_ == State::kFailed) return;
      self->handle_wire_message(std::move(frame));
    }
  });
  endpoint_->set_close_handler([weak] {
    auto self = weak.lock();
    if (!self) return;
    if (self->state_ != State::kEstablished && self->state_ != State::kFailed)
      self->fail(util::make_error(ErrorCode::kUnavailable,
                                  "connection closed during handshake"),
                 /*send_alert=*/false);
    else if (self->on_close_)
      self->on_close_();
  });

  timeout_event_ = engine_.after(config_.handshake_timeout, [weak] {
    auto self = weak.lock();
    if (!self) return;
    self->timeout_event_.reset();
    if (self->state_ != State::kEstablished && self->state_ != State::kFailed) {
      if (auto* metrics = self->endpoint_->metrics())
        metrics->counter("unicore_channel_handshake_timeouts_total")
            .increment();
      self->fail(util::make_error(ErrorCode::kTimeout,
                                  "handshake timed out"),
                 /*send_alert=*/false);
    }
  });

  if (!is_client_) return;  // the server's DH pair is generated lazily
                            // when a full ClientHello arrives

  // Resume when we hold a fresh ticket for this destination; otherwise
  // (or on HelloRetry) do the full Diffie–Hellman handshake.
  if (config_.session_cache != nullptr && config_.protocol_version >= 2 &&
      (config_.features & kFeatureResumption) != 0) {
    if (const SessionCache::Entry* cached = config_.session_cache->get(
            session_cache_key(), epoch_seconds(engine_.now()));
        cached != nullptr)
      return send_resumed_client_hello(*cached);
  }
  send_full_client_hello();
}

void SecureChannel::send_full_client_hello() {
  dh_ = crypto::dh_generate(rng_);
  client_random_ = rng_.bytes(32);
  ByteWriter hello;
  hello.u8(kClientHello);
  hello.blob(client_random_);
  hello.u64(dh_.public_value);
  // v2 negotiation tail: version byte + advertised feature bits. A v1
  // peer never reads past the DH value and the transcript still covers
  // the full message, so the tail is backward compatible.
  if (config_.protocol_version >= 2) {
    hello.u8(config_.protocol_version);
    hello.u64(config_.features);
  }
  util::append(transcript_, hello.bytes());
  endpoint_->send(hello.take());
  state_ = State::kClientAwaitServerHello;
}

void SecureChannel::send_resumed_client_hello(
    const SessionCache::Entry& cached) {
  resumption_attempted_ = true;
  master_secret_ = cached.master_secret;
  // The server's certificate was chain-validated by the full handshake
  // this ticket descends from; the server refuses the ticket if its
  // trust material changed since.
  peer_certificate_ = cached.server_certificate;
  client_random_ = rng_.bytes(32);

  ByteWriter hello;
  hello.u8(kClientHelloResumed);
  hello.blob(client_random_);
  hello.blob(cached.ticket);
  hello.u8(config_.protocol_version);
  hello.u64(config_.features);
  // Binder: MAC over everything above, keyed from the master secret.
  crypto::Digest binder =
      crypto::hmac_sha256(resumption_binder_key(master_secret_),
                          hello.bytes());
  hello.raw(binder);
  util::append(transcript_, hello.bytes());
  endpoint_->send(hello.take());
  state_ = State::kClientAwaitResumedReply;
}

void SecureChannel::handle_wire_message(Bytes&& wire) {
  if (state_ == State::kFailed) return;
  try {
    ByteReader reader{wire};
    auto type = static_cast<MessageType>(reader.u8());
    switch (type) {
      case kClientHello:
        if (state_ != State::kServerAwaitClientHello)
          return fail(util::make_error(ErrorCode::kFailedPrecondition,
                                       "unexpected ClientHello"),
                      true);
        // Transcript covers the full message including the type byte.
        util::append(transcript_, wire);
        return handle_client_hello(reader);
      case kServerHello:
        if (state_ != State::kClientAwaitServerHello)
          return fail(util::make_error(ErrorCode::kFailedPrecondition,
                                       "unexpected ServerHello"),
                      true);
        return handle_server_hello(reader);
      case kClientCert:
        if (state_ != State::kServerAwaitClientCert)
          return fail(util::make_error(ErrorCode::kFailedPrecondition,
                                       "unexpected ClientCert"),
                      true);
        return handle_client_cert(reader);
      case kServerFinished:
        if (state_ != State::kClientAwaitServerFinished)
          return fail(util::make_error(ErrorCode::kFailedPrecondition,
                                       "unexpected ServerFinished"),
                      true);
        return handle_server_finished(reader);
      case kClientHelloResumed:
        if (state_ != State::kServerAwaitClientHello)
          return fail(util::make_error(ErrorCode::kFailedPrecondition,
                                       "unexpected ClientHelloResumed"),
                      true);
        // Transcript handling is inside the handler: a declined
        // resumption must leave the transcript empty for the full
        // handshake that follows.
        return handle_client_hello_resumed(reader, wire);
      case kServerHelloResumed:
        if (state_ != State::kClientAwaitResumedReply)
          return fail(util::make_error(ErrorCode::kFailedPrecondition,
                                       "unexpected ServerHelloResumed"),
                      true);
        return handle_server_hello_resumed(reader);
      case kHelloRetry:
        if (state_ != State::kClientAwaitResumedReply)
          return fail(util::make_error(ErrorCode::kFailedPrecondition,
                                       "unexpected HelloRetry"),
                      true);
        return handle_hello_retry();
      case kRecord:
        if (state_ != State::kEstablished)
          return fail(util::make_error(ErrorCode::kFailedPrecondition,
                                       "record before establishment"),
                      true);
        return handle_record(reader);
      case kRecordBatch:
        if (state_ != State::kEstablished)
          return fail(util::make_error(ErrorCode::kFailedPrecondition,
                                       "record before establishment"),
                      true);
        return handle_record_batch(reader, wire);
      case kAlert:
        // A pre-resumption server alerts on ClientHelloResumed instead
        // of sending HelloRetry; drop the cached session so the owner's
        // reconnect retry performs a full handshake.
        if (state_ == State::kClientAwaitResumedReply &&
            config_.session_cache != nullptr)
          config_.session_cache->remove(session_cache_key());
        return fail(util::make_error(ErrorCode::kAuthenticationFailed,
                                     "peer alert: " + reader.str()),
                    false);
    }
    fail(util::make_error(ErrorCode::kInvalidArgument,
                          "unknown message type"),
         true);
  } catch (const std::out_of_range&) {
    fail(util::make_error(ErrorCode::kInvalidArgument,
                          "truncated channel message"),
         true);
  }
}

util::Status SecureChannel::validate_peer(
    const Certificate& leaf, const std::vector<Certificate>& chain) {
  if (config_.trust == nullptr)
    return util::make_error(ErrorCode::kInternal, "no trust store configured");
  crypto::ValidationOptions options;
  options.now = epoch_seconds(engine_.now());
  options.required_usage = config_.required_peer_usage;
  return config_.trust->validate(leaf, chain, options);
}

void SecureChannel::handle_client_hello(ByteReader& reader) {
  dh_ = crypto::dh_generate(rng_);
  client_random_ = reader.blob();
  peer_dh_public_ = reader.u64();
  // Tolerant tail parse: a v1 client's hello ends at the DH value.
  std::uint8_t client_version = 1;
  std::uint64_t client_features = 0;
  if (reader.remaining() >= 9) {
    client_version = reader.u8();
    client_features = reader.u64();
  }
  if (config_.protocol_version >= 2 && client_version >= 2) {
    negotiated_version_ = std::min(config_.protocol_version, client_version);
    negotiated_features_ = client_features & config_.features;
  }
  server_random_ = rng_.bytes(32);

  // ServerHello core (everything the signature covers).
  ByteWriter core;
  core.u8(kServerHello);
  core.blob(server_random_);
  core.u64(dh_.public_value);
  write_chain(core, config_.credential.certificate);
  // Echo the negotiation result inside the signed core — but only when
  // the client offered v2, so a v1 client's parse is undisturbed.
  if (negotiated_version_ >= 2) {
    core.u8(negotiated_version_);
    core.u64(negotiated_features_);
  }

  util::append(transcript_, core.bytes());
  crypto::Signature sig =
      crypto::sign_message(config_.credential.key, transcript_);

  ByteWriter hello;
  hello.raw(core.bytes());
  hello.u64(sig.value);
  endpoint_->send(hello.take());

  state_ = State::kServerAwaitClientCert;
}

void SecureChannel::handle_server_hello(ByteReader& reader) {
  server_random_ = reader.blob();
  peer_dh_public_ = reader.u64();
  std::uint64_t n_certs = reader.varint();
  if (n_certs == 0 || n_certs > 8)
    return fail(util::make_error(ErrorCode::kInvalidArgument,
                                 "bad certificate chain length"),
                true);
  std::vector<Certificate> chain;
  Certificate leaf;
  for (std::uint64_t i = 0; i < n_certs; ++i) {
    Bytes der = reader.blob();
    auto cert = Certificate::from_der(der);
    if (!cert) return fail(cert.error(), true);
    if (i == 0)
      leaf = std::move(cert.value());
    else
      chain.push_back(std::move(cert.value()));
  }
  if (auto status = validate_peer(leaf, chain); !status.ok())
    return fail(status.error(), true);

  // After the chain the message holds either just the 8-byte signature
  // (v1 server, or we offered v1) or the 9-byte negotiation echo
  // followed by the signature.
  bool has_negotiation = reader.remaining() >= 17;
  std::uint8_t server_version = 1;
  std::uint64_t server_features = 0;
  if (has_negotiation) {
    server_version = reader.u8();
    server_features = reader.u64();
    negotiated_version_ = std::min(config_.protocol_version, server_version);
    negotiated_features_ = server_features & config_.features;
  }

  crypto::Signature sig{reader.u64()};
  // Reconstruct the signed ServerHello core by re-serialising the parsed
  // fields — the encoding is canonical, so this reproduces the exact
  // bytes the server signed over the running transcript.
  ByteWriter core;
  core.u8(kServerHello);
  core.blob(server_random_);
  core.u64(peer_dh_public_);
  core.varint(n_certs);
  core.blob(leaf.der());
  for (const Certificate& c : chain) core.blob(c.der());
  if (has_negotiation) {
    core.u8(server_version);
    core.u64(server_features);
  }

  util::append(transcript_, core.bytes());
  if (!crypto::verify_message(leaf.subject_key, transcript_, sig))
    return fail(util::make_error(ErrorCode::kAuthenticationFailed,
                                 "server transcript signature invalid"),
                true);
  peer_certificate_ = std::move(leaf);

  // ClientCert core.
  ByteWriter cc;
  cc.u8(kClientCert);
  write_chain(cc, config_.credential.certificate);
  util::append(transcript_, cc.bytes());
  crypto::Signature client_sig =
      crypto::sign_message(config_.credential.key, transcript_);

  ByteWriter message;
  message.raw(cc.bytes());
  message.u64(client_sig.value);
  endpoint_->send(message.take());

  derive_keys();
  // Wait for the server's Finished: it both confirms the derived keys
  // and tells us the server accepted our certificate. Without it a
  // client whose certificate is revoked would believe the channel is up.
  state_ = State::kClientAwaitServerFinished;
}

void SecureChannel::handle_server_finished(ByteReader& reader) {
  Bytes verify = reader.raw(32);
  // The server MACs the full handshake transcript with its write key —
  // which is our receive key.
  crypto::Digest expected =
      crypto::hmac_sha256(recv_mac_.material, transcript_);
  if (!util::constant_time_equal(expected, verify))
    return fail(util::make_error(ErrorCode::kAuthenticationFailed,
                                 "ServerFinished verification failed"),
                true);
  // Ticket tail (only present when both sides negotiated resumption).
  if ((negotiated_features_ & kFeatureResumption) != 0 &&
      config_.session_cache != nullptr && reader.remaining() > 0) {
    SessionCache::Entry entry;
    entry.ticket = reader.blob();
    entry.master_secret = master_secret_;
    entry.server_certificate = peer_certificate_;
    entry.features = negotiated_features_;
    entry.expires_at = epoch_seconds(engine_.now()) +
                       static_cast<std::int64_t>(reader.u64());
    config_.session_cache->put(session_cache_key(), std::move(entry));
  }
  succeed();
}

void SecureChannel::handle_client_cert(ByteReader& reader) {
  std::uint64_t n_certs = reader.varint();
  if (n_certs == 0 || n_certs > 8)
    return fail(util::make_error(ErrorCode::kInvalidArgument,
                                 "bad certificate chain length"),
                true);
  std::vector<Certificate> chain;
  Certificate leaf;
  for (std::uint64_t i = 0; i < n_certs; ++i) {
    Bytes der = reader.blob();
    auto cert = Certificate::from_der(der);
    if (!cert) return fail(cert.error(), true);
    if (i == 0)
      leaf = std::move(cert.value());
    else
      chain.push_back(std::move(cert.value()));
  }

  if (auto status = validate_peer(leaf, chain); !status.ok())
    return fail(status.error(), true);

  crypto::Signature sig{reader.u64()};
  ByteWriter cc;
  cc.u8(kClientCert);
  cc.varint(n_certs);
  cc.blob(leaf.der());
  for (const Certificate& c : chain) cc.blob(c.der());
  util::append(transcript_, cc.bytes());
  if (!crypto::verify_message(leaf.subject_key, transcript_, sig))
    return fail(util::make_error(ErrorCode::kAuthenticationFailed,
                                 "client transcript signature invalid"),
                true);
  peer_certificate_ = std::move(leaf);

  derive_keys();
  ByteWriter finished;
  finished.u8(kServerFinished);
  crypto::Digest verify = crypto::hmac_sha256(send_mac_.material, transcript_);
  finished.raw(verify);
  // Ticket tail: offer a resumable session to clients that negotiated
  // the feature. Outside the transcript MAC — a corrupted ticket only
  // costs the client a refused resumption later, never a weaker channel.
  if (config_.ticket_manager != nullptr &&
      (negotiated_features_ & kFeatureResumption) != 0) {
    ResumptionState session{master_secret_, peer_certificate_,
                            negotiated_features_};
    finished.blob(config_.ticket_manager->issue(
        session, epoch_seconds(engine_.now())));
    finished.u64(static_cast<std::uint64_t>(config_.ticket_manager->ttl()));
  }
  endpoint_->send(finished.take());
  succeed();
}

void SecureChannel::handle_client_hello_resumed(ByteReader& reader,
                                                const Bytes& wire) {
  Bytes client_random = reader.blob();
  Bytes ticket = reader.blob();
  std::uint8_t client_version = reader.u8();
  std::uint64_t client_features = reader.u64();
  Bytes binder = reader.raw(32);

  auto decline = [this] {
    // Transcript stays empty and the state machine stays put: the
    // client restarts with a full ClientHello on this connection.
    if (auto* metrics = endpoint_->metrics())
      metrics
          ->counter("unicore_channel_resumptions_total",
                    {{"result", "refused"}})
          .increment();
    ByteWriter retry;
    retry.u8(kHelloRetry);
    endpoint_->send(retry.take());
  };

  if (config_.ticket_manager == nullptr || config_.protocol_version < 2 ||
      (config_.features & kFeatureResumption) == 0 || client_version < 2)
    return decline();
  auto session = config_.ticket_manager->redeem(
      ticket, epoch_seconds(engine_.now()));
  if (!session) return decline();

  // The binder covers the message minus its own 32 bytes. A valid
  // ticket with a bad binder is an active attack (replay of a captured
  // ticket without the master secret) — fail hard, don't fall back.
  crypto::Digest expected = crypto::hmac_sha256(
      resumption_binder_key(session.value().master_secret),
      util::ByteView(wire.data(), wire.size() - 32));
  if (!util::constant_time_equal(expected, binder))
    return fail(util::make_error(ErrorCode::kAuthenticationFailed,
                                 "resumption binder invalid"),
                true);

  client_random_ = std::move(client_random);
  master_secret_ = std::move(session.value().master_secret);
  peer_certificate_ = std::move(session.value().peer_certificate);
  negotiated_version_ = std::min(config_.protocol_version, client_version);
  // The effective feature set can only shrink relative to the original
  // handshake's — the AND with the ticket's set prevents a resumed
  // channel from gaining features the full validation never granted.
  negotiated_features_ =
      client_features & config_.features & session.value().features;
  util::append(transcript_, wire);

  server_random_ = rng_.bytes(32);
  derive_resumed_keys();
  resumed_ = true;

  // Rotate the ticket (fresh TTL, same master secret) so a busy client
  // can chain resumptions indefinitely between trust changes.
  ResumptionState rotated{master_secret_, peer_certificate_,
                          negotiated_features_};
  std::int64_t now = epoch_seconds(engine_.now());

  ByteWriter core;
  core.u8(kServerHelloResumed);
  core.blob(server_random_);
  core.u64(negotiated_features_);
  core.blob(config_.ticket_manager->issue(rotated, now));
  core.u64(static_cast<std::uint64_t>(config_.ticket_manager->ttl()));
  util::append(transcript_, core.bytes());
  // Key confirmation: MAC the transcript with the freshly derived write
  // key, proving we redeemed the ticket and derived the same schedule.
  crypto::Digest verify =
      crypto::hmac_sha256(send_mac_.material, transcript_);
  ByteWriter message;
  message.raw(core.bytes());
  message.raw(verify);
  endpoint_->send(message.take());

  if (auto* metrics = endpoint_->metrics())
    metrics
        ->counter("unicore_channel_resumptions_total", {{"result", "ok"}})
        .increment();
  succeed();
}

void SecureChannel::handle_server_hello_resumed(ByteReader& reader) {
  server_random_ = reader.blob();
  std::uint64_t server_features = reader.u64();
  Bytes new_ticket = reader.blob();
  std::uint64_t lifetime = reader.u64();
  Bytes verify = reader.raw(32);

  negotiated_version_ = std::min(config_.protocol_version, kProtocolVersion);
  negotiated_features_ = server_features & config_.features;

  // Re-serialise the core (canonical encoding) into the transcript and
  // check the server's key confirmation before trusting anything.
  ByteWriter core;
  core.u8(kServerHelloResumed);
  core.blob(server_random_);
  core.u64(server_features);
  core.blob(new_ticket);
  core.u64(lifetime);
  util::append(transcript_, core.bytes());
  derive_resumed_keys();
  crypto::Digest expected =
      crypto::hmac_sha256(recv_mac_.material, transcript_);
  if (!util::constant_time_equal(expected, verify))
    return fail(util::make_error(ErrorCode::kAuthenticationFailed,
                                 "ServerHelloResumed verification failed"),
                true);
  resumed_ = true;

  if (config_.session_cache != nullptr) {
    SessionCache::Entry entry;
    entry.ticket = std::move(new_ticket);
    entry.master_secret = master_secret_;
    entry.server_certificate = peer_certificate_;
    entry.features = negotiated_features_;
    entry.expires_at = epoch_seconds(engine_.now()) +
                       static_cast<std::int64_t>(lifetime);
    config_.session_cache->put(session_cache_key(), std::move(entry));
  }
  succeed();
}

void SecureChannel::handle_hello_retry() {
  // The server refused our ticket (expired, invalidated, trust change).
  // Drop it and restart with a full handshake on the same connection —
  // callers never see the refusal, only a slightly slower connect.
  if (config_.session_cache != nullptr)
    config_.session_cache->remove(session_cache_key());
  transcript_.clear();
  resumption_attempted_ = false;
  master_secret_.clear();
  peer_certificate_ = Certificate{};
  send_full_client_hello();
}

void SecureChannel::derive_keys() {
  std::uint64_t shared = crypto::dh_shared_secret(dh_, peer_dh_public_);
  ByteWriter ikm;
  ikm.u64(shared);
  Bytes salt = client_random_;
  util::append(salt, server_random_);
  crypto::Digest prk = crypto::hkdf_extract(salt, ikm.bytes());
  // Retain the PRK as this session's master secret: the server seals it
  // into tickets, the client keeps it beside the ticket in its cache.
  master_secret_.assign(prk.begin(), prk.end());
  Bytes material = crypto::hkdf_expand(
      prk, util::to_bytes(std::string(kKdfLabel)), 128);

  auto slice = [&material](std::size_t offset) {
    return crypto::SymmetricKey{
        Bytes(material.begin() + static_cast<std::ptrdiff_t>(offset),
              material.begin() + static_cast<std::ptrdiff_t>(offset + 32))};
  };
  crypto::SymmetricKey client_enc = slice(0);
  crypto::SymmetricKey client_mac = slice(32);
  crypto::SymmetricKey server_enc = slice(64);
  crypto::SymmetricKey server_mac = slice(96);

  if (is_client_) {
    send_enc_ = client_enc;
    send_mac_ = client_mac;
    recv_enc_ = server_enc;
    recv_mac_ = server_mac;
  } else {
    send_enc_ = server_enc;
    send_mac_ = server_mac;
    recv_enc_ = client_enc;
    recv_mac_ = client_mac;
  }
}

void SecureChannel::derive_resumed_keys() {
  // Same schedule shape as derive_keys(), but the input keying material
  // is the cached master secret instead of a fresh DH secret — zero
  // public-key operations. Fresh randoms from both sides ensure the
  // per-direction keys (and thus record nonces) never repeat across
  // resumptions of the same ticket lineage.
  Bytes salt = client_random_;
  util::append(salt, server_random_);
  crypto::Digest prk = crypto::hkdf_extract(salt, master_secret_);
  Bytes material = crypto::hkdf_expand(
      prk, util::to_bytes(std::string(kResumeKdfLabel)), 128);

  auto slice = [&material](std::size_t offset) {
    return crypto::SymmetricKey{
        Bytes(material.begin() + static_cast<std::ptrdiff_t>(offset),
              material.begin() + static_cast<std::ptrdiff_t>(offset + 32))};
  };
  crypto::SymmetricKey client_enc = slice(0);
  crypto::SymmetricKey client_mac = slice(32);
  crypto::SymmetricKey server_enc = slice(64);
  crypto::SymmetricKey server_mac = slice(96);

  if (is_client_) {
    send_enc_ = client_enc;
    send_mac_ = client_mac;
    recv_enc_ = server_enc;
    recv_mac_ = server_mac;
  } else {
    send_enc_ = server_enc;
    send_mac_ = server_mac;
    recv_enc_ = client_enc;
    recv_mac_ = client_mac;
  }
}

std::string SecureChannel::session_cache_key() const {
  return config_.session_key.empty() ? endpoint_->remote_host()
                                     : config_.session_key;
}

void SecureChannel::succeed() {
  state_ = State::kEstablished;
  if (auto* metrics = endpoint_->metrics())
    metrics->counter("unicore_channel_handshakes_total", {{"result", "ok"}})
        .increment();
  if (timeout_event_) {
    engine_.cancel(*timeout_event_);
    timeout_event_.reset();
  }
  if (on_established_) {
    auto handler = std::move(on_established_);
    on_established_ = nullptr;
    handler(Status::ok_status());
  }
}

void SecureChannel::fail(Error error, bool send_alert) {
  if (state_ == State::kFailed) return;
  bool was_established = state_ == State::kEstablished;
  // Queued application records depart ahead of the alert/close so the
  // peer never sees teardown overtake data it was meant to receive.
  flush_send_queue();
  state_ = State::kFailed;
  if (!was_established) {
    if (auto* metrics = endpoint_->metrics())
      metrics->counter("unicore_channel_handshakes_total", {{"result", "fail"}})
          .increment();
  }
  if (timeout_event_) {
    engine_.cancel(*timeout_event_);
    timeout_event_.reset();
  }
  if (send_alert && endpoint_->is_open()) {
    ByteWriter alert;
    alert.u8(kAlert);
    alert.str(error.message);
    endpoint_->send(alert.take());
  }
  endpoint_->close();
  // Break the channel <-> endpoint reference cycle. Deferred because this
  // may run inside the endpoint's receiver callback.
  engine_.after(0, [endpoint = endpoint_] {
    endpoint->set_receiver(nullptr);
    endpoint->set_batch_receiver(nullptr);
    endpoint->set_close_handler(nullptr);
  });
  UNICORE_DEBUG("secure_channel") << "handshake/channel failure: "
                                  << error.to_string();
  if (!was_established && on_established_) {
    auto handler = std::move(on_established_);
    on_established_ = nullptr;
    handler(Status(std::move(error)));
  } else if (was_established && on_close_) {
    on_close_();
  }
}

void SecureChannel::send(Bytes plaintext) {
  if (state_ != State::kEstablished) return;
  if (feature_enabled(kFeatureBatchRecords)) {
    // Queue for the end-of-instant flush: every message sent within one
    // simulation instant coalesces into as few kRecordBatch frames as
    // the frame cap allows. Sequence numbers are assigned at flush time
    // so queued records stay contiguous with records of other frames.
    send_queue_.push_back(std::move(plaintext));
    if (!flush_scheduled_) {
      flush_scheduled_ = true;
      std::weak_ptr<SecureChannel> weak = shared_from_this();
      engine_.after(0, [weak] {
        if (auto self = weak.lock()) self->flush_send_queue();
      });
    }
    return;
  }

  std::uint64_t seq = send_seq_++;
  std::uint8_t aad[9];
  encode_record_aad(aad, is_client_ ? 0 : 1, seq);
  // Encrypt in place — the caller's buffer becomes the ciphertext, so a
  // large transfer chunk is never duplicated on the send path.
  crypto::Digest tag = crypto::seal_inplace(
      send_enc_, send_mac_, seq, plaintext, util::ByteView(aad, 9));

  ByteWriter wire;
  wire.reserve(1 + 8 + 10 + plaintext.size() + tag.size());
  wire.u8(kRecord);
  wire.u64(seq);
  wire.blob(plaintext);
  wire.raw(tag);
  endpoint_->send(wire.take());
}

void SecureChannel::flush_send_queue() {
  flush_scheduled_ = false;
  if (send_queue_.empty() || state_ != State::kEstablished) return;
  std::vector<Bytes> queue = std::move(send_queue_);
  send_queue_.clear();
  if (!endpoint_->is_open()) return;

  // Stage 1 — slice: one record per message, except messages above the
  // fragment limit which split into first/middle/final fragment records.
  // Each record is a view into the queued buffer it came from; sealing
  // encrypts those bytes in place, so nothing is copied until the final
  // frame assembly.
  struct PendingRecord {
    crypto::MutableByteView data;
    std::uint64_t seq = 0;
    std::uint8_t flags = kComplete;
    std::uint64_t total = 0;  // announced size, first fragments only
    crypto::Digest tag{};
  };
  std::vector<PendingRecord> records;
  records.reserve(queue.size());
  for (Bytes& message : queue) {
    if (message.size() <= kFragmentLimit) {
      PendingRecord r;
      r.data = crypto::MutableByteView(message.data(), message.size());
      r.seq = send_seq_++;
      records.push_back(r);
      continue;
    }
    std::size_t offset = 0;
    while (offset < message.size()) {
      std::size_t take = std::min(kFragmentLimit, message.size() - offset);
      PendingRecord r;
      r.data = crypto::MutableByteView(message.data() + offset, take);
      r.seq = send_seq_++;
      r.flags = offset == 0                        ? kFirst
                : offset + take == message.size()  ? kFinal
                                                   : kMiddle;
      r.total = message.size();
      records.push_back(r);
      offset += take;
    }
  }

  // Stage 2 — seal. Records are independent (own buffer slice, own
  // sequence number), so a multi-record flush fans the crypto out over
  // the record pool when one is configured.
  const std::uint8_t direction = is_client_ ? 0 : 1;
  auto seal_one = [this, direction, &records](std::size_t i) {
    PendingRecord& r = records[i];
    std::uint8_t aad[18];
    std::size_t n = encode_batch_aad(aad, direction, r.seq, r.flags, r.total);
    r.tag = crypto::seal_inplace(send_enc_, send_mac_, r.seq, r.data,
                                 util::ByteView(aad, n));
  };
  if (config_.record_pool != nullptr && records.size() > 1)
    config_.record_pool->parallel_for(records.size(), seal_one);
  else
    for (std::size_t i = 0; i < records.size(); ++i) seal_one(i);

  // Stage 3 — frame assembly: greedy fill up to the frame payload cap.
  std::size_t i = 0;
  while (i < records.size()) {
    std::size_t first = i;
    std::size_t payload = 0;
    do {
      payload += records[i].data.size();
      ++i;
    } while (i < records.size() &&
             payload + records[i].data.size() <= kMaxFrameBytes &&
             i - first < kMaxRecordsPerFrame);

    ByteWriter frame;
    frame.reserve(1 + 8 + 10 + payload + (i - first) * 48);
    frame.u8(kRecordBatch);
    frame.u64(records[first].seq);
    frame.varint(i - first);
    for (std::size_t j = first; j < i; ++j) {
      const PendingRecord& r = records[j];
      frame.varint(r.data.size());
      frame.u8(r.flags);
      if (r.flags == kFirst) frame.varint(r.total);
      frame.raw(util::ByteView(r.data.data(), r.data.size()));
      frame.raw(r.tag);
    }
    ++batch_frames_sent_;
    endpoint_->send(frame.take());
  }
}

void SecureChannel::handle_record(ByteReader& reader) {
  std::uint64_t nonce = reader.u64();
  Bytes ciphertext = reader.blob();
  Bytes tag_bytes = reader.raw(32);
  crypto::Digest tag;
  std::copy(tag_bytes.begin(), tag_bytes.end(), tag.begin());

  // The expected sequence number doubles as replay protection: with a
  // lossless record path (loss only affects the wire before decryption,
  // dropping the whole record), any gap or repeat indicates tampering.
  if (nonce != recv_seq_)
    return fail(util::make_error(ErrorCode::kAuthenticationFailed,
                                 "record out of sequence"),
                true);
  std::uint8_t aad[9];
  aad[0] = is_client_ ? 1 : 0;
  for (int i = 0; i < 8; ++i)
    aad[1 + i] = static_cast<std::uint8_t>(nonce >> (56 - 8 * i));
  // Verify-then-decrypt in place: the wire buffer becomes the plaintext
  // handed to the application, with no intermediate copy.
  if (auto status = crypto::open_inplace(recv_enc_, recv_mac_, nonce,
                                         ciphertext, tag,
                                         util::ByteView(aad, 9));
      !status.ok())
    return fail(status.error(), true);
  ++recv_seq_;
  if (on_message_) on_message_(std::move(ciphertext));
}

void SecureChannel::handle_record_batch(ByteReader& reader, Bytes& wire) {
  if (!feature_enabled(kFeatureBatchRecords))
    return fail(util::make_error(ErrorCode::kInvalidArgument,
                                 "batch record without negotiated feature"),
                true);
  std::uint64_t first_seq = reader.u64();
  std::uint64_t count = reader.varint();
  if (count == 0 || count > kMaxRecordsPerFrame)
    return fail(util::make_error(ErrorCode::kInvalidArgument,
                                 "bad batch record count"),
                true);
  if (first_seq != recv_seq_)
    return fail(util::make_error(ErrorCode::kAuthenticationFailed,
                                 "record out of sequence"),
                true);

  // Stage 1 — parse: locate each record's ciphertext slice inside the
  // wire buffer without copying it out.
  struct WireRecord {
    std::size_t offset = 0;
    std::size_t size = 0;
    std::uint8_t flags = kComplete;
    std::uint64_t total = 0;
    crypto::Digest tag{};
  };
  std::vector<WireRecord> records;
  records.reserve(count);
  for (std::uint64_t k = 0; k < count; ++k) {
    WireRecord r;
    r.size = reader.varint();
    r.flags = reader.u8();
    if (r.flags == kFirst) r.total = reader.varint();
    r.offset = reader.position();
    reader.skip(r.size);
    Bytes tag_bytes = reader.raw(32);
    std::copy(tag_bytes.begin(), tag_bytes.end(), r.tag.begin());
    records.push_back(r);
  }

  // Stage 2 — verify + decrypt every record in place. Records carry
  // independent tags and sequence numbers, so the open kernels fan out
  // over the record pool; any single failure kills the channel exactly
  // like a failed legacy record would.
  const std::uint8_t direction = is_client_ ? 1 : 0;
  std::vector<util::Status> statuses(records.size());
  auto open_one = [this, direction, first_seq, &records, &statuses,
                   &wire](std::size_t i) {
    WireRecord& r = records[i];
    std::uint8_t aad[18];
    std::size_t n =
        encode_batch_aad(aad, direction, first_seq + i, r.flags, r.total);
    statuses[i] = crypto::open_inplace(
        recv_enc_, recv_mac_, first_seq + i,
        crypto::MutableByteView(wire.data() + r.offset, r.size), r.tag,
        util::ByteView(aad, n));
  };
  if (config_.record_pool != nullptr && records.size() > 1)
    config_.record_pool->parallel_for(records.size(), open_one);
  else
    for (std::size_t i = 0; i < records.size(); ++i) open_one(i);
  for (const util::Status& status : statuses)
    if (!status.ok()) return fail(status.error(), true);
  recv_seq_ += count;
  ++batch_frames_received_;

  // Stage 3 — reassemble fragments and queue plaintexts in record order;
  // the ring drain below re-imposes that order on the application even
  // when the open stage ran out of order on the pool.
  for (const WireRecord& r : records) {
    auto begin = wire.begin() + static_cast<std::ptrdiff_t>(r.offset);
    auto end = begin + static_cast<std::ptrdiff_t>(r.size);
    switch (r.flags) {
      case kComplete:
        if (reassembly_expected_ != 0)
          return fail(util::make_error(
                          ErrorCode::kInvalidArgument,
                          "complete record inside a fragmented message"),
                      true);
        dispatch_plaintext(Bytes(begin, end));
        break;
      case kFirst:
        if (reassembly_expected_ != 0)
          return fail(util::make_error(ErrorCode::kInvalidArgument,
                                       "nested fragmented message"),
                      true);
        if (r.total < r.size || r.total > kMaxReassemblyBytes)
          return fail(util::make_error(ErrorCode::kInvalidArgument,
                                       "bad fragment total"),
                      true);
        reassembly_.clear();
        reassembly_.reserve(r.total);
        reassembly_.assign(begin, end);
        reassembly_expected_ = r.total;
        break;
      case kMiddle:
      case kFinal:
        if (reassembly_expected_ == 0)
          return fail(util::make_error(ErrorCode::kInvalidArgument,
                                       "fragment without a first fragment"),
                      true);
        if (reassembly_.size() + r.size > reassembly_expected_)
          return fail(util::make_error(ErrorCode::kInvalidArgument,
                                       "fragmented message overflows total"),
                      true);
        reassembly_.insert(reassembly_.end(), begin, end);
        if (r.flags == kFinal) {
          if (reassembly_.size() != reassembly_expected_)
            return fail(util::make_error(ErrorCode::kInvalidArgument,
                                         "fragmented message short of total"),
                        true);
          reassembly_expected_ = 0;
          dispatch_plaintext(std::move(reassembly_));
          reassembly_ = Bytes();
        }
        break;
      default:
        return fail(util::make_error(ErrorCode::kInvalidArgument,
                                     "invalid record flags"),
                    true);
    }
  }
  drain_dispatch_ring();
}

void SecureChannel::dispatch_plaintext(Bytes&& plaintext) {
  // push() leaves the value untouched when the ring is full, so a failed
  // push can drain in-line (we are the consumer too) and retry.
  if (!dispatch_ring_.push(std::move(plaintext))) {
    drain_dispatch_ring();
    dispatch_ring_.push(std::move(plaintext));
  }
}

void SecureChannel::drain_dispatch_ring() {
  Bytes plaintext;
  while (dispatch_ring_.pop(plaintext)) {
    // A handler may close or fail the channel mid-drain; keep popping to
    // empty the ring but stop delivering.
    if (state_ != State::kEstablished) continue;
    if (on_message_) on_message_(std::move(plaintext));
  }
}

void SecureChannel::set_receiver(MessageHandler handler) {
  on_message_ = std::move(handler);
}

void SecureChannel::set_close_handler(std::function<void()> handler) {
  on_close_ = std::move(handler);
}

void SecureChannel::close() {
  if (state_ == State::kFailed) return;
  // Flush before closing: send() followed by close() in the same instant
  // must put the queued records on the wire ahead of the close notice.
  flush_send_queue();
  state_ = State::kFailed;
  if (timeout_event_) {
    engine_.cancel(*timeout_event_);
    timeout_event_.reset();
  }
  endpoint_->close();
  engine_.after(0, [endpoint = endpoint_] {
    endpoint->set_receiver(nullptr);
    endpoint->set_batch_receiver(nullptr);
    endpoint->set_close_handler(nullptr);
  });
}

}  // namespace unicore::net
