#include "net/secure_channel.h"

#include <algorithm>

#include "crypto/hmac.h"
#include "util/log.h"

namespace unicore::net {

using crypto::Certificate;
using util::Bytes;
using util::ByteReader;
using util::ByteWriter;
using util::Error;
using util::ErrorCode;
using util::Status;

namespace {

enum MessageType : std::uint8_t {
  kClientHello = 1,
  kServerHello = 2,
  kClientCert = 3,
  kRecord = 4,
  kAlert = 5,
  kServerFinished = 6,  // key confirmation after client-cert validation
};

constexpr std::string_view kKdfLabel = "unicore-secure-channel-v1";

void write_chain(ByteWriter& w, const Certificate& leaf) {
  // This reproduction issues user/server certificates directly from the
  // root CA, so chains have length 1; the wire format still carries a
  // count for forward compatibility with intermediates.
  w.varint(1);
  w.blob(leaf.der());
}

}  // namespace

std::shared_ptr<SecureChannel> SecureChannel::as_client(
    sim::Engine& engine, util::Rng& rng, std::shared_ptr<Endpoint> endpoint,
    Config config, EstablishedHandler on_established) {
  auto channel = std::shared_ptr<SecureChannel>(
      new SecureChannel(engine, rng, std::move(endpoint), std::move(config),
                        std::move(on_established), /*is_client=*/true));
  channel->start();
  return channel;
}

std::shared_ptr<SecureChannel> SecureChannel::as_server(
    sim::Engine& engine, util::Rng& rng, std::shared_ptr<Endpoint> endpoint,
    Config config, EstablishedHandler on_established) {
  auto channel = std::shared_ptr<SecureChannel>(
      new SecureChannel(engine, rng, std::move(endpoint), std::move(config),
                        std::move(on_established), /*is_client=*/false));
  channel->start();
  return channel;
}

SecureChannel::SecureChannel(sim::Engine& engine, util::Rng& rng,
                             std::shared_ptr<Endpoint> endpoint, Config config,
                             EstablishedHandler on_established, bool is_client)
    : engine_(engine),
      rng_(rng.fork()),
      endpoint_(std::move(endpoint)),
      config_(std::move(config)),
      on_established_(std::move(on_established)),
      is_client_(is_client),
      state_(is_client ? State::kClientAwaitServerHello
                       : State::kServerAwaitClientHello) {}

void SecureChannel::start() {
  // Weak captures: the endpoint outlives the channel (the network owns
  // it), so strong captures here would form an endpoint -> handler ->
  // channel -> endpoint cycle and no channel would ever be destroyed.
  // The channel's owner (session, peer table, client) keeps it alive.
  std::weak_ptr<SecureChannel> weak = shared_from_this();
  endpoint_->set_receiver([weak](Bytes&& wire) {
    if (auto self = weak.lock()) self->handle_wire_message(std::move(wire));
  });
  endpoint_->set_close_handler([weak] {
    auto self = weak.lock();
    if (!self) return;
    if (self->state_ != State::kEstablished && self->state_ != State::kFailed)
      self->fail(util::make_error(ErrorCode::kUnavailable,
                                  "connection closed during handshake"),
                 /*send_alert=*/false);
    else if (self->on_close_)
      self->on_close_();
  });

  timeout_event_ = engine_.after(config_.handshake_timeout, [weak] {
    auto self = weak.lock();
    if (!self) return;
    self->timeout_event_.reset();
    if (self->state_ != State::kEstablished && self->state_ != State::kFailed) {
      if (auto* metrics = self->endpoint_->metrics())
        metrics->counter("unicore_channel_handshake_timeouts_total")
            .increment();
      self->fail(util::make_error(ErrorCode::kTimeout,
                                  "handshake timed out"),
                 /*send_alert=*/false);
    }
  });

  dh_ = crypto::dh_generate(rng_);
  if (is_client_) {
    client_random_ = rng_.bytes(32);
    ByteWriter hello;
    hello.u8(kClientHello);
    hello.blob(client_random_);
    hello.u64(dh_.public_value);
    // v2 negotiation tail: version byte + advertised feature bits. A v1
    // peer never reads past the DH value and the transcript still covers
    // the full message, so the tail is backward compatible.
    if (config_.protocol_version >= 2) {
      hello.u8(config_.protocol_version);
      hello.u64(config_.features);
    }
    util::append(transcript_, hello.bytes());
    endpoint_->send(hello.take());
  }
}

void SecureChannel::handle_wire_message(Bytes&& wire) {
  if (state_ == State::kFailed) return;
  try {
    ByteReader reader{wire};
    auto type = static_cast<MessageType>(reader.u8());
    switch (type) {
      case kClientHello:
        if (state_ != State::kServerAwaitClientHello)
          return fail(util::make_error(ErrorCode::kFailedPrecondition,
                                       "unexpected ClientHello"),
                      true);
        // Transcript covers the full message including the type byte.
        util::append(transcript_, wire);
        return handle_client_hello(reader);
      case kServerHello:
        if (state_ != State::kClientAwaitServerHello)
          return fail(util::make_error(ErrorCode::kFailedPrecondition,
                                       "unexpected ServerHello"),
                      true);
        return handle_server_hello(reader);
      case kClientCert:
        if (state_ != State::kServerAwaitClientCert)
          return fail(util::make_error(ErrorCode::kFailedPrecondition,
                                       "unexpected ClientCert"),
                      true);
        return handle_client_cert(reader);
      case kServerFinished:
        if (state_ != State::kClientAwaitServerFinished)
          return fail(util::make_error(ErrorCode::kFailedPrecondition,
                                       "unexpected ServerFinished"),
                      true);
        return handle_server_finished(reader);
      case kRecord:
        if (state_ != State::kEstablished)
          return fail(util::make_error(ErrorCode::kFailedPrecondition,
                                       "record before establishment"),
                      true);
        return handle_record(reader);
      case kAlert:
        return fail(util::make_error(ErrorCode::kAuthenticationFailed,
                                     "peer alert: " + reader.str()),
                    false);
    }
    fail(util::make_error(ErrorCode::kInvalidArgument,
                          "unknown message type"),
         true);
  } catch (const std::out_of_range&) {
    fail(util::make_error(ErrorCode::kInvalidArgument,
                          "truncated channel message"),
         true);
  }
}

util::Status SecureChannel::validate_peer(
    const Certificate& leaf, const std::vector<Certificate>& chain) {
  if (config_.trust == nullptr)
    return util::make_error(ErrorCode::kInternal, "no trust store configured");
  crypto::ValidationOptions options;
  options.now = epoch_seconds(engine_.now());
  options.required_usage = config_.required_peer_usage;
  return config_.trust->validate(leaf, chain, options);
}

void SecureChannel::handle_client_hello(ByteReader& reader) {
  client_random_ = reader.blob();
  peer_dh_public_ = reader.u64();
  // Tolerant tail parse: a v1 client's hello ends at the DH value.
  std::uint8_t client_version = 1;
  std::uint64_t client_features = 0;
  if (reader.remaining() >= 9) {
    client_version = reader.u8();
    client_features = reader.u64();
  }
  if (config_.protocol_version >= 2 && client_version >= 2) {
    negotiated_version_ = std::min(config_.protocol_version, client_version);
    negotiated_features_ = client_features & config_.features;
  }
  server_random_ = rng_.bytes(32);

  // ServerHello core (everything the signature covers).
  ByteWriter core;
  core.u8(kServerHello);
  core.blob(server_random_);
  core.u64(dh_.public_value);
  write_chain(core, config_.credential.certificate);
  // Echo the negotiation result inside the signed core — but only when
  // the client offered v2, so a v1 client's parse is undisturbed.
  if (negotiated_version_ >= 2) {
    core.u8(negotiated_version_);
    core.u64(negotiated_features_);
  }

  util::append(transcript_, core.bytes());
  crypto::Signature sig =
      crypto::sign_message(config_.credential.key, transcript_);

  ByteWriter hello;
  hello.raw(core.bytes());
  hello.u64(sig.value);
  endpoint_->send(hello.take());

  state_ = State::kServerAwaitClientCert;
}

void SecureChannel::handle_server_hello(ByteReader& reader) {
  server_random_ = reader.blob();
  peer_dh_public_ = reader.u64();
  std::uint64_t n_certs = reader.varint();
  if (n_certs == 0 || n_certs > 8)
    return fail(util::make_error(ErrorCode::kInvalidArgument,
                                 "bad certificate chain length"),
                true);
  std::vector<Certificate> chain;
  Certificate leaf;
  for (std::uint64_t i = 0; i < n_certs; ++i) {
    Bytes der = reader.blob();
    auto cert = Certificate::from_der(der);
    if (!cert) return fail(cert.error(), true);
    if (i == 0)
      leaf = std::move(cert.value());
    else
      chain.push_back(std::move(cert.value()));
  }
  if (auto status = validate_peer(leaf, chain); !status.ok())
    return fail(status.error(), true);

  // After the chain the message holds either just the 8-byte signature
  // (v1 server, or we offered v1) or the 9-byte negotiation echo
  // followed by the signature.
  bool has_negotiation = reader.remaining() >= 17;
  std::uint8_t server_version = 1;
  std::uint64_t server_features = 0;
  if (has_negotiation) {
    server_version = reader.u8();
    server_features = reader.u64();
    negotiated_version_ = std::min(config_.protocol_version, server_version);
    negotiated_features_ = server_features & config_.features;
  }

  crypto::Signature sig{reader.u64()};
  // Reconstruct the signed ServerHello core by re-serialising the parsed
  // fields — the encoding is canonical, so this reproduces the exact
  // bytes the server signed over the running transcript.
  ByteWriter core;
  core.u8(kServerHello);
  core.blob(server_random_);
  core.u64(peer_dh_public_);
  core.varint(n_certs);
  core.blob(leaf.der());
  for (const Certificate& c : chain) core.blob(c.der());
  if (has_negotiation) {
    core.u8(server_version);
    core.u64(server_features);
  }

  util::append(transcript_, core.bytes());
  if (!crypto::verify_message(leaf.subject_key, transcript_, sig))
    return fail(util::make_error(ErrorCode::kAuthenticationFailed,
                                 "server transcript signature invalid"),
                true);
  peer_certificate_ = std::move(leaf);

  // ClientCert core.
  ByteWriter cc;
  cc.u8(kClientCert);
  write_chain(cc, config_.credential.certificate);
  util::append(transcript_, cc.bytes());
  crypto::Signature client_sig =
      crypto::sign_message(config_.credential.key, transcript_);

  ByteWriter message;
  message.raw(cc.bytes());
  message.u64(client_sig.value);
  endpoint_->send(message.take());

  derive_keys();
  // Wait for the server's Finished: it both confirms the derived keys
  // and tells us the server accepted our certificate. Without it a
  // client whose certificate is revoked would believe the channel is up.
  state_ = State::kClientAwaitServerFinished;
}

void SecureChannel::handle_server_finished(ByteReader& reader) {
  Bytes verify = reader.raw(32);
  // The server MACs the full handshake transcript with its write key —
  // which is our receive key.
  crypto::Digest expected =
      crypto::hmac_sha256(recv_mac_.material, transcript_);
  if (!util::constant_time_equal(expected, verify))
    return fail(util::make_error(ErrorCode::kAuthenticationFailed,
                                 "ServerFinished verification failed"),
                true);
  succeed();
}

void SecureChannel::handle_client_cert(ByteReader& reader) {
  std::uint64_t n_certs = reader.varint();
  if (n_certs == 0 || n_certs > 8)
    return fail(util::make_error(ErrorCode::kInvalidArgument,
                                 "bad certificate chain length"),
                true);
  std::vector<Certificate> chain;
  Certificate leaf;
  for (std::uint64_t i = 0; i < n_certs; ++i) {
    Bytes der = reader.blob();
    auto cert = Certificate::from_der(der);
    if (!cert) return fail(cert.error(), true);
    if (i == 0)
      leaf = std::move(cert.value());
    else
      chain.push_back(std::move(cert.value()));
  }

  if (auto status = validate_peer(leaf, chain); !status.ok())
    return fail(status.error(), true);

  crypto::Signature sig{reader.u64()};
  ByteWriter cc;
  cc.u8(kClientCert);
  cc.varint(n_certs);
  cc.blob(leaf.der());
  for (const Certificate& c : chain) cc.blob(c.der());
  util::append(transcript_, cc.bytes());
  if (!crypto::verify_message(leaf.subject_key, transcript_, sig))
    return fail(util::make_error(ErrorCode::kAuthenticationFailed,
                                 "client transcript signature invalid"),
                true);
  peer_certificate_ = std::move(leaf);

  derive_keys();
  ByteWriter finished;
  finished.u8(kServerFinished);
  crypto::Digest verify = crypto::hmac_sha256(send_mac_.material, transcript_);
  finished.raw(verify);
  endpoint_->send(finished.take());
  succeed();
}

void SecureChannel::derive_keys() {
  std::uint64_t shared = crypto::dh_shared_secret(dh_, peer_dh_public_);
  ByteWriter ikm;
  ikm.u64(shared);
  Bytes salt = client_random_;
  util::append(salt, server_random_);
  crypto::Digest prk = crypto::hkdf_extract(salt, ikm.bytes());
  Bytes material = crypto::hkdf_expand(
      prk, util::to_bytes(std::string(kKdfLabel)), 128);

  auto slice = [&material](std::size_t offset) {
    return crypto::SymmetricKey{
        Bytes(material.begin() + static_cast<std::ptrdiff_t>(offset),
              material.begin() + static_cast<std::ptrdiff_t>(offset + 32))};
  };
  crypto::SymmetricKey client_enc = slice(0);
  crypto::SymmetricKey client_mac = slice(32);
  crypto::SymmetricKey server_enc = slice(64);
  crypto::SymmetricKey server_mac = slice(96);

  if (is_client_) {
    send_enc_ = client_enc;
    send_mac_ = client_mac;
    recv_enc_ = server_enc;
    recv_mac_ = server_mac;
  } else {
    send_enc_ = server_enc;
    send_mac_ = server_mac;
    recv_enc_ = client_enc;
    recv_mac_ = client_mac;
  }
}

void SecureChannel::succeed() {
  state_ = State::kEstablished;
  if (auto* metrics = endpoint_->metrics())
    metrics->counter("unicore_channel_handshakes_total", {{"result", "ok"}})
        .increment();
  if (timeout_event_) {
    engine_.cancel(*timeout_event_);
    timeout_event_.reset();
  }
  if (on_established_) {
    auto handler = std::move(on_established_);
    on_established_ = nullptr;
    handler(Status::ok_status());
  }
}

void SecureChannel::fail(Error error, bool send_alert) {
  if (state_ == State::kFailed) return;
  bool was_established = state_ == State::kEstablished;
  state_ = State::kFailed;
  if (!was_established) {
    if (auto* metrics = endpoint_->metrics())
      metrics->counter("unicore_channel_handshakes_total", {{"result", "fail"}})
          .increment();
  }
  if (timeout_event_) {
    engine_.cancel(*timeout_event_);
    timeout_event_.reset();
  }
  if (send_alert && endpoint_->is_open()) {
    ByteWriter alert;
    alert.u8(kAlert);
    alert.str(error.message);
    endpoint_->send(alert.take());
  }
  endpoint_->close();
  // Break the channel <-> endpoint reference cycle. Deferred because this
  // may run inside the endpoint's receiver callback.
  engine_.after(0, [endpoint = endpoint_] {
    endpoint->set_receiver(nullptr);
    endpoint->set_close_handler(nullptr);
  });
  UNICORE_DEBUG("secure_channel") << "handshake/channel failure: "
                                  << error.to_string();
  if (!was_established && on_established_) {
    auto handler = std::move(on_established_);
    on_established_ = nullptr;
    handler(Status(std::move(error)));
  } else if (was_established && on_close_) {
    on_close_();
  }
}

void SecureChannel::send(Bytes plaintext) {
  if (state_ != State::kEstablished) return;
  std::uint64_t seq = send_seq_++;
  ByteWriter aad;
  aad.u8(is_client_ ? 0 : 1);
  aad.u64(seq);
  crypto::SealedRecord record =
      crypto::seal(send_enc_, send_mac_, seq, plaintext, aad.bytes());

  ByteWriter wire;
  wire.u8(kRecord);
  wire.u64(record.nonce);
  wire.blob(record.ciphertext);
  wire.raw(record.tag);
  endpoint_->send(wire.take());
}

void SecureChannel::handle_record(ByteReader& reader) {
  crypto::SealedRecord record;
  record.nonce = reader.u64();
  record.ciphertext = reader.blob();
  Bytes tag = reader.raw(32);
  std::copy(tag.begin(), tag.end(), record.tag.begin());

  // The expected sequence number doubles as replay protection: with a
  // lossless record path (loss only affects the wire before decryption,
  // dropping the whole record), any gap or repeat indicates tampering.
  std::uint64_t expected_seq = recv_seq_;
  if (record.nonce != expected_seq)
    return fail(util::make_error(ErrorCode::kAuthenticationFailed,
                                 "record out of sequence"),
                true);
  ByteWriter aad;
  aad.u8(is_client_ ? 1 : 0);
  aad.u64(record.nonce);
  auto plaintext = crypto::open(recv_enc_, recv_mac_, record, aad.bytes());
  if (!plaintext) return fail(plaintext.error(), true);
  ++recv_seq_;
  if (on_message_) on_message_(std::move(plaintext.value()));
}

void SecureChannel::set_receiver(MessageHandler handler) {
  on_message_ = std::move(handler);
}

void SecureChannel::set_close_handler(std::function<void()> handler) {
  on_close_ = std::move(handler);
}

void SecureChannel::close() {
  if (state_ == State::kFailed) return;
  state_ = State::kFailed;
  if (timeout_event_) {
    engine_.cancel(*timeout_event_);
    timeout_event_.reset();
  }
  endpoint_->close();
  engine_.after(0, [endpoint = endpoint_] {
    endpoint->set_receiver(nullptr);
    endpoint->set_close_handler(nullptr);
  });
}

}  // namespace unicore::net
