#include "net/network.h"

#include <algorithm>

namespace unicore::net {

// Shared state between the two endpoints of a connection.
struct Endpoint::ConnectionState {
  Network* network = nullptr;
  LinkProfile link;
  bool open = true;
  // FIFO ordering per direction: a message may not overtake its
  // predecessor even when bandwidth delays differ.
  sim::Time next_free_a_to_b = 0;
  sim::Time next_free_b_to_a = 0;
  std::weak_ptr<Endpoint> side_a;  // initiator
  std::weak_ptr<Endpoint> side_b;  // acceptor
};

void Endpoint::send(util::Bytes message) {
  if (!state_ || !state_->open) return;
  bytes_sent_ += message.size();
  state_->network->transmit(*this, std::move(message));
}

void Endpoint::set_receiver(Receiver receiver) {
  receiver_ = std::move(receiver);
  while (receiver_ && !inbox_.empty()) {
    util::Bytes message = std::move(inbox_.front());
    inbox_.pop_front();
    receiver_(std::move(message));
  }
}

void Endpoint::set_close_handler(std::function<void()> handler) {
  close_handler_ = std::move(handler);
}

void Endpoint::close() {
  if (!state_ || !state_->open) return;
  state_->open = false;
  auto peer = is_initiator_ ? state_->side_b.lock() : state_->side_a.lock();
  if (peer) {
    // The peer observes the close after one link latency.
    std::weak_ptr<Endpoint> weak_peer = peer;
    state_->network->engine_.after(state_->link.latency, [weak_peer] {
      if (auto p = weak_peer.lock()) p->handle_peer_close();
    });
  }
}

bool Endpoint::is_open() const { return state_ && state_->open; }

void Endpoint::deliver(util::Bytes&& message) {
  if (receiver_) {
    receiver_(std::move(message));
  } else {
    inbox_.push_back(std::move(message));
  }
}

void Endpoint::handle_peer_close() {
  if (close_handler_) {
    auto handler = std::move(close_handler_);
    close_handler_ = nullptr;
    handler();
  }
}

void Network::set_link(const std::string& a, const std::string& b,
                       LinkProfile profile) {
  auto key = std::minmax(a, b);
  links_[{key.first, key.second}] = profile;
}

const LinkProfile& Network::link_between(const std::string& a,
                                         const std::string& b) const {
  if (a == b) {
    // Loopback: effectively instantaneous and lossless.
    static const LinkProfile kLoopback{sim::usec(10), 1e9, 0.0};
    return kLoopback;
  }
  auto key = std::minmax(a, b);
  auto it = links_.find({key.first, key.second});
  return it == links_.end() ? default_link_ : it->second;
}

util::Status Network::listen(const Address& address, Acceptor acceptor) {
  auto [it, inserted] = listeners_.emplace(address, std::move(acceptor));
  (void)it;
  if (!inserted)
    return util::make_error(util::ErrorCode::kFailedPrecondition,
                            "address already bound: " + address.to_string());
  return util::Status::ok_status();
}

void Network::close_listener(const Address& address) {
  listeners_.erase(address);
}

util::Result<std::shared_ptr<Endpoint>> Network::connect(
    const std::string& from_host, const Address& to) {
  auto listener = listeners_.find(to);
  if (listener == listeners_.end())
    return util::make_error(util::ErrorCode::kUnavailable,
                            "connection refused: nothing listening at " +
                                to.to_string());
  if (auto fw = firewalls_.find(to.host);
      fw != firewalls_.end() && !fw->second.permits(from_host, to.port))
    return util::make_error(util::ErrorCode::kUnavailable,
                            "firewall at " + to.host + " blocks " + from_host +
                                " -> port " + std::to_string(to.port));

  auto state = std::make_shared<Endpoint::ConnectionState>();
  state->network = this;
  state->link = link_between(from_host, to.host);

  auto client = std::make_shared<Endpoint>();
  client->state_ = state;
  client->local_host_ = from_host;
  client->remote_host_ = to.host;
  client->remote_port_ = to.port;
  client->is_initiator_ = true;

  auto server = std::make_shared<Endpoint>();
  server->state_ = state;
  server->local_host_ = to.host;
  server->remote_host_ = from_host;
  server->remote_port_ = to.port;
  server->is_initiator_ = false;

  state->side_a = client;
  state->side_b = server;

  listener->second(server);
  return client;
}

void Network::transmit(Endpoint& from, util::Bytes message) {
  auto state = from.state_;
  auto target = from.is_initiator_ ? state->side_b.lock() : state->side_a.lock();
  if (!target) return;

  if (rng_.chance(state->link.loss_probability)) {
    ++messages_dropped_;
    return;
  }

  sim::Time transmission =
      state->link.bandwidth_bytes_per_sec > 0
          ? sim::from_seconds(static_cast<double>(message.size()) /
                              state->link.bandwidth_bytes_per_sec)
          : 0;
  sim::Time& next_free =
      from.is_initiator_ ? state->next_free_a_to_b : state->next_free_b_to_a;
  sim::Time departure = std::max(engine_.now(), next_free);
  sim::Time arrival = departure + transmission + state->link.latency;
  next_free = departure + transmission;

  std::weak_ptr<Endpoint> weak_target = target;
  engine_.at(arrival, [this, weak_target,
                       payload = std::move(message)]() mutable {
    auto endpoint = weak_target.lock();
    if (!endpoint || !endpoint->is_open()) return;
    ++messages_delivered_;
    endpoint->deliver(std::move(payload));
  });
}

}  // namespace unicore::net
