#include "net/network.h"

#include <algorithm>

namespace unicore::net {

// Shared state between the two endpoints of a connection. Open-state is
// tracked per side: a close() shuts the closing side at once but the
// peer keeps receiving until the close notification — which may not
// overtake in-flight data — reaches it.
struct Endpoint::ConnectionState {
  Network* network = nullptr;
  LinkProfile link;
  bool open_a = true;  // initiator side
  bool open_b = true;  // acceptor side
  // FIFO ordering per direction: a message may not overtake its
  // predecessor even when bandwidth delays differ.
  sim::Time next_free_a_to_b = 0;
  sim::Time next_free_b_to_a = 0;
  std::weak_ptr<Endpoint> side_a;  // initiator
  std::weak_ptr<Endpoint> side_b;  // acceptor

  bool& side_open(bool initiator) { return initiator ? open_a : open_b; }
};

void Endpoint::send(util::Bytes message) {
  if (!is_open()) return;
  bytes_sent_ += message.size();
  state_->network->transmit(*this, std::move(message));
}

void Endpoint::set_receiver(Receiver receiver) {
  receiver_ = std::move(receiver);
  while (receiver_ && !inbox_.empty()) {
    util::Bytes message = std::move(inbox_.front());
    inbox_.pop_front();
    receiver_(std::move(message));
  }
}

void Endpoint::set_close_handler(std::function<void()> handler) {
  close_handler_ = std::move(handler);
}

void Endpoint::close() {
  if (!is_open()) return;
  state_->side_open(is_initiator_) = false;
  auto peer = is_initiator_ ? state_->side_b.lock() : state_->side_a.lock();
  if (peer) {
    // The close notification travels behind everything already queued in
    // this direction: it departs once the pipe is free and then takes one
    // link latency, so in-flight messages (scheduled earlier, same or
    // earlier arrival time) are delivered first.
    sim::Engine& engine = state_->network->engine_;
    sim::Time next_free =
        is_initiator_ ? state_->next_free_a_to_b : state_->next_free_b_to_a;
    sim::Time notice_at =
        std::max(engine.now(), next_free) + state_->link.latency;
    std::weak_ptr<Endpoint> weak_peer = peer;
    engine.at(notice_at, [weak_peer] {
      if (auto p = weak_peer.lock()) p->handle_peer_close();
    });
  }
}

bool Endpoint::is_open() const {
  return state_ && state_->side_open(is_initiator_);
}

obs::MetricsRegistry* Endpoint::metrics() const {
  return state_ && state_->network ? state_->network->metrics() : nullptr;
}

void Endpoint::deliver(util::Bytes&& message) {
  if (receiver_) {
    receiver_(std::move(message));
  } else {
    inbox_.push_back(std::move(message));
  }
}

void Endpoint::handle_peer_close() {
  if (state_) state_->side_open(is_initiator_) = false;
  if (close_handler_) {
    auto handler = std::move(close_handler_);
    close_handler_ = nullptr;
    handler();
  }
}

void Network::set_link(const std::string& a, const std::string& b,
                       LinkProfile profile) {
  auto key = std::minmax(a, b);
  links_[{key.first, key.second}] = profile;
}

const LinkProfile& Network::link_between(const std::string& a,
                                         const std::string& b) const {
  if (a == b) {
    // Loopback: effectively instantaneous and lossless.
    static const LinkProfile kLoopback{sim::usec(10), 1e9, 0.0};
    return kLoopback;
  }
  auto key = std::minmax(a, b);
  auto it = links_.find({key.first, key.second});
  return it == links_.end() ? default_link_ : it->second;
}

void Network::partition(const std::string& a, const std::string& b) {
  partitions_[host_pair(a, b)] = true;
}

void Network::heal(const std::string& a, const std::string& b) {
  partitions_.erase(host_pair(a, b));
}

bool Network::partitioned(const std::string& a, const std::string& b) const {
  auto it = partitions_.find(host_pair(a, b));
  return it != partitions_.end() && it->second;
}

void Network::drop_next(const std::string& from, const std::string& to,
                        int count) {
  if (count <= 0) {
    drop_schedules_.erase({from, to});
    return;
  }
  drop_schedules_[{from, to}] = count;
}

void Network::add_latency_spike(const std::string& a, const std::string& b,
                                sim::Time extra, sim::Time until) {
  spikes_[host_pair(a, b)] = LatencySpike{extra, until};
}

util::Status Network::listen(const Address& address, Acceptor acceptor) {
  auto [it, inserted] = listeners_.emplace(address, std::move(acceptor));
  (void)it;
  if (!inserted)
    return util::make_error(util::ErrorCode::kFailedPrecondition,
                            "address already bound: " + address.to_string());
  return util::Status::ok_status();
}

void Network::close_listener(const Address& address) {
  listeners_.erase(address);
}

util::Result<std::shared_ptr<Endpoint>> Network::connect(
    const std::string& from_host, const Address& to) {
  auto listener = listeners_.find(to);
  if (listener == listeners_.end())
    return util::make_error(util::ErrorCode::kUnavailable,
                            "connection refused: nothing listening at " +
                                to.to_string());
  if (partitioned(from_host, to.host))
    return util::make_error(util::ErrorCode::kUnavailable,
                            "network partitioned: " + from_host + " <-> " +
                                to.host);
  if (auto fw = firewalls_.find(to.host);
      fw != firewalls_.end() && !fw->second.permits(from_host, to.port))
    return util::make_error(util::ErrorCode::kUnavailable,
                            "firewall at " + to.host + " blocks " + from_host +
                                " -> port " + std::to_string(to.port));

  auto state = std::make_shared<Endpoint::ConnectionState>();
  state->network = this;
  state->link = link_between(from_host, to.host);

  auto client = std::make_shared<Endpoint>();
  client->state_ = state;
  client->local_host_ = from_host;
  client->remote_host_ = to.host;
  client->remote_port_ = to.port;
  client->is_initiator_ = true;

  auto server = std::make_shared<Endpoint>();
  server->state_ = state;
  server->local_host_ = to.host;
  server->remote_host_ = from_host;
  server->remote_port_ = to.port;
  server->is_initiator_ = false;

  state->side_a = client;
  state->side_b = server;

  listener->second(server);
  return client;
}

void Network::set_metrics(std::shared_ptr<obs::MetricsRegistry> registry) {
  metrics_ = std::move(registry);
  if (metrics_) {
    bytes_sent_counter_ = &metrics_->counter("unicore_net_bytes_sent_total");
    bytes_delivered_counter_ =
        &metrics_->counter("unicore_net_bytes_delivered_total");
    delivered_counter_ =
        &metrics_->counter("unicore_net_messages_delivered_total");
    dropped_counter_ = &metrics_->counter("unicore_net_messages_dropped_total");
  } else {
    bytes_sent_counter_ = nullptr;
    bytes_delivered_counter_ = nullptr;
    delivered_counter_ = nullptr;
    dropped_counter_ = nullptr;
  }
}

void Network::transmit(Endpoint& from, util::Bytes message) {
  auto state = from.state_;
  if (bytes_sent_counter_)
    bytes_sent_counter_->add(static_cast<double>(message.size()));
  auto target = from.is_initiator_ ? state->side_b.lock() : state->side_a.lock();
  if (!target) return;

  // Injected faults take precedence over probabilistic link loss: a
  // partitioned pair drops everything, a drop schedule eats the next N
  // messages in one direction.
  bool fault_drop = false;
  if (partitioned(from.local_host_, target->local_host_)) {
    fault_drop = true;
  } else if (auto sched =
                 drop_schedules_.find({from.local_host_, target->local_host_});
             sched != drop_schedules_.end()) {
    fault_drop = true;
    if (--sched->second <= 0) drop_schedules_.erase(sched);
  }
  if (fault_drop) {
    ++messages_dropped_;
    ++messages_dropped_by_faults_;
    if (dropped_counter_) dropped_counter_->increment();
    return;
  }

  if (rng_.chance(state->link.loss_probability)) {
    ++messages_dropped_;
    if (dropped_counter_) dropped_counter_->increment();
    return;
  }

  sim::Time transmission =
      state->link.bandwidth_bytes_per_sec > 0
          ? sim::from_seconds(static_cast<double>(message.size()) /
                              state->link.bandwidth_bytes_per_sec)
          : 0;
  sim::Time& next_free =
      from.is_initiator_ ? state->next_free_a_to_b : state->next_free_b_to_a;
  sim::Time departure = std::max(engine_.now(), next_free);
  sim::Time arrival = departure + transmission + state->link.latency;
  next_free = departure + transmission;

  if (auto spike = spikes_.find(host_pair(from.local_host_, target->local_host_));
      spike != spikes_.end()) {
    if (engine_.now() < spike->second.until)
      arrival += spike->second.extra;
    else
      spikes_.erase(spike);
  }

  std::weak_ptr<Endpoint> weak_target = target;
  std::weak_ptr<Endpoint> weak_sender = from.weak_from_this();
  engine_.at(arrival, [this, weak_target, weak_sender,
                       payload = std::move(message)]() mutable {
    auto endpoint = weak_target.lock();
    // Only the *receiving* side's open flag gates delivery: a sender
    // that closed after the send has already paid for the bytes.
    if (!endpoint || !endpoint->is_open()) return;
    ++messages_delivered_;
    if (delivered_counter_) delivered_counter_->increment();
    if (bytes_delivered_counter_)
      bytes_delivered_counter_->add(static_cast<double>(payload.size()));
    if (auto sender = weak_sender.lock())
      sender->bytes_delivered_ += payload.size();
    endpoint->deliver(std::move(payload));
  });
}

}  // namespace unicore::net
