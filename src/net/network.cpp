#include "net/network.h"

#include <algorithm>

namespace unicore::net {

// Shared state between the two endpoints of a connection. Open-state is
// tracked per side: a close() shuts the closing side at once but the
// peer keeps receiving until the close notification — which may not
// overtake in-flight data — reaches it.
struct Endpoint::ConnectionState {
  Network* network = nullptr;
  LinkProfile link;
  bool open_a = true;  // initiator side
  bool open_b = true;  // acceptor side
  std::weak_ptr<Endpoint> side_a;  // initiator
  std::weak_ptr<Endpoint> side_b;  // acceptor

  bool& side_open(bool initiator) { return initiator ? open_a : open_b; }
};

void Endpoint::send(util::Bytes message) {
  if (!is_open()) return;
  bytes_sent_ += message.size();
  state_->network->transmit(*this, std::move(message));
}

void Endpoint::set_receiver(Receiver receiver) {
  receiver_ = std::move(receiver);
  while (receiver_ && !inbox_.empty()) {
    util::Bytes message = std::move(inbox_.front());
    inbox_.pop_front();
    receiver_(std::move(message));
  }
}

void Endpoint::set_batch_receiver(BatchReceiver receiver) {
  batch_receiver_ = std::move(receiver);
  if (batch_receiver_ && !inbox_.empty()) {
    std::vector<util::Bytes> queued(std::make_move_iterator(inbox_.begin()),
                                    std::make_move_iterator(inbox_.end()));
    inbox_.clear();
    batch_receiver_(std::move(queued));
  }
}

void Endpoint::set_close_handler(std::function<void()> handler) {
  close_handler_ = std::move(handler);
}

void Endpoint::close() {
  if (!is_open()) return;
  state_->side_open(is_initiator_) = false;
  auto peer = is_initiator_ ? state_->side_b.lock() : state_->side_a.lock();
  // The close notification travels the same FIFO path as data — through
  // the shared link queue and the peer host's reactor — so every message
  // already in flight (including spike-delayed ones) arrives first.
  if (peer) state_->network->transmit_close(*this, peer);
}

bool Endpoint::is_open() const {
  return state_ && state_->side_open(is_initiator_);
}

obs::MetricsRegistry* Endpoint::metrics() const {
  return state_ && state_->network ? state_->network->metrics() : nullptr;
}

void Endpoint::deliver(util::Bytes&& message) {
  if (receiver_) {
    receiver_(std::move(message));
  } else {
    inbox_.push_back(std::move(message));
  }
}

void Endpoint::handle_peer_close() {
  if (state_) state_->side_open(is_initiator_) = false;
  if (close_handler_) {
    auto handler = std::move(close_handler_);
    close_handler_ = nullptr;
    handler();
  }
}

void Network::set_link(const std::string& a, const std::string& b,
                       LinkProfile profile) {
  auto key = std::minmax(a, b);
  links_[{key.first, key.second}] = profile;
}

const LinkProfile& Network::link_between(const std::string& a,
                                         const std::string& b) const {
  if (a == b) {
    // Loopback: effectively instantaneous and lossless.
    static const LinkProfile kLoopback{sim::usec(10), 1e9, 0.0};
    return kLoopback;
  }
  auto key = std::minmax(a, b);
  auto it = links_.find({key.first, key.second});
  return it == links_.end() ? default_link_ : it->second;
}

void Network::partition(const std::string& a, const std::string& b) {
  partitions_[host_pair(a, b)] = true;
}

void Network::heal(const std::string& a, const std::string& b) {
  partitions_.erase(host_pair(a, b));
}

bool Network::partitioned(const std::string& a, const std::string& b) const {
  auto it = partitions_.find(host_pair(a, b));
  return it != partitions_.end() && it->second;
}

void Network::drop_next(const std::string& from, const std::string& to,
                        int count) {
  if (count <= 0) {
    drop_schedules_.erase({from, to});
    return;
  }
  drop_schedules_[{from, to}] = count;
}

void Network::add_latency_spike(const std::string& a, const std::string& b,
                                sim::Time extra, sim::Time until) {
  spikes_[host_pair(a, b)] = LatencySpike{extra, until};
}

util::Status Network::listen(const Address& address, Acceptor acceptor) {
  // Check, then insert: the error path must not construct (and tear down)
  // a map node from the moved acceptor.
  if (listeners_.find(address) != listeners_.end())
    return util::make_error(util::ErrorCode::kFailedPrecondition,
                            "address already bound: " + address.to_string());
  listeners_.emplace(address, std::move(acceptor));
  return util::Status::ok_status();
}

void Network::close_listener(const Address& address) {
  listeners_.erase(address);
}

util::Result<std::shared_ptr<Endpoint>> Network::connect(
    const std::string& from_host, const Address& to) {
  auto listener = listeners_.find(to);
  if (listener == listeners_.end())
    return util::make_error(util::ErrorCode::kUnavailable,
                            "connection refused: nothing listening at " +
                                to.to_string());
  if (partitioned(from_host, to.host))
    return util::make_error(util::ErrorCode::kUnavailable,
                            "network partitioned: " + from_host + " <-> " +
                                to.host);
  if (auto fw = firewalls_.find(to.host);
      fw != firewalls_.end() && !fw->second.permits(from_host, to.port))
    return util::make_error(util::ErrorCode::kUnavailable,
                            "firewall at " + to.host + " blocks " + from_host +
                                " -> port " + std::to_string(to.port));

  auto state = std::make_shared<Endpoint::ConnectionState>();
  state->network = this;
  state->link = link_between(from_host, to.host);

  auto client = std::make_shared<Endpoint>();
  client->state_ = state;
  client->local_host_ = from_host;
  client->remote_host_ = to.host;
  client->remote_port_ = to.port;
  client->is_initiator_ = true;

  auto server = std::make_shared<Endpoint>();
  server->state_ = state;
  server->local_host_ = to.host;
  server->remote_host_ = from_host;
  server->remote_port_ = to.port;
  server->is_initiator_ = false;

  state->side_a = client;
  state->side_b = server;

  listener->second(server);
  return client;
}

void Network::set_metrics(std::shared_ptr<obs::MetricsRegistry> registry) {
  metrics_ = std::move(registry);
  if (metrics_) {
    bytes_sent_counter_ = &metrics_->counter("unicore_net_bytes_sent_total");
    bytes_delivered_counter_ =
        &metrics_->counter("unicore_net_bytes_delivered_total");
    sent_counter_ = &metrics_->counter("unicore_net_messages_sent_total");
    delivered_counter_ =
        &metrics_->counter("unicore_net_messages_delivered_total");
    dropped_counter_ = &metrics_->counter("unicore_net_messages_dropped_total");
  } else {
    bytes_sent_counter_ = nullptr;
    bytes_delivered_counter_ = nullptr;
    sent_counter_ = nullptr;
    delivered_counter_ = nullptr;
    dropped_counter_ = nullptr;
  }
}

Reactor& Network::reactor_for(const std::string& host) {
  auto it = reactors_.find(host);
  if (it == reactors_.end())
    it = reactors_.emplace(host, std::make_unique<Reactor>(engine_, *this))
             .first;
  return *it->second;
}

sim::Time Network::spike_extra(const std::string& a, const std::string& b) {
  auto spike = spikes_.find(host_pair(a, b));
  if (spike == spikes_.end()) return 0;
  if (engine_.now() < spike->second.until) return spike->second.extra;
  spikes_.erase(spike);
  return 0;
}

sim::Time Network::link_arrival(const std::string& from, const std::string& to,
                                std::size_t bytes, const LinkProfile& link) {
  sim::Time transmission =
      link.bandwidth_bytes_per_sec > 0
          ? sim::from_seconds(static_cast<double>(bytes) /
                              link.bandwidth_bytes_per_sec)
          : 0;
  LinkQueue& queue = link_queues_[{from, to}];
  sim::Time departure = std::max(engine_.now(), queue.busy_until);
  queue.busy_until = departure + transmission;
  sim::Time arrival =
      departure + transmission + link.latency + spike_extra(from, to);
  // FIFO on the wire: even when the delay model shrinks (a latency spike
  // expires), nothing overtakes what is already in flight.
  arrival = std::max(arrival, queue.last_arrival);
  queue.last_arrival = arrival;
  return arrival;
}

void Network::count_drop(std::size_t n) {
  messages_dropped_ += n;
  if (dropped_counter_)
    dropped_counter_->add(static_cast<double>(n));
}

void Network::transmit(Endpoint& from, util::Bytes message) {
  auto state = from.state_;
  ++messages_sent_;
  if (sent_counter_) sent_counter_->increment();
  if (bytes_sent_counter_)
    bytes_sent_counter_->add(static_cast<double>(message.size()));
  auto target = from.is_initiator_ ? state->side_b.lock() : state->side_a.lock();
  if (!target) {
    // Peer endpoint already destroyed: the message is gone, and the books
    // must say so (sent = delivered + dropped).
    count_drop();
    return;
  }

  // Injected faults take precedence over probabilistic link loss: a
  // partitioned pair drops everything, a drop schedule eats the next N
  // messages in one direction.
  bool fault_drop = false;
  if (partitioned(from.local_host_, target->local_host_)) {
    fault_drop = true;
  } else if (auto sched =
                 drop_schedules_.find({from.local_host_, target->local_host_});
             sched != drop_schedules_.end()) {
    fault_drop = true;
    if (--sched->second <= 0) drop_schedules_.erase(sched);
  }
  if (fault_drop) {
    count_drop();
    ++messages_dropped_by_faults_;
    return;
  }

  if (rng_.chance(state->link.loss_probability)) {
    count_drop();
    return;
  }

  sim::Time arrival = link_arrival(from.local_host_, target->local_host_,
                                   message.size(), state->link);
  reactor_for(target->local_host_)
      .enqueue_message(arrival, target, from.weak_from_this(),
                       std::move(message));
}

void Network::transmit_close(Endpoint& from,
                             const std::shared_ptr<Endpoint>& peer) {
  // A close notice carries no payload but flows through the same link
  // queue and reactor as data, so it cannot overtake in-flight messages.
  // It deliberately skips the fault knobs: teardown is observed even
  // across partitions (the local side is gone either way).
  sim::Time arrival =
      link_arrival(from.local_host_, peer->local_host_, 0, from.state_->link);
  reactor_for(peer->local_host_).enqueue_close(arrival, peer);
}

void Network::dispatch_batch(const std::shared_ptr<Endpoint>& target,
                             std::vector<Reactor::Item>&& batch) {
  if (!target) {
    // Every weak reference expired while the batch was in flight.
    count_drop(batch.size());
    return;
  }
  if (target->batch_receiver_) {
    if (!target->is_open()) {
      count_drop(batch.size());
      return;
    }
    std::vector<util::Bytes> payloads;
    payloads.reserve(batch.size());
    for (Reactor::Item& item : batch) {
      ++messages_delivered_;
      if (delivered_counter_) delivered_counter_->increment();
      if (bytes_delivered_counter_)
        bytes_delivered_counter_->add(static_cast<double>(item.payload.size()));
      if (auto sender = item.sender.lock())
        sender->bytes_delivered_ += item.payload.size();
      payloads.push_back(std::move(item.payload));
    }
    target->batch_receiver_(std::move(payloads));
    return;
  }
  for (Reactor::Item& item : batch) {
    // Only the *receiving* side's open flag gates delivery: a sender
    // that closed after the send has already paid for the bytes. A
    // receiver that closes mid-batch drops the tail — counted.
    if (!target->is_open()) {
      count_drop();
      continue;
    }
    ++messages_delivered_;
    if (delivered_counter_) delivered_counter_->increment();
    if (bytes_delivered_counter_)
      bytes_delivered_counter_->add(static_cast<double>(item.payload.size()));
    if (auto sender = item.sender.lock())
      sender->bytes_delivered_ += item.payload.size();
    target->deliver(std::move(item.payload));
  }
}

void Network::dispatch_close(const std::shared_ptr<Endpoint>& target) {
  target->handle_peer_close();
}

}  // namespace unicore::net
