// ChannelPool — N warm, resumption-capable secure channels to one
// remote address, shared by whatever traffic a component aims at that
// peer (NJS–NJS requests, transfer rails).
//
// Slots connect lazily on first use and reconnect after failure;
// messages sent during a handshake are queued per slot. Every slot
// shares the pool's SecureChannel template — in particular its
// SessionCache — so the first full handshake to a peer warms a ticket
// and every later (re)connect resumes in one round trip with zero
// public-key operations.
//
// Failure is isolated per slot: the owner's slot-failure handler fires
// for exactly the slot that died, and only that slot's in-flight work
// needs to be failed. All channel callbacks hold the pool weakly;
// dropping the last owning reference tears every slot down.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "net/network.h"
#include "net/secure_channel.h"
#include "util/result.h"

namespace unicore::net {

class ChannelPool : public std::enable_shared_from_this<ChannelPool> {
 public:
  struct Config {
    std::string local_host;  // host the pool connects from
    Address remote;
    std::size_t size = 1;
    /// Template applied to every slot's channel. When session_key is
    /// empty it defaults to SessionCache::key_for(remote) so all slots
    /// share one ticket lineage.
    SecureChannel::Config channel;
    /// Feature bits every slot must negotiate; a slot whose handshake
    /// settles without them fails with kFailedPrecondition (e.g. the
    /// transfer rails require kFeatureChunkedXfer).
    std::uint64_t required_features = 0;
  };

  /// (slot, decrypted message) for every application message.
  using Receiver = std::function<void(std::size_t, util::Bytes&&)>;
  /// Fired once per slot failure, before the slot becomes reconnectable.
  using SlotFailureHandler =
      std::function<void(std::size_t, const util::Error&)>;
  using FeatureHandler = std::function<void(util::Result<std::uint64_t>)>;

  static std::shared_ptr<ChannelPool> create(sim::Engine& engine,
                                             Network& network, util::Rng& rng,
                                             Config config);
  ~ChannelPool();

  std::size_t size() const { return slots_.size(); }

  /// Round-robin slot pick for traffic with no slot affinity.
  std::size_t next_slot() {
    std::size_t slot = round_robin_;
    round_robin_ = (round_robin_ + 1) % slots_.size();
    return slot;
  }

  /// Sends on `slot`, connecting it first if needed (messages queue
  /// during the handshake). On a synchronous connect failure the slot
  /// failure handler has already fired when this returns.
  void send_on(std::size_t slot, util::Bytes wire);

  /// Calls `ready` with an established slot's negotiated feature set —
  /// immediately when one is up, else after slot 0's handshake settles.
  void with_features(FeatureHandler ready);

  void set_receiver(Receiver receiver) { on_message_ = std::move(receiver); }
  void set_slot_failure(SlotFailureHandler handler) {
    on_slot_failure_ = std::move(handler);
  }

  bool slot_established(std::size_t slot) const {
    return slots_[slot].established;
  }
  /// The slot's channel (nullptr when disconnected) — for diagnostics
  /// such as resumed() or negotiated_features().
  std::shared_ptr<SecureChannel> slot_channel(std::size_t slot) const {
    return slots_[slot].channel;
  }

  /// Closes every slot. Does not fire slot-failure handlers — owners
  /// shutting down fail their own in-flight work.
  void shutdown();

  /// Handshakes started (full or resumed) over the pool's lifetime.
  std::uint64_t connects() const { return connects_; }
  /// How many of the settled handshakes were ticket resumptions.
  std::uint64_t resumptions() const { return resumptions_; }

 private:
  struct Slot {
    std::shared_ptr<SecureChannel> channel;
    bool established = false;
    std::deque<util::Bytes> backlog;
  };

  ChannelPool(sim::Engine& engine, Network& network, util::Rng& rng,
              Config config);

  void ensure_slot(std::size_t index);
  void fail_slot(std::size_t index, util::Error error);
  bool any_established() const;

  sim::Engine& engine_;
  Network& network_;
  util::Rng rng_;
  Config config_;
  std::vector<Slot> slots_;
  std::size_t round_robin_ = 0;
  Receiver on_message_;
  SlotFailureHandler on_slot_failure_;
  std::vector<FeatureHandler> feature_waiters_;
  std::uint64_t connects_ = 0;
  std::uint64_t resumptions_ = 0;
};

}  // namespace unicore::net
