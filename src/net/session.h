// Session resumption state for the SecureChannel (see docs/SECURITY.md).
//
// After a full handshake the server seals a *session ticket* — an
// encrypted, MAC'd capsule holding the channel's master secret, the
// peer's validated certificate, and the negotiated feature set — and
// hands it to the client. A later connection presents the ticket and
// both sides derive fresh per-direction keys from the cached master
// secret plus new randoms: one round trip, no Diffie–Hellman, no chain
// re-validation. No check is weakened: tickets expire after a TTL, are
// bound to the trust-store generation they were minted under (any root
// or CRL change kills every outstanding ticket), and can be revoked
// wholesale with invalidate_all().
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "crypto/cipher.h"
#include "crypto/x509.h"
#include "util/bytes.h"
#include "util/result.h"
#include "util/rng.h"

namespace unicore::net {

/// What a redeemed ticket restores: enough to resume a channel without
/// public-key operations.
struct ResumptionState {
  util::Bytes master_secret;  // 32 bytes — the full handshake's PRK
  crypto::Certificate peer_certificate;
  std::uint64_t features = 0;  // features negotiated by the full handshake
};

/// Server-side ticket mint. Tickets are opaque to clients: sealed under
/// the manager's session-ticket encryption keys (STEK) with the ticket
/// id as nonce, so a client — or an eavesdropper — can neither read nor
/// forge one.
class SessionTicketManager {
 public:
  explicit SessionTicketManager(util::Rng& rng);

  /// Binds tickets to `trust`'s generation: adding a root or CRL there
  /// refuses every ticket minted before the change.
  void attach_trust(const crypto::TrustStore* trust) { trust_ = trust; }

  void set_ttl(std::int64_t seconds) { ttl_seconds_ = seconds; }
  std::int64_t ttl() const { return ttl_seconds_; }

  /// Seals `state` into a ticket wire blob stamped with `now`, the STEK
  /// epoch, and the current trust-store generation.
  util::Bytes issue(const ResumptionState& state, std::int64_t now);

  /// Authenticates and decrypts a ticket. Refuses (kPermissionDenied /
  /// kAuthenticationFailed) expired tickets, tickets from an older STEK
  /// epoch, tickets minted under an older trust-store generation, and
  /// tickets whose certificate is outside its validity window.
  util::Result<ResumptionState> redeem(util::ByteView ticket,
                                       std::int64_t now);

  /// Explicit revocation: every outstanding ticket is refused afterwards.
  void invalidate_all() { ++epoch_; }

  std::uint64_t issued() const { return issued_; }
  std::uint64_t redeemed() const { return redeemed_; }
  std::uint64_t refused() const { return refused_; }

 private:
  crypto::SymmetricKey stek_enc_;
  crypto::SymmetricKey stek_mac_;
  const crypto::TrustStore* trust_ = nullptr;
  std::int64_t ttl_seconds_ = 3600;
  std::uint64_t epoch_ = 1;
  std::uint64_t next_ticket_id_ = 1;
  std::uint64_t issued_ = 0;
  std::uint64_t redeemed_ = 0;
  std::uint64_t refused_ = 0;
};

/// Client-side cache of resumable sessions, keyed by destination
/// ("host:port"). Shared by every channel a component opens toward the
/// same peer — the client's main channel and its transfer rails, or a
/// server's whole peer pool — so any one full handshake warms them all.
class SessionCache {
 public:
  struct Entry {
    util::Bytes ticket;         // opaque server capsule
    util::Bytes master_secret;  // retained locally, never on the wire
    crypto::Certificate server_certificate;
    std::uint64_t features = 0;
    std::int64_t expires_at = 0;  // epoch seconds (server lifetime hint)
  };

  void put(const std::string& key, Entry entry) {
    entries_[key] = std::move(entry);
  }
  /// nullptr when absent or past the server's lifetime hint (expired
  /// entries are dropped — the server would refuse them anyway).
  const Entry* get(const std::string& key, std::int64_t now) {
    auto it = entries_.find(key);
    if (it == entries_.end()) return nullptr;
    if (now >= it->second.expires_at) {
      entries_.erase(it);
      return nullptr;
    }
    return &it->second;
  }
  void remove(const std::string& key) { entries_.erase(key); }
  void clear() { entries_.clear(); }
  std::size_t size() const { return entries_.size(); }

  static std::string key_for(const std::string& host, std::uint16_t port) {
    return host + ":" + std::to_string(port);
  }

 private:
  std::map<std::string, Entry> entries_;
};

}  // namespace unicore::net
