#include "net/faults.h"

namespace unicore::net {

void FaultInjector::partition_at(sim::Time when, const std::string& a,
                                 const std::string& b) {
  ++scheduled_;
  engine_.at(when, [this, a, b] { network_.partition(a, b); });
}

void FaultInjector::heal_at(sim::Time when, const std::string& a,
                            const std::string& b) {
  ++scheduled_;
  engine_.at(when, [this, a, b] { network_.heal(a, b); });
}

void FaultInjector::partition_for(sim::Time when, sim::Time duration,
                                  const std::string& a, const std::string& b) {
  partition_at(when, a, b);
  heal_at(when + duration, a, b);
}

void FaultInjector::latency_spike_at(sim::Time when, const std::string& a,
                                     const std::string& b, sim::Time extra,
                                     sim::Time duration) {
  ++scheduled_;
  engine_.at(when, [this, a, b, extra, until = when + duration] {
    network_.add_latency_spike(a, b, extra, until);
  });
}

void FaultInjector::drop_next_at(sim::Time when, const std::string& from,
                                 const std::string& to, int count) {
  ++scheduled_;
  engine_.at(when, [this, from, to, count] {
    network_.drop_next(from, to, count);
  });
}

void FaultInjector::at(sim::Time when, std::function<void()> action) {
  ++scheduled_;
  engine_.at(when, std::move(action));
}

}  // namespace unicore::net
