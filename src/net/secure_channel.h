// SSL-style secure channel over an Endpoint ("low-level protocol", §5.3).
//
// Mirrors the paper's https handshake (§4.1): the server first presents
// its X.509 certificate for validation, then the client's certificate is
// presented for user authentication — mutual authentication of all
// UNICORE "players". Key agreement is Diffie–Hellman; the record layer
// is encrypt-then-MAC with per-direction keys and sequence numbers.
//
// Handshake (3 messages, asynchronous):
//   client -> ClientHello  { client_random, dh_public }
//   server -> ServerHello  { server_random, dh_public, cert chain,
//                            signature over transcript }
//   client -> ClientCert   { cert chain, signature over transcript }
// Either side aborts with an Alert on validation failure; a lost
// handshake message surfaces as a timeout (the link may drop packets).
//
// Session resumption (v2 feature, see docs/PROTOCOL.md): a client
// holding a session ticket from a prior full handshake sends
// ClientHelloResumed instead; the server answers ServerHelloResumed
// (accept, 1 round trip, zero public-key operations) or HelloRetry
// (refuse — the client transparently restarts with a full ClientHello
// on the same connection).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>

#include "crypto/cipher.h"
#include "crypto/x509.h"
#include "net/network.h"
#include "net/session.h"
#include "sim/engine.h"
#include "util/bytes.h"
#include "util/result.h"
#include "util/rng.h"
#include "util/spsc_ring.h"

namespace unicore::util {
class ThreadPool;
}

namespace unicore::net {

/// Current protocol version of the secure channel. Version 2 adds the
/// version/feature negotiation fields to the hello exchange; version 1
/// peers simply omit them and both sides fall back to the v1 feature
/// set (see PROTOCOL.md "Version negotiation").
constexpr std::uint8_t kProtocolVersion = 2;

/// Feature bits exchanged during the hello negotiation. The effective
/// feature set of a channel is the AND of what both sides advertise.
constexpr std::uint64_t kFeatureJournalInspect = 1ull << 0;
/// Peer understands the chunked transfer protocol (kXferOpen /
/// kXferChunk / kXferClose). Without it the sender falls back to the
/// legacy whole-blob kDeliverFile / kFetchFile requests.
constexpr std::uint64_t kFeatureChunkedXfer = 1ull << 1;
/// Peer supports session resumption (ticket in the ServerFinished tail,
/// ClientHelloResumed / ServerHelloResumed / HelloRetry messages).
constexpr std::uint64_t kFeatureResumption = 1ull << 2;
/// Peer understands kRecordBatch frames: multiple sealed records
/// coalesced into one wire message, large payloads fragmented across
/// records (see docs/PROTOCOL.md "Batched records"). Without it every
/// application message travels as a single kRecord frame.
constexpr std::uint64_t kFeatureBatchRecords = 1ull << 3;
/// Peer speaks the portal facade: gateway-issued session tokens
/// (kSessionOpen / kSessionRefresh / kSessionClose), token-authenticated
/// requests (the kTokenRequest envelope), and managed job storages
/// (kStorageList / kStorageFiles / kStorageReap). Without it the portal
/// request kinds are refused and clients stay on per-request
/// certificate authentication.
constexpr std::uint64_t kFeaturePortal = 1ull << 4;
/// Peer understands bundle transfers (kXferBundleOpen /
/// kXferBundleClose): one open carries the manifests of many files,
/// whose chunks interleave over the ordinary kXferChunk frames tagged
/// with an in-bundle file index. Requires kFeatureChunkedXfer. Without
/// it the sender falls back to one transfer per file.
constexpr std::uint64_t kFeatureBundleXfer = 1ull << 5;
constexpr std::uint64_t kDefaultFeatures =
    kFeatureJournalInspect | kFeatureChunkedXfer | kFeatureResumption |
    kFeatureBatchRecords | kFeaturePortal | kFeatureBundleXfer;

class SecureChannel : public std::enable_shared_from_this<SecureChannel> {
 public:
  struct Config {
    crypto::Credential credential;           // our identity
    const crypto::TrustStore* trust = nullptr;  // to validate the peer
    std::uint8_t required_peer_usage = 0;    // e.g. kUsageServerAuth
    sim::Time handshake_timeout = sim::sec(30);
    /// Highest protocol version we speak. Setting 1 emits v1 wire
    /// messages (no negotiation tail) — used by tests to prove
    /// backward compatibility.
    std::uint8_t protocol_version = kProtocolVersion;
    /// Features we advertise (only meaningful for version >= 2).
    std::uint64_t features = kDefaultFeatures;
    /// Server side: mints and redeems session tickets. nullptr means
    /// this server never offers resumption (resumed hellos are answered
    /// with HelloRetry and clients fall back to full handshakes).
    SessionTicketManager* ticket_manager = nullptr;
    /// Client side: cache of resumable sessions, typically shared by
    /// every channel the component opens (main channel, transfer rails,
    /// peer pool slots) so one full handshake warms them all.
    SessionCache* session_cache = nullptr;
    /// Cache key for this destination; defaults to the endpoint's
    /// remote host when empty. Owners that multiplex several logical
    /// peers over one host should set it to SessionCache::key_for().
    std::string session_key;
    /// Worker pool for the record pipeline: when set, the seal/open
    /// kernels of a multi-record batch run as a parallel_for over the
    /// records (independent buffers, order-independent results — the
    /// deterministic dispatch order is re-imposed by the ring drain).
    /// nullptr keeps all crypto on the calling thread.
    util::ThreadPool* record_pool = nullptr;
  };

  /// Fired exactly once with the handshake result.
  using EstablishedHandler = std::function<void(util::Status)>;
  /// Fired per decrypted application message.
  using MessageHandler = std::function<void(util::Bytes&&)>;

  /// Starts a client-side handshake on `endpoint`.
  static std::shared_ptr<SecureChannel> as_client(
      sim::Engine& engine, util::Rng& rng,
      std::shared_ptr<Endpoint> endpoint, Config config,
      EstablishedHandler on_established);

  /// Awaits a client handshake on `endpoint` (server side).
  static std::shared_ptr<SecureChannel> as_server(
      sim::Engine& engine, util::Rng& rng,
      std::shared_ptr<Endpoint> endpoint, Config config,
      EstablishedHandler on_established);

  /// Encrypts and sends an application message. Must not be called
  /// before the channel is established.
  void send(util::Bytes plaintext);

  /// Installs the application message handler.
  void set_receiver(MessageHandler handler);

  /// Fired when the underlying connection closes.
  void set_close_handler(std::function<void()> handler);

  void close();

  bool established() const { return state_ == State::kEstablished; }
  bool failed() const { return state_ == State::kFailed; }

  /// True when the channel was established by ticket resumption rather
  /// than a full handshake (meaningful once established).
  bool resumed() const { return resumed_; }

  /// The peer's validated certificate (only after establishment).
  const crypto::Certificate& peer_certificate() const {
    return peer_certificate_;
  }

  /// Negotiated protocol version: min of both sides' offers; 1 when the
  /// peer predates negotiation. Meaningful once established.
  std::uint8_t negotiated_version() const { return negotiated_version_; }
  /// Negotiated feature set: AND of both sides' advertised features
  /// (empty for v1 peers).
  std::uint64_t negotiated_features() const { return negotiated_features_; }
  bool feature_enabled(std::uint64_t feature) const {
    return (negotiated_features_ & feature) != 0;
  }

  const std::string& remote_host() const { return endpoint_->remote_host(); }

  /// Sequence numbers (diagnostics / tests).
  std::uint64_t messages_sent() const { return send_seq_; }
  std::uint64_t messages_received() const { return recv_seq_; }

  /// Batched-record diagnostics: wire frames carrying coalesced records
  /// in each direction (0 when the feature was not negotiated).
  std::uint64_t batch_frames_sent() const { return batch_frames_sent_; }
  std::uint64_t batch_frames_received() const {
    return batch_frames_received_;
  }

 private:
  enum class State {
    kClientAwaitServerHello,
    kClientAwaitServerFinished,
    kClientAwaitResumedReply,
    kServerAwaitClientHello,
    kServerAwaitClientCert,
    kEstablished,
    kFailed,
  };

  SecureChannel(sim::Engine& engine, util::Rng& rng,
                std::shared_ptr<Endpoint> endpoint, Config config,
                EstablishedHandler on_established, bool is_client);

  void start();
  void send_full_client_hello();
  void send_resumed_client_hello(const SessionCache::Entry& cached);
  void handle_wire_message(util::Bytes&& wire);
  void handle_server_hello(util::ByteReader& reader);
  void handle_client_hello(util::ByteReader& reader);
  void handle_client_cert(util::ByteReader& reader);
  void handle_server_finished(util::ByteReader& reader);
  void handle_client_hello_resumed(util::ByteReader& reader,
                                   const util::Bytes& wire);
  void handle_server_hello_resumed(util::ByteReader& reader);
  void handle_hello_retry();
  void handle_record(util::ByteReader& reader);
  void handle_record_batch(util::ByteReader& reader, util::Bytes& wire);
  void flush_send_queue();
  void dispatch_plaintext(util::Bytes&& plaintext);
  void drain_dispatch_ring();
  void fail(util::Error error, bool send_alert);
  void succeed();
  void derive_keys();
  void derive_resumed_keys();
  std::string session_cache_key() const;
  util::Status validate_peer(const crypto::Certificate& leaf,
                             const std::vector<crypto::Certificate>& chain);

  sim::Engine& engine_;
  util::Rng rng_;
  std::shared_ptr<Endpoint> endpoint_;
  Config config_;
  EstablishedHandler on_established_;
  MessageHandler on_message_;
  std::function<void()> on_close_;
  bool is_client_;
  State state_;

  util::Bytes client_random_;
  util::Bytes server_random_;
  crypto::DhKeyPair dh_;
  std::uint64_t peer_dh_public_ = 0;
  util::Bytes transcript_;  // running concatenation of handshake bodies
  crypto::Certificate peer_certificate_;
  std::uint8_t negotiated_version_ = 1;
  std::uint64_t negotiated_features_ = 0;
  /// PRK of the handshake (full: extracted from the DH secret; resumed:
  /// carried over from the ticket). Source material for tickets and for
  /// resumed key schedules — never sent on the wire in the clear.
  util::Bytes master_secret_;
  bool resumed_ = false;
  bool resumption_attempted_ = false;

  crypto::SymmetricKey send_enc_, send_mac_, recv_enc_, recv_mac_;
  std::uint64_t send_seq_ = 0;
  std::uint64_t recv_seq_ = 0;
  std::optional<sim::EventId> timeout_event_;

  // --- batched record pipeline (kFeatureBatchRecords) -------------------
  /// Messages queued by send() awaiting the end-of-instant flush that
  /// coalesces them into kRecordBatch frames.
  std::vector<util::Bytes> send_queue_;
  bool flush_scheduled_ = false;
  /// Reassembly buffer for a fragmented message in progress (flags 1/2/3
  /// records); sized once from the first fragment's announced total.
  util::Bytes reassembly_;
  std::size_t reassembly_expected_ = 0;
  /// Decrypt -> dispatch hand-off: the open stage (possibly fanned out on
  /// the record pool) pushes plaintexts, the drain calls the application
  /// handler in record order.
  util::SpscRing<util::Bytes> dispatch_ring_{256};
  std::uint64_t batch_frames_sent_ = 0;
  std::uint64_t batch_frames_received_ = 0;
};

}  // namespace unicore::net
