#include "net/session.h"

namespace unicore::net {

using util::ByteReader;
using util::Bytes;
using util::ByteWriter;
using util::ErrorCode;
using util::Result;

SessionTicketManager::SessionTicketManager(util::Rng& rng)
    : stek_enc_{rng.bytes(32)}, stek_mac_{rng.bytes(32)} {}

Bytes SessionTicketManager::issue(const ResumptionState& state,
                                  std::int64_t now) {
  ByteWriter plain;
  plain.blob(state.master_secret);
  plain.blob(state.peer_certificate.der());
  plain.u64(state.features);
  plain.i64(now);
  plain.u64(epoch_);
  plain.u64(trust_ != nullptr ? trust_->generation() : 0);

  std::uint64_t ticket_id = next_ticket_id_++;
  Bytes sealed = plain.take();
  crypto::Digest tag =
      crypto::seal_inplace(stek_enc_, stek_mac_, ticket_id, sealed, {});

  ByteWriter wire;
  wire.u64(ticket_id);
  wire.blob(sealed);
  wire.raw(tag);
  ++issued_;
  return wire.take();
}

Result<ResumptionState> SessionTicketManager::redeem(util::ByteView ticket,
                                                     std::int64_t now) {
  auto refuse = [this](ErrorCode code, const char* why) -> util::Error {
    ++refused_;
    return util::make_error(code, std::string("session ticket refused: ") +
                                      why);
  };
  try {
    ByteReader reader{ticket};
    std::uint64_t ticket_id = reader.u64();
    Bytes sealed = reader.blob();
    Bytes tag_bytes = reader.raw(32);
    crypto::Digest tag;
    std::copy(tag_bytes.begin(), tag_bytes.end(), tag.begin());
    if (auto status = crypto::open_inplace(stek_enc_, stek_mac_, ticket_id,
                                           sealed, tag, {});
        !status.ok())
      return refuse(ErrorCode::kAuthenticationFailed, "bad MAC");

    ByteReader plain{sealed};
    ResumptionState state;
    state.master_secret = plain.blob();
    Bytes cert_der = plain.blob();
    state.features = plain.u64();
    std::int64_t issued_at = plain.i64();
    std::uint64_t epoch = plain.u64();
    std::uint64_t trust_generation = plain.u64();

    if (epoch != epoch_)
      return refuse(ErrorCode::kPermissionDenied, "invalidated");
    if (now >= issued_at + ttl_seconds_)
      return refuse(ErrorCode::kPermissionDenied, "expired");
    if (trust_ != nullptr && trust_generation != trust_->generation())
      return refuse(ErrorCode::kPermissionDenied,
                    "trust store changed since issuance");

    auto cert = crypto::Certificate::from_der(cert_der);
    if (!cert) return refuse(ErrorCode::kAuthenticationFailed, "bad cert");
    if (!cert.value().valid_at(now))
      return refuse(ErrorCode::kPermissionDenied,
                    "certificate outside validity window");
    state.peer_certificate = std::move(cert.value());
    ++redeemed_;
    return state;
  } catch (const std::out_of_range&) {
    return refuse(ErrorCode::kInvalidArgument, "malformed");
  }
}

}  // namespace unicore::net
