// Per-host delivery reactor.
//
// The fabric used to schedule one simulation event per in-flight message,
// so a busy server paid one callback dispatch per record. The reactor
// replaces that with an event loop per destination host: arrivals are
// queued in (arrival-time, sequence) order and a single engine tick —
// scheduled for the earliest pending arrival — drains every message whose
// arrival time has been reached. Consecutive messages for the same
// endpoint are handed over as one batch, which is what makes the batched
// record path in SecureChannel effective: one tick, one batch, one pass
// over the ciphertext.
//
// Delivery *times* are unchanged relative to per-message scheduling: a
// tick always fires exactly at the earliest queued arrival, and entries
// with later arrival times stay queued for a later tick. Ordering within
// a host is the (arrival, sequence) order, i.e. FIFO with respect to the
// link model. Close notices travel through the same queue as data, which
// makes the "close may not overtake data" contract structural.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/engine.h"
#include "util/bytes.h"

namespace unicore::net {

class Endpoint;
class Network;

class Reactor {
 public:
  /// One queued arrival: either a data message or a close notice
  /// (payload empty, `is_close` set).
  struct Item {
    sim::Time arrival = 0;
    std::uint64_t seq = 0;
    bool is_close = false;
    std::weak_ptr<Endpoint> target;
    std::weak_ptr<Endpoint> sender;
    util::Bytes payload;
  };

  Reactor(sim::Engine& engine, Network& network)
      : engine_(engine), network_(network) {}

  void enqueue_message(sim::Time arrival, std::weak_ptr<Endpoint> target,
                       std::weak_ptr<Endpoint> sender, util::Bytes payload);
  void enqueue_close(sim::Time arrival, std::weak_ptr<Endpoint> target);

  std::size_t pending() const { return heap_.size(); }

  /// Ticks that dispatched at least one item.
  std::uint64_t ticks() const { return ticks_; }
  /// Batches handed to endpoints (a batch is a maximal run of consecutive
  /// ready messages for one endpoint).
  std::uint64_t batches_dispatched() const { return batches_dispatched_; }
  /// Messages dispatched across all batches.
  std::uint64_t messages_dispatched() const { return messages_dispatched_; }

 private:
  void push(Item item);
  void schedule_tick(sim::Time at);
  void tick();

  // Min-heap on (arrival, seq): seq breaks ties so equal-time arrivals
  // keep their enqueue order.
  struct Later {
    bool operator()(const Item& a, const Item& b) const {
      if (a.arrival != b.arrival) return a.arrival > b.arrival;
      return a.seq > b.seq;
    }
  };

  sim::Engine& engine_;
  Network& network_;
  std::vector<Item> heap_;
  std::uint64_t next_seq_ = 0;
  // Time of the currently scheduled tick, or -1 when none is pending.
  sim::Time scheduled_at_ = -1;
  std::uint64_t ticks_ = 0;
  std::uint64_t batches_dispatched_ = 0;
  std::uint64_t messages_dispatched_ = 0;
};

}  // namespace unicore::net
