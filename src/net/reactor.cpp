#include "net/reactor.h"

#include <algorithm>

#include "net/network.h"

namespace unicore::net {

void Reactor::enqueue_message(sim::Time arrival,
                              std::weak_ptr<Endpoint> target,
                              std::weak_ptr<Endpoint> sender,
                              util::Bytes payload) {
  Item item;
  item.arrival = arrival;
  item.seq = next_seq_++;
  item.target = std::move(target);
  item.sender = std::move(sender);
  item.payload = std::move(payload);
  push(std::move(item));
}

void Reactor::enqueue_close(sim::Time arrival,
                            std::weak_ptr<Endpoint> target) {
  Item item;
  item.arrival = arrival;
  item.seq = next_seq_++;
  item.is_close = true;
  item.target = std::move(target);
  push(std::move(item));
}

void Reactor::push(Item item) {
  sim::Time arrival = item.arrival;
  heap_.push_back(std::move(item));
  std::push_heap(heap_.begin(), heap_.end(), Later{});
  schedule_tick(arrival);
}

void Reactor::schedule_tick(sim::Time at) {
  // A tick is kept scheduled for the earliest pending arrival. An already
  // scheduled later tick is left in place (it becomes a cheap no-op: by
  // the time it fires everything it would have drained is gone or it
  // re-schedules itself), so no engine cancellation is needed.
  if (scheduled_at_ >= 0 && scheduled_at_ <= at) return;
  scheduled_at_ = at;
  engine_.at(at, [this, at] {
    if (scheduled_at_ == at) scheduled_at_ = -1;
    tick();
  });
}

void Reactor::tick() {
  // Drain everything that has arrived by now, in (arrival, seq) order.
  std::vector<Item> ready;
  while (!heap_.empty() && heap_.front().arrival <= engine_.now()) {
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    ready.push_back(std::move(heap_.back()));
    heap_.pop_back();
  }
  if (!ready.empty()) {
    ++ticks_;

    // Group maximal runs of consecutive messages for the same endpoint
    // into one batch; closes flush the current run and dispatch singly.
    std::shared_ptr<Endpoint> current;
    std::vector<Item> batch;
    auto flush = [&] {
      if (batch.empty()) return;
      ++batches_dispatched_;
      messages_dispatched_ += batch.size();
      network_.dispatch_batch(current, std::move(batch));
      batch.clear();
      current = nullptr;
    };
    for (Item& item : ready) {
      auto target = item.target.lock();
      if (item.is_close) {
        flush();
        if (target) network_.dispatch_close(target);
        continue;
      }
      if (target != current) flush();
      current = std::move(target);
      batch.push_back(std::move(item));
    }
    flush();
  }

  if (!heap_.empty()) schedule_tick(heap_.front().arrival);
}

}  // namespace unicore::net
