// Descriptors of the destination systems (tier 3). The 1999 deployment
// (§5.7) covered Cray T3E, Fujitsu VPP/700, IBM SP-2 and NEC SX-4; the
// SystemConfig captures what the NJS and the batch simulator need to
// know about such a machine.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "resources/resource_page.h"

namespace unicore::batch {

/// One batch queue with its admission limits — mirrors the per-queue
/// limits a site publishes on its resource page (§5.4).
struct QueueConfig {
  std::string name = "default";
  std::int64_t max_processors = 64;
  std::int64_t max_wallclock_seconds = 86'400;
  std::int64_t max_memory_mb = 65'536;
};

/// Full description of one destination system (one Vsite).
struct SystemConfig {
  std::string vsite;
  resources::Architecture architecture = resources::Architecture::kGenericUnix;
  std::string operating_system = "UNIX";
  std::int64_t nodes = 16;
  std::int64_t processors_per_node = 1;
  double gflops_per_processor = 0.5;
  std::int64_t memory_mb_per_node = 512;
  std::vector<QueueConfig> queues = {QueueConfig{}};
  /// EASY backfill on top of FCFS when true; pure FCFS otherwise
  /// (ablation knob for the scheduling bench).
  bool use_backfill = true;
  /// Mean time between node failures; 0 disables failure injection.
  double node_mtbf_hours = 0.0;

  std::int64_t total_processors() const { return nodes * processors_per_node; }

  const QueueConfig* find_queue(const std::string& name) const {
    for (const auto& queue : queues)
      if (queue.name == name) return &queue;
    return nullptr;
  }
};

/// Ready-made configurations of the four 1999 systems, dimensioned after
/// the machines the paper's sites operated.
SystemConfig make_cray_t3e(std::string vsite, std::int64_t nodes = 512);
SystemConfig make_fujitsu_vpp700(std::string vsite, std::int64_t nodes = 52);
SystemConfig make_ibm_sp2(std::string vsite, std::int64_t nodes = 77);
SystemConfig make_nec_sx4(std::string vsite, std::int64_t nodes = 4);

}  // namespace unicore::batch
