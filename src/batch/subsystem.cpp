#include "batch/subsystem.h"

#include <algorithm>
#include <cmath>

#include "util/log.h"

namespace unicore::batch {

using util::ErrorCode;
using util::Result;
using util::Status;

const char* batch_job_state_name(BatchJobState s) {
  switch (s) {
    case BatchJobState::kQueued: return "QUEUED";
    case BatchJobState::kRunning: return "RUNNING";
    case BatchJobState::kCompleted: return "COMPLETED";
    case BatchJobState::kFailed: return "FAILED";
    case BatchJobState::kKilled: return "KILLED";
    case BatchJobState::kCancelled: return "CANCELLED";
  }
  return "?";
}

BatchSubsystem::BatchSubsystem(sim::Engine& engine, util::Rng rng,
                               SystemConfig config)
    : engine_(engine),
      rng_(std::move(rng)),
      config_(std::move(config)),
      free_nodes_(config_.nodes) {}

Status BatchSubsystem::validate(const BatchRequest& request) const {
  const QueueConfig* queue = config_.find_queue(request.queue);
  if (queue == nullptr)
    return util::make_error(ErrorCode::kNotFound,
                            config_.vsite + ": no such queue: " +
                                request.queue);
  if (request.processors < 1 || request.processors > queue->max_processors)
    return util::make_error(
        ErrorCode::kResourceExhausted,
        config_.vsite + ": processors " + std::to_string(request.processors) +
            " outside queue limit " + std::to_string(queue->max_processors));
  if (request.wallclock_seconds < 1 ||
      request.wallclock_seconds > queue->max_wallclock_seconds)
    return util::make_error(
        ErrorCode::kResourceExhausted,
        config_.vsite + ": wallclock " +
            std::to_string(request.wallclock_seconds) +
            "s outside queue limit " +
            std::to_string(queue->max_wallclock_seconds) + "s");
  if (request.memory_mb < 0 || request.memory_mb > queue->max_memory_mb)
    return util::make_error(
        ErrorCode::kResourceExhausted,
        config_.vsite + ": memory " + std::to_string(request.memory_mb) +
            "MB outside queue limit " + std::to_string(queue->max_memory_mb) +
            "MB");
  return Status::ok_status();
}

Result<BatchJobId> BatchSubsystem::submit(const std::string& script,
                                          const std::string& owner,
                                          ExecutionSpec spec,
                                          CompletionHandler on_complete) {
  if (offline_)
    return util::make_error(ErrorCode::kUnavailable,
                            config_.vsite + ": batch subsystem offline");
  if (owner.empty())
    return util::make_error(ErrorCode::kPermissionDenied,
                            config_.vsite + ": submission without a login");
  auto request = parse_directives(config_.architecture, script);
  if (!request) return request.error();
  if (auto status = validate(request.value()); !status.ok())
    return status.error();

  auto job = std::make_unique<Job>();
  job->id = next_id_++;
  job->owner = owner;
  job->request = std::move(request.value());
  job->script = script;
  job->spec = std::move(spec);
  job->on_complete = std::move(on_complete);
  job->nodes_needed =
      (job->request.processors + config_.processors_per_node - 1) /
      config_.processors_per_node;
  job->result.submitted_at = engine_.now();

  BatchJobId id = job->id;
  jobs_[id] = std::move(job);
  queue_.push_back(id);
  ++stats_.jobs_submitted;
  if (submitted_counter_) submitted_counter_->increment();
  update_gauges();

  // Scheduling runs as its own event so submit() stays non-reentrant.
  engine_.after(0, [this] { schedule_pass(); });
  return id;
}

void BatchSubsystem::compute_shadow(std::int64_t head_nodes,
                                    sim::Time& shadow_time,
                                    std::int64_t& extra_nodes) const {
  // Walk running jobs in order of their wallclock deadlines, accumulating
  // freed nodes until the head job fits; that instant is the shadow time.
  std::vector<std::pair<sim::Time, std::int64_t>> releases;
  releases.reserve(running_.size());
  for (BatchJobId id : running_) {
    const Job& job = *jobs_.at(id);
    releases.emplace_back(job.limit_deadline, job.nodes_needed);
  }
  std::sort(releases.begin(), releases.end());

  std::int64_t available = free_nodes_;
  shadow_time = engine_.now();
  for (const auto& [at, nodes] : releases) {
    if (available >= head_nodes) break;
    available += nodes;
    shadow_time = at;
  }
  // Nodes the head job will not need at its (estimated) start.
  extra_nodes = std::max<std::int64_t>(0, available - head_nodes);
}

void BatchSubsystem::schedule_pass() {
  // FCFS: start from the front while jobs fit.
  while (!queue_.empty()) {
    Job& head = *jobs_.at(queue_.front());
    if (head.nodes_needed > free_nodes_) break;
    queue_.pop_front();
    start_job(head, /*backfilled=*/false);
  }
  if (queue_.empty() || !config_.use_backfill) return;

  // EASY backfill: jobs behind the head may start now if they do not
  // delay the head's estimated start.
  sim::Time shadow_time = 0;
  std::int64_t extra_nodes = 0;
  Job& head = *jobs_.at(queue_.front());
  compute_shadow(head.nodes_needed, shadow_time, extra_nodes);

  for (auto it = std::next(queue_.begin()); it != queue_.end();) {
    Job& candidate = *jobs_.at(*it);
    bool fits_now = candidate.nodes_needed <= free_nodes_;
    bool ends_before_shadow =
        engine_.now() + sim::sec(candidate.request.wallclock_seconds) <=
        shadow_time;
    bool within_spare = candidate.nodes_needed <= extra_nodes;
    if (fits_now && (ends_before_shadow || within_spare)) {
      it = queue_.erase(it);
      start_job(candidate, /*backfilled=*/true);
      // Spare capacity shrinks as backfilled jobs take nodes.
      compute_shadow(head.nodes_needed, shadow_time, extra_nodes);
    } else {
      ++it;
    }
  }
}

void BatchSubsystem::start_job(Job& job, bool backfilled) {
  free_nodes_ -= job.nodes_needed;
  running_.push_back(job.id);
  job.state = BatchJobState::kRunning;
  job.backfilled = backfilled;
  if (backfilled) ++stats_.backfilled_starts;
  job.result.started_at = engine_.now();
  double wait_seconds =
      sim::to_seconds(job.result.started_at - job.result.submitted_at);
  stats_.total_wait_seconds += wait_seconds;
  if (queue_wait_hist_) queue_wait_hist_->observe(wait_seconds);
  update_gauges();
  job.limit_deadline =
      engine_.now() + sim::sec(job.request.wallclock_seconds);

  // Missing input files fail the job immediately (the script's first
  // command would have died the same way).
  std::vector<std::string> missing;
  for (const std::string& file : job.spec.required_files)
    if (job.spec.workspace == nullptr || !job.spec.workspace->exists(file))
      missing.push_back(file);
  if (!missing.empty()) {
    std::string message = "missing input file(s):";
    for (const std::string& file : missing) message += " " + file;
    BatchJobId id = job.id;
    engine_.after(sim::msec(100), [this, id, message] {
      if (auto it = jobs_.find(id); it != jobs_.end() &&
                                    it->second->state == BatchJobState::kRunning)
        finish_job(*it->second, BatchJobState::kCompleted, 127, message);
    });
    return;
  }

  double actual_seconds =
      job.spec.nominal_seconds / config_.gflops_per_processor;
  sim::Time actual_runtime = sim::from_seconds(actual_seconds);

  // Node failure injection: the chance any of the job's nodes dies
  // during the run, with the failure instant uniform over the runtime.
  if (config_.node_mtbf_hours > 0) {
    double runtime_hours = actual_seconds / 3600.0;
    double failure_probability =
        1.0 - std::exp(-runtime_hours * static_cast<double>(job.nodes_needed) /
                       config_.node_mtbf_hours);
    if (rng_.chance(failure_probability)) {
      sim::Time failure_at = static_cast<sim::Time>(
          rng_.uniform() * static_cast<double>(actual_runtime));
      BatchJobId id = job.id;
      job.finish_event = engine_.after(failure_at, [this, id] {
        if (auto it = jobs_.find(id);
            it != jobs_.end() && it->second->state == BatchJobState::kRunning)
          finish_job(*it->second, BatchJobState::kFailed, 139,
                     "node failure during execution");
      });
      return;
    }
  }

  BatchJobId id = job.id;
  if (actual_runtime <= sim::sec(job.request.wallclock_seconds)) {
    job.finish_event = engine_.after(actual_runtime, [this, id] {
      if (auto it = jobs_.find(id);
          it != jobs_.end() && it->second->state == BatchJobState::kRunning) {
        Job& j = *it->second;
        // Materialise output files; a full Uspace turns into a job error.
        std::string io_error;
        if (j.spec.workspace) {
          for (const auto& [name, size] : j.spec.output_files) {
            auto status = j.spec.workspace->write(
                name, uspace::FileBlob::synthetic(
                          size, j.id ^ crypto::digest_prefix64(
                                           crypto::sha256(name))));
            if (!status.ok()) {
              io_error = status.error().message;
              break;
            }
          }
        }
        if (!io_error.empty())
          finish_job(j, BatchJobState::kCompleted, 1, io_error);
        else
          finish_job(j, BatchJobState::kCompleted, j.spec.exit_code, "");
      }
    });
  } else {
    // The batch system kills the job at its requested wallclock limit.
    job.limit_event = engine_.after(
        sim::sec(job.request.wallclock_seconds), [this, id] {
          if (auto it = jobs_.find(id);
              it != jobs_.end() &&
              it->second->state == BatchJobState::kRunning)
            finish_job(*it->second, BatchJobState::kKilled, 137,
                       "job killed: wallclock limit exceeded");
        });
  }
}

void BatchSubsystem::finish_job(Job& job, BatchJobState state,
                                std::int32_t exit_code,
                                std::string stderr_extra) {
  if (job.finish_event) engine_.cancel(*job.finish_event);
  if (job.limit_event) engine_.cancel(*job.limit_event);
  job.finish_event.reset();
  job.limit_event.reset();

  free_nodes_ += job.nodes_needed;
  std::erase(running_, job.id);

  job.state = state;
  job.result.state = state;
  job.result.exit_code = exit_code;
  job.result.finished_at = engine_.now();
  double run_seconds =
      sim::to_seconds(job.result.finished_at - job.result.started_at);
  stats_.total_run_seconds += run_seconds;
  stats_.busy_node_seconds +=
      run_seconds * static_cast<double>(job.nodes_needed);
  if (run_time_hist_) run_time_hist_->observe(run_seconds);
  count_outcome(state);
  update_gauges();

  switch (state) {
    case BatchJobState::kCompleted: ++stats_.jobs_completed; break;
    case BatchJobState::kFailed: ++stats_.jobs_failed; break;
    case BatchJobState::kKilled: ++stats_.jobs_killed; break;
    case BatchJobState::kCancelled: ++stats_.jobs_cancelled; break;
    default: break;
  }

  job.result.stdout_text =
      (state == BatchJobState::kCompleted && exit_code == job.spec.exit_code)
          ? job.spec.stdout_text
          : "";
  job.result.stderr_text = job.spec.stderr_text;
  if (!stderr_extra.empty()) {
    if (!job.result.stderr_text.empty()) job.result.stderr_text += "\n";
    job.result.stderr_text += stderr_extra;
  }

  UNICORE_DEBUG("batch/" + config_.vsite)
      << "job " << job.id << " (" << job.request.job_name << ") "
      << batch_job_state_name(state) << " exit=" << exit_code;

  if (job.on_complete) {
    auto handler = std::move(job.on_complete);
    job.on_complete = nullptr;
    handler(job.id, job.result);
  }
  engine_.after(0, [this] { schedule_pass(); });
}

Status BatchSubsystem::reattach(BatchJobId id, CompletionHandler on_complete) {
  auto it = jobs_.find(id);
  if (it == jobs_.end())
    return util::make_error(ErrorCode::kNotFound,
                            "no such batch job: " + std::to_string(id));
  Job& job = *it->second;
  if (job.state == BatchJobState::kQueued ||
      job.state == BatchJobState::kRunning) {
    job.on_complete = std::move(on_complete);
    return Status::ok_status();
  }
  // Already terminal: deliver the stored result asynchronously so the
  // caller sees the same once-at-completion contract as submit().
  engine_.after(0, [this, id, handler = std::move(on_complete)] {
    auto jt = jobs_.find(id);
    if (jt != jobs_.end() && handler) handler(id, jt->second->result);
  });
  return Status::ok_status();
}

Status BatchSubsystem::cancel(BatchJobId id) {
  auto it = jobs_.find(id);
  if (it == jobs_.end())
    return util::make_error(ErrorCode::kNotFound,
                            "no such batch job: " + std::to_string(id));
  Job& job = *it->second;
  switch (job.state) {
    case BatchJobState::kQueued: {
      std::erase(queue_, id);
      job.result.started_at = engine_.now();
      job.state = BatchJobState::kCancelled;
      job.result.state = BatchJobState::kCancelled;
      job.result.exit_code = 130;
      job.result.finished_at = engine_.now();
      ++stats_.jobs_cancelled;
      count_outcome(BatchJobState::kCancelled);
      update_gauges();
      if (job.on_complete) {
        auto handler = std::move(job.on_complete);
        job.on_complete = nullptr;
        handler(id, job.result);
      }
      return Status::ok_status();
    }
    case BatchJobState::kRunning:
      finish_job(job, BatchJobState::kCancelled, 130, "job cancelled");
      return Status::ok_status();
    default:
      return util::make_error(ErrorCode::kFailedPrecondition,
                              "batch job already finished");
  }
}

Result<BatchJobState> BatchSubsystem::state(BatchJobId id) const {
  auto it = jobs_.find(id);
  if (it == jobs_.end())
    return util::make_error(ErrorCode::kNotFound,
                            "no such batch job: " + std::to_string(id));
  return it->second->state;
}

Result<BatchResult> BatchSubsystem::result(BatchJobId id) const {
  auto it = jobs_.find(id);
  if (it == jobs_.end())
    return util::make_error(ErrorCode::kNotFound,
                            "no such batch job: " + std::to_string(id));
  return it->second->result;
}

double BatchSubsystem::backlog_node_seconds() const {
  double backlog = 0;
  for (BatchJobId id : queue_) {
    const Job& job = *jobs_.at(id);
    backlog += static_cast<double>(job.nodes_needed) *
               static_cast<double>(job.request.wallclock_seconds);
  }
  for (BatchJobId id : running_) {
    const Job& job = *jobs_.at(id);
    sim::Time remaining = job.limit_deadline - engine_.now();
    if (remaining > 0)
      backlog += static_cast<double>(job.nodes_needed) *
                 sim::to_seconds(remaining);
  }
  return backlog;
}

double BatchSubsystem::utilization() const {
  double elapsed = sim::to_seconds(engine_.now());
  if (elapsed <= 0) return 0;
  return stats_.busy_node_seconds /
         (elapsed * static_cast<double>(config_.nodes));
}

void BatchSubsystem::set_metrics(obs::MetricsRegistry* registry,
                                 const std::string& usite) {
  metrics_ = registry;
  if (!metrics_) {
    submitted_counter_ = nullptr;
    queue_wait_hist_ = nullptr;
    run_time_hist_ = nullptr;
    queued_gauge_ = nullptr;
    running_gauge_ = nullptr;
    free_nodes_gauge_ = nullptr;
    return;
  }
  metric_labels_ = {{"usite", usite}, {"vsite", config_.vsite}};
  submitted_counter_ =
      &metrics_->counter("unicore_batch_jobs_submitted_total", metric_labels_);
  queue_wait_hist_ = &metrics_->histogram("unicore_batch_queue_wait_seconds",
                                          metric_labels_,
                                          obs::duration_buckets());
  run_time_hist_ = &metrics_->histogram("unicore_batch_run_seconds",
                                        metric_labels_,
                                        obs::duration_buckets());
  queued_gauge_ = &metrics_->gauge("unicore_batch_queued_jobs", metric_labels_);
  running_gauge_ =
      &metrics_->gauge("unicore_batch_running_jobs", metric_labels_);
  free_nodes_gauge_ =
      &metrics_->gauge("unicore_batch_free_nodes", metric_labels_);
  update_gauges();
}

void BatchSubsystem::update_gauges() {
  if (!metrics_) return;
  queued_gauge_->set(static_cast<double>(queue_.size()));
  running_gauge_->set(static_cast<double>(running_.size()));
  free_nodes_gauge_->set(static_cast<double>(free_nodes_));
}

void BatchSubsystem::count_outcome(BatchJobState state) {
  if (!metrics_) return;
  obs::Labels labels = metric_labels_;
  labels.emplace_back("outcome", batch_job_state_name(state));
  metrics_->counter("unicore_batch_jobs_total", std::move(labels)).increment();
}

}  // namespace unicore::batch
