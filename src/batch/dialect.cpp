#include "batch/dialect.h"

#include <charconv>
#include <sstream>

namespace unicore::batch {

using resources::Architecture;
using util::ErrorCode;
using util::Result;

namespace {

std::string hhmmss(std::int64_t seconds) {
  std::int64_t h = seconds / 3600;
  std::int64_t m = (seconds % 3600) / 60;
  std::int64_t s = seconds % 60;
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%02lld:%02lld:%02lld",
                static_cast<long long>(h), static_cast<long long>(m),
                static_cast<long long>(s));
  return buf;
}

Result<std::int64_t> parse_hhmmss(const std::string& text) {
  std::int64_t h = 0, m = 0, s = 0;
  if (std::sscanf(text.c_str(), "%lld:%lld:%lld",
                  reinterpret_cast<long long*>(&h),
                  reinterpret_cast<long long*>(&m),
                  reinterpret_cast<long long*>(&s)) != 3)
    return util::make_error(ErrorCode::kInvalidArgument,
                            "dialect: bad hh:mm:ss value: " + text);
  return h * 3600 + m * 60 + s;
}

Result<std::int64_t> parse_int(const std::string& text) {
  std::int64_t value = 0;
  auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc() || ptr != text.data() + text.size())
    return util::make_error(ErrorCode::kInvalidArgument,
                            "dialect: bad integer value: " + text);
  return value;
}

/// Strips a trailing "mb" unit (all dialects here render memory as
/// "<n>mb").
Result<std::int64_t> parse_mb(std::string text) {
  if (text.size() > 2 && text.substr(text.size() - 2) == "mb")
    text.resize(text.size() - 2);
  return parse_int(text);
}

std::vector<std::string> split_lines(const std::string& script) {
  std::vector<std::string> lines;
  std::istringstream in(script);
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

// ---- NQS-style dialects (Cray NQE, Fujitsu NQS, NEC NQS, generic) ----

struct NqsKeywords {
  const char* sentinel;  // "#QSUB " / "#@$"
  const char* queue;     // "-q "
  const char* account;
  const char* time;
  const char* memory;
  const char* processors;
  const char* job_name;
};

std::string render_nqs(const NqsKeywords& kw, const BatchRequest& r) {
  std::ostringstream out;
  out << "#!/bin/sh\n";
  out << kw.sentinel << kw.queue << r.queue << "\n";
  if (!r.account.empty())
    out << kw.sentinel << kw.account << r.account << "\n";
  out << kw.sentinel << kw.time << r.wallclock_seconds << "\n";
  out << kw.sentinel << kw.memory << r.memory_mb << "mb\n";
  out << kw.sentinel << kw.processors << r.processors << "\n";
  out << kw.sentinel << kw.job_name << r.job_name << "\n";
  return out.str();
}

Result<BatchRequest> parse_nqs(const NqsKeywords& kw,
                               const std::string& script) {
  BatchRequest request;
  std::string sentinel = kw.sentinel;
  for (const std::string& line : split_lines(script)) {
    if (line.rfind(sentinel, 0) != 0) continue;
    std::string body = line.substr(sentinel.size());
    auto match = [&body](const char* keyword,
                         std::string& value_out) -> bool {
      std::string key = keyword;
      if (body.rfind(key, 0) != 0) return false;
      value_out = body.substr(key.size());
      return true;
    };
    std::string value;
    if (match(kw.queue, value)) {
      request.queue = value;
    } else if (match(kw.account, value)) {
      request.account = value;
    } else if (match(kw.time, value)) {
      auto v = parse_int(value);
      if (!v) return v.error();
      request.wallclock_seconds = v.value();
    } else if (match(kw.memory, value)) {
      auto v = parse_mb(value);
      if (!v) return v.error();
      request.memory_mb = v.value();
    } else if (match(kw.processors, value)) {
      auto v = parse_int(value);
      if (!v) return v.error();
      request.processors = v.value();
    } else if (match(kw.job_name, value)) {
      request.job_name = value;
    } else {
      return util::make_error(ErrorCode::kInvalidArgument,
                              "dialect: unknown directive: " + line);
    }
  }
  return request;
}

constexpr NqsKeywords kCrayNqe{"#QSUB ", "-q ",  "-A ", "-lT ",
                               "-lM ",   "-l mpp_p=", "-r "};
constexpr NqsKeywords kFujitsuNqs{"#@$", "-q ", "-g ", "-lT ",
                                  "-lM ", "-lP ", "-r "};
constexpr NqsKeywords kNecNqs{"#@$", "-q ", "-g ", "-lT ",
                              "-lM ", "-lp ", "-r "};
constexpr NqsKeywords kGenericPbs{"#PBS ", "-q ", "-A ", "-l walltime=",
                                  "-l mem=", "-l ncpus=", "-N "};

// ---- LoadLeveler (IBM SP-2) ------------------------------------------

std::string render_loadleveler(const BatchRequest& r) {
  std::ostringstream out;
  out << "#!/bin/sh\n";
  out << "#@ job_name = " << r.job_name << "\n";
  out << "#@ class = " << r.queue << "\n";
  if (!r.account.empty()) out << "#@ account_no = " << r.account << "\n";
  out << "#@ wall_clock_limit = " << hhmmss(r.wallclock_seconds) << "\n";
  out << "#@ min_processors = " << r.processors << "\n";
  out << "#@ max_processors = " << r.processors << "\n";
  out << "#@ requirements = (Memory >= " << r.memory_mb << ")\n";
  out << "#@ queue\n";
  return out.str();
}

Result<BatchRequest> parse_loadleveler(const std::string& script) {
  BatchRequest request;
  for (const std::string& line : split_lines(script)) {
    if (line.rfind("#@", 0) != 0) continue;
    std::string body = line.substr(2);
    // Trim leading blanks.
    while (!body.empty() && body.front() == ' ') body.erase(body.begin());
    if (body == "queue") break;  // end of LoadLeveler job step
    auto eq = body.find(" = ");
    if (eq == std::string::npos)
      return util::make_error(ErrorCode::kInvalidArgument,
                              "dialect: malformed LoadLeveler line: " + line);
    std::string key = body.substr(0, eq);
    std::string value = body.substr(eq + 3);
    if (key == "job_name") {
      request.job_name = value;
    } else if (key == "class") {
      request.queue = value;
    } else if (key == "account_no") {
      request.account = value;
    } else if (key == "wall_clock_limit") {
      auto v = parse_hhmmss(value);
      if (!v) return v.error();
      request.wallclock_seconds = v.value();
    } else if (key == "min_processors" || key == "max_processors") {
      auto v = parse_int(value);
      if (!v) return v.error();
      request.processors = v.value();
    } else if (key == "requirements") {
      std::int64_t mem = 0;
      if (std::sscanf(value.c_str(), "(Memory >= %lld)",
                      reinterpret_cast<long long*>(&mem)) != 1)
        return util::make_error(ErrorCode::kInvalidArgument,
                                "dialect: bad requirements: " + value);
      request.memory_mb = mem;
    } else {
      return util::make_error(ErrorCode::kInvalidArgument,
                              "dialect: unknown LoadLeveler keyword: " + key);
    }
  }
  return request;
}

}  // namespace

std::string render_directives(Architecture architecture,
                              const BatchRequest& request) {
  switch (architecture) {
    case Architecture::kCrayT3E: return render_nqs(kCrayNqe, request);
    case Architecture::kFujitsuVpp700: return render_nqs(kFujitsuNqs, request);
    case Architecture::kIbmSp2: return render_loadleveler(request);
    case Architecture::kNecSx4: return render_nqs(kNecNqs, request);
    case Architecture::kGenericUnix: return render_nqs(kGenericPbs, request);
  }
  return "";
}

Result<BatchRequest> parse_directives(Architecture architecture,
                                      const std::string& script) {
  switch (architecture) {
    case Architecture::kCrayT3E: return parse_nqs(kCrayNqe, script);
    case Architecture::kFujitsuVpp700: return parse_nqs(kFujitsuNqs, script);
    case Architecture::kIbmSp2: return parse_loadleveler(script);
    case Architecture::kNecSx4: return parse_nqs(kNecNqs, script);
    case Architecture::kGenericUnix: return parse_nqs(kGenericPbs, script);
  }
  return util::make_error(ErrorCode::kInvalidArgument,
                          "dialect: unknown architecture");
}

const char* dialect_sentinel(Architecture architecture) {
  switch (architecture) {
    case Architecture::kCrayT3E: return "#QSUB";
    case Architecture::kFujitsuVpp700: return "#@$";
    case Architecture::kIbmSp2: return "#@";
    case Architecture::kNecSx4: return "#@$";
    case Architecture::kGenericUnix: return "#PBS";
  }
  return "#";
}

const char* dialect_name(Architecture architecture) {
  switch (architecture) {
    case Architecture::kCrayT3E: return "NQE";
    case Architecture::kFujitsuVpp700: return "NQS/VPP";
    case Architecture::kIbmSp2: return "LoadLeveler";
    case Architecture::kNecSx4: return "NQS/SX";
    case Architecture::kGenericUnix: return "PBS";
  }
  return "?";
}

}  // namespace unicore::batch
