#include "batch/target_system.h"

namespace unicore::batch {

SystemConfig make_cray_t3e(std::string vsite, std::int64_t nodes) {
  SystemConfig config;
  config.vsite = std::move(vsite);
  config.architecture = resources::Architecture::kCrayT3E;
  config.operating_system = "UNICOS/mk";
  config.nodes = nodes;  // T3E: one PE per node
  config.processors_per_node = 1;
  config.gflops_per_processor = 0.6;  // DEC Alpha EV5 @ 300 MHz
  config.memory_mb_per_node = 128;
  config.queues = {{"prod", nodes, 43'200, nodes * 128},
                   {"devel", 64, 3'600, 64 * 128}};
  return config;
}

SystemConfig make_fujitsu_vpp700(std::string vsite, std::int64_t nodes) {
  SystemConfig config;
  config.vsite = std::move(vsite);
  config.architecture = resources::Architecture::kFujitsuVpp700;
  config.operating_system = "UXP/V";
  config.nodes = nodes;  // vector PEs
  config.processors_per_node = 1;
  config.gflops_per_processor = 2.2;  // vector unit peak
  config.memory_mb_per_node = 2'048;
  config.queues = {{"vpp", nodes, 86'400, nodes * 2'048}};
  return config;
}

SystemConfig make_ibm_sp2(std::string vsite, std::int64_t nodes) {
  SystemConfig config;
  config.vsite = std::move(vsite);
  config.architecture = resources::Architecture::kIbmSp2;
  config.operating_system = "AIX";
  config.nodes = nodes;
  config.processors_per_node = 1;  // thin nodes
  config.gflops_per_processor = 0.48;  // POWER2 @ 120 MHz
  config.memory_mb_per_node = 256;
  config.queues = {{"parallel", nodes, 43'200, nodes * 256},
                   {"serial", 1, 86'400, 256}};
  return config;
}

SystemConfig make_nec_sx4(std::string vsite, std::int64_t nodes) {
  SystemConfig config;
  config.vsite = std::move(vsite);
  config.architecture = resources::Architecture::kNecSx4;
  config.operating_system = "SUPER-UX";
  config.nodes = nodes;
  config.processors_per_node = 32;
  config.gflops_per_processor = 2.0;
  config.memory_mb_per_node = 8'192;
  config.queues = {{"sx", nodes * 32, 86'400, nodes * 8'192}};
  return config;
}

}  // namespace unicore::batch
