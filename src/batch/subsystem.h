// The simulated batch subsystem of one destination system (one Vsite).
//
// This is the third tier of Figure 1: jobs arrive as vendor-dialect
// scripts (validated against the dialect parser and queue limits), wait
// in queues, are placed on nodes by FCFS with optional EASY backfill,
// run for their simulated duration, and report stdout/stderr and exit
// status. UNICORE-submitted and locally-submitted jobs go through the
// identical path — the paper's site-autonomy principle ("Jobs delivered
// through UNICORE are treated the same way any other batch job is
// treated", §5.5).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "batch/dialect.h"
#include "batch/target_system.h"
#include "obs/metrics.h"
#include "sim/engine.h"
#include "uspace/filespace.h"
#include "util/result.h"
#include "util/rng.h"

namespace unicore::batch {

using BatchJobId = std::uint64_t;

enum class BatchJobState : std::uint8_t {
  kQueued,
  kRunning,
  kCompleted,   // ran to completion (exit code may still be nonzero)
  kFailed,      // could not run / node failure
  kKilled,      // exceeded its wallclock limit
  kCancelled,   // qdel / ControlService abort
};

const char* batch_job_state_name(BatchJobState s);

/// What the job does when it "runs" — the structured counterpart of the
/// incarnated script (the script text itself is validated and archived;
/// semantics travel here, see DESIGN.md §2).
struct ExecutionSpec {
  /// Compute demand in seconds on a 1-GFLOPS processor; actual runtime
  /// is nominal_seconds / gflops_per_processor of this system.
  double nominal_seconds = 1.0;
  std::int32_t exit_code = 0;
  std::string stdout_text;
  std::string stderr_text;
  /// Uspace files that must exist when the job starts (sources for a
  /// compile, objects for a link, the executable for a user task).
  std::vector<std::string> required_files;
  /// Files (name, bytes) created in the Uspace on successful completion.
  std::vector<std::pair<std::string, std::uint64_t>> output_files;
  /// The job's Uspace; may be null for jobs without file I/O.
  std::shared_ptr<uspace::Uspace> workspace;
};

/// Final accounting record of a job.
struct BatchResult {
  BatchJobState state = BatchJobState::kQueued;
  std::int32_t exit_code = 0;
  std::string stdout_text;
  std::string stderr_text;
  sim::Time submitted_at = -1;
  sim::Time started_at = -1;
  sim::Time finished_at = -1;
};

/// Aggregate statistics for benches (utilisation, wait times).
struct SubsystemStats {
  std::uint64_t jobs_submitted = 0;
  std::uint64_t jobs_completed = 0;
  std::uint64_t jobs_failed = 0;
  std::uint64_t jobs_killed = 0;
  std::uint64_t jobs_cancelled = 0;
  std::uint64_t backfilled_starts = 0;
  double total_wait_seconds = 0;
  double total_run_seconds = 0;
  double busy_node_seconds = 0;
};

class BatchSubsystem {
 public:
  using CompletionHandler = std::function<void(BatchJobId, const BatchResult&)>;

  BatchSubsystem(sim::Engine& engine, util::Rng rng, SystemConfig config);

  const SystemConfig& config() const { return config_; }

  /// Submits `script` (validated against this system's dialect and the
  /// named queue's limits). `owner` is the local login the gateway
  /// mapped the certificate to. The handler fires once, at completion.
  util::Result<BatchJobId> submit(const std::string& script,
                                  const std::string& owner,
                                  ExecutionSpec spec,
                                  CompletionHandler on_complete);

  /// NJS crash recovery: re-attaches a completion handler to an
  /// existing job, replacing any stored one. The batch subsystem is a
  /// separate process and keeps running through an NJS restart, so the
  /// recovered NJS reconnects to its submissions instead of submitting
  /// duplicates. If the job is already terminal the handler fires on
  /// the next engine event with the stored result.
  util::Status reattach(BatchJobId id, CompletionHandler on_complete);

  /// qdel: cancels a queued or running job.
  util::Status cancel(BatchJobId id);

  util::Result<BatchJobState> state(BatchJobId id) const;
  util::Result<BatchResult> result(BatchJobId id) const;

  /// Fault injection: an offline subsystem rejects new submissions with
  /// kUnavailable (already queued/running jobs keep executing).
  void set_offline(bool offline) { offline_ = offline; }
  bool offline() const { return offline_; }

  std::int64_t free_nodes() const { return free_nodes_; }
  std::size_t queued_jobs() const { return queue_.size(); }
  std::size_t running_jobs() const { return running_.size(); }
  const SubsystemStats& stats() const { return stats_; }

  /// Node-seconds utilisation over [0, now].
  double utilization() const;

  /// Outstanding work in node-seconds: queued jobs at their requested
  /// wallclock plus running jobs at their remaining limit. The quantity
  /// a site would publish as "load information" (§6) — dividing by the
  /// node count bounds the wait a newly arriving full-machine job sees.
  double backlog_node_seconds() const;

  /// Records queue-wait/run-time histograms, outcome counters, and
  /// queue-depth gauges into `registry`, labeled {usite, vsite}.
  /// Re-callable; nullptr detaches.
  void set_metrics(obs::MetricsRegistry* registry, const std::string& usite);

 private:
  struct Job {
    BatchJobId id = 0;
    std::string owner;
    BatchRequest request;
    std::string script;
    ExecutionSpec spec;
    CompletionHandler on_complete;
    BatchJobState state = BatchJobState::kQueued;
    BatchResult result;
    std::int64_t nodes_needed = 0;
    sim::Time limit_deadline = 0;     // start + requested wallclock
    std::optional<sim::EventId> finish_event;
    std::optional<sim::EventId> limit_event;
    bool backfilled = false;
  };

  util::Status validate(const BatchRequest& request) const;
  void update_gauges();
  void count_outcome(BatchJobState state);
  void schedule_pass();
  void start_job(Job& job, bool backfilled);
  void finish_job(Job& job, BatchJobState state, std::int32_t exit_code,
                  std::string stderr_extra);
  /// EASY backfill bound: when could the queue head start, and how many
  /// nodes are spare at that instant?
  void compute_shadow(std::int64_t head_nodes, sim::Time& shadow_time,
                      std::int64_t& extra_nodes) const;

  sim::Engine& engine_;
  util::Rng rng_;
  SystemConfig config_;
  std::int64_t free_nodes_;
  BatchJobId next_id_ = 1;
  std::map<BatchJobId, std::unique_ptr<Job>> jobs_;
  std::deque<BatchJobId> queue_;
  std::vector<BatchJobId> running_;
  bool offline_ = false;
  SubsystemStats stats_;

  obs::MetricsRegistry* metrics_ = nullptr;
  obs::Labels metric_labels_;
  obs::Counter* submitted_counter_ = nullptr;
  obs::Histogram* queue_wait_hist_ = nullptr;
  obs::Histogram* run_time_hist_ = nullptr;
  obs::Gauge* queued_gauge_ = nullptr;
  obs::Gauge* running_gauge_ = nullptr;
  obs::Gauge* free_nodes_gauge_ = nullptr;
};

}  // namespace unicore::batch
