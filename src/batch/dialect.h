// Vendor batch-script dialects.
//
// The NJS "translate[s] the abstract specifications into the local
// system specific nomenclature using translation tables" (§5.5). Each
// 1999 target family spoke a different directive language: NQE/NQS on
// the Cray T3E, NQS variants on the Fujitsu VPP and NEC SX, LoadLeveler
// on the IBM SP-2. This module defines those dialects: how a resource
// request renders into script directives, and the inverse parser the
// batch subsystem uses to validate an incoming script against its
// limits (a real batch system rejects scripts with bad directives too).
#pragma once

#include <cstdint>
#include <string>

#include "resources/resource_page.h"
#include "util/result.h"

namespace unicore::batch {

/// Directive-relevant part of a batch submission.
struct BatchRequest {
  std::string queue = "default";
  std::string account;  // account group, from the AJO
  std::int64_t processors = 1;
  std::int64_t wallclock_seconds = 300;
  std::int64_t memory_mb = 64;
  std::string job_name = "unicore-job";

  bool operator==(const BatchRequest&) const = default;
};

/// Renders the directive preamble for `architecture` (without the
/// payload commands that follow it).
std::string render_directives(resources::Architecture architecture,
                              const BatchRequest& request);

/// Parses the directive preamble of a script back into a BatchRequest.
/// Fails on unknown sentinels or malformed directives — the simulated
/// batch system's front-end validation.
util::Result<BatchRequest> parse_directives(
    resources::Architecture architecture, const std::string& script);

/// The comment sentinel each dialect uses ("#QSUB", "#@", "#@$", "#@$").
const char* dialect_sentinel(resources::Architecture architecture);

/// Human name of the batch product ("NQE", "LoadLeveler", ...).
const char* dialect_name(resources::Architecture architecture);

}  // namespace unicore::batch
