#include "broker/broker.h"

#include <algorithm>
#include <cmath>
#include <tuple>

namespace unicore::broker {

void ResourceBroker::add_candidate(resources::ResourcePage page,
                                   Tariff tariff) {
  for (Candidate& candidate : candidates_) {
    if (candidate.page.usite == page.usite &&
        candidate.page.vsite == page.vsite) {
      candidate.page = std::move(page);
      candidate.tariff = tariff;
      return;
    }
  }
  candidates_.push_back({std::move(page), tariff, {}, false});
}

void ResourceBroker::update_load(const SiteLoad& load) {
  for (Candidate& candidate : candidates_) {
    if (candidate.page.usite == load.usite &&
        candidate.page.vsite == load.vsite) {
      candidate.load = load;
      candidate.has_load = true;
      return;
    }
  }
}

std::vector<Proposal> ResourceBroker::propose(
    const AbstractRequirement& requirement, const Policy& policy) const {
  std::vector<Proposal> proposals;

  for (const Candidate& candidate : candidates_) {
    const resources::ResourcePage& page = candidate.page;

    // --- capability filter ------------------------------------------------
    if (requirement.min_memory_mb > page.maximum.memory_mb) continue;
    if (requirement.temporary_disk_mb > page.maximum.temporary_disk_mb)
      continue;
    bool software_ok = true;
    for (const auto& item : requirement.required_software)
      if (!page.has_software(item.kind, item.name)) software_ok = false;
    if (!software_ok) continue;

    // --- sizing -----------------------------------------------------------
    // Per-processor performance from the page ("performance" is one of
    // the resource-page fields, §5.4).
    double per_proc_gflops =
        page.peak_gflops /
        std::max<double>(1.0, static_cast<double>(page.maximum.processors));
    // Use as many processors as helpful, capped by the machine; when a
    // load report exists, prefer to fit the free partition so the job
    // starts promptly (if any of it is free at all).
    std::int64_t processors = std::min(requirement.max_useful_processors,
                                       page.maximum.processors);
    if (candidate.has_load && candidate.load.free_processors > 0)
      processors = std::max<std::int64_t>(
          1, std::min(processors, candidate.load.free_processors));

    double run_seconds =
        requirement.gflop_hours * 3600.0 /
        (per_proc_gflops * static_cast<double>(processors));
    double wait_seconds = 0.0;
    if (candidate.has_load) {
      wait_seconds = candidate.load.recent_wait_seconds;
      // When the request does not fit the free partition, it must drain
      // (a share of) the committed backlog first.
      if (candidate.load.free_processors < processors &&
          candidate.load.total_processors > 0)
        wait_seconds = std::max(
            wait_seconds,
            candidate.load.backlog_node_seconds /
                static_cast<double>(candidate.load.total_processors));
    }

    // Request padding: 50% headroom over the estimate, clamped to what
    // the page admits.
    std::int64_t wallclock = static_cast<std::int64_t>(run_seconds * 1.5) + 60;
    if (wallclock > page.maximum.wallclock_seconds) {
      // Not enough allowed time at full width: infeasible here.
      if (run_seconds > static_cast<double>(page.maximum.wallclock_seconds))
        continue;
      wallclock = page.maximum.wallclock_seconds;
    }

    // --- deadline filter -----------------------------------------------
    double turnaround = wait_seconds + run_seconds;
    if (requirement.deadline_seconds > 0 &&
        turnaround > static_cast<double>(requirement.deadline_seconds))
      continue;

    // --- accounting ------------------------------------------------------
    double cost = candidate.tariff.cost_per_processor_hour *
                  static_cast<double>(processors) * (run_seconds / 3600.0);

    Proposal proposal;
    proposal.usite = page.usite;
    proposal.vsite = page.vsite;
    proposal.request.processors = processors;
    proposal.request.wallclock_seconds = wallclock;
    proposal.request.memory_mb =
        std::max(requirement.min_memory_mb, page.minimum.memory_mb);
    proposal.request.permanent_disk_mb = page.minimum.permanent_disk_mb;
    proposal.request.temporary_disk_mb =
        std::max(requirement.temporary_disk_mb,
                 page.minimum.temporary_disk_mb);
    proposal.estimated_wait_seconds = wait_seconds;
    proposal.estimated_run_seconds = run_seconds;
    proposal.estimated_cost = cost;
    proposal.score = turnaround + policy.cost_weight * cost;
    proposals.push_back(std::move(proposal));
  }

  std::sort(proposals.begin(), proposals.end(),
            [](const Proposal& a, const Proposal& b) {
              if (a.score != b.score) return a.score < b.score;
              // Deterministic tie-break by name.
              return std::tie(a.usite, a.vsite) < std::tie(b.usite, b.vsite);
            });
  return proposals;
}

util::Result<Proposal> ResourceBroker::select(
    const AbstractRequirement& requirement, const Policy& policy) const {
  std::vector<Proposal> proposals = propose(requirement, policy);
  if (proposals.empty())
    return util::make_error(
        util::ErrorCode::kNotFound,
        "no system satisfies the abstract requirement (or its deadline)");
  return proposals.front();
}

}  // namespace unicore::broker
