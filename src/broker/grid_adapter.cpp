#include "broker/grid_adapter.h"

namespace unicore::broker {

std::vector<Survey> survey_usite(njs::Njs& njs) {
  std::vector<Survey> out;
  for (const std::string& vsite : njs.vsites()) {
    auto page = njs.resource_page(vsite);
    if (!page.ok()) continue;
    batch::BatchSubsystem* subsystem = njs.subsystem(vsite);
    if (subsystem == nullptr) continue;

    Survey survey;
    survey.page = std::move(page.value());
    survey.load.usite = survey.page.usite;
    survey.load.vsite = vsite;
    survey.load.free_processors =
        subsystem->free_nodes() * subsystem->config().processors_per_node;
    survey.load.total_processors = subsystem->config().total_processors();
    survey.load.queued_jobs = subsystem->queued_jobs();
    survey.load.backlog_node_seconds =
        subsystem->backlog_node_seconds() *
        static_cast<double>(subsystem->config().processors_per_node);
    const batch::SubsystemStats& stats = subsystem->stats();
    std::uint64_t started =
        stats.jobs_submitted > subsystem->queued_jobs()
            ? stats.jobs_submitted - subsystem->queued_jobs()
            : 0;
    survey.load.recent_wait_seconds =
        started > 0 ? stats.total_wait_seconds / static_cast<double>(started)
                    : 0.0;
    out.push_back(std::move(survey));
  }
  return out;
}

void feed(ResourceBroker& broker, const std::vector<Survey>& surveys,
          Tariff tariff) {
  for (const Survey& survey : surveys) {
    broker.add_candidate(survey.page, tariff);
    broker.update_load(survey.load);
  }
}

}  // namespace unicore::broker
