// Bridges a running deployment to the broker: surveys an NJS for its
// resource pages and current load (free partition, queue depth,
// observed waits) — the "load information" feed of §6.
#pragma once

#include <vector>

#include "broker/broker.h"
#include "njs/njs.h"

namespace unicore::broker {

struct Survey {
  resources::ResourcePage page;
  SiteLoad load;
};

/// Snapshot of every Vsite managed by `njs`.
std::vector<Survey> survey_usite(njs::Njs& njs);

/// Feeds a survey into the broker (pages first, then loads).
void feed(ResourceBroker& broker, const std::vector<Survey>& surveys,
          Tariff tariff = {});

}  // namespace unicore::broker
