// Resource broker — the first of the paper's §6 enhancements:
//
// "A resource broker which supports the users in a way that they can
//  specify the needed resources on a more abstract level and the broker
//  finds the appropriate execution server for it. Together with
//  accounting functions and load information the resource broker can
//  find the best system for an application with given time
//  constraints."
//
// The broker consumes the §5.4 resource pages (capability), per-Vsite
// load reports, and per-Vsite tariffs (accounting), and turns an
// *abstract* requirement — compute demand in GFLOP-hours, memory,
// scalability limit, needed software, a deadline — into ranked concrete
// proposals naming a destination system and a §5.4 resource request.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "resources/resource_page.h"
#include "util/result.h"

namespace unicore::broker {

/// What the user can say without naming a machine.
struct AbstractRequirement {
  /// Total compute demand (work, not time): GFLOP-hours.
  double gflop_hours = 1.0;
  std::int64_t min_memory_mb = 64;
  /// Beyond this many processors the application stops scaling.
  std::int64_t max_useful_processors = 64;
  std::int64_t temporary_disk_mb = 64;
  std::vector<resources::SoftwareItem> required_software;
  /// Wanted turnaround (wait + run), seconds; 0 = no constraint.
  std::int64_t deadline_seconds = 0;
};

/// Load information a Vsite publishes to the broker.
struct SiteLoad {
  std::string usite;
  std::string vsite;
  std::int64_t free_processors = 0;
  std::int64_t total_processors = 0;
  std::size_t queued_jobs = 0;
  /// Mean queue wait observed recently, seconds.
  double recent_wait_seconds = 0;
  /// Outstanding committed work (queued + running remainder) in
  /// node-seconds; backlog / total_processors bounds the wait a job
  /// that needs the whole machine would see.
  double backlog_node_seconds = 0;
};

/// Accounting: what a node-hour costs at this Vsite (arbitrary units).
struct Tariff {
  double cost_per_processor_hour = 1.0;
};

/// Ranking policy: score = turnaround + cost_weight * cost.
/// cost_weight 0 selects the fastest system; large values the cheapest.
struct Policy {
  double cost_weight = 0.0;
};

/// One concrete placement option.
struct Proposal {
  std::string usite;
  std::string vsite;
  resources::ResourceSet request;  // ready for a JobBuilder destination
  double estimated_wait_seconds = 0;
  double estimated_run_seconds = 0;
  double estimated_cost = 0;
  double score = 0;

  double estimated_turnaround() const {
    return estimated_wait_seconds + estimated_run_seconds;
  }
};

class ResourceBroker {
 public:
  /// Registers a candidate system by its resource page (capabilities)
  /// and tariff (accounting). Replaces an existing entry for the same
  /// usite/vsite.
  void add_candidate(resources::ResourcePage page, Tariff tariff);

  /// Updates the load report for a known candidate; unknown reports are
  /// ignored (a page must arrive first).
  void update_load(const SiteLoad& load);

  std::size_t candidates() const { return candidates_.size(); }

  /// Feasibility-filters and ranks all candidates for `requirement`.
  /// The best proposal comes first; an empty vector means no system can
  /// satisfy the requirement (or its deadline).
  std::vector<Proposal> propose(const AbstractRequirement& requirement,
                                const Policy& policy = {}) const;

  /// Convenience: the single best placement or an error explaining why
  /// none exists.
  util::Result<Proposal> select(const AbstractRequirement& requirement,
                                const Policy& policy = {}) const;

 private:
  struct Candidate {
    resources::ResourcePage page;
    Tariff tariff;
    SiteLoad load;
    bool has_load = false;
  };

  std::vector<Candidate> candidates_;
};

}  // namespace unicore::broker
