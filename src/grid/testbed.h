// The 1999 German UNICORE testbed (§5.7): "UNICORE is running at
// different German sites including the Forschungszentrum Jülich
// (FZ Jülich), the Computing Centers of the universities of Stuttgart
// (RUS) and Karlsruhe (RUKA), the Leibniz Computing Center of the
// Bavarian Academy of Science in Munich (LRZ), the Konrad-Zuse Zentrum
// für Informationstechnik in Berlin (ZIB), and the Deutscher
// Wetterdienst in Offenbach (DWD). The systems covered are Cray T3E,
// Fujitsu VPP/700, IBM SP-2, and NEC SX-4."
#pragma once

#include <string>
#include <vector>

#include "grid/grid.h"

namespace unicore::grid {

/// Site names of the testbed.
inline const std::vector<std::string>& testbed_sites() {
  static const std::vector<std::string> kSites = {
      "FZ-Juelich", "RUS", "RUKA", "LRZ", "ZIB", "DWD"};
  return kSites;
}

/// Installs the six 1999 sites (with plausible machine sizes) into
/// `grid` and peers them all. `split_juelich` deploys FZ Jülich with
/// the firewall-separated gateway/NJS configuration of §4.2.
void make_german_testbed(Grid& grid, bool split_juelich = false);

/// Creates a user, maps a per-site login at every testbed site
/// ("uc<login_suffix>" etc. — logins intentionally differ per site, the
/// situation §4 says the mapping removes), and returns the credential.
crypto::Credential add_testbed_user(Grid& grid, const std::string& name,
                                    const std::string& email);

}  // namespace unicore::grid
