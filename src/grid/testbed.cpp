#include "grid/testbed.h"

#include "batch/target_system.h"

namespace unicore::grid {

namespace {

njs::Njs::VsiteConfig vsite_of(batch::SystemConfig system) {
  njs::Njs::VsiteConfig config;
  config.system = std::move(system);
  return config;
}

Grid::SiteSpec site_spec(std::string name, std::string host_prefix,
                         std::vector<njs::Njs::VsiteConfig> vsites) {
  Grid::SiteSpec spec;
  spec.config.name = std::move(name);
  spec.config.gateway_host = "gw." + host_prefix + ".de";
  spec.config.port = 4433;
  spec.vsites = std::move(vsites);
  return spec;
}

}  // namespace

void make_german_testbed(Grid& grid, bool split_juelich) {
  {
    // FZ Jülich: the T3E-600 the project was built around.
    Grid::SiteSpec spec = site_spec(
        "FZ-Juelich", "fz-juelich",
        {vsite_of(batch::make_cray_t3e("T3E-600", 512))});
    if (split_juelich) {
      spec.config.njs_host = "njs.fz-juelich.de";
      spec.config.njs_port = 7700;
    }
    grid.add_site(std::move(spec));
  }
  grid.add_site(site_spec("RUS", "rus.uni-stuttgart",
                          {vsite_of(batch::make_nec_sx4("SX-4", 4)),
                           vsite_of(batch::make_cray_t3e("T3E-512", 512))}));
  grid.add_site(site_spec("RUKA", "rz.uni-karlsruhe",
                          {vsite_of(batch::make_ibm_sp2("SP2", 256))}));
  grid.add_site(site_spec(
      "LRZ", "lrz-muenchen",
      {vsite_of(batch::make_fujitsu_vpp700("VPP700", 52))}));
  grid.add_site(site_spec("ZIB", "zib",
                          {vsite_of(batch::make_cray_t3e("T3E-900", 256))}));
  grid.add_site(site_spec("DWD", "dwd",
                          {vsite_of(batch::make_cray_t3e("T3E-DWD", 128)),
                           vsite_of(batch::make_nec_sx4("SX-4-DWD", 2))}));
  grid.connect_all_peers();
}

crypto::Credential add_testbed_user(Grid& grid, const std::string& name,
                                    const std::string& email) {
  crypto::Credential credential =
      grid.create_user(name, "Testbed Research Group", email);
  // Per-site logins deliberately differ: the certificate mapping is what
  // makes the user uniform across sites (§4).
  std::string base;
  for (char c : name)
    if (c != ' ') base.push_back(static_cast<char>(std::tolower(c)));
  const char* prefixes[] = {"uc", "x", "hpc", "k", "zb", "dw"};
  std::size_t i = 0;
  for (const std::string& site : testbed_sites()) {
    (void)grid.map_user(credential.certificate.subject, site,
                        std::string(prefixes[i % 6]) + base,
                        {"project-a", "project-b"});
    ++i;
  }
  return credential;
}

}  // namespace unicore::grid
