// Top-level assembly of a UNICORE deployment (Figure 2): one simulation
// engine and network fabric, a certificate authority (the DFN-PCA role),
// Usite servers with their Vsites, inter-site peering, registered users,
// and published client software bundles.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "crypto/bundle.h"
#include "crypto/x509.h"
#include "net/network.h"
#include "njs/njs.h"
#include "obs/metrics.h"
#include "server/usite_server.h"
#include "sim/engine.h"
#include "util/rng.h"

namespace unicore::grid {

class Grid {
 public:
  explicit Grid(std::uint64_t seed = 1999);

  sim::Engine& engine() { return engine_; }
  net::Network& network() { return network_; }
  util::Rng& rng() { return rng_; }
  /// The grid-wide metrics registry: every site's gateway/NJS/batch
  /// series plus the network fabric's counters land here, so one
  /// MonitorService snapshot (from any site) covers the deployment.
  const std::shared_ptr<obs::MetricsRegistry>& metrics() { return metrics_; }
  crypto::CertificateAuthority& ca() { return ca_; }
  /// A trust store containing the grid's root CA (copy per consumer).
  crypto::TrustStore make_trust_store() const;
  const crypto::Credential& developer() const { return developer_; }

  struct SiteSpec {
    server::UsiteConfig config;
    std::vector<njs::Njs::VsiteConfig> vsites;
  };

  /// Creates, starts, and registers a Usite server: issues its server
  /// credential, installs the Vsites, publishes the current JPA/JMC
  /// bundles, and applies firewall rules when the deployment is split.
  server::UsiteServer& add_site(SiteSpec spec);

  server::UsiteServer* site(const std::string& name);
  std::vector<std::string> sites() const;

  /// Makes every pair of sites peers of each other (Figure 2's "the
  /// different servers are connected").
  void connect_all_peers();

  /// Issues a user credential signed by the grid CA.
  crypto::Credential create_user(const std::string& common_name,
                                 const std::string& organization,
                                 const std::string& email);

  /// Adds the UUDB mapping for `user` at `usite` (per-site logins — the
  /// whole point of the certificate mapping, §4).
  util::Status map_user(const crypto::DistinguishedName& user,
                        const std::string& usite, const std::string& login,
                        std::vector<std::string> account_groups);

  /// Publishes fresh JPA/JMC bundles (version bump) at every site.
  void publish_client_software(std::uint32_t version);

  /// Revokes a certificate and distributes the fresh CRL to every
  /// site's trust store — the DFN-PCA distribution path of §5.2.
  void revoke_certificate(std::uint64_t serial);

  /// Current certificate-validation time.
  std::int64_t now_epoch() const { return net::epoch_seconds(engine_.now()); }

 private:
  sim::Engine engine_;
  util::Rng rng_;
  net::Network network_;
  std::shared_ptr<obs::MetricsRegistry> metrics_;
  crypto::CertificateAuthority ca_;
  crypto::Credential developer_;
  std::map<std::string, std::unique_ptr<server::UsiteServer>> servers_;
  std::uint32_t bundle_version_ = 1;
};

}  // namespace unicore::grid
