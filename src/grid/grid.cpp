#include "grid/grid.h"

namespace unicore::grid {

namespace {

crypto::DistinguishedName ca_name() {
  crypto::DistinguishedName dn;
  dn.country = "DE";
  dn.organization = "DFN-PCA";
  dn.organizational_unit = "Policy Certification Authority";
  dn.common_name = "UNICORE Root CA";
  return dn;
}

constexpr std::int64_t kTwoYears = 2 * 365 * 86'400LL;

}  // namespace

Grid::Grid(std::uint64_t seed)
    : rng_(seed),
      network_(engine_, util::Rng(seed ^ 0x9e3779b97f4a7c15ULL)),
      ca_(ca_name(), rng_, net::kSimulationEpoch, kTwoYears * 5) {
  crypto::DistinguishedName dev;
  dev.country = "DE";
  dev.organization = "UNICORE Consortium";
  dev.organizational_unit = "Software Development";
  dev.common_name = "UNICORE Release Engineering";
  developer_ = ca_.issue_credential(
      dev, rng_, net::kSimulationEpoch, kTwoYears,
      crypto::kUsageCodeSign | crypto::kUsageDigitalSignature);

  // 1999 German research network (B-WiN): ~34 Mbit/s backbone, ~15 ms
  // between sites.
  net::LinkProfile wan;
  wan.latency = sim::msec(15);
  wan.bandwidth_bytes_per_sec = 4.25e6;
  wan.loss_probability = 0.0;
  network_.set_default_link(wan);

  metrics_ = std::make_shared<obs::MetricsRegistry>();
  network_.set_metrics(metrics_);
}

crypto::TrustStore Grid::make_trust_store() const {
  crypto::TrustStore trust;
  trust.add_root(ca_.certificate());
  return trust;
}

server::UsiteServer& Grid::add_site(SiteSpec spec) {
  crypto::DistinguishedName dn;
  dn.country = "DE";
  dn.organization = spec.config.name;
  dn.organizational_unit = "UNICORE Server";
  dn.common_name = spec.config.gateway_host;
  crypto::Credential credential = ca_.issue_credential(
      dn, rng_, now_epoch(), kTwoYears,
      crypto::kUsageServerAuth | crypto::kUsageDigitalSignature);

  auto server = std::make_unique<server::UsiteServer>(
      engine_, network_, rng_, spec.config, std::move(credential),
      make_trust_store(), gateway::UserDatabase{});
  server->set_metrics(metrics_);
  // Through the cluster so every NJS replica shares the Vsite runtime.
  for (auto& vsite : spec.vsites)
    server->njs_cluster().add_vsite(std::move(vsite));

  auto payload = [this](const std::string& component) {
    return util::to_bytes("UNICORE " + component + " applet v" +
                          std::to_string(bundle_version_));
  };
  server->publish_bundle(crypto::make_bundle("JPA", bundle_version_,
                                             payload("JPA"), developer_));
  server->publish_bundle(crypto::make_bundle("JMC", bundle_version_,
                                             payload("JMC"), developer_));

  auto status = server->start();
  (void)status;  // listen clashes only on duplicate site configs
  server->apply_firewall_rules();

  const std::string name = spec.config.name;
  auto& slot = servers_[name];
  slot = std::move(server);
  return *slot;
}

server::UsiteServer* Grid::site(const std::string& name) {
  auto it = servers_.find(name);
  return it == servers_.end() ? nullptr : it->second.get();
}

std::vector<std::string> Grid::sites() const {
  std::vector<std::string> out;
  out.reserve(servers_.size());
  for (const auto& [name, server] : servers_) out.push_back(name);
  return out;
}

void Grid::connect_all_peers() {
  for (auto& [name, server] : servers_)
    for (auto& [peer_name, peer] : servers_)
      if (name != peer_name) server->add_peer(peer_name, peer->address());
}

crypto::Credential Grid::create_user(const std::string& common_name,
                                     const std::string& organization,
                                     const std::string& email) {
  crypto::DistinguishedName dn;
  dn.country = "DE";
  dn.organization = organization;
  dn.common_name = common_name;
  dn.email = email;
  return ca_.issue_credential(
      dn, rng_, now_epoch(), kTwoYears,
      crypto::kUsageClientAuth | crypto::kUsageDigitalSignature);
}

util::Status Grid::map_user(const crypto::DistinguishedName& user,
                            const std::string& usite,
                            const std::string& login,
                            std::vector<std::string> account_groups) {
  auto* server = site(usite);
  if (server == nullptr)
    return util::make_error(util::ErrorCode::kNotFound,
                            "no such usite: " + usite);
  gateway::UserEntry entry;
  entry.login = login;
  entry.account_groups = std::move(account_groups);
  server->gateway().uudb().add_mapping(user, std::move(entry));
  return util::Status::ok_status();
}

void Grid::revoke_certificate(std::uint64_t serial) {
  ca_.revoke(serial);
  crypto::RevocationList crl = ca_.crl(now_epoch());
  for (auto& [name, server] : servers_)
    (void)server->gateway().trust_store().add_crl(crl);
}

void Grid::publish_client_software(std::uint32_t version) {
  bundle_version_ = version;
  for (auto& [name, server] : servers_) {
    server->publish_bundle(crypto::make_bundle(
        "JPA", version,
        util::to_bytes("UNICORE JPA applet v" + std::to_string(version)),
        developer_));
    server->publish_bundle(crypto::make_bundle(
        "JMC", version,
        util::to_bytes("UNICORE JMC applet v" + std::to_string(version)),
        developer_));
  }
}

}  // namespace unicore::grid
