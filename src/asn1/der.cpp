#include "asn1/der.h"

#include <algorithm>
#include <stdexcept>

namespace unicore::asn1 {

using util::ByteView;
using util::Bytes;
using util::Error;
using util::ErrorCode;
using util::Result;

std::string Oid::to_string() const {
  std::string out;
  for (std::size_t i = 0; i < arcs.size(); ++i) {
    if (i) out.push_back('.');
    out += std::to_string(arcs[i]);
  }
  return out;
}

// ---- constructors ----------------------------------------------------

Value Value::boolean(bool v) {
  Value out;
  out.data_ = v;
  return out;
}
Value Value::integer(std::int64_t v) {
  Value out;
  out.data_ = v;
  return out;
}
Value Value::octet_string(Bytes v) {
  Value out;
  out.data_ = std::move(v);
  return out;
}
Value Value::null() {
  Value out;
  out.data_ = Null{};
  return out;
}
Value Value::oid(Oid v) {
  Value out;
  out.data_ = std::move(v);
  return out;
}
Value Value::utf8(std::string v) {
  Value out;
  out.data_ = std::move(v);
  return out;
}
Value Value::utc_time(std::int64_t seconds) {
  Value out;
  out.data_ = UtcTime{seconds};
  return out;
}
Value Value::sequence(ValueList items) {
  Value out;
  out.data_ = Constructed{Tag::kSequence, std::move(items)};
  return out;
}
Value Value::set(ValueList items) {
  Value out;
  out.data_ = Constructed{Tag::kSet, std::move(items)};
  return out;
}

Tag Value::tag() const {
  if (is_boolean()) return Tag::kBoolean;
  if (is_integer()) return Tag::kInteger;
  if (is_octet_string()) return Tag::kOctetString;
  if (is_null()) return Tag::kNull;
  if (is_oid()) return Tag::kOid;
  if (is_utf8()) return Tag::kUtf8String;
  if (is_utc_time()) return Tag::kUtcTime;
  return std::get<Constructed>(data_).tag;
}

bool Value::is_boolean() const { return std::holds_alternative<bool>(data_); }
bool Value::is_integer() const {
  return std::holds_alternative<std::int64_t>(data_);
}
bool Value::is_octet_string() const {
  return std::holds_alternative<Bytes>(data_);
}
bool Value::is_null() const { return std::holds_alternative<Null>(data_); }
bool Value::is_oid() const { return std::holds_alternative<Oid>(data_); }
bool Value::is_utf8() const {
  return std::holds_alternative<std::string>(data_);
}
bool Value::is_utc_time() const {
  return std::holds_alternative<UtcTime>(data_);
}
bool Value::is_sequence() const {
  return std::holds_alternative<Constructed>(data_) &&
         std::get<Constructed>(data_).tag == Tag::kSequence;
}
bool Value::is_set() const {
  return std::holds_alternative<Constructed>(data_) &&
         std::get<Constructed>(data_).tag == Tag::kSet;
}

namespace {
[[noreturn]] void type_error(const char* expected) {
  throw std::runtime_error(std::string("asn1: value is not a ") + expected);
}
}  // namespace

bool Value::as_boolean() const {
  if (!is_boolean()) type_error("BOOLEAN");
  return std::get<bool>(data_);
}
std::int64_t Value::as_integer() const {
  if (!is_integer()) type_error("INTEGER");
  return std::get<std::int64_t>(data_);
}
const Bytes& Value::as_octet_string() const {
  if (!is_octet_string()) type_error("OCTET STRING");
  return std::get<Bytes>(data_);
}
const Oid& Value::as_oid() const {
  if (!is_oid()) type_error("OBJECT IDENTIFIER");
  return std::get<Oid>(data_);
}
const std::string& Value::as_utf8() const {
  if (!is_utf8()) type_error("UTF8String");
  return std::get<std::string>(data_);
}
std::int64_t Value::as_utc_time() const {
  if (!is_utc_time()) type_error("UTCTime");
  return std::get<UtcTime>(data_).seconds_since_epoch;
}
const ValueList& Value::as_sequence() const {
  if (!is_sequence()) type_error("SEQUENCE");
  return std::get<Constructed>(data_).items;
}
const ValueList& Value::as_set() const {
  if (!is_set()) type_error("SET");
  return std::get<Constructed>(data_).items;
}

// ---- encoding ---------------------------------------------------------

namespace {

void encode_length(Bytes& out, std::size_t len) {
  if (len < 0x80) {
    out.push_back(static_cast<std::uint8_t>(len));
    return;
  }
  // Long form: 0x80 | number-of-length-bytes, then big-endian length.
  Bytes digits;
  while (len > 0) {
    digits.push_back(static_cast<std::uint8_t>(len & 0xff));
    len >>= 8;
  }
  out.push_back(static_cast<std::uint8_t>(0x80 | digits.size()));
  out.insert(out.end(), digits.rbegin(), digits.rend());
}

void encode_tlv(Bytes& out, Tag tag, ByteView content) {
  out.push_back(static_cast<std::uint8_t>(tag));
  encode_length(out, content.size());
  util::append(out, content);
}

Bytes encode_integer_content(std::int64_t v) {
  // Minimal two's-complement big-endian representation.
  Bytes digits;
  bool negative = v < 0;
  auto u = static_cast<std::uint64_t>(v);
  for (int i = 0; i < 8; ++i) {
    digits.push_back(static_cast<std::uint8_t>(u & 0xff));
    u >>= 8;
  }
  std::reverse(digits.begin(), digits.end());
  // Strip redundant leading bytes while preserving the sign bit.
  std::size_t start = 0;
  while (start + 1 < digits.size()) {
    std::uint8_t first = digits[start];
    std::uint8_t second = digits[start + 1];
    if (!negative && first == 0x00 && (second & 0x80) == 0)
      ++start;
    else if (negative && first == 0xff && (second & 0x80) != 0)
      ++start;
    else
      break;
  }
  return Bytes(digits.begin() + static_cast<std::ptrdiff_t>(start),
               digits.end());
}

Bytes encode_oid_content(const Oid& oid) {
  if (oid.arcs.size() < 2)
    throw std::runtime_error("asn1: OID needs at least two arcs");
  Bytes out;
  out.push_back(static_cast<std::uint8_t>(oid.arcs[0] * 40 + oid.arcs[1]));
  for (std::size_t i = 2; i < oid.arcs.size(); ++i) {
    std::uint32_t arc = oid.arcs[i];
    Bytes groups;
    groups.push_back(static_cast<std::uint8_t>(arc & 0x7f));
    arc >>= 7;
    while (arc > 0) {
      groups.push_back(static_cast<std::uint8_t>(0x80 | (arc & 0x7f)));
      arc >>= 7;
    }
    out.insert(out.end(), groups.rbegin(), groups.rend());
  }
  return out;
}

void encode_value(Bytes& out, const Value& value);

void encode_constructed(Bytes& out, Tag tag, const ValueList& items) {
  Bytes content;
  for (const Value& item : items) encode_value(content, item);
  encode_tlv(out, tag, content);
}

void encode_value(Bytes& out, const Value& value) {
  if (value.is_boolean()) {
    Bytes content{value.as_boolean() ? std::uint8_t{0xff} : std::uint8_t{0x00}};
    encode_tlv(out, Tag::kBoolean, content);
  } else if (value.is_integer()) {
    encode_tlv(out, Tag::kInteger, encode_integer_content(value.as_integer()));
  } else if (value.is_octet_string()) {
    encode_tlv(out, Tag::kOctetString, value.as_octet_string());
  } else if (value.is_null()) {
    encode_tlv(out, Tag::kNull, {});
  } else if (value.is_oid()) {
    encode_tlv(out, Tag::kOid, encode_oid_content(value.as_oid()));
  } else if (value.is_utf8()) {
    encode_tlv(out, Tag::kUtf8String, util::to_bytes(value.as_utf8()));
  } else if (value.is_utc_time()) {
    // Stored as a minimal INTEGER content inside the UTCTime TLV; the
    // textual YYMMDDhhmmssZ form is irrelevant to this reproduction.
    encode_tlv(out, Tag::kUtcTime, encode_integer_content(value.as_utc_time()));
  } else if (value.is_sequence()) {
    encode_constructed(out, Tag::kSequence, value.as_sequence());
  } else {
    encode_constructed(out, Tag::kSet, value.as_set());
  }
}

}  // namespace

Bytes encode(const Value& value) {
  Bytes out;
  encode_value(out, value);
  return out;
}

// ---- decoding ---------------------------------------------------------

namespace {

struct Decoder {
  ByteView data;
  std::size_t pos = 0;

  Error truncated() const {
    return util::make_error(ErrorCode::kInvalidArgument,
                            "asn1: truncated DER input");
  }

  Result<std::uint8_t> byte() {
    if (pos >= data.size()) return truncated();
    return data[pos++];
  }

  Result<std::size_t> length() {
    auto first = byte();
    if (!first) return first.error();
    if ((*&first.value() & 0x80) == 0) return std::size_t{first.value()};
    std::size_t count = first.value() & 0x7f;
    if (count == 0 || count > sizeof(std::size_t))
      return util::make_error(ErrorCode::kInvalidArgument,
                              "asn1: unsupported length encoding");
    std::size_t len = 0;
    for (std::size_t i = 0; i < count; ++i) {
      auto b = byte();
      if (!b) return b.error();
      len = len << 8 | b.value();
    }
    if (len < 0x80)
      return util::make_error(ErrorCode::kInvalidArgument,
                              "asn1: non-minimal length (not DER)");
    return len;
  }

  Result<ByteView> content(std::size_t len) {
    if (data.size() - pos < len) return truncated();
    ByteView view = data.subspan(pos, len);
    pos += len;
    return view;
  }

  Result<Value> value();
};

Result<std::int64_t> decode_integer_content(ByteView content) {
  if (content.empty())
    return util::make_error(ErrorCode::kInvalidArgument,
                            "asn1: empty INTEGER");
  if (content.size() > 8)
    return util::make_error(ErrorCode::kInvalidArgument,
                            "asn1: INTEGER exceeds 64 bits");
  // Sign-extend from the first content byte.
  std::uint64_t v = (content[0] & 0x80) ? ~std::uint64_t{0} : 0;
  for (std::uint8_t byte : content) v = v << 8 | byte;
  return static_cast<std::int64_t>(v);
}

Result<Oid> decode_oid_content(ByteView content) {
  if (content.empty())
    return util::make_error(ErrorCode::kInvalidArgument, "asn1: empty OID");
  Oid oid;
  oid.arcs.push_back(content[0] / 40);
  oid.arcs.push_back(content[0] % 40);
  std::uint32_t arc = 0;
  bool in_arc = false;
  for (std::size_t i = 1; i < content.size(); ++i) {
    arc = arc << 7 | (content[i] & 0x7f);
    in_arc = true;
    if ((content[i] & 0x80) == 0) {
      oid.arcs.push_back(arc);
      arc = 0;
      in_arc = false;
    }
  }
  if (in_arc)
    return util::make_error(ErrorCode::kInvalidArgument,
                            "asn1: truncated OID arc");
  return oid;
}

Result<Value> Decoder::value() {
  auto tag_byte = byte();
  if (!tag_byte) return tag_byte.error();
  auto len = length();
  if (!len) return len.error();
  auto body = content(len.value());
  if (!body) return body.error();
  ByteView c = body.value();

  switch (static_cast<Tag>(tag_byte.value())) {
    case Tag::kBoolean:
      if (c.size() != 1 || (c[0] != 0x00 && c[0] != 0xff))
        return util::make_error(ErrorCode::kInvalidArgument,
                                "asn1: non-DER BOOLEAN");
      return Value::boolean(c[0] == 0xff);
    case Tag::kInteger: {
      auto v = decode_integer_content(c);
      if (!v) return v.error();
      return Value::integer(v.value());
    }
    case Tag::kOctetString:
      return Value::octet_string(Bytes(c.begin(), c.end()));
    case Tag::kNull:
      if (!c.empty())
        return util::make_error(ErrorCode::kInvalidArgument,
                                "asn1: NULL with content");
      return Value::null();
    case Tag::kOid: {
      auto v = decode_oid_content(c);
      if (!v) return v.error();
      return Value::oid(std::move(v.value()));
    }
    case Tag::kUtf8String:
      return Value::utf8(util::to_string(c));
    case Tag::kUtcTime: {
      auto v = decode_integer_content(c);
      if (!v) return v.error();
      return Value::utc_time(v.value());
    }
    case Tag::kSequence:
    case Tag::kSet: {
      Decoder inner{c};
      ValueList items;
      while (inner.pos < inner.data.size()) {
        auto item = inner.value();
        if (!item) return item.error();
        items.push_back(std::move(item.value()));
      }
      return static_cast<Tag>(tag_byte.value()) == Tag::kSequence
                 ? Value::sequence(std::move(items))
                 : Value::set(std::move(items));
    }
  }
  return util::make_error(ErrorCode::kInvalidArgument,
                          "asn1: unsupported tag " +
                              std::to_string(tag_byte.value()));
}

}  // namespace

Result<Value> decode_prefix(ByteView der, std::size_t& consumed) {
  Decoder d{der};
  auto v = d.value();
  if (v) consumed = d.pos;
  return v;
}

Result<Value> decode(ByteView der) {
  std::size_t consumed = 0;
  auto v = decode_prefix(der, consumed);
  if (!v) return v;
  if (consumed != der.size())
    return util::make_error(ErrorCode::kInvalidArgument,
                            "asn1: trailing bytes after DER value");
  return v;
}

}  // namespace unicore::asn1
