// A DER (Distinguished Encoding Rules) subset.
//
// The paper stores per-Vsite resource pages "in ASN1 format" (§5.4) and
// builds its security architecture on X.509 certificates, whose native
// encoding is DER. This module implements the value model and the
// definite-length DER encoding for the universal types those two users
// need: BOOLEAN, INTEGER, OCTET STRING, NULL, OBJECT IDENTIFIER,
// UTF8String, UTCTime (as seconds since epoch), SEQUENCE and SET.
//
// Encoding is canonical: a value always encodes to exactly one byte
// string, so encodings can be signed and compared directly.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "util/bytes.h"
#include "util/result.h"

namespace unicore::asn1 {

/// DER universal tag numbers (subset).
enum class Tag : std::uint8_t {
  kBoolean = 0x01,
  kInteger = 0x02,
  kOctetString = 0x04,
  kNull = 0x05,
  kOid = 0x06,
  kUtf8String = 0x0c,
  kUtcTime = 0x17,
  kSequence = 0x30,  // constructed
  kSet = 0x31,       // constructed
};

class Value;
using ValueList = std::vector<Value>;

/// Object identifier as its arc numbers, e.g. {2,5,4,3} = id-at-commonName.
struct Oid {
  std::vector<std::uint32_t> arcs;
  bool operator==(const Oid&) const = default;
  std::string to_string() const;  // dotted form "2.5.4.3"
};

/// A parsed or to-be-encoded ASN.1 value.
class Value {
 public:
  struct Null {
    bool operator==(const Null&) const = default;
  };
  struct UtcTime {
    std::int64_t seconds_since_epoch = 0;
    bool operator==(const UtcTime&) const = default;
  };

  // Constructors for each supported universal type.
  static Value boolean(bool v);
  static Value integer(std::int64_t v);
  static Value octet_string(util::Bytes v);
  static Value null();
  static Value oid(Oid v);
  static Value utf8(std::string v);
  static Value utc_time(std::int64_t seconds_since_epoch);
  static Value sequence(ValueList items);
  static Value set(ValueList items);

  Tag tag() const;

  bool is_boolean() const;
  bool is_integer() const;
  bool is_octet_string() const;
  bool is_null() const;
  bool is_oid() const;
  bool is_utf8() const;
  bool is_utc_time() const;
  bool is_sequence() const;
  bool is_set() const;

  // Checked accessors; throw std::runtime_error on type mismatch so that
  // malformed certificates / resource pages fail loudly.
  bool as_boolean() const;
  std::int64_t as_integer() const;
  const util::Bytes& as_octet_string() const;
  const Oid& as_oid() const;
  const std::string& as_utf8() const;
  std::int64_t as_utc_time() const;
  const ValueList& as_sequence() const;
  const ValueList& as_set() const;

  bool operator==(const Value&) const = default;

 private:
  struct Constructed {
    Tag tag;
    ValueList items;
    bool operator==(const Constructed&) const = default;
  };

  std::variant<bool, std::int64_t, util::Bytes, Null, Oid, std::string,
               UtcTime, Constructed>
      data_;
};

/// Encodes a value to canonical DER.
util::Bytes encode(const Value& value);

/// Decodes exactly one DER value occupying the whole input.
util::Result<Value> decode(util::ByteView der);

/// Decodes one DER value from the front of `der`, reporting its size.
util::Result<Value> decode_prefix(util::ByteView der, std::size_t& consumed);

}  // namespace unicore::asn1
