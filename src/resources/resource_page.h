// Per-Vsite resource pages (§5.4).
//
// "Each UNICORE site provides a so called resource page reflecting
//  resource information about their Vsites. Besides minimum and maximum
//  values for the resources needed for batch submission it contains
//  information about the system architecture, performance, and operating
//  system as well as available application and system software. ...
//  It is stored in ASN1 format for the JPA to include it into the GUI."
//
// The page is produced by a site administrator through the
// ResourcePageEditor and shipped to clients DER-encoded.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "asn1/der.h"
#include "resources/resource_set.h"
#include "util/result.h"

namespace unicore::resources {

/// The system families of the 1999 UNICORE deployment (§5.7) plus a
/// generic fallback.
enum class Architecture {
  kCrayT3E,
  kFujitsuVpp700,
  kIbmSp2,
  kNecSx4,
  kGenericUnix,
};

const char* architecture_name(Architecture a);

enum class SoftwareKind { kCompiler, kLibrary, kPackage };

const char* software_kind_name(SoftwareKind k);

/// One entry of the site's software catalogue (compilers, libraries,
/// program packages like Gaussian or Ansys).
struct SoftwareItem {
  SoftwareKind kind = SoftwareKind::kPackage;
  std::string name;
  std::string version;

  bool operator==(const SoftwareItem&) const = default;
};

struct ResourcePage {
  std::string usite;  // e.g. "FZ-Juelich"
  std::string vsite;  // e.g. "T3E-600"
  Architecture architecture = Architecture::kGenericUnix;
  std::string operating_system;
  double peak_gflops = 0.0;
  std::int64_t node_count = 1;
  ResourceSet minimum;
  ResourceSet maximum;
  std::vector<SoftwareItem> software;

  bool operator==(const ResourcePage&) const = default;

  /// Checks a task's resource request against the page's min/max window;
  /// the error message names the violated dimension so the JPA can point
  /// the user at it.
  util::Status admits(const ResourceSet& request) const;

  bool has_software(SoftwareKind kind, std::string_view name) const;
  const SoftwareItem* find_software(SoftwareKind kind,
                                    std::string_view name) const;

  /// DER encoding — the on-disk / on-wire form of the page.
  util::Bytes encode() const;
  static util::Result<ResourcePage> decode(util::ByteView der);

  asn1::Value to_asn1() const;
  static util::Result<ResourcePage> from_asn1(const asn1::Value& v);
};

/// Builder used by the Usite administrator to prepare a page (§5.4's
/// "resource page editor"). Validates invariants at build():
/// min <= max in every dimension, non-empty names.
class ResourcePageEditor {
 public:
  ResourcePageEditor& usite(std::string name);
  ResourcePageEditor& vsite(std::string name);
  ResourcePageEditor& architecture(Architecture a);
  ResourcePageEditor& operating_system(std::string name);
  ResourcePageEditor& peak_gflops(double gflops);
  ResourcePageEditor& node_count(std::int64_t n);
  ResourcePageEditor& minimum(ResourceSet r);
  ResourcePageEditor& maximum(ResourceSet r);
  ResourcePageEditor& add_software(SoftwareKind kind, std::string name,
                                   std::string version);

  util::Result<ResourcePage> build() const;

 private:
  ResourcePage page_;
};

}  // namespace unicore::resources
