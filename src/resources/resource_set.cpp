#include "resources/resource_set.h"

#include <algorithm>

namespace unicore::resources {

using asn1::Value;

bool ResourceSet::fits_within(const ResourceSet& min,
                              const ResourceSet& max) const {
  auto within = [](std::int64_t v, std::int64_t lo, std::int64_t hi) {
    return v >= lo && v <= hi;
  };
  return within(processors, min.processors, max.processors) &&
         within(wallclock_seconds, min.wallclock_seconds,
                max.wallclock_seconds) &&
         within(memory_mb, min.memory_mb, max.memory_mb) &&
         within(permanent_disk_mb, min.permanent_disk_mb,
                max.permanent_disk_mb) &&
         within(temporary_disk_mb, min.temporary_disk_mb,
                max.temporary_disk_mb);
}

ResourceSet ResourceSet::element_max(const ResourceSet& other) const {
  ResourceSet out;
  out.processors = std::max(processors, other.processors);
  out.wallclock_seconds = std::max(wallclock_seconds, other.wallclock_seconds);
  out.memory_mb = std::max(memory_mb, other.memory_mb);
  out.permanent_disk_mb = std::max(permanent_disk_mb, other.permanent_disk_mb);
  out.temporary_disk_mb = std::max(temporary_disk_mb, other.temporary_disk_mb);
  return out;
}

std::string ResourceSet::to_string() const {
  return "cpus=" + std::to_string(processors) +
         " time=" + std::to_string(wallclock_seconds) + "s" +
         " mem=" + std::to_string(memory_mb) + "MB" +
         " permdisk=" + std::to_string(permanent_disk_mb) + "MB" +
         " tempdisk=" + std::to_string(temporary_disk_mb) + "MB";
}

Value ResourceSet::to_asn1() const {
  return Value::sequence({Value::integer(processors),
                          Value::integer(wallclock_seconds),
                          Value::integer(memory_mb),
                          Value::integer(permanent_disk_mb),
                          Value::integer(temporary_disk_mb)});
}

util::Result<ResourceSet> ResourceSet::from_asn1(const Value& v) {
  if (!v.is_sequence() || v.as_sequence().size() != 5)
    return util::make_error(util::ErrorCode::kInvalidArgument,
                            "resources: malformed resource set");
  const auto& f = v.as_sequence();
  for (const auto& item : f)
    if (!item.is_integer())
      return util::make_error(util::ErrorCode::kInvalidArgument,
                              "resources: non-integer resource value");
  ResourceSet out;
  out.processors = f[0].as_integer();
  out.wallclock_seconds = f[1].as_integer();
  out.memory_mb = f[2].as_integer();
  out.permanent_disk_mb = f[3].as_integer();
  out.temporary_disk_mb = f[4].as_integer();
  return out;
}

}  // namespace unicore::resources
