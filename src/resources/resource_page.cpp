#include "resources/resource_page.h"

namespace unicore::resources {

using asn1::Value;
using util::ErrorCode;
using util::Result;
using util::Status;

const char* architecture_name(Architecture a) {
  switch (a) {
    case Architecture::kCrayT3E: return "Cray T3E";
    case Architecture::kFujitsuVpp700: return "Fujitsu VPP/700";
    case Architecture::kIbmSp2: return "IBM SP-2";
    case Architecture::kNecSx4: return "NEC SX-4";
    case Architecture::kGenericUnix: return "Generic UNIX";
  }
  return "?";
}

const char* software_kind_name(SoftwareKind k) {
  switch (k) {
    case SoftwareKind::kCompiler: return "compiler";
    case SoftwareKind::kLibrary: return "library";
    case SoftwareKind::kPackage: return "package";
  }
  return "?";
}

Status ResourcePage::admits(const ResourceSet& request) const {
  struct Dimension {
    const char* name;
    std::int64_t value, lo, hi;
  };
  const Dimension dims[] = {
      {"processors", request.processors, minimum.processors,
       maximum.processors},
      {"wallclock_seconds", request.wallclock_seconds,
       minimum.wallclock_seconds, maximum.wallclock_seconds},
      {"memory_mb", request.memory_mb, minimum.memory_mb, maximum.memory_mb},
      {"permanent_disk_mb", request.permanent_disk_mb,
       minimum.permanent_disk_mb, maximum.permanent_disk_mb},
      {"temporary_disk_mb", request.temporary_disk_mb,
       minimum.temporary_disk_mb, maximum.temporary_disk_mb},
  };
  for (const auto& d : dims) {
    if (d.value < d.lo || d.value > d.hi)
      return util::make_error(
          ErrorCode::kResourceExhausted,
          std::string("resource request rejected by ") + vsite + ": " +
              d.name + "=" + std::to_string(d.value) + " outside [" +
              std::to_string(d.lo) + ", " + std::to_string(d.hi) + "]");
  }
  return Status::ok_status();
}

bool ResourcePage::has_software(SoftwareKind kind,
                                std::string_view name) const {
  return find_software(kind, name) != nullptr;
}

const SoftwareItem* ResourcePage::find_software(SoftwareKind kind,
                                                std::string_view name) const {
  for (const auto& item : software)
    if (item.kind == kind && item.name == name) return &item;
  return nullptr;
}

Value ResourcePage::to_asn1() const {
  asn1::ValueList software_values;
  software_values.reserve(software.size());
  for (const auto& item : software) {
    software_values.push_back(
        Value::sequence({Value::integer(static_cast<std::int64_t>(item.kind)),
                         Value::utf8(item.name), Value::utf8(item.version)}));
  }
  // peak_gflops is carried as milli-GFLOPS so the page stays within the
  // DER INTEGER type.
  return Value::sequence(
      {Value::utf8(usite), Value::utf8(vsite),
       Value::integer(static_cast<std::int64_t>(architecture)),
       Value::utf8(operating_system),
       Value::integer(static_cast<std::int64_t>(peak_gflops * 1000.0)),
       Value::integer(node_count), minimum.to_asn1(), maximum.to_asn1(),
       Value::sequence(std::move(software_values))});
}

Result<ResourcePage> ResourcePage::from_asn1(const Value& v) {
  if (!v.is_sequence() || v.as_sequence().size() != 9)
    return util::make_error(ErrorCode::kInvalidArgument,
                            "resources: malformed resource page");
  const auto& f = v.as_sequence();
  ResourcePage page;
  try {
    page.usite = f[0].as_utf8();
    page.vsite = f[1].as_utf8();
    page.architecture = static_cast<Architecture>(f[2].as_integer());
    page.operating_system = f[3].as_utf8();
    page.peak_gflops = static_cast<double>(f[4].as_integer()) / 1000.0;
    page.node_count = f[5].as_integer();
    auto minimum = ResourceSet::from_asn1(f[6]);
    if (!minimum) return minimum.error();
    page.minimum = minimum.value();
    auto maximum = ResourceSet::from_asn1(f[7]);
    if (!maximum) return maximum.error();
    page.maximum = maximum.value();
    for (const Value& item : f[8].as_sequence()) {
      const auto& s = item.as_sequence();
      if (s.size() != 3)
        return util::make_error(ErrorCode::kInvalidArgument,
                                "resources: malformed software item");
      SoftwareItem software_item;
      software_item.kind = static_cast<SoftwareKind>(s[0].as_integer());
      software_item.name = s[1].as_utf8();
      software_item.version = s[2].as_utf8();
      page.software.push_back(std::move(software_item));
    }
  } catch (const std::runtime_error& e) {
    return util::make_error(ErrorCode::kInvalidArgument,
                            std::string("resources: ") + e.what());
  }
  return page;
}

util::Bytes ResourcePage::encode() const { return asn1::encode(to_asn1()); }

Result<ResourcePage> ResourcePage::decode(util::ByteView der) {
  auto v = asn1::decode(der);
  if (!v) return v.error();
  return from_asn1(v.value());
}

// ---- ResourcePageEditor -----------------------------------------------

ResourcePageEditor& ResourcePageEditor::usite(std::string name) {
  page_.usite = std::move(name);
  return *this;
}
ResourcePageEditor& ResourcePageEditor::vsite(std::string name) {
  page_.vsite = std::move(name);
  return *this;
}
ResourcePageEditor& ResourcePageEditor::architecture(Architecture a) {
  page_.architecture = a;
  return *this;
}
ResourcePageEditor& ResourcePageEditor::operating_system(std::string name) {
  page_.operating_system = std::move(name);
  return *this;
}
ResourcePageEditor& ResourcePageEditor::peak_gflops(double gflops) {
  page_.peak_gflops = gflops;
  return *this;
}
ResourcePageEditor& ResourcePageEditor::node_count(std::int64_t n) {
  page_.node_count = n;
  return *this;
}
ResourcePageEditor& ResourcePageEditor::minimum(ResourceSet r) {
  page_.minimum = r;
  return *this;
}
ResourcePageEditor& ResourcePageEditor::maximum(ResourceSet r) {
  page_.maximum = r;
  return *this;
}
ResourcePageEditor& ResourcePageEditor::add_software(SoftwareKind kind,
                                                     std::string name,
                                                     std::string version) {
  page_.software.push_back({kind, std::move(name), std::move(version)});
  return *this;
}

Result<ResourcePage> ResourcePageEditor::build() const {
  if (page_.usite.empty() || page_.vsite.empty())
    return util::make_error(ErrorCode::kInvalidArgument,
                            "resource page needs usite and vsite names");
  if (page_.node_count < 1)
    return util::make_error(ErrorCode::kInvalidArgument,
                            "resource page needs node_count >= 1");
  const ResourceSet& lo = page_.minimum;
  const ResourceSet& hi = page_.maximum;
  if (lo.processors > hi.processors ||
      lo.wallclock_seconds > hi.wallclock_seconds ||
      lo.memory_mb > hi.memory_mb ||
      lo.permanent_disk_mb > hi.permanent_disk_mb ||
      lo.temporary_disk_mb > hi.temporary_disk_mb)
    return util::make_error(ErrorCode::kInvalidArgument,
                            "resource page minimum exceeds maximum");
  return page_;
}

}  // namespace unicore::resources
