// The paper's "simple model for resources" (§5.4): a batch request names
// the number of CPUs, execution time, memory, and permanent/temporary
// disk space. These values travel inside every AbstractTaskObject and
// are checked against the destination Vsite's resource page.
#pragma once

#include <cstdint>
#include <string>

#include "asn1/der.h"
#include "util/result.h"

namespace unicore::resources {

struct ResourceSet {
  std::int64_t processors = 1;
  std::int64_t wallclock_seconds = 300;
  std::int64_t memory_mb = 64;
  std::int64_t permanent_disk_mb = 0;
  std::int64_t temporary_disk_mb = 16;

  bool operator==(const ResourceSet&) const = default;

  /// True when every dimension lies within [min, max] inclusive.
  bool fits_within(const ResourceSet& min, const ResourceSet& max) const;

  /// Component-wise maximum (used to aggregate group requirements).
  ResourceSet element_max(const ResourceSet& other) const;

  std::string to_string() const;

  asn1::Value to_asn1() const;
  static util::Result<ResourceSet> from_asn1(const asn1::Value& v);
};

}  // namespace unicore::resources
