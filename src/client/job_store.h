// Saving and re-loading UNICORE jobs (§5.7): "The functions offered to
// the users by the JPA include creation of a new UNICORE job, loading
// of an old UNICORE job for resubmission, and loading and modification
// of an old UNICORE job." Jobs persist on the user's workstation in the
// canonical AJO wire format with a small header.
#pragma once

#include <string>

#include "ajo/job.h"
#include "util/result.h"

namespace unicore::client {

/// Serializes a job to a byte image (magic + version + AJO encoding).
util::Bytes serialize_job(const ajo::AbstractJobObject& job);
util::Result<ajo::AbstractJobObject> deserialize_job(util::ByteView image);

/// Writes/reads the image to/from the real filesystem.
util::Status save_job(const std::string& path,
                      const ajo::AbstractJobObject& job);
util::Result<ajo::AbstractJobObject> load_job(const std::string& path);

}  // namespace unicore::client
