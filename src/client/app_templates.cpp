#include "client/app_templates.h"

namespace unicore::client {

using util::ErrorCode;
using util::Result;

ApplicationTemplate gaussian94_template() {
  ApplicationTemplate t;
  t.package = "Gaussian";
  t.min_version = "94";
  t.command_template = "g94 < %input% > %output%";
  t.default_resources = {1, 14'400, 512, 0, 256};
  t.nominal_seconds_per_input_mb = 600.0;  // ab-initio chemistry is slow
  return t;
}

ApplicationTemplate pamcrash_template() {
  ApplicationTemplate t;
  t.package = "Pamcrash";
  t.min_version = "";
  t.command_template = "pamcrash -np %procs% %input% -o %output%";
  t.default_resources = {16, 28'800, 4'096, 0, 1'024};
  t.nominal_seconds_per_input_mb = 240.0;
  return t;
}

ApplicationTemplate ansys_template() {
  ApplicationTemplate t;
  t.package = "Ansys";
  t.min_version = "";
  t.command_template = "ansys -b -i %input% -o %output%";
  t.default_resources = {4, 14'400, 2'048, 0, 512};
  t.nominal_seconds_per_input_mb = 180.0;
  return t;
}

ApplicationLauncher::ApplicationLauncher(
    std::vector<resources::ResourcePage> pages)
    : pages_(std::move(pages)) {
  register_template(gaussian94_template());
  register_template(pamcrash_template());
  register_template(ansys_template());
}

void ApplicationLauncher::register_template(ApplicationTemplate application) {
  templates_[application.package] = std::move(application);
}

const ApplicationTemplate* ApplicationLauncher::find_template(
    const std::string& package) const {
  auto it = templates_.find(package);
  return it == templates_.end() ? nullptr : &it->second;
}

std::vector<std::string> ApplicationLauncher::packages() const {
  std::vector<std::string> out;
  out.reserve(templates_.size());
  for (const auto& [name, t] : templates_) out.push_back(name);
  return out;
}

std::vector<const resources::ResourcePage*>
ApplicationLauncher::sites_offering(const std::string& package) const {
  std::vector<const resources::ResourcePage*> out;
  for (const resources::ResourcePage& page : pages_)
    if (page.has_software(resources::SoftwareKind::kPackage, package))
      out.push_back(&page);
  return out;
}

namespace {
std::string substitute(std::string text, const std::string& key,
                       const std::string& value) {
  std::size_t at = 0;
  while ((at = text.find(key, at)) != std::string::npos) {
    text.replace(at, key.size(), value);
    at += value.size();
  }
  return text;
}
}  // namespace

Result<ajo::AbstractJobObject> ApplicationLauncher::make_job(
    const ApplicationJobRequest& request,
    const crypto::DistinguishedName& user,
    const std::string& preferred_vsite) const {
  const ApplicationTemplate* application = find_template(request.package);
  if (application == nullptr)
    return util::make_error(ErrorCode::kNotFound,
                            "no application template for " + request.package);

  std::vector<const resources::ResourcePage*> candidates =
      sites_offering(request.package);
  if (candidates.empty())
    return util::make_error(ErrorCode::kNotFound,
                            "no UNICORE site offers " + request.package);

  const resources::ResourcePage* destination = candidates.front();
  if (!preferred_vsite.empty()) {
    destination = nullptr;
    for (const resources::ResourcePage* page : candidates)
      if (page->vsite == preferred_vsite) destination = page;
    if (destination == nullptr)
      return util::make_error(ErrorCode::kNotFound,
                              preferred_vsite + " does not offer " +
                                  request.package);
  }

  resources::ResourceSet resources =
      request.resources.value_or(application->default_resources);
  if (auto status = destination->admits(resources); !status.ok())
    return status.error();

  JobBuilder builder(request.package + " run");
  builder.destination(destination->usite, destination->vsite);
  builder.account_group(request.account_group);

  auto input_task =
      builder.import_from_workstation(request.input_name, request.input);

  std::string command = application->command_template;
  command = substitute(command, "%input%", request.input_name);
  command = substitute(command, "%output%", request.output_name);
  command = substitute(command, "%procs%",
                       std::to_string(resources.processors));

  TaskOptions options;
  options.resources = resources;
  options.behavior.nominal_seconds =
      application->nominal_seconds_per_input_mb *
      (static_cast<double>(request.input.size()) / 1e6 + 0.01);
  options.behavior.stdout_text = request.package + " finished\n";
  options.behavior.output_files = {
      {request.output_name, std::max<std::uint64_t>(1, request.input.size())}};
  auto run_task = builder.script("run " + request.package, command + "\n",
                                 options);
  builder.after(input_task, run_task, {request.input_name});
  return builder.build(user);
}

}  // namespace unicore::client
