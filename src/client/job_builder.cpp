#include "client/job_builder.h"

namespace unicore::client {

using ajo::ActionId;
using util::ErrorCode;
using util::Result;

JobBuilder::JobBuilder(std::string job_name) {
  job_.set_name(std::move(job_name));
}

JobBuilder& JobBuilder::destination(std::string usite, std::string vsite) {
  job_.usite = std::move(usite);
  job_.vsite = std::move(vsite);
  return *this;
}

JobBuilder& JobBuilder::account_group(std::string group) {
  job_.account_group = std::move(group);
  return *this;
}

JobBuilder& JobBuilder::site_security_info(std::string info) {
  job_.site_security_info = std::move(info);
  return *this;
}

ActionId JobBuilder::import_from_workstation(const std::string& uspace_name,
                                             util::Bytes content,
                                             std::string task_name) {
  auto task = std::make_unique<ajo::ImportTask>();
  task->set_name(task_name.empty() ? "import " + uspace_name
                                   : std::move(task_name));
  task->source = ajo::ImportTask::Source::kUserWorkstation;
  task->inline_content = std::move(content);
  task->uspace_name = uspace_name;
  return job_.add(std::move(task));
}

ActionId JobBuilder::import_from_xspace(const std::string& volume,
                                        const std::string& path,
                                        const std::string& uspace_name,
                                        std::string task_name) {
  auto task = std::make_unique<ajo::ImportTask>();
  task->set_name(task_name.empty() ? "import " + uspace_name
                                   : std::move(task_name));
  task->source = ajo::ImportTask::Source::kXspace;
  task->xspace_source = {volume, path};
  task->uspace_name = uspace_name;
  return job_.add(std::move(task));
}

ActionId JobBuilder::export_to_xspace(const std::string& uspace_name,
                                      const std::string& volume,
                                      const std::string& path,
                                      std::string task_name) {
  auto task = std::make_unique<ajo::ExportTask>();
  task->set_name(task_name.empty() ? "export " + uspace_name
                                   : std::move(task_name));
  task->uspace_name = uspace_name;
  task->destination = {volume, path};
  return job_.add(std::move(task));
}

ActionId JobBuilder::transfer_to_subjob(const std::string& uspace_name,
                                        ActionId target_subjob,
                                        std::string rename_to,
                                        std::string task_name) {
  auto task = std::make_unique<ajo::TransferTask>();
  task->set_name(task_name.empty() ? "transfer " + uspace_name
                                   : std::move(task_name));
  task->uspace_name = uspace_name;
  task->target_job = target_subjob;
  task->rename_to = std::move(rename_to);
  return job_.add(std::move(task));
}

ActionId JobBuilder::compile(std::string task_name, const std::string& source,
                             const std::string& object,
                             const TaskOptions& options,
                             std::vector<std::string> flags) {
  auto task = std::make_unique<ajo::CompileTask>();
  task->set_name(std::move(task_name));
  task->source_file = source;
  task->object_file = object;
  task->compiler_flags = std::move(flags);
  task->set_resource_request(options.resources);
  task->behavior = options.behavior;
  return job_.add(std::move(task));
}

ActionId JobBuilder::link(std::string task_name,
                          std::vector<std::string> objects,
                          const std::string& executable,
                          const TaskOptions& options,
                          std::vector<std::string> libraries) {
  auto task = std::make_unique<ajo::LinkTask>();
  task->set_name(std::move(task_name));
  task->object_files = std::move(objects);
  task->executable = executable;
  task->libraries = std::move(libraries);
  task->set_resource_request(options.resources);
  task->behavior = options.behavior;
  return job_.add(std::move(task));
}

ActionId JobBuilder::run(std::string task_name, const std::string& executable,
                         const TaskOptions& options,
                         std::vector<std::string> arguments) {
  auto task = std::make_unique<ajo::UserTask>();
  task->set_name(std::move(task_name));
  task->executable = executable;
  task->arguments = std::move(arguments);
  task->set_resource_request(options.resources);
  task->behavior = options.behavior;
  return job_.add(std::move(task));
}

ActionId JobBuilder::script(std::string task_name, std::string script_text,
                            const TaskOptions& options) {
  auto task = std::make_unique<ajo::ExecuteScriptTask>();
  task->set_name(std::move(task_name));
  task->script = std::move(script_text);
  task->set_resource_request(options.resources);
  task->behavior = options.behavior;
  return job_.add(std::move(task));
}

ActionId JobBuilder::add_subjob(ajo::AbstractJobObject subjob) {
  return job_.add(std::make_unique<ajo::AbstractJobObject>(std::move(subjob)));
}

JobBuilder& JobBuilder::after(ActionId predecessor, ActionId successor,
                              std::vector<std::string> files) {
  job_.add_dependency(predecessor, successor, std::move(files));
  return *this;
}

Result<ajo::AbstractJobObject> JobBuilder::build(
    const crypto::DistinguishedName& user) const {
  ajo::AbstractJobObject job = job_;
  job.user = user;
  // Sub-jobs inherit the user identity throughout the tree.
  std::function<void(ajo::AbstractJobObject&)> propagate =
      [&](ajo::AbstractJobObject& node) {
        node.user = user;
        for (const auto& child : node.children())
          if (child->is_job())
            propagate(static_cast<ajo::AbstractJobObject&>(*child));
      };
  propagate(job);
  if (auto status = job.validate(); !status.ok()) return status.error();
  return job;
}

namespace {

const resources::ResourcePage* find_page(
    const std::vector<resources::ResourcePage>& pages,
    const std::string& usite, const std::string& vsite) {
  for (const auto& page : pages)
    if ((usite.empty() || page.usite == usite) && page.vsite == vsite)
      return &page;
  return nullptr;
}

util::Status check_against_pages(
    const ajo::AbstractJobObject& job,
    const std::vector<resources::ResourcePage>& pages) {
  if (!job.vsite.empty()) {
    const resources::ResourcePage* page =
        find_page(pages, job.usite, job.vsite);
    // Pages for remote Usites may be absent locally; only check what we
    // have — the remote gateway re-checks on arrival.
    if (page != nullptr) {
      for (const auto& child : job.children()) {
        if (!child->is_task()) continue;
        const auto& task =
            static_cast<const ajo::AbstractTaskObject&>(*child);
        if (auto status = page->admits(task.resource_request()); !status.ok())
          return status;
        if (child->type() == ajo::ActionType::kLinkTask) {
          const auto& link = static_cast<const ajo::LinkTask&>(*child);
          for (const auto& library : link.libraries)
            if (!page->has_software(resources::SoftwareKind::kLibrary,
                                    library))
              return util::make_error(
                  util::ErrorCode::kNotFound,
                  "library not available at " + job.vsite + ": " + library);
        }
      }
    }
  }
  for (const auto& child : job.children())
    if (child->is_job()) {
      auto status = check_against_pages(
          static_cast<const ajo::AbstractJobObject&>(*child), pages);
      if (!status.ok()) return status;
    }
  return util::Status::ok_status();
}

}  // namespace

Result<ajo::AbstractJobObject> JobBuilder::build_checked(
    const crypto::DistinguishedName& user,
    const std::vector<resources::ResourcePage>& pages) const {
  auto job = build(user);
  if (!job) return job;
  if (auto status = check_against_pages(job.value(), pages); !status.ok())
    return status.error();
  return job;
}

}  // namespace unicore::client
