// Promise/Future pair for the client surface: every asynchronous
// operation of UnicoreClient has an overload returning Future<T>
// instead of taking a completion callback, so portal-style code (the
// WorkflowManager, the examples) composes steps with then() chains or
// SyncClient::await() instead of hand-rolled callback pyramids.
//
// Single-threaded by design — the simulation engine drives everything
// on one thread, so the shared state needs no locking. A future settles
// exactly once with a util::Result<T> (value or error); at most one
// continuation may be attached, and attaching it after settlement fires
// it immediately.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <utility>

#include "util/result.h"

namespace unicore::client {

template <typename T>
class Promise;

template <typename T>
class Future {
 public:
  Future() = default;

  /// False for a default-constructed future with no producer attached.
  bool valid() const { return state_ != nullptr; }
  /// True once the producer settled the future.
  bool ready() const { return state_ && state_->result.has_value(); }

  /// Attaches the continuation; runs immediately when already settled.
  /// One continuation per future — a second call replaces an unfired
  /// one.
  void then(std::function<void(const util::Result<T>&)> fn) {
    if (!state_) return;
    if (state_->result.has_value()) {
      fn(*state_->result);
      return;
    }
    state_->continuation = std::move(fn);
  }

  /// The settled value; only meaningful when ready().
  const util::Result<T>& result() const { return *state_->result; }

 private:
  friend class Promise<T>;
  struct State {
    std::optional<util::Result<T>> result;
    std::function<void(const util::Result<T>&)> continuation;
  };
  explicit Future(std::shared_ptr<State> state) : state_(std::move(state)) {}

  std::shared_ptr<State> state_;
};

template <typename T>
class Promise {
 public:
  Promise() : state_(std::make_shared<typename Future<T>::State>()) {}

  Future<T> future() const { return Future<T>(state_); }

  /// Settles the future. The first settlement wins; later calls are
  /// ignored (mirrors how a request can race its own timeout).
  void set(util::Result<T> value) const {
    if (state_->result.has_value()) return;
    state_->result.emplace(std::move(value));
    if (state_->continuation) {
      auto fn = std::move(state_->continuation);
      state_->continuation = nullptr;
      fn(*state_->result);
    }
  }

 private:
  std::shared_ptr<typename Future<T>::State> state_;
};

}  // namespace unicore::client
