#include "client/sync_client.h"

namespace unicore::client {

using util::Result;
using util::Status;

Status SyncClient::connect(net::Address usite) {
  std::optional<Status> result;
  client_.connect(usite, [&result](Status s) { result = std::move(s); });
  while (!result.has_value() && engine_.step()) {
  }
  if (!result.has_value())
    return util::make_error(util::ErrorCode::kInternal,
                            "event queue drained before the reply");
  return std::move(*result);
}

Result<crypto::SoftwareBundle> SyncClient::fetch_bundle(
    const std::string& name) {
  return await<crypto::SoftwareBundle>([&](auto done) {
    client_.fetch_bundle(name, std::move(done));
  });
}

Result<std::vector<resources::ResourcePage>>
SyncClient::fetch_resource_pages() {
  return await<std::vector<resources::ResourcePage>>(
      [&](auto done) { client_.fetch_resource_pages(std::move(done)); });
}

Result<ajo::JobToken> SyncClient::submit(const ajo::AbstractJobObject& job) {
  return await<ajo::JobToken>(
      [&](auto done) { client_.submit(job, std::move(done)); });
}

Result<ajo::JobToken> SyncClient::submit_with_retry(
    const ajo::AbstractJobObject& job, int attempts) {
  return await<ajo::JobToken>([&](auto done) {
    client_.submit_with_retry(job, attempts, std::move(done));
  });
}

Result<ajo::Outcome> SyncClient::query(ajo::JobToken token,
                                       ajo::QueryService::Detail detail) {
  return await<ajo::Outcome>(
      [&](auto done) { client_.query(token, detail, std::move(done)); });
}

Result<std::vector<JobEntry>> SyncClient::list() {
  return await<std::vector<JobEntry>>(
      [&](auto done) { client_.list(std::move(done)); });
}

Status SyncClient::control(ajo::JobToken token,
                           ajo::ControlService::Command command) {
  std::optional<Status> result;
  client_.control(token, command,
                  [&result](Status s) { result = std::move(s); });
  while (!result.has_value() && engine_.step()) {
  }
  if (!result.has_value())
    return util::make_error(util::ErrorCode::kInternal,
                            "event queue drained before the reply");
  return std::move(*result);
}

Result<uspace::FileBlob> SyncClient::fetch_output(ajo::JobToken token,
                                                  const std::string& name) {
  return await<uspace::FileBlob>([&](auto done) {
    client_.fetch_output(token, name, std::move(done));
  });
}

Result<ajo::Outcome> SyncClient::wait_for_completion(ajo::JobToken token,
                                                     sim::Time interval) {
  return await<ajo::Outcome>([&](auto done) {
    client_.wait_for_completion(token, interval, std::move(done));
  });
}

Result<obs::MetricsSnapshot> SyncClient::fetch_metrics() {
  return await<obs::MetricsSnapshot>(
      [&](auto done) { client_.fetch_metrics(std::move(done)); });
}

Result<obs::TraceTimeline> SyncClient::fetch_trace(ajo::JobToken token) {
  return await<obs::TraceTimeline>(
      [&](auto done) { client_.fetch_trace(token, std::move(done)); });
}

Result<JournalInfo> SyncClient::inspect_journal() {
  return await<JournalInfo>(
      [&](auto done) { client_.inspect_journal(std::move(done)); });
}

}  // namespace unicore::client
