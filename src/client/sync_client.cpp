#include "client/sync_client.h"

namespace unicore::client {

using util::Result;
using util::Status;

namespace {

/// Collapses a Future<Ack> settlement back into a Status.
Status to_status(const Result<Ack>& result) {
  return result.ok() ? Status::ok_status() : Status(result.error());
}

}  // namespace

Status SyncClient::connect(net::Address usite) {
  return to_status(wait(client_.connect(usite)));
}

Result<crypto::SoftwareBundle> SyncClient::fetch_bundle(
    const std::string& name) {
  return await<crypto::SoftwareBundle>([&](auto done) {
    client_.fetch_bundle(name, std::move(done));
  });
}

Result<std::vector<resources::ResourcePage>>
SyncClient::fetch_resource_pages() {
  return await<std::vector<resources::ResourcePage>>(
      [&](auto done) { client_.fetch_resource_pages(std::move(done)); });
}

Result<ajo::JobToken> SyncClient::submit(const ajo::AbstractJobObject& job) {
  return wait(client_.submit(job));
}

Result<ajo::JobToken> SyncClient::submit_with_retry(
    const ajo::AbstractJobObject& job, int attempts) {
  return await<ajo::JobToken>([&](auto done) {
    client_.submit_with_retry(job, attempts, std::move(done));
  });
}

Result<ajo::Outcome> SyncClient::query(ajo::JobToken token,
                                       ajo::QueryService::Detail detail) {
  return wait(client_.query(token, detail));
}

Result<std::vector<JobEntry>> SyncClient::list() {
  return wait(client_.list());
}

Status SyncClient::control(ajo::JobToken token,
                           ajo::ControlService::Command command) {
  return to_status(wait(client_.control(token, command)));
}

Result<uspace::FileBlob> SyncClient::fetch_output(ajo::JobToken token,
                                                  const std::string& name) {
  return wait(client_.fetch_output(token, name));
}

Result<ajo::Outcome> SyncClient::wait_for_completion(ajo::JobToken token,
                                                     sim::Time interval) {
  return wait(client_.wait_for_completion(token, interval));
}

Result<obs::MetricsSnapshot> SyncClient::fetch_metrics() {
  return await<obs::MetricsSnapshot>(
      [&](auto done) { client_.fetch_metrics(std::move(done)); });
}

Result<obs::TraceTimeline> SyncClient::fetch_trace(ajo::JobToken token) {
  return await<obs::TraceTimeline>(
      [&](auto done) { client_.fetch_trace(token, std::move(done)); });
}

Result<JournalInfo> SyncClient::inspect_journal() {
  return await<JournalInfo>(
      [&](auto done) { client_.inspect_journal(std::move(done)); });
}

Result<SessionGrant> SyncClient::open_session(std::int64_t requested_ttl) {
  return wait(client_.open_session(requested_ttl));
}

Result<SessionGrant> SyncClient::refresh_session() {
  return wait(client_.refresh_session());
}

Status SyncClient::close_session() {
  return to_status(wait(client_.close_session()));
}

Result<std::vector<StorageEntry>> SyncClient::list_storages() {
  return wait(client_.list_storages());
}

Result<std::vector<std::string>> SyncClient::storage_files(
    ajo::JobToken token) {
  return wait(client_.storage_files(token));
}

Result<std::uint64_t> SyncClient::reap_storage(ajo::JobToken token) {
  return wait(client_.reap_storage(token));
}

Result<WorkflowRun> SyncClient::one_run(const std::vector<WorkflowStep>& steps,
                                        const WorkflowParameters& parameters,
                                        WorkflowManager::Options options) {
  WorkflowManager manager(client_, options);
  return wait(manager.one_run(steps, parameters));
}

Result<WorkflowRun> SyncClient::one_run(
    const std::vector<std::string>& command_lines,
    const WorkflowParameters& parameters, WorkflowManager::Options options) {
  WorkflowManager manager(client_, options);
  return wait(manager.one_run(command_lines, parameters));
}

}  // namespace unicore::client
