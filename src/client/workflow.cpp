#include "client/workflow.h"

#include <memory>
#include <utility>
#include <variant>

#include "ajo/tasks.h"

namespace unicore::client {

using util::ErrorCode;
using util::Result;

namespace {

/// Lifts the per-step results out of the outcome tree: every direct
/// child of the root job is one workflow step.
void collect_steps(WorkflowRun& run) {
  for (const auto& child : run.outcome.children) {
    StepResult result;
    result.status = child.status;
    if (const auto* exec = std::get_if<ajo::ExecuteOutcome>(&child.detail)) {
      result.exit_code = exec->exit_code;
      result.stdout_text = exec->stdout_text;
      result.stderr_text = exec->stderr_text;
    }
    run.steps[child.name] = std::move(result);
  }
}

}  // namespace

WorkflowManager::WorkflowManager(UnicoreClient& client, Options options)
    : client_(client), options_(options) {}

Result<ajo::AbstractJobObject> WorkflowManager::compile(
    const std::vector<WorkflowStep>& steps,
    const WorkflowParameters& parameters) const {
  if (steps.empty())
    return util::make_error(ErrorCode::kInvalidArgument,
                            "workflow has no steps");
  ajo::AbstractJobObject job;
  job.set_name(parameters.job_name);
  job.usite = parameters.usite;
  job.vsite = parameters.vsite;
  job.user = client_.user().certificate.subject;
  job.account_group = parameters.account_group;

  std::map<std::string, ajo::ActionId> ids;
  for (const auto& step : steps) {
    if (step.name.empty())
      return util::make_error(ErrorCode::kInvalidArgument,
                              "workflow step without a name");
    if (ids.count(step.name) != 0)
      return util::make_error(ErrorCode::kInvalidArgument,
                              "duplicate workflow step: " + step.name);
    auto task = std::make_unique<ajo::ExecuteScriptTask>();
    task->set_name(step.name);
    task->script = step.script;
    task->behavior = step.behavior;
    task->set_resource_request(step.resources);
    ids[step.name] = job.add(std::move(task));
  }
  for (const auto& step : steps)
    for (const auto& predecessor : step.after) {
      auto it = ids.find(predecessor);
      if (it == ids.end())
        return util::make_error(ErrorCode::kInvalidArgument,
                                "step '" + step.name +
                                    "' depends on unknown step '" +
                                    predecessor + "'");
      job.add_dependency(it->second, ids[step.name], step.files);
    }
  if (auto status = job.validate(); !status.ok()) return status.error();
  return job;
}

Future<WorkflowRun> WorkflowManager::one_run(
    const std::vector<WorkflowStep>& steps,
    const WorkflowParameters& parameters, bool wait) {
  Promise<WorkflowRun> promise;
  auto compiled = compile(steps, parameters);
  if (!compiled) {
    promise.set(compiled.error());
    return promise.future();
  }
  auto job =
      std::make_shared<ajo::AbstractJobObject>(std::move(compiled.value()));
  const sim::Time poll = parameters.poll_interval;

  auto submit_and_wait = [this, promise, job, poll, wait] {
    client_.submit(*job, [this, promise, poll,
                          wait](Result<ajo::JobToken> token) {
      if (!token) {
        promise.set(token.error());
        return;
      }
      WorkflowRun run;
      run.token = token.value();
      if (!wait) {
        promise.set(std::move(run));
        return;
      }
      auto pending = std::make_shared<WorkflowRun>(std::move(run));
      client_.wait_for_completion(
          token.value(), poll,
          [this, promise, pending](Result<ajo::Outcome> outcome) {
            if (!outcome) {
              promise.set(outcome.error());
              return;
            }
            pending->outcome = std::move(outcome.value());
            collect_steps(*pending);
            if (!options_.clean_job_storages) {
              promise.set(std::move(*pending));
              return;
            }
            // Best-effort quota hygiene: a failed reap (job pinned,
            // server restarted, ...) still resolves the run.
            client_.reap_storage(
                pending->token,
                [promise, pending](Result<std::uint64_t> freed) {
                  pending->storage_reaped = freed.ok();
                  promise.set(std::move(*pending));
                });
          });
    });
  };

  if (options_.use_session && !client_.has_session()) {
    client_.open_session(
        options_.session_ttl,
        [promise, submit_and_wait](Result<SessionGrant> grant) {
          if (!grant) {
            promise.set(grant.error());
            return;
          }
          submit_and_wait();
        });
  } else {
    submit_and_wait();
  }
  return promise.future();
}

Future<WorkflowRun> WorkflowManager::one_run(
    const std::vector<std::string>& command_lines,
    const WorkflowParameters& parameters, bool wait) {
  std::vector<WorkflowStep> steps;
  steps.reserve(command_lines.size());
  for (std::size_t i = 0; i < command_lines.size(); ++i) {
    WorkflowStep step;
    step.name = "step-" + std::to_string(i + 1);
    step.script = command_lines[i];
    if (i > 0) step.after.push_back(steps.back().name);
    steps.push_back(std::move(step));
  }
  return one_run(steps, parameters, wait);
}

}  // namespace unicore::client
