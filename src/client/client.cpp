#include "client/client.h"

#include "util/log.h"

namespace unicore::client {

using server::RequestKind;
using util::ByteReader;
using util::Bytes;
using util::ByteWriter;
using util::ErrorCode;
using util::Result;
using util::Status;

UnicoreClient::UnicoreClient(sim::Engine& engine, net::Network& network,
                             util::Rng& rng, Config config)
    : engine_(engine),
      network_(network),
      rng_(rng.fork()),
      config_(std::move(config)) {}

UnicoreClient::~UnicoreClient() { disconnect(); }

void UnicoreClient::connect(net::Address usite,
                            std::function<void(Status)> done) {
  disconnect();
  usite_address_ = usite;
  auto endpoint = network_.connect(config_.host, usite);
  if (!endpoint) {
    done(endpoint.error());
    return;
  }

  net::SecureChannel::Config channel_config;
  channel_config.credential = config_.user;
  channel_config.trust = config_.trust;
  channel_config.required_peer_usage = crypto::kUsageServerAuth;

  channel_ = net::SecureChannel::as_client(
      engine_, rng_, std::move(endpoint.value()), channel_config,
      [this, done = std::move(done)](Status status) {
        if (!status.ok()) {
          established_ = false;
          channel_.reset();
          done(status);
          return;
        }
        established_ = true;
        channel_->set_receiver(
            [this](Bytes&& wire) { handle_message(std::move(wire)); });
        channel_->set_close_handler([this] {
          established_ = false;
          fail_all_pending(util::make_error(ErrorCode::kUnavailable,
                                            "connection to Usite lost"));
        });
        done(Status::ok_status());
      });
}

bool UnicoreClient::connected() const {
  return established_ && channel_ && channel_->established();
}

void UnicoreClient::disconnect() {
  if (channel_) channel_->close();
  channel_.reset();
  established_ = false;
  fail_all_pending(
      util::make_error(ErrorCode::kUnavailable, "client disconnected"));
}

void UnicoreClient::fail_all_pending(const util::Error& error) {
  auto pending = std::move(pending_);
  pending_.clear();
  for (auto& [id, request] : pending) {
    if (request.timeout != 0) engine_.cancel(request.timeout);
    ++requests_failed_;
    request.handler(error);
  }
}

void UnicoreClient::send_request(
    RequestKind kind, Bytes payload,
    std::function<void(Result<Bytes>)> on_reply) {
  if (!connected()) {
    on_reply(util::make_error(ErrorCode::kUnavailable, "not connected"));
    return;
  }
  std::uint64_t request_id = next_request_id_++;
  ++requests_sent_;

  PendingRequest pending;
  pending.handler = std::move(on_reply);
  pending.timeout = engine_.after(config_.request_timeout, [this, request_id] {
    auto it = pending_.find(request_id);
    if (it == pending_.end()) return;
    auto handler = std::move(it->second.handler);
    pending_.erase(it);
    ++requests_failed_;
    handler(util::make_error(ErrorCode::kUnavailable,
                             "request timed out (message lost?)"));
  });
  pending_[request_id] = std::move(pending);
  channel_->send(server::make_request(kind, request_id, payload));
}

void UnicoreClient::handle_message(Bytes&& wire) {
  try {
    ByteReader reader{wire};
    auto type = static_cast<server::MessageType>(reader.u8());
    if (type != server::MessageType::kReply) return;  // JPA/JMC only poll
    std::uint64_t request_id = reader.u64();
    bool ok = reader.u8() != 0;
    auto it = pending_.find(request_id);
    if (it == pending_.end()) return;  // reply after timeout
    auto request = std::move(it->second);
    pending_.erase(it);
    if (request.timeout != 0) engine_.cancel(request.timeout);
    if (ok)
      request.handler(reader.raw(reader.remaining()));
    else
      request.handler(server::decode_error(reader));
  } catch (const std::out_of_range&) {
    UNICORE_WARN("client") << "malformed reply dropped";
  }
}

// ---- operations ------------------------------------------------------------

void UnicoreClient::fetch_bundle(
    const std::string& name,
    std::function<void(Result<crypto::SoftwareBundle>)> done) {
  ByteWriter payload;
  payload.str(name);
  const crypto::TrustStore* trust = config_.trust;
  sim::Time now = engine_.now();
  send_request(RequestKind::kGetBundle, payload.take(),
               [done = std::move(done), trust, now](Result<Bytes> reply) {
                 if (!reply) {
                   done(reply.error());
                   return;
                 }
                 auto bundle = crypto::SoftwareBundle::decode(reply.value());
                 if (!bundle) {
                   done(bundle.error());
                   return;
                 }
                 // "The applet certificate is checked to assure the user
                 //  that the software has not been tampered with." (§4.1)
                 if (trust != nullptr) {
                   auto status = crypto::verify_bundle(
                       bundle.value(), *trust, net::epoch_seconds(now));
                   if (!status.ok()) {
                     done(status.error());
                     return;
                   }
                 }
                 done(std::move(bundle.value()));
               });
}

void UnicoreClient::fetch_resource_pages(
    std::function<void(Result<std::vector<resources::ResourcePage>>)> done) {
  send_request(
      RequestKind::kResourcePages, {},
      [done = std::move(done)](Result<Bytes> reply) {
        if (!reply) {
          done(reply.error());
          return;
        }
        try {
          ByteReader reader{reply.value()};
          std::uint64_t count = reader.varint();
          std::vector<resources::ResourcePage> pages;
          pages.reserve(count);
          for (std::uint64_t i = 0; i < count; ++i) {
            Bytes der = reader.blob();
            auto page = resources::ResourcePage::decode(der);
            if (!page) {
              done(page.error());
              return;
            }
            pages.push_back(std::move(page.value()));
          }
          done(std::move(pages));
        } catch (const std::out_of_range&) {
          done(util::make_error(ErrorCode::kInvalidArgument,
                                "malformed resource page reply"));
        }
      });
}

void UnicoreClient::submit(const ajo::AbstractJobObject& job,
                           std::function<void(Result<ajo::JobToken>)> done) {
  ajo::SignedAjo signed_ajo = ajo::sign_ajo(job, config_.user);
  send_request(RequestKind::kConsign, signed_ajo.encode(),
               [done = std::move(done)](Result<Bytes> reply) {
                 if (!reply) {
                   done(reply.error());
                   return;
                 }
                 try {
                   ByteReader reader{reply.value()};
                   done(ajo::JobToken{reader.u64()});
                 } catch (const std::out_of_range&) {
                   done(util::make_error(ErrorCode::kInvalidArgument,
                                         "malformed consign reply"));
                 }
               });
}

void UnicoreClient::submit_with_retry(
    const ajo::AbstractJobObject& job, int attempts,
    std::function<void(Result<ajo::JobToken>)> done) {
  if (attempts < 1) {
    done(util::make_error(ErrorCode::kUnavailable, "no attempts left"));
    return;
  }
  auto attempt = std::make_shared<std::function<void(int)>>();
  auto job_copy = std::make_shared<ajo::AbstractJobObject>(job);
  *attempt = [this, job_copy, done, attempt](int remaining) {
    auto retry = [this, attempt, remaining, done](const util::Error& error) {
      if (remaining <= 1) {
        done(error);
        return;
      }
      // Reconnect, then try again — each interaction is short, so a
      // lossy link only costs a retry (the §5.3 robustness argument).
      connect(usite_address_, [attempt, remaining, done](Status status) {
        if (!status.ok()) {
          (*attempt)(remaining - 1);
          return;
        }
        (*attempt)(remaining - 1);
      });
    };
    if (!connected()) {
      retry(util::make_error(ErrorCode::kUnavailable, "not connected"));
      return;
    }
    submit(*job_copy, [done, retry](Result<ajo::JobToken> token) {
      if (token) {
        done(std::move(token));
        return;
      }
      if (token.error().code == ErrorCode::kUnavailable) {
        retry(token.error());
        return;
      }
      done(token.error());  // a real rejection; retrying will not help
    });
  };
  (*attempt)(attempts);
}

void UnicoreClient::query(ajo::JobToken token,
                          ajo::QueryService::Detail detail,
                          std::function<void(Result<ajo::Outcome>)> done) {
  ByteWriter payload;
  payload.u64(token);
  payload.u8(static_cast<std::uint8_t>(detail));
  send_request(RequestKind::kQuery, payload.take(),
               [done = std::move(done)](Result<Bytes> reply) {
                 if (!reply) {
                   done(reply.error());
                   return;
                 }
                 ByteReader reader{reply.value()};
                 done(ajo::Outcome::decode(reader));
               });
}

void UnicoreClient::list(
    std::function<void(Result<std::vector<JobEntry>>)> done) {
  send_request(RequestKind::kList, {},
               [done = std::move(done)](Result<Bytes> reply) {
                 if (!reply) {
                   done(reply.error());
                   return;
                 }
                 try {
                   ByteReader reader{reply.value()};
                   std::uint64_t count = reader.varint();
                   std::vector<JobEntry> entries;
                   entries.reserve(count);
                   for (std::uint64_t i = 0; i < count; ++i) {
                     JobEntry entry;
                     entry.token = reader.u64();
                     entry.name = reader.str();
                     entry.status =
                         static_cast<ajo::ActionStatus>(reader.u8());
                     entry.consigned_at = reader.i64();
                     entries.push_back(std::move(entry));
                   }
                   done(std::move(entries));
                 } catch (const std::out_of_range&) {
                   done(util::make_error(ErrorCode::kInvalidArgument,
                                         "malformed list reply"));
                 }
               });
}

void UnicoreClient::control(ajo::JobToken token,
                            ajo::ControlService::Command command,
                            std::function<void(Status)> done) {
  ByteWriter payload;
  payload.u64(token);
  payload.u8(static_cast<std::uint8_t>(command));
  send_request(RequestKind::kControl, payload.take(),
               [done = std::move(done)](Result<Bytes> reply) {
                 if (!reply)
                   done(reply.error());
                 else
                   done(Status::ok_status());
               });
}

void UnicoreClient::fetch_output(
    ajo::JobToken token, const std::string& name,
    std::function<void(Result<uspace::FileBlob>)> done) {
  ByteWriter payload;
  payload.u64(token);
  payload.str(name);
  send_request(RequestKind::kFetchOutput, payload.take(),
               [done = std::move(done)](Result<Bytes> reply) {
                 if (!reply) {
                   done(reply.error());
                   return;
                 }
                 try {
                   ByteReader reader{reply.value()};
                   done(uspace::FileBlob::decode(reader));
                 } catch (const std::out_of_range&) {
                   done(util::make_error(ErrorCode::kInvalidArgument,
                                         "malformed output reply"));
                 }
               });
}

void UnicoreClient::fetch_metrics(
    std::function<void(Result<obs::MetricsSnapshot>)> done) {
  send_request(RequestKind::kMonitorMetrics, {},
               [done = std::move(done)](Result<Bytes> reply) {
                 if (!reply) {
                   done(reply.error());
                   return;
                 }
                 try {
                   ByteReader reader{reply.value()};
                   done(obs::MetricsSnapshot::decode(reader));
                 } catch (const std::out_of_range&) {
                   done(util::make_error(ErrorCode::kInvalidArgument,
                                         "malformed metrics reply"));
                 }
               });
}

void UnicoreClient::fetch_trace(
    ajo::JobToken token,
    std::function<void(Result<obs::TraceTimeline>)> done) {
  ByteWriter payload;
  payload.u64(token);
  send_request(RequestKind::kMonitorTrace, payload.take(),
               [done = std::move(done)](Result<Bytes> reply) {
                 if (!reply) {
                   done(reply.error());
                   return;
                 }
                 try {
                   ByteReader reader{reply.value()};
                   done(obs::TraceTimeline::decode(reader));
                 } catch (const std::out_of_range&) {
                   done(util::make_error(ErrorCode::kInvalidArgument,
                                         "malformed trace reply"));
                 }
               });
}

void UnicoreClient::wait_for_completion(
    ajo::JobToken token, sim::Time interval,
    std::function<void(Result<ajo::Outcome>)> done) {
  query(token, ajo::QueryService::Detail::kTasks,
        [this, token, interval, done = std::move(done)](
            Result<ajo::Outcome> outcome) {
          if (!outcome) {
            done(outcome.error());
            return;
          }
          if (ajo::is_terminal(outcome.value().status)) {
            done(std::move(outcome));
            return;
          }
          engine_.after(interval, [this, token, interval, done] {
            wait_for_completion(token, interval, done);
          });
        });
}

}  // namespace unicore::client
