#include "client/client.h"

#include "ajo/codec.h"
#include "util/log.h"

namespace unicore::client {

using server::RequestKind;
using util::ByteReader;
using util::Bytes;
using util::ByteWriter;
using util::ErrorCode;
using util::Result;
using util::Status;

namespace {

/// The client's hybrid ChunkTransport: stream 0 is the established JMC
/// channel (so the inline-open fast path costs no extra handshake);
/// streams 1..n ride a bundle of extra rails authenticated with the
/// same user credential.
class ClientTransport : public xfer::ChunkTransport {
 public:
  ClientTransport(UnicoreClient& client, std::shared_ptr<bool> alive,
                  std::shared_ptr<server::XferRails> rails)
      : client_(client), alive_(std::move(alive)), rails_(std::move(rails)) {}

  std::size_t streams() const override {
    return 1 + (rails_ ? rails_->streams() : 0);
  }

  void call(std::size_t stream, xfer::Op op, Bytes body,
            std::function<void(Result<Bytes>)> done) override {
    if (stream == 0 || rails_ == nullptr) {
      if (!*alive_) {
        done(util::make_error(ErrorCode::kUnavailable, "client destroyed"));
        return;
      }
      client_.xfer_call(op, std::move(body), std::move(done));
      return;
    }
    rails_->call(stream - 1, op, std::move(body), std::move(done));
  }

 private:
  UnicoreClient& client_;
  std::shared_ptr<bool> alive_;
  std::shared_ptr<server::XferRails> rails_;
};

/// Request kinds that may ride the kTokenRequest envelope once a
/// session is adopted. kSessionOpen always authenticates the channel's
/// peer certificate; bundle / resource-page downloads and the chunked
/// transfer envelopes keep their certificate-bound plain form.
bool token_eligible(RequestKind kind) {
  switch (kind) {
    case RequestKind::kConsign:
    case RequestKind::kQuery:
    case RequestKind::kList:
    case RequestKind::kControl:
    case RequestKind::kFetchOutput:
    case RequestKind::kMonitorMetrics:
    case RequestKind::kMonitorTrace:
    case RequestKind::kJournalInspect:
    case RequestKind::kSessionRefresh:
    case RequestKind::kSessionClose:
    case RequestKind::kStorageList:
    case RequestKind::kStorageFiles:
    case RequestKind::kStorageReap:
      return true;
    default:
      return false;
  }
}

}  // namespace

UnicoreClient::UnicoreClient(sim::Engine& engine, net::Network& network,
                             util::Rng& rng, Config config)
    : engine_(engine),
      network_(network),
      rng_(rng.fork()),
      config_(std::move(config)),
      xfer_manager_(engine, rng_) {}

UnicoreClient::~UnicoreClient() {
  *alive_ = false;
  disconnect();
}

void UnicoreClient::connect(net::Address usite,
                            std::function<void(Status)> done) {
  disconnect();
  usite_address_ = usite;
  auto endpoint = network_.connect(config_.host, usite);
  if (!endpoint) {
    done(endpoint.error());
    return;
  }

  net::SecureChannel::Config channel_config;
  channel_config.credential = config_.user;
  channel_config.trust = config_.trust;
  channel_config.required_peer_usage = crypto::kUsageServerAuth;
  channel_config.protocol_version = config_.protocol_version;
  channel_config.features = config_.channel_features;
  // Reconnects resume from the cached session ticket — one round trip,
  // no public-key operations — until the ticket expires or the server
  // invalidates it.
  channel_config.session_cache = &sessions_;
  channel_config.session_key =
      net::SessionCache::key_for(usite.host, usite.port);

  channel_ = net::SecureChannel::as_client(
      engine_, rng_, std::move(endpoint.value()), channel_config,
      [this, done = std::move(done)](Status status) {
        if (!status.ok()) {
          established_ = false;
          channel_.reset();
          done(status);
          return;
        }
        established_ = true;
        channel_->set_receiver(
            [this](Bytes&& wire) { handle_message(std::move(wire)); });
        channel_->set_close_handler([this] {
          established_ = false;
          fail_all_pending(util::make_error(ErrorCode::kUnavailable,
                                            "connection to Usite lost"));
        });
        done(Status::ok_status());
      });
}

void UnicoreClient::connect_any(std::vector<net::Address> addresses,
                                std::function<void(Status)> done) {
  if (addresses.empty()) {
    done(util::make_error(ErrorCode::kUnavailable,
                          "no gateway replica addresses to try"));
    return;
  }
  net::Address first = addresses.front();
  addresses.erase(addresses.begin());
  connect(first, [this, addresses = std::move(addresses),
                  done = std::move(done)](Status status) mutable {
    if (status.ok() || addresses.empty()) {
      done(std::move(status));
      return;
    }
    // Dead listener or failed handshake: walk the ring to the next
    // replica (the re-routing half of consistent-hash addressing).
    connect_any(std::move(addresses), std::move(done));
  });
}

bool UnicoreClient::connected() const {
  return established_ && channel_ && channel_->established();
}

void UnicoreClient::disconnect() {
  if (channel_) channel_->close();
  channel_.reset();
  established_ = false;
  transport_.reset();  // drops the rails toward the old Usite
  fail_all_pending(
      util::make_error(ErrorCode::kUnavailable, "client disconnected"));
}

void UnicoreClient::fail_all_pending(const util::Error& error) {
  auto pending = std::move(pending_);
  pending_.clear();
  for (auto& [id, request] : pending) {
    if (request.timeout != 0) engine_.cancel(request.timeout);
    ++requests_failed_;
    request.handler(error);
  }
}

void UnicoreClient::send_request(
    RequestKind kind, Bytes payload,
    std::function<void(Result<Bytes>)> on_reply) {
  if (!connected()) {
    on_reply(util::make_error(ErrorCode::kUnavailable, "not connected"));
    return;
  }
  std::uint64_t request_id = next_request_id_++;
  ++requests_sent_;

  PendingRequest pending;
  pending.handler = std::move(on_reply);
  pending.timeout = engine_.after(config_.request_timeout, [this, request_id] {
    auto it = pending_.find(request_id);
    if (it == pending_.end()) return;
    auto handler = std::move(it->second.handler);
    pending_.erase(it);
    ++requests_failed_;
    handler(util::make_error(ErrorCode::kTimeout,
                             "request timed out (message lost?)"));
  });
  pending_[request_id] = std::move(pending);
  if (!session_token_.empty() && token_eligible(kind))
    channel_->send(
        server::make_token_request(kind, request_id, session_token_, payload));
  else
    channel_->send(server::make_request(kind, request_id, payload));
}

void UnicoreClient::handle_message(Bytes&& wire) {
  try {
    ByteReader reader{wire};
    auto type = static_cast<server::MessageType>(reader.u8());
    if (type != server::MessageType::kReply) return;  // JPA/JMC only poll
    std::uint64_t request_id = reader.u64();
    bool ok = reader.u8() != 0;
    auto it = pending_.find(request_id);
    if (it == pending_.end()) return;  // reply after timeout
    auto request = std::move(it->second);
    pending_.erase(it);
    if (request.timeout != 0) engine_.cancel(request.timeout);
    if (ok)
      request.handler(reader.raw(reader.remaining()));
    else
      request.handler(server::decode_error(reader));
  } catch (const std::out_of_range&) {
    UNICORE_WARN("client") << "malformed reply dropped";
  }
}

// ---- operations ------------------------------------------------------------
// Each operation is its codec plus a payload writer; the call<> template
// owns the request/reply/timeout plumbing.

void UnicoreClient::fetch_bundle(
    const std::string& name,
    std::function<void(Result<crypto::SoftwareBundle>)> done) {
  ByteWriter payload;
  payload.str(name);
  const crypto::TrustStore* trust = config_.trust;
  sim::Time now = engine_.now();
  call<wire::BundleCodec>(
      payload.take(),
      [done = std::move(done), trust, now](Result<crypto::SoftwareBundle>
                                               bundle) {
        if (!bundle) {
          done(bundle.error());
          return;
        }
        // "The applet certificate is checked to assure the user that the
        //  software has not been tampered with." (§4.1)
        if (trust != nullptr) {
          auto status = crypto::verify_bundle(bundle.value(), *trust,
                                              net::epoch_seconds(now));
          if (!status.ok()) {
            done(status.error());
            return;
          }
        }
        done(std::move(bundle.value()));
      });
}

void UnicoreClient::fetch_resource_pages(
    std::function<void(Result<std::vector<resources::ResourcePage>>)> done) {
  call<wire::ResourcePagesCodec>({}, std::move(done));
}

void UnicoreClient::submit(const ajo::AbstractJobObject& job,
                           std::function<void(Result<ajo::JobToken>)> done) {
  if (has_session()) {
    // Token consign: the bearer token already proves the identity, so
    // the AJO travels unsigned — no signature powmods on this path.
    call<wire::ConsignCodec>(ajo::encode_action(job), std::move(done));
    return;
  }
  ajo::SignedAjo signed_ajo = ajo::sign_ajo(job, config_.user);
  call<wire::ConsignCodec>(signed_ajo.encode(), std::move(done));
}

void UnicoreClient::submit_with_retry(
    const ajo::AbstractJobObject& job, int attempts,
    std::function<void(Result<ajo::JobToken>)> done) {
  if (attempts < 1) {
    done(util::make_error(ErrorCode::kUnavailable, "no attempts left"));
    return;
  }
  auto attempt = std::make_shared<std::function<void(int)>>();
  auto job_copy = std::make_shared<ajo::AbstractJobObject>(job);
  int total = attempts;
  // The loop function holds itself only weakly; the strong reference
  // that keeps the retry chain alive rides in the scheduled callbacks
  // below (self-capture here would be a permanent shared_ptr cycle).
  *attempt = [this, job_copy, done, total,
              weak_attempt = std::weak_ptr<std::function<void(int)>>(
                  attempt)](int remaining) {
    auto attempt = weak_attempt.lock();
    auto retry = [this, attempt, remaining, total,
                  done](const util::Error& error) {
      if (remaining <= 1) {
        done(error);
        return;
      }
      // Back off, reconnect, then try again — each interaction is short,
      // so a lossy link only costs a retry (the §5.3 robustness
      // argument); the growing delay keeps a down Usite from being
      // hammered.
      sim::Time delay = util::backoff_delay_us(
          config_.retry_backoff, total - remaining + 1, rng_);
      engine_.after(delay, [this, attempt, remaining, done] {
        connect(usite_address_, [attempt, remaining, done](Status) {
          (*attempt)(remaining - 1);
        });
      });
    };
    if (!connected()) {
      retry(util::make_error(ErrorCode::kUnavailable, "not connected"));
      return;
    }
    submit(*job_copy, [done, retry](Result<ajo::JobToken> token) {
      if (token) {
        done(std::move(token));
        return;
      }
      if (util::is_retryable(token.error().code)) {
        retry(token.error());
        return;
      }
      done(token.error());  // a real rejection; retrying will not help
    });
  };
  (*attempt)(attempts);
}

void UnicoreClient::query(ajo::JobToken token,
                          ajo::QueryService::Detail detail,
                          std::function<void(Result<ajo::Outcome>)> done) {
  ByteWriter payload;
  payload.u64(token);
  payload.u8(static_cast<std::uint8_t>(detail));
  call<wire::QueryCodec>(payload.take(), std::move(done));
}

void UnicoreClient::list(
    std::function<void(Result<std::vector<JobEntry>>)> done) {
  call<wire::ListCodec>({}, std::move(done));
}

void UnicoreClient::control(ajo::JobToken token,
                            ajo::ControlService::Command command,
                            std::function<void(Status)> done) {
  ByteWriter payload;
  payload.u64(token);
  payload.u8(static_cast<std::uint8_t>(command));
  call<wire::ControlCodec>(payload.take(),
                           [done = std::move(done)](Result<Ack> reply) {
                             if (!reply)
                               done(reply.error());
                             else
                               done(Status::ok_status());
                           });
}

void UnicoreClient::fetch_output_legacy(
    ajo::JobToken token, const std::string& name,
    std::function<void(Result<uspace::FileBlob>)> done) {
  ++output_stats_.legacy;
  ByteWriter payload;
  payload.u64(token);
  payload.str(name);
  call<wire::FetchOutputCodec>(payload.take(), std::move(done));
}

void UnicoreClient::xfer_call(
    xfer::Op op, Bytes body,
    std::function<void(Result<Bytes>)> done) {
  send_request(server::xfer_request_kind(op), std::move(body),
               std::move(done));
}

std::shared_ptr<xfer::ChunkTransport> UnicoreClient::transfer_transport() {
  if (transport_) return transport_;
  std::shared_ptr<server::XferRails> rails;
  if (config_.transfer_streams > 1) {
    server::XferRails::Config rails_config;
    rails_config.local_host = config_.host;
    rails_config.remote = usite_address_;
    rails_config.streams = config_.transfer_streams - 1;
    rails_config.credential = config_.user;
    rails_config.trust = config_.trust;
    rails_config.required_peer_usage = crypto::kUsageServerAuth;
    rails_config.request_timeout = config_.request_timeout;
    rails_config.session_cache = &sessions_;
    rails_config.features = config_.channel_features;
    rails = server::XferRails::create(engine_, network_, rng_,
                                      std::move(rails_config));
  }
  transport_ =
      std::make_shared<ClientTransport>(*this, alive_, std::move(rails));
  return transport_;
}

void UnicoreClient::fetch_output(
    ajo::JobToken token, const std::string& name,
    std::function<void(Result<uspace::FileBlob>)> done) {
  // Chunked retrieval needs a v2 channel on both ends; everything else
  // (v1 server, chunking disabled) takes the legacy whole-blob request.
  bool chunked = config_.transfer_streams > 0 && connected() &&
                 channel_->feature_enabled(net::kFeatureChunkedXfer);
  if (!chunked) {
    fetch_output_legacy(token, name, std::move(done));
    return;
  }
  ++output_stats_.chunked;
  xfer::PullSpec spec;
  spec.role = xfer::Role::kClientPull;
  spec.token = token;
  spec.name = name;
  auto alive = alive_;
  xfer_manager_.pull(
      transfer_transport(), spec, config_.transfer_options,
      [this, alive, token, name,
       done = std::move(done)](Result<xfer::PullResult> result) mutable {
        if (!result &&
            result.error().code == ErrorCode::kFailedPrecondition &&
            *alive) {
          // Refused mid-flight (e.g. the Usite restarted into an old
          // build): fall back to the whole-blob request.
          fetch_output_legacy(token, name, std::move(done));
          return;
        }
        if (!result)
          done(result.error());
        else
          done(std::move(result.value().blob));
      });
}

void UnicoreClient::push_tree(
    ajo::JobToken token,
    std::vector<std::pair<std::string, uspace::FileBlob>> files,
    std::function<void(Result<xfer::BundleStats>)> done) {
  if (files.empty()) {
    done(xfer::BundleStats{});
    return;
  }
  if (!connected()) {
    done(util::make_error(ErrorCode::kUnavailable, "not connected"));
    return;
  }
  if (config_.transfer_streams == 0 ||
      !channel_->feature_enabled(net::kFeatureChunkedXfer)) {
    // v1 server (or chunking disabled): there is no client staging
    // path at all — files travel inside the AJO instead.
    done(util::make_error(ErrorCode::kFailedPrecondition,
                          "client staging requires the chunked transfer "
                          "channel feature"));
    return;
  }
  if (!channel_->feature_enabled(net::kFeatureBundleXfer)) {
    // Chunked but bundleless: one kClientPush transfer per file.
    auto shared = std::make_shared<
        std::vector<std::pair<std::string, uspace::FileBlob>>>(
        std::move(files));
    auto stats = std::make_shared<xfer::BundleStats>();
    stats->started_at = engine_.now();
    push_tree_singles(token, shared, 0, stats, std::move(done));
    return;
  }
  ++output_stats_.bundled;
  xfer::BundlePushSpec spec;
  spec.source = "client:" + config_.user.certificate.subject.common_name;
  spec.token = token;
  spec.role = xfer::Role::kClientPush;
  std::vector<xfer::BundleFile> bundle;
  bundle.reserve(files.size());
  for (auto& [name, blob] : files)
    bundle.push_back(
        {name, std::make_shared<const uspace::FileBlob>(std::move(blob))});
  xfer_manager_.push_tree(transfer_transport(), spec, std::move(bundle),
                          config_.transfer_options, std::move(done));
}

void UnicoreClient::push_tree_singles(
    ajo::JobToken token,
    std::shared_ptr<std::vector<std::pair<std::string, uspace::FileBlob>>>
        files,
    std::size_t next, std::shared_ptr<xfer::BundleStats> stats,
    std::function<void(Result<xfer::BundleStats>)> done) {
  if (next >= files->size()) {
    stats->finished_at = engine_.now();
    done(*stats);
    return;
  }
  xfer::PushSpec spec;
  spec.source = "client:" + config_.user.certificate.subject.common_name;
  spec.token = token;
  spec.name = (*files)[next].first;
  spec.role = xfer::Role::kClientPush;
  auto blob =
      std::make_shared<const uspace::FileBlob>((*files)[next].second);
  xfer_manager_.push(
      transfer_transport(), spec, std::move(blob), config_.transfer_options,
      [this, token, files, next, stats,
       done = std::move(done)](Result<xfer::TransferStats> r) mutable {
        if (!r) {
          done(r.error());
          return;
        }
        ++stats->files;
        stats->bytes += r.value().bytes;
        stats->chunks += r.value().chunks;
        stats->deduped += r.value().duplicates + r.value().deduped;
        stats->retransmits += r.value().retransmits;
        stats->resumes += r.value().resumes;
        stats->streams = std::max(stats->streams, r.value().streams);
        push_tree_singles(token, files, next + 1, stats, std::move(done));
      });
}

void UnicoreClient::fetch_tree(
    ajo::JobToken token, std::vector<std::string> names,
    std::function<void(Result<std::vector<uspace::FileBlob>>)> done) {
  if (names.empty()) {
    done(std::vector<uspace::FileBlob>{});
    return;
  }
  bool bundled = config_.transfer_streams > 0 && connected() &&
                 channel_->feature_enabled(net::kFeatureChunkedXfer) &&
                 channel_->feature_enabled(net::kFeatureBundleXfer);
  if (!bundled) {
    auto shared = std::make_shared<std::vector<std::string>>(std::move(names));
    auto blobs = std::make_shared<std::vector<uspace::FileBlob>>();
    blobs->reserve(shared->size());
    fetch_tree_sequential(token, shared, blobs, std::move(done));
    return;
  }
  ++output_stats_.bundled;
  xfer::BundlePullSpec spec;
  spec.role = xfer::Role::kClientPull;
  spec.token = token;
  spec.names = names;
  auto alive = alive_;
  xfer_manager_.pull_tree(
      transfer_transport(), spec, config_.transfer_options,
      [this, alive, token, names = std::move(names),
       done = std::move(done)](Result<xfer::BundlePullResult> result) mutable {
        if (!result && *alive &&
            result.error().code == ErrorCode::kFailedPrecondition) {
          // Refused mid-flight (server restarted into a bundleless
          // build): per-file retrieval.
          auto shared =
              std::make_shared<std::vector<std::string>>(std::move(names));
          auto blobs = std::make_shared<std::vector<uspace::FileBlob>>();
          blobs->reserve(shared->size());
          fetch_tree_sequential(token, shared, blobs, std::move(done));
          return;
        }
        if (!result)
          done(result.error());
        else
          done(std::move(result.value().blobs));
      });
}

void UnicoreClient::fetch_tree_sequential(
    ajo::JobToken token, std::shared_ptr<std::vector<std::string>> names,
    std::shared_ptr<std::vector<uspace::FileBlob>> blobs,
    std::function<void(Result<std::vector<uspace::FileBlob>>)> done) {
  if (blobs->size() >= names->size()) {
    done(std::move(*blobs));
    return;
  }
  fetch_output(token, (*names)[blobs->size()],
               [this, token, names, blobs,
                done = std::move(done)](Result<uspace::FileBlob> r) mutable {
                 if (!r) {
                   done(r.error());
                   return;
                 }
                 blobs->push_back(std::move(r).value());
                 fetch_tree_sequential(token, names, blobs, std::move(done));
               });
}

void UnicoreClient::fetch_metrics(
    std::function<void(Result<obs::MetricsSnapshot>)> done) {
  call<wire::MetricsCodec>({}, std::move(done));
}

void UnicoreClient::fetch_trace(
    ajo::JobToken token,
    std::function<void(Result<obs::TraceTimeline>)> done) {
  ByteWriter payload;
  payload.u64(token);
  call<wire::TraceCodec>(payload.take(), std::move(done));
}

void UnicoreClient::inspect_journal(
    std::function<void(Result<JournalInfo>)> done) {
  call<wire::JournalInspectCodec>({}, std::move(done));
}

void UnicoreClient::wait_for_completion(
    ajo::JobToken token, sim::Time interval,
    std::function<void(Result<ajo::Outcome>)> done) {
  query(token, ajo::QueryService::Detail::kTasks,
        [this, token, interval, done = std::move(done)](
            Result<ajo::Outcome> outcome) {
          if (!outcome) {
            done(outcome.error());
            return;
          }
          if (ajo::is_terminal(outcome.value().status)) {
            done(std::move(outcome));
            return;
          }
          engine_.after(interval, [this, token, interval, done] {
            wait_for_completion(token, interval, done);
          });
        });
}

// ---- portal sessions (docs/PORTAL.md) --------------------------------------

void UnicoreClient::open_session(
    std::int64_t requested_ttl_seconds,
    std::function<void(Result<SessionGrant>)> done) {
  ByteWriter payload;
  payload.i64(requested_ttl_seconds);
  // Deliberately sent plain even when a token is already adopted: the
  // gateway mints sessions only for the channel's peer certificate.
  Bytes previous = std::move(session_token_);
  session_token_.clear();
  call<wire::SessionOpenCodec>(
      payload.take(),
      [this, previous = std::move(previous),
       done = std::move(done)](Result<SessionGrant> grant) mutable {
        if (grant)
          session_token_ = grant.value().token;
        else
          session_token_ = std::move(previous);  // keep what we had
        done(std::move(grant));
      });
}

void UnicoreClient::refresh_session(
    std::function<void(Result<SessionGrant>)> done) {
  if (!has_session()) {
    done(util::make_error(ErrorCode::kFailedPrecondition,
                          "no session to refresh"));
    return;
  }
  call<wire::SessionRefreshCodec>({}, std::move(done));
}

void UnicoreClient::close_session(std::function<void(Status)> done) {
  if (!has_session()) {
    done(util::make_error(ErrorCode::kFailedPrecondition,
                          "no session to close"));
    return;
  }
  call<wire::SessionCloseCodec>(
      {}, [this, done = std::move(done)](Result<Ack> reply) {
        // The local token is dropped either way — a server that already
        // expired the session leaves the client in the same logged-out
        // state an explicit close does.
        session_token_.clear();
        if (!reply)
          done(reply.error());
        else
          done(Status::ok_status());
      });
}

// ---- managed job storages --------------------------------------------------

void UnicoreClient::list_storages(
    std::function<void(Result<std::vector<StorageEntry>>)> done) {
  call<wire::StorageListCodec>({}, std::move(done));
}

void UnicoreClient::storage_files(
    ajo::JobToken token,
    std::function<void(Result<std::vector<std::string>>)> done) {
  ByteWriter payload;
  payload.u64(token);
  call<wire::StorageFilesCodec>(payload.take(), std::move(done));
}

void UnicoreClient::reap_storage(
    ajo::JobToken token, std::function<void(Result<std::uint64_t>)> done) {
  ByteWriter payload;
  payload.u64(token);
  call<wire::StorageReapCodec>(payload.take(), std::move(done));
}

// ---- the promise surface ---------------------------------------------------
// Thin adapters: each starts the callback operation and settles a
// promise from its completion.

namespace {

/// Converts a Status completion into a Future<Ack> settlement.
std::function<void(Status)> settle_ack(const Promise<Ack>& promise) {
  return [promise](Status status) {
    if (status.ok())
      promise.set(Ack{});
    else
      promise.set(status.error());
  };
}

}  // namespace

Future<Ack> UnicoreClient::connect(net::Address usite) {
  Promise<Ack> promise;
  connect(usite, settle_ack(promise));
  return promise.future();
}

Future<ajo::JobToken> UnicoreClient::submit(const ajo::AbstractJobObject& job) {
  Promise<ajo::JobToken> promise;
  submit(job, [promise](Result<ajo::JobToken> r) { promise.set(std::move(r)); });
  return promise.future();
}

Future<ajo::Outcome> UnicoreClient::query(ajo::JobToken token,
                                          ajo::QueryService::Detail detail) {
  Promise<ajo::Outcome> promise;
  query(token, detail,
        [promise](Result<ajo::Outcome> r) { promise.set(std::move(r)); });
  return promise.future();
}

Future<std::vector<JobEntry>> UnicoreClient::list() {
  Promise<std::vector<JobEntry>> promise;
  list([promise](Result<std::vector<JobEntry>> r) {
    promise.set(std::move(r));
  });
  return promise.future();
}

Future<Ack> UnicoreClient::control(ajo::JobToken token,
                                   ajo::ControlService::Command command) {
  Promise<Ack> promise;
  control(token, command, settle_ack(promise));
  return promise.future();
}

Future<uspace::FileBlob> UnicoreClient::fetch_output(ajo::JobToken token,
                                                     const std::string& name) {
  Promise<uspace::FileBlob> promise;
  fetch_output(token, name, [promise](Result<uspace::FileBlob> r) {
    promise.set(std::move(r));
  });
  return promise.future();
}

Future<xfer::BundleStats> UnicoreClient::push_tree(
    ajo::JobToken token,
    std::vector<std::pair<std::string, uspace::FileBlob>> files) {
  Promise<xfer::BundleStats> promise;
  push_tree(token, std::move(files), [promise](Result<xfer::BundleStats> r) {
    promise.set(std::move(r));
  });
  return promise.future();
}

Future<std::vector<uspace::FileBlob>> UnicoreClient::fetch_tree(
    ajo::JobToken token, std::vector<std::string> names) {
  Promise<std::vector<uspace::FileBlob>> promise;
  fetch_tree(token, std::move(names),
             [promise](Result<std::vector<uspace::FileBlob>> r) {
               promise.set(std::move(r));
             });
  return promise.future();
}

Future<ajo::Outcome> UnicoreClient::wait_for_completion(ajo::JobToken token,
                                                        sim::Time interval) {
  Promise<ajo::Outcome> promise;
  wait_for_completion(token, interval, [promise](Result<ajo::Outcome> r) {
    promise.set(std::move(r));
  });
  return promise.future();
}

Future<SessionGrant> UnicoreClient::open_session(
    std::int64_t requested_ttl_seconds) {
  Promise<SessionGrant> promise;
  open_session(requested_ttl_seconds, [promise](Result<SessionGrant> r) {
    promise.set(std::move(r));
  });
  return promise.future();
}

Future<SessionGrant> UnicoreClient::refresh_session() {
  Promise<SessionGrant> promise;
  refresh_session(
      [promise](Result<SessionGrant> r) { promise.set(std::move(r)); });
  return promise.future();
}

Future<Ack> UnicoreClient::close_session() {
  Promise<Ack> promise;
  close_session(settle_ack(promise));
  return promise.future();
}

Future<std::vector<StorageEntry>> UnicoreClient::list_storages() {
  Promise<std::vector<StorageEntry>> promise;
  list_storages([promise](Result<std::vector<StorageEntry>> r) {
    promise.set(std::move(r));
  });
  return promise.future();
}

Future<std::vector<std::string>> UnicoreClient::storage_files(
    ajo::JobToken token) {
  Promise<std::vector<std::string>> promise;
  storage_files(token, [promise](Result<std::vector<std::string>> r) {
    promise.set(std::move(r));
  });
  return promise.future();
}

Future<std::uint64_t> UnicoreClient::reap_storage(ajo::JobToken token) {
  Promise<std::uint64_t> promise;
  reap_storage(token, [promise](Result<std::uint64_t> r) {
    promise.set(std::move(r));
  });
  return promise.future();
}

}  // namespace unicore::client
