// Blocking facade over UnicoreClient for tests and examples: each call
// starts the operation through the promise surface and steps the
// simulation engine until the future settles, turning the asynchronous
// protocol into plain return values. Only usable from code that owns
// the engine loop — i.e. drivers, never from inside an event handler.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "client/client.h"
#include "client/future.h"
#include "client/workflow.h"
#include "sim/engine.h"

namespace unicore::client {

class SyncClient {
 public:
  SyncClient(sim::Engine& engine, UnicoreClient& client)
      : engine_(engine), client_(client) {}

  /// Pumps the engine until `future` settles, then returns its result —
  /// the bridge from any Future-returning call (UnicoreClient promise
  /// surface, WorkflowManager::one_run) to straight-line driver code.
  template <typename T>
  util::Result<T> wait(Future<T> future) {
    while (!future.ready() && engine_.step()) {
    }
    if (!future.ready())
      return util::make_error(util::ErrorCode::kInternal,
                              "event queue drained before the reply");
    return future.result();
  }

  util::Status connect(net::Address usite);

  util::Result<crypto::SoftwareBundle> fetch_bundle(const std::string& name);
  util::Result<std::vector<resources::ResourcePage>> fetch_resource_pages();
  util::Result<ajo::JobToken> submit(const ajo::AbstractJobObject& job);
  util::Result<ajo::JobToken> submit_with_retry(
      const ajo::AbstractJobObject& job, int attempts);
  util::Result<ajo::Outcome> query(ajo::JobToken token,
                                   ajo::QueryService::Detail detail);
  util::Result<std::vector<JobEntry>> list();
  util::Status control(ajo::JobToken token,
                       ajo::ControlService::Command command);
  util::Result<uspace::FileBlob> fetch_output(ajo::JobToken token,
                                              const std::string& name);
  /// Polls until the job is terminal, then returns its outcome.
  util::Result<ajo::Outcome> wait_for_completion(ajo::JobToken token,
                                                 sim::Time interval);
  util::Result<obs::MetricsSnapshot> fetch_metrics();
  util::Result<obs::TraceTimeline> fetch_trace(ajo::JobToken token);
  util::Result<JournalInfo> inspect_journal();

  // --- portal sessions & managed storages (docs/PORTAL.md) -------------
  util::Result<SessionGrant> open_session(std::int64_t requested_ttl = 0);
  util::Result<SessionGrant> refresh_session();
  util::Status close_session();
  util::Result<std::vector<StorageEntry>> list_storages();
  util::Result<std::vector<std::string>> storage_files(ajo::JobToken token);
  util::Result<std::uint64_t> reap_storage(ajo::JobToken token);

  /// Compiles, consigns, and waits for a whole workflow (see
  /// WorkflowManager::one_run).
  util::Result<WorkflowRun> one_run(const std::vector<WorkflowStep>& steps,
                                    const WorkflowParameters& parameters,
                                    WorkflowManager::Options options = {});
  util::Result<WorkflowRun> one_run(
      const std::vector<std::string>& command_lines,
      const WorkflowParameters& parameters,
      WorkflowManager::Options options = {});

  UnicoreClient& async() { return client_; }

 private:
  /// Starts an async operation and pumps the engine until its callback
  /// fires. `start` receives the completion callback to pass on. Used
  /// for the few operations without a Future overload.
  template <typename T, typename Start>
  util::Result<T> await(Start&& start) {
    std::optional<util::Result<T>> result;
    start([&result](util::Result<T> r) { result = std::move(r); });
    while (!result.has_value() && engine_.step()) {
    }
    if (!result.has_value())
      return util::make_error(util::ErrorCode::kInternal,
                              "event queue drained before the reply");
    return std::move(*result);
  }

  sim::Engine& engine_;
  UnicoreClient& client_;
};

}  // namespace unicore::client
