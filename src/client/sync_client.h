// Blocking facade over UnicoreClient for tests and examples: each call
// issues the asynchronous request and steps the simulation engine until
// the reply (or timeout) arrives, turning the callback protocol into
// plain return values. Only usable from code that owns the engine loop —
// i.e. drivers, never from inside an event handler.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "client/client.h"
#include "sim/engine.h"

namespace unicore::client {

class SyncClient {
 public:
  SyncClient(sim::Engine& engine, UnicoreClient& client)
      : engine_(engine), client_(client) {}

  util::Status connect(net::Address usite);

  util::Result<crypto::SoftwareBundle> fetch_bundle(const std::string& name);
  util::Result<std::vector<resources::ResourcePage>> fetch_resource_pages();
  util::Result<ajo::JobToken> submit(const ajo::AbstractJobObject& job);
  util::Result<ajo::JobToken> submit_with_retry(
      const ajo::AbstractJobObject& job, int attempts);
  util::Result<ajo::Outcome> query(ajo::JobToken token,
                                   ajo::QueryService::Detail detail);
  util::Result<std::vector<JobEntry>> list();
  util::Status control(ajo::JobToken token,
                       ajo::ControlService::Command command);
  util::Result<uspace::FileBlob> fetch_output(ajo::JobToken token,
                                              const std::string& name);
  /// Polls until the job is terminal, then returns its outcome.
  util::Result<ajo::Outcome> wait_for_completion(ajo::JobToken token,
                                                 sim::Time interval);
  util::Result<obs::MetricsSnapshot> fetch_metrics();
  util::Result<obs::TraceTimeline> fetch_trace(ajo::JobToken token);
  util::Result<JournalInfo> inspect_journal();

  UnicoreClient& async() { return client_; }

 private:
  /// Starts an async operation and pumps the engine until its callback
  /// fires. `start` receives the completion callback to pass on.
  template <typename T, typename Start>
  util::Result<T> await(Start&& start) {
    std::optional<util::Result<T>> result;
    start([&result](util::Result<T> r) { result = std::move(r); });
    while (!result.has_value() && engine_.step()) {
    }
    if (!result.has_value())
      return util::make_error(util::ErrorCode::kInternal,
                              "event queue drained before the reply");
    return std::move(*result);
  }

  sim::Engine& engine_;
  UnicoreClient& client_;
};

}  // namespace unicore::client
