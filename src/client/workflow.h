// WorkflowManager — the portal convenience layer over UnicoreClient's
// promise surface, modelled on the PyUnicoreManager wrapper around
// PyUNICORE: one_run() takes a list of steps, compiles them into an AJO
// DAG, consigns it (over a gateway session token by default), waits for
// completion, and hands back the per-step stdout/stderr — one call
// instead of a hand-written submit/poll/fetch chain.
//
// Every submission owns a managed working storage at the Usite; with
// Options::clean_job_storages the manager reaps it after collecting the
// results, the way the Python manager "would check if the jobs storage
// list is full, in that case would clean it up".
#pragma once

#include <map>
#include <string>
#include <vector>

#include "ajo/job.h"
#include "ajo/outcome.h"
#include "client/client.h"
#include "client/future.h"
#include "resources/resource_set.h"
#include "util/result.h"

namespace unicore::client {

/// One node of the workflow DAG: a script plus the names of the steps
/// it must run after. Steps with an empty `after` start immediately.
struct WorkflowStep {
  std::string name;
  std::string script;              // shell text; runs as ExecuteScriptTask
  std::vector<std::string> after;  // predecessor step names
  /// Uspace files the predecessors must hand to this step (§5.7 file
  /// carriage; applied to every `after` edge).
  std::vector<std::string> files;
  resources::ResourceSet resources;   // §5.4 resource request
  ajo::TaskBehavior behavior;         // simulated runtime / output
};

/// Per-run knobs — the `parameters` argument of one_run.
struct WorkflowParameters {
  std::string job_name = "workflow";
  std::string usite;   // destination UNICORE site
  std::string vsite;   // destination virtual site
  std::string account_group;
  sim::Time poll_interval = sim::sec(5);
};

/// Result of one finished step, lifted out of the outcome tree.
struct StepResult {
  ajo::ActionStatus status = ajo::ActionStatus::kPending;
  std::int32_t exit_code = 0;
  std::string stdout_text;
  std::string stderr_text;
};

/// What one_run resolves to: the consigned job's token (the handle for
/// later fetch_output / storage calls), the full outcome tree, and the
/// per-step results keyed by step name. With wait=false only `token`
/// is populated.
struct WorkflowRun {
  ajo::JobToken token = 0;
  ajo::Outcome outcome;
  std::map<std::string, StepResult> steps;
  bool storage_reaped = false;  // Options::clean_job_storages did run
};

/// Manager-wide knobs (the PyUnicoreManager constructor flags).
struct WorkflowOptions {
  /// Open a gateway session before the first consign and ride the
  /// token envelope (docs/PORTAL.md); false keeps signed-AJO
  /// certificate consigns.
  bool use_session = true;
  /// Requested session TTL in seconds; 0 accepts the broker default.
  std::int64_t session_ttl = 0;
  /// Reap the job's working storage once the results are collected.
  bool clean_job_storages = false;
};

class WorkflowManager {
 public:
  using Options = WorkflowOptions;

  explicit WorkflowManager(UnicoreClient& client, Options options = {});

  /// Compiles `steps` into an AJO DAG, consigns it, and — with wait —
  /// polls until terminal and collects per-step results. The client
  /// must already be connected.
  Future<WorkflowRun> one_run(const std::vector<WorkflowStep>& steps,
                              const WorkflowParameters& parameters,
                              bool wait = true);

  /// The PyUnicoreManager shorthand: a plain list of command lines,
  /// run as a sequential chain (each line one step, ordered).
  Future<WorkflowRun> one_run(const std::vector<std::string>& command_lines,
                              const WorkflowParameters& parameters,
                              bool wait = true);

  /// The DAG compiler alone (what one_run consigns); exposed so tests
  /// can check the graph without a server.
  util::Result<ajo::AbstractJobObject> compile(
      const std::vector<WorkflowStep>& steps,
      const WorkflowParameters& parameters) const;

  UnicoreClient& client() { return client_; }
  const Options& options() const { return options_; }

 private:
  UnicoreClient& client_;
  Options options_;
};

}  // namespace unicore::client
