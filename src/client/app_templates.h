// Application-specific interfaces — the first §6 enhancement:
//
// "Application specific interfaces for standard packages like Ansys or
//  Pamcrash will make life easier especially for users from industry."
//
// An ApplicationTemplate describes how a named package runs (command
// line, default resources, a runtime model); the ApplicationLauncher
// matches templates against the §5.4 resource pages (which list the
// installed packages) and assembles a complete UNICORE job from
// application-level inputs — the WebSubmit-style experience of §2,
// built on top of the JPA.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "ajo/job.h"
#include "client/job_builder.h"
#include "resources/resource_page.h"
#include "util/result.h"

namespace unicore::client {

/// How one packaged application runs on a UNICORE site.
struct ApplicationTemplate {
  std::string package;          // catalogue name, e.g. "Gaussian"
  std::string min_version;      // informational; empty = any
  /// Command template; "%input%" and "%output%" are substituted.
  std::string command_template;
  resources::ResourceSet default_resources;
  /// Simple runtime model: seconds of nominal compute per MB of input.
  double nominal_seconds_per_input_mb = 60.0;
};

/// Built-in templates for the packages the paper names.
ApplicationTemplate gaussian94_template();
ApplicationTemplate pamcrash_template();
ApplicationTemplate ansys_template();

/// Application-level job parameters: what an industry user fills into
/// the package's form — no machine names, no batch nomenclature.
struct ApplicationJobRequest {
  std::string package;
  util::Bytes input;             // travels inside the AJO (§5.6)
  std::string input_name = "input.dat";
  std::string output_name = "output.dat";
  /// Optional overrides of the template defaults.
  std::optional<resources::ResourceSet> resources;
  std::string account_group;
};

class ApplicationLauncher {
 public:
  /// `pages` is the site catalogue the JPA downloaded.
  explicit ApplicationLauncher(std::vector<resources::ResourcePage> pages);

  void register_template(ApplicationTemplate application);
  const ApplicationTemplate* find_template(const std::string& package) const;
  std::vector<std::string> packages() const;

  /// Resource pages whose software catalogue carries `package`.
  std::vector<const resources::ResourcePage*> sites_offering(
      const std::string& package) const;

  /// Builds a ready-to-submit UNICORE job for `request`, destined for
  /// the first (or a named) site offering the package: import the
  /// input, run the package command, export nothing (the output stays
  /// in the Uspace for JMC retrieval).
  util::Result<ajo::AbstractJobObject> make_job(
      const ApplicationJobRequest& request,
      const crypto::DistinguishedName& user,
      const std::string& preferred_vsite = "") const;

 private:
  std::vector<resources::ResourcePage> pages_;
  std::map<std::string, ApplicationTemplate> templates_;
};

}  // namespace unicore::client
