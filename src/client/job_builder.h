// The job-preparation half of the JPA (§4.1/§5.7): assembles a
// hierarchically structured UNICORE job — tasks, sub-jobs for other
// destination systems, dependencies with file carriage — and checks it
// against the destination's resource pages before submission, exactly
// the assistance the GUI gives the user ("resource information ...
// provided together with the applet to the user to support him/her in
// generating jobs suitable for the destination system", §4.2).
#pragma once

#include <string>
#include <vector>

#include "ajo/job.h"
#include "ajo/services.h"
#include "ajo/tasks.h"
#include "resources/resource_page.h"
#include "util/result.h"

namespace unicore::client {

/// Per-task knobs: the §5.4 resource request plus the simulated
/// behaviour (see DESIGN.md §2).
struct TaskOptions {
  resources::ResourceSet resources;
  ajo::TaskBehavior behavior;
};

class JobBuilder {
 public:
  explicit JobBuilder(std::string job_name);

  JobBuilder& destination(std::string usite, std::string vsite);
  JobBuilder& account_group(std::string group);
  JobBuilder& site_security_info(std::string info);

  // --- data staging ---------------------------------------------------
  /// Stages a file from the user's workstation; its bytes travel inside
  /// the AJO (§5.6).
  ajo::ActionId import_from_workstation(const std::string& uspace_name,
                                        util::Bytes content,
                                        std::string task_name = "");
  ajo::ActionId import_from_xspace(const std::string& volume,
                                   const std::string& path,
                                   const std::string& uspace_name,
                                   std::string task_name = "");
  ajo::ActionId export_to_xspace(const std::string& uspace_name,
                                 const std::string& volume,
                                 const std::string& path,
                                 std::string task_name = "");
  /// Moves a Uspace file to the Uspace of a sub-job (possibly remote).
  ajo::ActionId transfer_to_subjob(const std::string& uspace_name,
                                   ajo::ActionId target_subjob,
                                   std::string rename_to = "",
                                   std::string task_name = "");

  // --- compute tasks ----------------------------------------------------
  ajo::ActionId compile(std::string task_name, const std::string& source,
                        const std::string& object,
                        const TaskOptions& options = {},
                        std::vector<std::string> flags = {});
  ajo::ActionId link(std::string task_name,
                     std::vector<std::string> objects,
                     const std::string& executable,
                     const TaskOptions& options = {},
                     std::vector<std::string> libraries = {});
  ajo::ActionId run(std::string task_name, const std::string& executable,
                    const TaskOptions& options = {},
                    std::vector<std::string> arguments = {});
  ajo::ActionId script(std::string task_name, std::string script_text,
                       const TaskOptions& options = {});

  // --- structure -------------------------------------------------------
  /// Adds a sub-job built separately (a job group for another — possibly
  /// remote — destination system).
  ajo::ActionId add_subjob(ajo::AbstractJobObject subjob);

  /// Sequential dependency; `files` names the Uspace data sets UNICORE
  /// must guarantee the successor sees (§5.7).
  JobBuilder& after(ajo::ActionId predecessor, ajo::ActionId successor,
                    std::vector<std::string> files = {});

  /// Finalises the job for `user`. Runs AbstractJobObject::validate().
  util::Result<ajo::AbstractJobObject> build(
      const crypto::DistinguishedName& user) const;

  /// Like build(), but additionally checks every task's resource request
  /// and software needs against the destination's resource page — what
  /// the JPA GUI does as the user types.
  util::Result<ajo::AbstractJobObject> build_checked(
      const crypto::DistinguishedName& user,
      const std::vector<resources::ResourcePage>& pages) const;

 private:
  ajo::AbstractJobObject job_;
};

}  // namespace unicore::client
