#include "client/job_store.h"

#include <fstream>

#include "ajo/codec.h"

namespace unicore::client {

using util::Bytes;
using util::ByteView;
using util::ErrorCode;
using util::Result;
using util::Status;

namespace {
constexpr char kMagic[] = "UNICOREJOB";
constexpr std::uint32_t kVersion = 1;
}  // namespace

Bytes serialize_job(const ajo::AbstractJobObject& job) {
  util::ByteWriter w;
  w.str(kMagic);
  w.u32(kVersion);
  w.blob(ajo::encode_action(job));
  return w.take();
}

Result<ajo::AbstractJobObject> deserialize_job(ByteView image) {
  try {
    util::ByteReader r(image);
    if (r.str() != kMagic)
      return util::make_error(ErrorCode::kInvalidArgument,
                              "not a UNICORE job file");
    std::uint32_t version = r.u32();
    if (version != kVersion)
      return util::make_error(ErrorCode::kInvalidArgument,
                              "unsupported job file version " +
                                  std::to_string(version));
    Bytes wire = r.blob();
    auto action = ajo::decode_action(wire);
    if (!action) return action.error();
    if (!action.value()->is_job())
      return util::make_error(ErrorCode::kInvalidArgument,
                              "job file root is not a job object");
    return std::move(static_cast<ajo::AbstractJobObject&>(*action.value()));
  } catch (const std::out_of_range&) {
    return util::make_error(ErrorCode::kInvalidArgument,
                            "truncated job file");
  }
}

Status save_job(const std::string& path, const ajo::AbstractJobObject& job) {
  Bytes image = serialize_job(job);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out)
    return util::make_error(ErrorCode::kInternal, "cannot open " + path);
  out.write(reinterpret_cast<const char*>(image.data()),
            static_cast<std::streamsize>(image.size()));
  if (!out)
    return util::make_error(ErrorCode::kInternal, "write failed: " + path);
  return Status::ok_status();
}

Result<ajo::AbstractJobObject> load_job(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in)
    return util::make_error(ErrorCode::kNotFound, "cannot open " + path);
  Bytes image((std::istreambuf_iterator<char>(in)),
              std::istreambuf_iterator<char>());
  return deserialize_job(image);
}

}  // namespace unicore::client
