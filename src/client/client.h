// The user-level tier (§4.1): the client a user's workstation runs.
//
// Connecting mirrors the paper's flow: an https-like mutually
// authenticated channel to the Usite server (the SSL handshake
// validates the server certificate, then presents the user's), followed
// by download and signature verification of the current JPA/JMC
// software bundle ("the users always work with the latest version of
// the software", §4.1). JPA operations prepare and consign jobs; JMC
// operations monitor, control, and retrieve output — by polling, as in
// the paper ("the current implementation sends data back to the
// workstation only on user request while the user is working with the
// JMC", §5.6).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "ajo/job.h"
#include "ajo/outcome.h"
#include "ajo/services.h"
#include "client/future.h"
#include "crypto/bundle.h"
#include "crypto/x509.h"
#include "net/network.h"
#include "net/secure_channel.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "resources/resource_page.h"
#include "server/protocol.h"
#include "server/xfer_transport.h"
#include "uspace/blob.h"
#include "util/result.h"
#include "util/retry.h"
#include "xfer/transfer.h"

namespace unicore::client {

/// One row of the JMC job list.
struct JobEntry {
  ajo::JobToken token = 0;
  std::string name;
  ajo::ActionStatus status = ajo::ActionStatus::kPending;
  sim::Time consigned_at = 0;
};

/// Reply of kJournalInspect: recovery diagnostics of the Usite's NJS.
struct JournalInfo {
  bool has_journal = false;
  std::uint64_t records = 0;
  std::uint64_t recoveries = 0;
  std::uint64_t consigns_deduped = 0;
  std::uint64_t batch_retries = 0;
};

/// Reply type of request kinds whose success carries no payload.
struct Ack {};

/// A gateway-issued portal session (docs/PORTAL.md): the bearer token
/// maps back to the certificate identity it was minted for, so requests
/// carrying it skip the per-request certificate work and may share a
/// pooled channel with other users' sessions.
struct SessionGrant {
  util::Bytes token;
  std::int64_t expires_at = 0;  // epoch seconds; refresh extends it
  std::string login;            // the UUDB login the identity maps to
};

/// One row of the managed-job-storage listing: the named uspace working
/// storage a submission created (docs/PORTAL.md).
struct StorageEntry {
  ajo::JobToken token = 0;
  std::string name;
  std::uint64_t used_bytes = 0;
  std::uint64_t quota_bytes = 0;
  std::size_t files = 0;
  bool terminal = false;  // job finished — storage is reapable
  bool reaped = false;
  sim::Time consigned_at = 0;
};

/// Per-request codec traits: each RequestKind the client speaks is one
/// struct binding the kind, its reply type, and the reply decoder. The
/// generic UnicoreClient::call<Codec>() template supplies everything
/// else (request-id bookkeeping, timeout, error replies, malformed-reply
/// handling), so adding a request kind is one codec + one thin wrapper.
namespace wire {

struct ConsignCodec {
  using Reply = ajo::JobToken;
  static constexpr server::RequestKind kKind = server::RequestKind::kConsign;
  static constexpr const char* kName = "consign";
  static Reply decode(util::ByteReader& r) { return ajo::JobToken{r.u64()}; }
};

struct QueryCodec {
  using Reply = ajo::Outcome;
  static constexpr server::RequestKind kKind = server::RequestKind::kQuery;
  static constexpr const char* kName = "query";
  static util::Result<Reply> decode(util::ByteReader& r) {
    return ajo::Outcome::decode(r);
  }
};

struct ListCodec {
  using Reply = std::vector<JobEntry>;
  static constexpr server::RequestKind kKind = server::RequestKind::kList;
  static constexpr const char* kName = "list";
  static Reply decode(util::ByteReader& r) {
    std::uint64_t count = r.varint();
    Reply entries;
    entries.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) {
      JobEntry entry;
      entry.token = r.u64();
      entry.name = r.str();
      entry.status = static_cast<ajo::ActionStatus>(r.u8());
      entry.consigned_at = r.i64();
      entries.push_back(std::move(entry));
    }
    return entries;
  }
};

struct ControlCodec {
  using Reply = Ack;
  static constexpr server::RequestKind kKind = server::RequestKind::kControl;
  static constexpr const char* kName = "control";
  static Reply decode(util::ByteReader&) { return {}; }
};

struct FetchOutputCodec {
  using Reply = uspace::FileBlob;
  static constexpr server::RequestKind kKind =
      server::RequestKind::kFetchOutput;
  static constexpr const char* kName = "output";
  static Reply decode(util::ByteReader& r) {
    return uspace::FileBlob::decode(r);
  }
};

struct ResourcePagesCodec {
  using Reply = std::vector<resources::ResourcePage>;
  static constexpr server::RequestKind kKind =
      server::RequestKind::kResourcePages;
  static constexpr const char* kName = "resource page";
  static util::Result<Reply> decode(util::ByteReader& r) {
    std::uint64_t count = r.varint();
    Reply pages;
    pages.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) {
      util::Bytes der = r.blob();
      auto page = resources::ResourcePage::decode(der);
      if (!page) return page.error();
      pages.push_back(std::move(page.value()));
    }
    return pages;
  }
};

struct BundleCodec {
  using Reply = crypto::SoftwareBundle;
  static constexpr server::RequestKind kKind = server::RequestKind::kGetBundle;
  static constexpr const char* kName = "bundle";
  static util::Result<Reply> decode(util::ByteReader& r) {
    return crypto::SoftwareBundle::decode(r.raw(r.remaining()));
  }
};

struct MetricsCodec {
  using Reply = obs::MetricsSnapshot;
  static constexpr server::RequestKind kKind =
      server::RequestKind::kMonitorMetrics;
  static constexpr const char* kName = "metrics";
  static util::Result<Reply> decode(util::ByteReader& r) {
    return obs::MetricsSnapshot::decode(r);
  }
};

struct TraceCodec {
  using Reply = obs::TraceTimeline;
  static constexpr server::RequestKind kKind =
      server::RequestKind::kMonitorTrace;
  static constexpr const char* kName = "trace";
  static util::Result<Reply> decode(util::ByteReader& r) {
    return obs::TraceTimeline::decode(r);
  }
};

struct JournalInspectCodec {
  using Reply = JournalInfo;
  static constexpr server::RequestKind kKind =
      server::RequestKind::kJournalInspect;
  static constexpr const char* kName = "journal";
  static Reply decode(util::ByteReader& r) {
    JournalInfo info;
    info.has_journal = r.u8() != 0;
    info.records = r.varint();
    info.recoveries = r.u64();
    info.consigns_deduped = r.u64();
    info.batch_retries = r.u64();
    return info;
  }
};

/// Session-open and -refresh share one reply shape: the grant.
inline SessionGrant decode_session_grant(util::ByteReader& r) {
  SessionGrant grant;
  grant.token = r.blob();
  grant.expires_at = r.i64();
  grant.login = r.str();
  return grant;
}

struct SessionOpenCodec {
  using Reply = SessionGrant;
  static constexpr server::RequestKind kKind =
      server::RequestKind::kSessionOpen;
  static constexpr const char* kName = "session-open";
  static Reply decode(util::ByteReader& r) {
    return decode_session_grant(r);
  }
};

struct SessionRefreshCodec {
  using Reply = SessionGrant;
  static constexpr server::RequestKind kKind =
      server::RequestKind::kSessionRefresh;
  static constexpr const char* kName = "session-refresh";
  static Reply decode(util::ByteReader& r) {
    return decode_session_grant(r);
  }
};

struct SessionCloseCodec {
  using Reply = Ack;
  static constexpr server::RequestKind kKind =
      server::RequestKind::kSessionClose;
  static constexpr const char* kName = "session-close";
  static Reply decode(util::ByteReader&) { return {}; }
};

struct StorageListCodec {
  using Reply = std::vector<StorageEntry>;
  static constexpr server::RequestKind kKind =
      server::RequestKind::kStorageList;
  static constexpr const char* kName = "storage-list";
  static Reply decode(util::ByteReader& r) {
    std::uint64_t count = r.varint();
    Reply storages;
    storages.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) {
      StorageEntry entry;
      entry.token = r.u64();
      entry.name = r.str();
      entry.used_bytes = r.u64();
      entry.quota_bytes = r.u64();
      entry.files = r.varint();
      entry.terminal = r.u8() != 0;
      entry.reaped = r.u8() != 0;
      entry.consigned_at = r.i64();
      storages.push_back(std::move(entry));
    }
    return storages;
  }
};

struct StorageFilesCodec {
  using Reply = std::vector<std::string>;
  static constexpr server::RequestKind kKind =
      server::RequestKind::kStorageFiles;
  static constexpr const char* kName = "storage-files";
  static Reply decode(util::ByteReader& r) {
    std::uint64_t count = r.varint();
    Reply names;
    names.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) names.push_back(r.str());
    return names;
  }
};

struct StorageReapCodec {
  using Reply = std::uint64_t;  // bytes freed
  static constexpr server::RequestKind kKind =
      server::RequestKind::kStorageReap;
  static constexpr const char* kName = "storage-reap";
  static Reply decode(util::ByteReader& r) { return r.u64(); }
};

}  // namespace wire

class UnicoreClient {
 public:
  struct Config {
    std::string host;  // the user's workstation host name
    crypto::Credential user;
    const crypto::TrustStore* trust = nullptr;
    /// Per-request timeout; a lost message surfaces as kTimeout and the
    /// caller decides whether to retry (the asynchronous high-level
    /// protocol of §5.3).
    sim::Time request_timeout = sim::sec(60);
    /// Backoff between submit_with_retry attempts.
    util::BackoffPolicy retry_backoff;
    /// Channel protocol version and feature bits offered in the hello
    /// (see PROTOCOL.md); lower them to emulate a legacy client.
    std::uint8_t protocol_version = net::kProtocolVersion;
    std::uint64_t channel_features = net::kDefaultFeatures;
    /// Streams for chunked output retrieval (stream 0 rides the main
    /// channel; the rest are extra rails). 0 disables the chunked
    /// engine and every fetch_output uses the whole-blob request.
    std::size_t transfer_streams = 4;
    /// Sender-side tuning of chunked pulls (window, inline limit, ...).
    xfer::TransferOptions transfer_options;
  };

  UnicoreClient(sim::Engine& engine, net::Network& network, util::Rng& rng,
                Config config);
  ~UnicoreClient();

  UnicoreClient(const UnicoreClient&) = delete;
  UnicoreClient& operator=(const UnicoreClient&) = delete;

  // --- connection -----------------------------------------------------
  void connect(net::Address usite, std::function<void(util::Status)> done);
  /// connect() across a replica ring (UsiteServer::route_addresses):
  /// tries each address in order, skipping dead listeners and failed
  /// handshakes, and succeeds on the first replica that answers. Fails
  /// with the last error when every address is dead.
  void connect_any(std::vector<net::Address> addresses,
                   std::function<void(util::Status)> done);
  bool connected() const;
  void disconnect();

  const crypto::Credential& user() const { return config_.user; }

  // --- software bundle ("applet") --------------------------------------
  /// Downloads a named bundle and verifies its code signature against
  /// the trust store before returning it.
  void fetch_bundle(
      const std::string& name,
      std::function<void(util::Result<crypto::SoftwareBundle>)> done);

  // --- JPA --------------------------------------------------------------
  void fetch_resource_pages(
      std::function<void(util::Result<std::vector<resources::ResourcePage>>)>
          done);

  /// Signs `job` with the user credential and consigns it.
  void submit(const ajo::AbstractJobObject& job,
              std::function<void(util::Result<ajo::JobToken>)> done);

  /// submit() with up to `attempts` tries on transport failure
  /// (reconnecting in between) — the retry loop an asynchronous protocol
  /// affords (§5.3).
  void submit_with_retry(const ajo::AbstractJobObject& job, int attempts,
                         std::function<void(util::Result<ajo::JobToken>)>
                             done);

  // --- JMC --------------------------------------------------------------
  void query(ajo::JobToken token, ajo::QueryService::Detail detail,
             std::function<void(util::Result<ajo::Outcome>)> done);
  void list(std::function<void(util::Result<std::vector<JobEntry>>)> done);
  void control(ajo::JobToken token, ajo::ControlService::Command command,
               std::function<void(util::Status)> done);
  void fetch_output(ajo::JobToken token, const std::string& name,
                    std::function<void(util::Result<uspace::FileBlob>)> done);

  // --- bundle staging (docs/DATA.md §3) ---------------------------------
  /// Stages a whole file tree into job `token`'s Uspace. With the
  /// negotiated kFeatureBundleXfer the tree moves as bundles (one
  /// manifest round trip per xfer::kMaxBundleFiles slice); with only
  /// kFeatureChunkedXfer it degrades to one chunked push per file; a v1
  /// server fails kFailedPrecondition (stage files inside the AJO
  /// instead).
  void push_tree(ajo::JobToken token,
                 std::vector<std::pair<std::string, uspace::FileBlob>> files,
                 std::function<void(util::Result<xfer::BundleStats>)> done);
  /// Fetches many outputs of job `token` in request order — bundled
  /// when the server negotiated the feature, sequential fetch_output
  /// otherwise.
  void fetch_tree(
      ajo::JobToken token, std::vector<std::string> names,
      std::function<void(util::Result<std::vector<uspace::FileBlob>>)> done);

  /// Polls query() every `interval` until the job is terminal.
  void wait_for_completion(ajo::JobToken token, sim::Time interval,
                           std::function<void(util::Result<ajo::Outcome>)>
                               done);

  // --- portal sessions (docs/PORTAL.md) ---------------------------------
  /// Asks the gateway for a bearer token bound to this client's
  /// certificate identity. `requested_ttl_seconds` of 0 accepts the
  /// broker default; larger requests are clamped. On success the grant's
  /// token is adopted: every subsequent eligible request rides the
  /// kTokenRequest envelope and submit() consigns unsigned AJOs.
  void open_session(std::int64_t requested_ttl_seconds,
                    std::function<void(util::Result<SessionGrant>)> done);
  /// Extends the adopted session's expiry by one TTL.
  void refresh_session(std::function<void(util::Result<SessionGrant>)> done);
  /// Explicit logout: invalidates the token server-side and drops it.
  void close_session(std::function<void(util::Status)> done);

  /// Adopts a token minted elsewhere (e.g. over another connection —
  /// the portal pattern: many user sessions multiplexed over few pooled
  /// channels). An empty token reverts to certificate authentication.
  void set_session_token(util::Bytes token) {
    session_token_ = std::move(token);
  }
  const util::Bytes& session_token() const { return session_token_; }
  bool has_session() const { return !session_token_.empty(); }

  // --- managed job storages (docs/PORTAL.md) ----------------------------
  /// Lists the caller's per-job working storages at the Usite.
  void list_storages(
      std::function<void(util::Result<std::vector<StorageEntry>>)> done);
  /// Names of the files in one job's storage (sub-job files prefixed).
  void storage_files(
      ajo::JobToken token,
      std::function<void(util::Result<std::vector<std::string>>)> done);
  /// Empties a finished job's storage; resolves to the bytes freed.
  void reap_storage(ajo::JobToken token,
                    std::function<void(util::Result<std::uint64_t>)> done);

  // --- the promise surface ----------------------------------------------
  // Every operation above, returning a Future instead of taking a
  // callback — the building blocks of WorkflowManager and the examples.
  Future<Ack> connect(net::Address usite);
  Future<ajo::JobToken> submit(const ajo::AbstractJobObject& job);
  Future<ajo::Outcome> query(ajo::JobToken token,
                             ajo::QueryService::Detail detail);
  Future<std::vector<JobEntry>> list();
  Future<Ack> control(ajo::JobToken token,
                      ajo::ControlService::Command command);
  Future<uspace::FileBlob> fetch_output(ajo::JobToken token,
                                        const std::string& name);
  Future<xfer::BundleStats> push_tree(
      ajo::JobToken token,
      std::vector<std::pair<std::string, uspace::FileBlob>> files);
  Future<std::vector<uspace::FileBlob>> fetch_tree(
      ajo::JobToken token, std::vector<std::string> names);
  Future<ajo::Outcome> wait_for_completion(ajo::JobToken token,
                                           sim::Time interval);
  Future<SessionGrant> open_session(std::int64_t requested_ttl_seconds = 0);
  Future<SessionGrant> refresh_session();
  Future<Ack> close_session();
  Future<std::vector<StorageEntry>> list_storages();
  Future<std::vector<std::string>> storage_files(ajo::JobToken token);
  Future<std::uint64_t> reap_storage(ajo::JobToken token);

  // --- MonitorService ----------------------------------------------------
  /// Fetches the Usite's current metrics snapshot (gateway, NJS, batch,
  /// and — with a grid-shared registry — network series).
  void fetch_metrics(
      std::function<void(util::Result<obs::MetricsSnapshot>)> done);
  /// Fetches the recorded trace timeline of one of the caller's jobs.
  void fetch_trace(ajo::JobToken token,
                   std::function<void(util::Result<obs::TraceTimeline>)> done);
  /// Fetches the NJS journal / recovery diagnostics. Requires the
  /// kFeatureJournalInspect channel feature (negotiated in the hello
  /// exchange); v1 servers reject the request.
  void inspect_journal(std::function<void(util::Result<JournalInfo>)> done);

  /// Sends one chunked-transfer operation over the *main* channel
  /// (stream 0 of the hybrid transport; extra streams ride XferRails).
  void xfer_call(xfer::Op op, util::Bytes body,
                 std::function<void(util::Result<util::Bytes>)> done);

  // --- diagnostics ---------------------------------------------------------
  std::uint64_t requests_sent() const { return requests_sent_; }
  std::uint64_t requests_failed() const { return requests_failed_; }
  /// Which wire path each fetch_output took: the chunked engine, or the
  /// internal legacy whole-blob fallback (v1 server / chunking off).
  const server::TransferStats& output_stats() const { return output_stats_; }
  /// True when the current channel was established by session
  /// resumption (a reconnect that skipped the public-key handshake).
  bool session_resumed() const {
    return channel_ != nullptr && channel_->resumed();
  }
  /// The client's session cache (main channel and rails share it).
  net::SessionCache& sessions() { return sessions_; }

 private:
  // --- the generic request path (internal) -------------------------------
  /// Sends one request of `Codec`'s kind and decodes the reply with its
  /// codec. All named operations above are thin wrappers around this;
  /// callers outside the client use those (or the promise surface), not
  /// this free-form payload overload.
  template <typename Codec>
  void call(util::Bytes payload,
            std::function<void(util::Result<typename Codec::Reply>)> done) {
    send_request(
        Codec::kKind, std::move(payload),
        [done = std::move(done)](util::Result<util::Bytes> reply) {
          if (!reply) {
            done(reply.error());
            return;
          }
          try {
            util::ByteReader reader{reply.value()};
            done(Codec::decode(reader));
          } catch (const std::out_of_range&) {
            done(util::make_error(
                util::ErrorCode::kInvalidArgument,
                std::string("malformed ") + Codec::kName + " reply"));
          }
        });
  }

  void send_request(server::RequestKind kind, util::Bytes payload,
                    std::function<void(util::Result<util::Bytes>)> on_reply);
  void handle_message(util::Bytes&& wire);
  void fail_all_pending(const util::Error& error);
  std::shared_ptr<xfer::ChunkTransport> transfer_transport();
  void fetch_output_legacy(
      ajo::JobToken token, const std::string& name,
      std::function<void(util::Result<uspace::FileBlob>)> done);
  /// push_tree fallback for chunked-but-bundleless servers: one
  /// kClientPush transfer per file, sequential.
  void push_tree_singles(
      ajo::JobToken token,
      std::shared_ptr<std::vector<std::pair<std::string, uspace::FileBlob>>>
          files,
      std::size_t next, std::shared_ptr<xfer::BundleStats> stats,
      std::function<void(util::Result<xfer::BundleStats>)> done);
  /// fetch_tree fallback: sequential fetch_output (itself chunked or
  /// legacy per file).
  void fetch_tree_sequential(
      ajo::JobToken token, std::shared_ptr<std::vector<std::string>> names,
      std::shared_ptr<std::vector<uspace::FileBlob>> blobs,
      std::function<void(util::Result<std::vector<uspace::FileBlob>>)> done);

  sim::Engine& engine_;
  net::Network& network_;
  util::Rng rng_;
  Config config_;
  net::Address usite_address_;
  std::shared_ptr<net::SecureChannel> channel_;
  net::SessionCache sessions_;
  bool established_ = false;

  struct PendingRequest {
    std::function<void(util::Result<util::Bytes>)> handler;
    sim::EventId timeout = 0;
  };
  std::map<std::uint64_t, PendingRequest> pending_;
  std::uint64_t next_request_id_ = 1;
  std::uint64_t requests_sent_ = 0;
  std::uint64_t requests_failed_ = 0;

  xfer::TransferManager xfer_manager_;
  std::shared_ptr<xfer::ChunkTransport> transport_;
  /// Guards the main-channel leg of in-flight transfers against the
  /// client being destroyed while the engine still runs.
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
  server::TransferStats output_stats_;
  /// The adopted portal session token; empty = certificate auth.
  util::Bytes session_token_;
};

}  // namespace unicore::client
