// The user-level tier (§4.1): the client a user's workstation runs.
//
// Connecting mirrors the paper's flow: an https-like mutually
// authenticated channel to the Usite server (the SSL handshake
// validates the server certificate, then presents the user's), followed
// by download and signature verification of the current JPA/JMC
// software bundle ("the users always work with the latest version of
// the software", §4.1). JPA operations prepare and consign jobs; JMC
// operations monitor, control, and retrieve output — by polling, as in
// the paper ("the current implementation sends data back to the
// workstation only on user request while the user is working with the
// JMC", §5.6).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "ajo/job.h"
#include "ajo/outcome.h"
#include "ajo/services.h"
#include "crypto/bundle.h"
#include "crypto/x509.h"
#include "net/network.h"
#include "net/secure_channel.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "resources/resource_page.h"
#include "server/protocol.h"
#include "uspace/blob.h"
#include "util/result.h"

namespace unicore::client {

/// One row of the JMC job list.
struct JobEntry {
  ajo::JobToken token = 0;
  std::string name;
  ajo::ActionStatus status = ajo::ActionStatus::kPending;
  sim::Time consigned_at = 0;
};

class UnicoreClient {
 public:
  struct Config {
    std::string host;  // the user's workstation host name
    crypto::Credential user;
    const crypto::TrustStore* trust = nullptr;
    /// Per-request timeout; a lost message surfaces as kUnavailable and
    /// the caller decides whether to retry (the asynchronous high-level
    /// protocol of §5.3).
    sim::Time request_timeout = sim::sec(60);
  };

  UnicoreClient(sim::Engine& engine, net::Network& network, util::Rng& rng,
                Config config);
  ~UnicoreClient();

  UnicoreClient(const UnicoreClient&) = delete;
  UnicoreClient& operator=(const UnicoreClient&) = delete;

  // --- connection -----------------------------------------------------
  void connect(net::Address usite, std::function<void(util::Status)> done);
  bool connected() const;
  void disconnect();

  const crypto::Credential& user() const { return config_.user; }

  // --- software bundle ("applet") --------------------------------------
  /// Downloads a named bundle and verifies its code signature against
  /// the trust store before returning it.
  void fetch_bundle(
      const std::string& name,
      std::function<void(util::Result<crypto::SoftwareBundle>)> done);

  // --- JPA --------------------------------------------------------------
  void fetch_resource_pages(
      std::function<void(util::Result<std::vector<resources::ResourcePage>>)>
          done);

  /// Signs `job` with the user credential and consigns it.
  void submit(const ajo::AbstractJobObject& job,
              std::function<void(util::Result<ajo::JobToken>)> done);

  /// submit() with up to `attempts` tries on transport failure
  /// (reconnecting in between) — the retry loop an asynchronous protocol
  /// affords (§5.3).
  void submit_with_retry(const ajo::AbstractJobObject& job, int attempts,
                         std::function<void(util::Result<ajo::JobToken>)>
                             done);

  // --- JMC --------------------------------------------------------------
  void query(ajo::JobToken token, ajo::QueryService::Detail detail,
             std::function<void(util::Result<ajo::Outcome>)> done);
  void list(std::function<void(util::Result<std::vector<JobEntry>>)> done);
  void control(ajo::JobToken token, ajo::ControlService::Command command,
               std::function<void(util::Status)> done);
  void fetch_output(ajo::JobToken token, const std::string& name,
                    std::function<void(util::Result<uspace::FileBlob>)> done);

  /// Polls query() every `interval` until the job is terminal.
  void wait_for_completion(ajo::JobToken token, sim::Time interval,
                           std::function<void(util::Result<ajo::Outcome>)>
                               done);

  // --- MonitorService ----------------------------------------------------
  /// Fetches the Usite's current metrics snapshot (gateway, NJS, batch,
  /// and — with a grid-shared registry — network series).
  void fetch_metrics(
      std::function<void(util::Result<obs::MetricsSnapshot>)> done);
  /// Fetches the recorded trace timeline of one of the caller's jobs.
  void fetch_trace(ajo::JobToken token,
                   std::function<void(util::Result<obs::TraceTimeline>)> done);

  // --- diagnostics ---------------------------------------------------------
  std::uint64_t requests_sent() const { return requests_sent_; }
  std::uint64_t requests_failed() const { return requests_failed_; }

 private:
  void send_request(server::RequestKind kind, util::Bytes payload,
                    std::function<void(util::Result<util::Bytes>)> on_reply);
  void handle_message(util::Bytes&& wire);
  void fail_all_pending(const util::Error& error);

  sim::Engine& engine_;
  net::Network& network_;
  util::Rng rng_;
  Config config_;
  net::Address usite_address_;
  std::shared_ptr<net::SecureChannel> channel_;
  bool established_ = false;

  struct PendingRequest {
    std::function<void(util::Result<util::Bytes>)> handler;
    sim::EventId timeout = 0;
  };
  std::map<std::uint64_t, PendingRequest> pending_;
  std::uint64_t next_request_id_ = 1;
  std::uint64_t requests_sent_ = 0;
  std::uint64_t requests_failed_ = 0;
};

}  // namespace unicore::client
