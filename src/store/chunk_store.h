// Content-addressed chunk store — the Xspace blob engine.
//
// ROADMAP: `unicore::uspace` began as a purely in-memory virtual FS;
// this store is what lets the §4 Uspace/Xspace abstraction hold
// millions of files. Every stored file is a *manifest* of chunk
// digests; the chunks themselves live once, keyed by the same SHA-256
// per-chunk digests the transfer wire computes (crypto/chunk_digest.h),
// refcounted across files and across Uspaces:
//
//   - writing a file whose chunks already exist stores zero new bytes
//     (chunk-level dedup — the store only bumps refcounts);
//   - a transfer receiver can acknowledge an incoming chunk whose
//     digest is already present without writing it, and can satisfy
//     whole ranges at open time from the sender's digest manifest, so
//     a dedup-warm restage moves zero payload bytes;
//   - deleting the last file referencing a chunk reclaims its physical
//     bytes exactly (refcount-zero free);
//   - a resident-bytes budget spills cold chunks to a pluggable
//     SpillBackend (disk tier) and faults them back on read.
//
// Quota semantics: Volume/Uspace quotas keep charging *logical* bytes
// (what the user sees); the store tracks *physical* bytes (what the
// disks hold after dedup). The two are linked only through manifests.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "crypto/chunk_digest.h"
#include "crypto/sha256.h"
#include "obs/metrics.h"
#include "util/bytes.h"
#include "util/result.h"

namespace unicore::store {

/// Chunk granularity for locally interned files. Matches the transfer
/// wire's default chunk size so files staged over the rails and files
/// written locally dedup against each other.
constexpr std::uint32_t kDefaultStoreChunkBytes = 1024 * 1024;

/// The cold tier: where evicted chunk payloads go. Implementations
/// model a disk (or object store); the in-memory one backs tests and
/// benches. All byte accounting for the tier lives in the ChunkStore —
/// a backend only moves payloads.
class SpillBackend {
 public:
  virtual ~SpillBackend() = default;
  virtual util::Status write(const crypto::Digest& digest,
                             const util::Bytes& data) = 0;
  virtual util::Result<util::Bytes> read(const crypto::Digest& digest) = 0;
  virtual void erase(const crypto::Digest& digest) = 0;
};

/// Spill tier in process memory, outside the store's resident budget —
/// the moral equivalent of MemoryJournalStore: it models a disk that
/// survives an NJS restart.
class MemorySpillBackend : public SpillBackend {
 public:
  util::Status write(const crypto::Digest& digest,
                     const util::Bytes& data) override;
  util::Result<util::Bytes> read(const crypto::Digest& digest) override;
  void erase(const crypto::Digest& digest) override;

  std::size_t chunks() const { return spilled_.size(); }

 private:
  std::map<crypto::Digest, util::Bytes> spilled_;
};

/// Manifest of one stored file: its identity plus the ordered chunk
/// digests at a fixed chunk granularity. Equal manifests <=> equal
/// logical content.
struct BlobManifest {
  std::uint64_t size = 0;
  crypto::Digest checksum{};  // whole-file identity
  bool synthetic = false;
  std::uint32_t chunk_bytes = 0;
  std::vector<crypto::Digest> chunks;  // chunk_count(size, chunk_bytes) entries

  std::uint32_t length_of(std::uint64_t index) const {
    return crypto::chunk_length(size, chunk_bytes, index);
  }
};

/// Point-in-time accounting of the store (also mirrored into gauges).
struct StoreStats {
  std::uint64_t chunks = 0;          // distinct chunks held
  std::uint64_t total_refs = 0;      // sum of refcounts
  std::uint64_t physical_bytes = 0;  // resident + spilled payload bytes
  std::uint64_t resident_bytes = 0;  // payload bytes in the hot tier
  std::uint64_t spilled_bytes = 0;   // payload bytes in the cold tier
  std::uint64_t logical_bytes = 0;   // sum over refs (what dedup saved from)
  // Monotonic event counters:
  std::uint64_t dedup_hits = 0;         // refs satisfied by an existing chunk
  std::uint64_t dedup_bytes_saved = 0;  // payload bytes those refs did not add
  std::uint64_t spills = 0;             // chunk evictions to the cold tier
  std::uint64_t faults = 0;             // chunk loads back from the cold tier
  std::uint64_t reclaimed_chunks = 0;   // chunks freed at refcount zero
  std::uint64_t reclaimed_bytes = 0;    // physical bytes those frees returned
};

/// The store proper. Single-threaded like the rest of the simulated
/// Usite (all mutation happens on the engine thread).
class ChunkStore {
 public:
  struct Config {
    /// Resident (hot-tier) payload budget. 0 = unlimited. Exceeding it
    /// evicts the coldest chunks into the spill backend; without a
    /// backend the budget is ignored (nowhere to spill to).
    std::uint64_t resident_budget_bytes = 0;
  };

  ChunkStore() = default;
  explicit ChunkStore(Config config) : config_(config) {}

  void set_spill_backend(std::shared_ptr<SpillBackend> backend) {
    spill_ = std::move(backend);
    maybe_evict();
  }
  void set_resident_budget(std::uint64_t bytes) {
    config_.resident_budget_bytes = bytes;
    maybe_evict();
  }

  /// Mirrors occupancy gauges and event counters into `registry`
  /// (labels: site). Updated on every mutation.
  void set_metrics(std::shared_ptr<obs::MetricsRegistry> registry,
                   std::string site);

  bool contains(const crypto::Digest& digest) const {
    return chunks_.count(digest) != 0;
  }
  /// Refcount of a chunk; 0 when absent (test introspection).
  std::uint64_t refcount(const crypto::Digest& digest) const;

  /// Adds one reference to the chunk keyed by `digest`, storing
  /// `data` when the chunk is new. `digest` must be
  /// crypto::chunk_content_digest(data) — callers on the wire path have
  /// already verified it; local writers compute it from the data.
  /// A present digest is a dedup hit: the payload is not written.
  util::Status add_chunk(const crypto::Digest& digest, util::ByteView data);

  /// Synthetic twin of add_chunk: the chunk is identified (digest,
  /// length) but carries no payload bytes, so it never occupies either
  /// tier. Dedup and refcounting work exactly like real chunks.
  util::Status add_synthetic_chunk(const crypto::Digest& digest,
                                   std::uint32_t length);

  /// Adds one reference to an *already present* chunk (the dedup path
  /// taken when only the digest is known — e.g. a transfer open
  /// carrying the sender's digest manifest). Returns false and does
  /// nothing when the chunk is absent.
  bool add_ref(const crypto::Digest& digest);

  /// Drops one reference; the last one frees the chunk and reclaims
  /// its physical bytes (from whichever tier holds it).
  void release(const crypto::Digest& digest);

  /// Payload bytes of a real chunk, faulting it back from the spill
  /// tier when evicted. kNotFound for absent chunks,
  /// kFailedPrecondition for synthetic ones (they have no bytes).
  util::Result<util::Bytes> read(const crypto::Digest& digest);

  /// Declared byte length of a chunk (real or synthetic).
  util::Result<std::uint32_t> chunk_length(const crypto::Digest& digest) const;

  StoreStats stats() const { return stats_; }

 private:
  struct ChunkRec {
    std::uint32_t length = 0;
    bool synthetic = false;
    std::uint64_t refs = 0;
    bool spilled = false;
    util::Bytes data;          // resident payload; empty if spilled/synthetic
    std::uint64_t lru_seq = 0; // key into lru_ while resident
  };

  void touch(const crypto::Digest& digest, ChunkRec& rec);
  void maybe_evict();
  void count_dedup(const ChunkRec& rec);
  void refresh_gauges();

  Config config_;
  std::shared_ptr<SpillBackend> spill_;
  std::map<crypto::Digest, ChunkRec> chunks_;
  std::map<std::uint64_t, crypto::Digest> lru_;  // seq -> resident real chunk
  std::uint64_t next_seq_ = 1;
  StoreStats stats_;

  std::shared_ptr<obs::MetricsRegistry> metrics_;
  std::string site_;
};

/// RAII pin over one manifest's chunks: holds one reference per entry
/// and releases them all on destruction. This is how files own their
/// chunks — a Uspace file is a shared_ptr chain ending in one of these,
/// so dropping the last file reference (overwrite, remove, storage
/// reap) reclaims physical bytes without any explicit bookkeeping.
class PinnedBlob {
 public:
  /// Takes over one already-added reference per manifest chunk.
  PinnedBlob(std::shared_ptr<ChunkStore> chunk_store, BlobManifest manifest)
      : store_(std::move(chunk_store)), manifest_(std::move(manifest)) {}
  ~PinnedBlob();

  PinnedBlob(const PinnedBlob&) = delete;
  PinnedBlob& operator=(const PinnedBlob&) = delete;

  const BlobManifest& manifest() const { return manifest_; }
  const std::shared_ptr<ChunkStore>& chunk_store() const { return store_; }

  /// Payload of chunk `index` (faults it back when spilled).
  util::Result<util::Bytes> chunk(std::uint64_t index) const;

  /// Copies `[offset, offset+length)` of the logical file into `out`
  /// (appending), touching one chunk at a time — the whole file is
  /// never resident unless the caller asks for all of it.
  util::Status read_range(std::uint64_t offset, std::uint64_t length,
                          util::Bytes& out) const;

 private:
  std::shared_ptr<ChunkStore> store_;
  BlobManifest manifest_;
};

/// Chunks `content` at `chunk_bytes`, interns every chunk (dedup-aware)
/// and returns the pinned manifest. `checksum` is the whole-file
/// identity recorded in the manifest.
util::Result<std::shared_ptr<const PinnedBlob>> intern_bytes(
    std::shared_ptr<ChunkStore> chunk_store, util::ByteView content,
    const crypto::Digest& checksum, std::uint32_t chunk_bytes);

/// Interns a synthetic file of `size` identified bytes: every chunk is
/// a zero-footprint synthetic record keyed by its synthetic digest.
util::Result<std::shared_ptr<const PinnedBlob>> intern_synthetic(
    std::shared_ptr<ChunkStore> chunk_store, std::uint64_t size,
    const crypto::Digest& checksum, std::uint32_t chunk_bytes);

}  // namespace unicore::store
