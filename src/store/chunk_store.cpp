#include "store/chunk_store.h"

#include <utility>

namespace unicore::store {

using util::ErrorCode;
using util::make_error;
using util::Result;
using util::Status;

// ---- MemorySpillBackend ----------------------------------------------------

Status MemorySpillBackend::write(const crypto::Digest& digest,
                                 const util::Bytes& data) {
  spilled_[digest] = data;
  return Status::ok_status();
}

Result<util::Bytes> MemorySpillBackend::read(const crypto::Digest& digest) {
  auto it = spilled_.find(digest);
  if (it == spilled_.end())
    return make_error(ErrorCode::kNotFound, "chunk not in spill tier");
  return it->second;
}

void MemorySpillBackend::erase(const crypto::Digest& digest) {
  spilled_.erase(digest);
}

// ---- ChunkStore ------------------------------------------------------------

void ChunkStore::set_metrics(std::shared_ptr<obs::MetricsRegistry> registry,
                             std::string site) {
  metrics_ = std::move(registry);
  site_ = std::move(site);
  refresh_gauges();
}

std::uint64_t ChunkStore::refcount(const crypto::Digest& digest) const {
  auto it = chunks_.find(digest);
  return it == chunks_.end() ? 0 : it->second.refs;
}

void ChunkStore::count_dedup(const ChunkRec& rec) {
  ++stats_.dedup_hits;
  stats_.dedup_bytes_saved += rec.length;
  if (metrics_ != nullptr) {
    obs::Labels labels{{"site", site_}};
    metrics_->counter("unicore_store_dedup_hits_total", labels).increment();
    metrics_->counter("unicore_store_dedup_bytes_saved_total", labels)
        .add(static_cast<double>(rec.length));
  }
}

Status ChunkStore::add_chunk(const crypto::Digest& digest,
                             util::ByteView data) {
  auto it = chunks_.find(digest);
  if (it != chunks_.end()) {
    ChunkRec& rec = it->second;
    if (rec.synthetic || rec.length != data.size())
      return make_error(ErrorCode::kInvalidArgument,
                        "digest collision: stored chunk has a different "
                        "shape (store and wire digests out of sync?)");
    ++rec.refs;
    ++stats_.total_refs;
    stats_.logical_bytes += rec.length;
    count_dedup(rec);
    touch(digest, rec);
    refresh_gauges();
    return Status::ok_status();
  }

  ChunkRec rec;
  rec.length = static_cast<std::uint32_t>(data.size());
  rec.refs = 1;
  rec.data.assign(data.begin(), data.end());
  rec.lru_seq = next_seq_++;
  lru_.emplace(rec.lru_seq, digest);
  stats_.resident_bytes += rec.length;
  stats_.physical_bytes += rec.length;
  stats_.logical_bytes += rec.length;
  ++stats_.chunks;
  ++stats_.total_refs;
  chunks_.emplace(digest, std::move(rec));
  maybe_evict();
  refresh_gauges();
  return Status::ok_status();
}

Status ChunkStore::add_synthetic_chunk(const crypto::Digest& digest,
                                       std::uint32_t length) {
  auto it = chunks_.find(digest);
  if (it != chunks_.end()) {
    ChunkRec& rec = it->second;
    if (!rec.synthetic || rec.length != length)
      return make_error(ErrorCode::kInvalidArgument,
                        "digest collision: stored chunk has a different "
                        "shape (store and wire digests out of sync?)");
    ++rec.refs;
    ++stats_.total_refs;
    stats_.logical_bytes += rec.length;
    count_dedup(rec);
    refresh_gauges();
    return Status::ok_status();
  }

  ChunkRec rec;
  rec.length = length;
  rec.synthetic = true;
  rec.refs = 1;
  ++stats_.chunks;
  ++stats_.total_refs;
  stats_.logical_bytes += length;
  chunks_.emplace(digest, std::move(rec));
  refresh_gauges();
  return Status::ok_status();
}

bool ChunkStore::add_ref(const crypto::Digest& digest) {
  auto it = chunks_.find(digest);
  if (it == chunks_.end()) return false;
  ChunkRec& rec = it->second;
  ++rec.refs;
  ++stats_.total_refs;
  stats_.logical_bytes += rec.length;
  count_dedup(rec);
  refresh_gauges();
  return true;
}

void ChunkStore::release(const crypto::Digest& digest) {
  auto it = chunks_.find(digest);
  if (it == chunks_.end()) return;  // double-release is a no-op
  ChunkRec& rec = it->second;
  --stats_.total_refs;
  stats_.logical_bytes -= rec.length;
  if (--rec.refs > 0) {
    refresh_gauges();
    return;
  }
  // Last reference: reclaim the physical bytes from whichever tier
  // holds them.
  if (!rec.synthetic) {
    stats_.physical_bytes -= rec.length;
    stats_.reclaimed_bytes += rec.length;
    if (rec.spilled) {
      stats_.spilled_bytes -= rec.length;
      if (spill_ != nullptr) spill_->erase(digest);
    } else {
      stats_.resident_bytes -= rec.length;
      lru_.erase(rec.lru_seq);
    }
  }
  ++stats_.reclaimed_chunks;
  --stats_.chunks;
  chunks_.erase(it);
  if (metrics_ != nullptr)
    metrics_
        ->counter("unicore_store_reclaimed_chunks_total", {{"site", site_}})
        .increment();
  refresh_gauges();
}

Result<util::Bytes> ChunkStore::read(const crypto::Digest& digest) {
  auto it = chunks_.find(digest);
  if (it == chunks_.end())
    return make_error(ErrorCode::kNotFound, "no such chunk in the store");
  ChunkRec& rec = it->second;
  if (rec.synthetic)
    return make_error(ErrorCode::kFailedPrecondition,
                      "synthetic chunk carries no payload bytes");
  if (rec.spilled) {
    // Fault the chunk back into the hot tier.
    if (spill_ == nullptr)
      return make_error(ErrorCode::kInternal,
                        "chunk spilled but the spill backend is gone");
    auto data = spill_->read(digest);
    if (!data.ok()) return data.error();
    spill_->erase(digest);
    rec.data = std::move(data).value();
    rec.spilled = false;
    rec.lru_seq = next_seq_++;
    lru_.emplace(rec.lru_seq, digest);
    stats_.spilled_bytes -= rec.length;
    stats_.resident_bytes += rec.length;
    ++stats_.faults;
    if (metrics_ != nullptr)
      metrics_->counter("unicore_store_faults_total", {{"site", site_}})
          .increment();
    maybe_evict();
    refresh_gauges();
    return rec.data;
  }
  touch(digest, rec);
  return rec.data;
}

Result<std::uint32_t> ChunkStore::chunk_length(
    const crypto::Digest& digest) const {
  auto it = chunks_.find(digest);
  if (it == chunks_.end())
    return make_error(ErrorCode::kNotFound, "no such chunk in the store");
  return it->second.length;
}

void ChunkStore::touch(const crypto::Digest& digest, ChunkRec& rec) {
  if (rec.synthetic || rec.spilled) return;
  lru_.erase(rec.lru_seq);
  rec.lru_seq = next_seq_++;
  lru_.emplace(rec.lru_seq, digest);
}

void ChunkStore::maybe_evict() {
  if (spill_ == nullptr || config_.resident_budget_bytes == 0) return;
  while (stats_.resident_bytes > config_.resident_budget_bytes &&
         !lru_.empty()) {
    auto coldest = lru_.begin();
    crypto::Digest digest = coldest->second;
    lru_.erase(coldest);
    ChunkRec& rec = chunks_.at(digest);
    if (!spill_->write(digest, rec.data).ok()) {
      // A failing cold tier must not lose data: keep the chunk resident
      // and stop evicting (the budget is advisory, the payload is not).
      rec.lru_seq = next_seq_++;
      lru_.emplace(rec.lru_seq, digest);
      return;
    }
    rec.data.clear();
    rec.data.shrink_to_fit();
    rec.spilled = true;
    stats_.resident_bytes -= rec.length;
    stats_.spilled_bytes += rec.length;
    ++stats_.spills;
    if (metrics_ != nullptr)
      metrics_->counter("unicore_store_spills_total", {{"site", site_}})
          .increment();
  }
}

void ChunkStore::refresh_gauges() {
  if (metrics_ == nullptr) return;
  obs::Labels labels{{"site", site_}};
  metrics_->gauge("unicore_store_chunks", labels)
      .set(static_cast<double>(stats_.chunks));
  metrics_->gauge("unicore_store_physical_bytes", labels)
      .set(static_cast<double>(stats_.physical_bytes));
  metrics_->gauge("unicore_store_resident_bytes", labels)
      .set(static_cast<double>(stats_.resident_bytes));
  metrics_->gauge("unicore_store_spilled_bytes", labels)
      .set(static_cast<double>(stats_.spilled_bytes));
  metrics_->gauge("unicore_store_logical_bytes", labels)
      .set(static_cast<double>(stats_.logical_bytes));
  metrics_->gauge("unicore_store_total_refs", labels)
      .set(static_cast<double>(stats_.total_refs));
}

// ---- PinnedBlob ------------------------------------------------------------

PinnedBlob::~PinnedBlob() {
  for (const crypto::Digest& digest : manifest_.chunks)
    store_->release(digest);
}

Result<util::Bytes> PinnedBlob::chunk(std::uint64_t index) const {
  if (index >= manifest_.chunks.size())
    return make_error(ErrorCode::kInvalidArgument,
                      "chunk index beyond the manifest");
  return store_->read(manifest_.chunks[index]);
}

Status PinnedBlob::read_range(std::uint64_t offset, std::uint64_t length,
                              util::Bytes& out) const {
  if (offset + length > manifest_.size)
    return make_error(ErrorCode::kInvalidArgument,
                      "read beyond the end of the file");
  out.reserve(out.size() + length);
  while (length > 0) {
    std::uint64_t index = offset / manifest_.chunk_bytes;
    std::uint64_t within = offset % manifest_.chunk_bytes;
    auto data = chunk(index);
    if (!data.ok()) return data.error();
    std::uint64_t take = data.value().size() - within;
    if (take > length) take = length;
    out.insert(out.end(),
               data.value().begin() + static_cast<std::ptrdiff_t>(within),
               data.value().begin() +
                   static_cast<std::ptrdiff_t>(within + take));
    offset += take;
    length -= take;
  }
  return Status::ok_status();
}

// ---- interning -------------------------------------------------------------

Result<std::shared_ptr<const PinnedBlob>> intern_bytes(
    std::shared_ptr<ChunkStore> chunk_store, util::ByteView content,
    const crypto::Digest& checksum, std::uint32_t chunk_bytes) {
  if (chunk_bytes == 0)
    return make_error(ErrorCode::kInvalidArgument, "chunk_bytes must be > 0");
  BlobManifest manifest;
  manifest.size = content.size();
  manifest.checksum = checksum;
  manifest.chunk_bytes = chunk_bytes;
  std::uint64_t count = crypto::chunk_count(manifest.size, chunk_bytes);
  manifest.chunks.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    std::uint32_t length = manifest.length_of(i);
    util::ByteView piece(content.data() + i * chunk_bytes, length);
    crypto::Digest digest = crypto::chunk_content_digest(piece);
    util::Status added = chunk_store->add_chunk(digest, piece);
    if (!added.ok()) {
      // Unwind the refs taken so far; the store stays exact.
      for (const crypto::Digest& taken : manifest.chunks)
        chunk_store->release(taken);
      return added.error();
    }
    manifest.chunks.push_back(digest);
  }
  return std::make_shared<const PinnedBlob>(std::move(chunk_store),
                                            std::move(manifest));
}

Result<std::shared_ptr<const PinnedBlob>> intern_synthetic(
    std::shared_ptr<ChunkStore> chunk_store, std::uint64_t size,
    const crypto::Digest& checksum, std::uint32_t chunk_bytes) {
  if (chunk_bytes == 0)
    return make_error(ErrorCode::kInvalidArgument, "chunk_bytes must be > 0");
  BlobManifest manifest;
  manifest.size = size;
  manifest.checksum = checksum;
  manifest.synthetic = true;
  manifest.chunk_bytes = chunk_bytes;
  std::uint64_t count = crypto::chunk_count(size, chunk_bytes);
  manifest.chunks.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    std::uint32_t length = manifest.length_of(i);
    crypto::Digest digest = crypto::synthetic_chunk_digest(checksum, i, length);
    util::Status added = chunk_store->add_synthetic_chunk(digest, length);
    if (!added.ok()) {
      for (const crypto::Digest& taken : manifest.chunks)
        chunk_store->release(taken);
      return added.error();
    }
    manifest.chunks.push_back(digest);
  }
  return std::make_shared<const PinnedBlob>(std::move(chunk_store),
                                            std::move(manifest));
}

}  // namespace unicore::store
