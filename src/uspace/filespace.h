// The UNICORE data model (§4):
//
// "A Vsite (virtual site) consists of systems at one Usite sharing the
//  same data space. The file systems available at the Vsites of a Usite
//  are called Xspace. All data available to a UNICORE job constitute the
//  UNICORE file space (Uspace). Thereby the data model used in UNICORE
//  distinguishes between data inside (Uspace) and outside (Xspace and
//  data from the user's workstation) of UNICORE."
//
// Volume models one mounted filesystem with a byte quota; Xspace is the
// set of volumes visible at a Vsite; Uspace is the per-job directory the
// NJS creates (§5.5: "create a UNICORE job directory to contain the data
// for and created during the job run").
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "uspace/blob.h"
#include "util/result.h"

namespace unicore::uspace {

/// One filesystem: a flat path -> blob map with a quota.
class Volume {
 public:
  Volume(std::string name, std::uint64_t quota_bytes)
      : name_(std::move(name)), quota_bytes_(quota_bytes) {}

  const std::string& name() const { return name_; }
  std::uint64_t quota_bytes() const { return quota_bytes_; }
  std::uint64_t used_bytes() const { return used_bytes_; }
  std::size_t file_count() const { return files_.size(); }

  /// Writes (creates or replaces) a file; fails when the quota would be
  /// exceeded. Replacing an existing path charges the quota for the
  /// size delta only; a failed overwrite leaves the original file and
  /// `used_bytes()` untouched.
  util::Status write(const std::string& path, FileBlob blob);
  /// Zero-copy write: stores a reference to an (immutable) blob that
  /// may be shared with other volumes or an in-flight transfer. Quota
  /// accounting is identical to write().
  util::Status write_shared(const std::string& path,
                            std::shared_ptr<const FileBlob> blob);

  util::Result<FileBlob> read(const std::string& path) const;
  /// Zero-copy read: the returned blob is shared with the volume (and
  /// stays valid after a subsequent overwrite or remove).
  util::Result<std::shared_ptr<const FileBlob>> read_shared(
      const std::string& path) const;
  bool exists(const std::string& path) const;
  util::Status remove(const std::string& path);

  /// Paths starting with `prefix`, sorted.
  std::vector<std::string> list(const std::string& prefix = "") const;

 private:
  std::string name_;
  std::uint64_t quota_bytes_;
  std::uint64_t used_bytes_ = 0;
  std::map<std::string, std::shared_ptr<const FileBlob>> files_;
};

/// The external file spaces of a Vsite: named volumes.
class Xspace {
 public:
  /// Creates a volume; fails on duplicate names.
  util::Result<Volume*> create_volume(const std::string& name,
                                      std::uint64_t quota_bytes);
  Volume* find_volume(const std::string& name);
  const Volume* find_volume(const std::string& name) const;

  std::vector<std::string> volume_names() const;

 private:
  std::map<std::string, std::unique_ptr<Volume>> volumes_;
};

/// The inside-UNICORE file space of one job: the job directory.
class Uspace {
 public:
  Uspace(std::string job_directory, std::uint64_t quota_bytes)
      : directory_(std::move(job_directory)), files_(directory_, quota_bytes) {}

  const std::string& directory() const { return directory_; }

  util::Status write(const std::string& name, FileBlob blob) {
    return files_.write(name, std::move(blob));
  }
  util::Status write_shared(const std::string& name,
                            std::shared_ptr<const FileBlob> blob) {
    return files_.write_shared(name, std::move(blob));
  }
  util::Result<FileBlob> read(const std::string& name) const {
    return files_.read(name);
  }
  util::Result<std::shared_ptr<const FileBlob>> read_shared(
      const std::string& name) const {
    return files_.read_shared(name);
  }
  bool exists(const std::string& name) const { return files_.exists(name); }
  util::Status remove(const std::string& name) { return files_.remove(name); }
  std::vector<std::string> list(const std::string& prefix = "") const {
    return files_.list(prefix);
  }
  std::uint64_t used_bytes() const { return files_.used_bytes(); }
  std::uint64_t quota_bytes() const { return files_.quota_bytes(); }

 private:
  std::string directory_;
  Volume files_;  // a Uspace behaves like a single-volume filesystem
};

/// Import: Xspace volume path -> Uspace name ("always local operations
/// performed at a Vsite ... implemented as a copy process", §5.6).
util::Status copy_in(const Xspace& xspace, const std::string& volume,
                     const std::string& path, Uspace& uspace,
                     const std::string& uspace_name);

/// Export: Uspace name -> Xspace volume path.
util::Status copy_out(const Uspace& uspace, const std::string& uspace_name,
                      Xspace& xspace, const std::string& volume,
                      const std::string& path);

}  // namespace unicore::uspace
