// File content representation for the simulated file spaces.
//
// Small files (sources, scripts, stdout) carry real bytes; large
// workload files are *synthetic* — identified by (seed, size) with a
// deterministic checksum — so benches can stage multi-gigabyte files
// without allocating them. Both kinds hash stably, which is what the
// data-integrity invariants (import → transfer → export preserves
// content) are tested against.
//
// A third backing exists on sites with a content-addressed store
// (store/chunk_store.h): a *stored* blob holds no bytes of its own,
// only a pinned manifest of chunk digests. Its chunks are shared with
// every other file that has equal pieces, and dropping the last
// FileBlob reference releases the pins — overwrite, delete, and
// storage reap reclaim physical bytes with no extra bookkeeping.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "crypto/sha256.h"
#include "store/chunk_store.h"
#include "util/bytes.h"
#include "util/result.h"

namespace unicore::uspace {

class FileBlob {
 public:
  FileBlob() = default;

  static FileBlob from_bytes(util::Bytes content);
  static FileBlob from_string(std::string_view content);
  /// A file of `size` bytes whose content is only identified, not stored.
  static FileBlob synthetic(std::uint64_t size, std::uint64_t seed);
  /// Reconstructs a synthetic blob from its identity (size, checksum) —
  /// what a chunked transfer reassembles after moving a synthetic file
  /// piecewise (the per-chunk digests tie each piece to this identity).
  static FileBlob from_identity(std::uint64_t size,
                                const crypto::Digest& checksum);
  /// A blob backed by a pinned store manifest: the content lives in the
  /// chunk store (deduped, possibly spilled), the blob owns one pin.
  static FileBlob from_pinned(std::shared_ptr<const store::PinnedBlob> pinned);

  std::uint64_t size() const { return size_; }
  bool is_synthetic() const {
    return !content_.has_value() &&
           (stored_ == nullptr || stored_->manifest().synthetic);
  }
  /// True when the content is held by a chunk store manifest rather than
  /// inline bytes.
  bool is_stored() const { return stored_ != nullptr; }
  const std::shared_ptr<const store::PinnedBlob>& pinned() const {
    return stored_;
  }

  /// Real inline content; nullptr for synthetic and stored blobs (read
  /// stored content chunk-wise via read_range / pinned()).
  const util::Bytes* bytes() const {
    return content_ ? &*content_ : nullptr;
  }

  /// Copies `[offset, offset+length)` of the content into `out`
  /// (appending). For stored blobs this walks one chunk at a time —
  /// the whole file is never materialised. Synthetic blobs have no
  /// bytes to read (kFailedPrecondition).
  util::Status read_range(std::uint64_t offset, std::uint64_t length,
                          util::Bytes& out) const;

  /// Per-chunk digests of this blob at `chunk_bytes` granularity —
  /// exactly what the transfer wire computes per chunk, so a receiver
  /// can match incoming chunks against its store. Stored blobs return
  /// their manifest when the granularity matches (no hashing).
  std::vector<crypto::Digest> chunk_digests(std::uint32_t chunk_bytes) const;

  /// Content identity: equal checksums <=> equal logical content.
  const crypto::Digest& checksum() const { return checksum_; }

  bool operator==(const FileBlob& other) const {
    return size_ == other.size_ && checksum_ == other.checksum_;
  }

  /// Wire encoding (synthetic blobs stay synthetic across transfers;
  /// stored blobs encode as real content, chunk by chunk).
  void encode(util::ByteWriter& w) const;
  static FileBlob decode(util::ByteReader& r);

 private:
  std::uint64_t size_ = 0;
  crypto::Digest checksum_{};
  std::optional<util::Bytes> content_;
  std::shared_ptr<const store::PinnedBlob> stored_;
};

/// Interns `blob` into `chunk_store` and returns a store-backed
/// equivalent (same size, same checksum): inline content is chunked and
/// deduped, synthetic identities get zero-footprint synthetic chunks.
/// Already-stored blobs (and failures) pass through unchanged.
std::shared_ptr<const FileBlob> intern_blob(
    const std::shared_ptr<store::ChunkStore>& chunk_store,
    std::shared_ptr<const FileBlob> blob,
    std::uint32_t chunk_bytes = store::kDefaultStoreChunkBytes);

}  // namespace unicore::uspace
