// File content representation for the simulated file spaces.
//
// Small files (sources, scripts, stdout) carry real bytes; large
// workload files are *synthetic* — identified by (seed, size) with a
// deterministic checksum — so benches can stage multi-gigabyte files
// without allocating them. Both kinds hash stably, which is what the
// data-integrity invariants (import → transfer → export preserves
// content) are tested against.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "crypto/sha256.h"
#include "util/bytes.h"

namespace unicore::uspace {

class FileBlob {
 public:
  FileBlob() = default;

  static FileBlob from_bytes(util::Bytes content);
  static FileBlob from_string(std::string_view content);
  /// A file of `size` bytes whose content is only identified, not stored.
  static FileBlob synthetic(std::uint64_t size, std::uint64_t seed);
  /// Reconstructs a synthetic blob from its identity (size, checksum) —
  /// what a chunked transfer reassembles after moving a synthetic file
  /// piecewise (the per-chunk digests tie each piece to this identity).
  static FileBlob from_identity(std::uint64_t size,
                                const crypto::Digest& checksum);

  std::uint64_t size() const { return size_; }
  bool is_synthetic() const { return !content_.has_value(); }

  /// Real content; nullptr for synthetic blobs.
  const util::Bytes* bytes() const {
    return content_ ? &*content_ : nullptr;
  }

  /// Content identity: equal checksums <=> equal logical content.
  const crypto::Digest& checksum() const { return checksum_; }

  bool operator==(const FileBlob& other) const {
    return size_ == other.size_ && checksum_ == other.checksum_;
  }

  /// Wire encoding (synthetic blobs stay synthetic across transfers).
  void encode(util::ByteWriter& w) const;
  static FileBlob decode(util::ByteReader& r);

 private:
  std::uint64_t size_ = 0;
  crypto::Digest checksum_{};
  std::optional<util::Bytes> content_;
};

}  // namespace unicore::uspace
