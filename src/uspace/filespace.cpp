#include "uspace/filespace.h"

namespace unicore::uspace {

using util::ErrorCode;
using util::Result;
using util::Status;

Status Volume::write(const std::string& path, FileBlob blob) {
  return write_shared(path,
                      std::make_shared<const FileBlob>(std::move(blob)));
}

Status Volume::write_shared(const std::string& path,
                            std::shared_ptr<const FileBlob> blob) {
  std::uint64_t replaced = 0;
  if (auto it = files_.find(path); it != files_.end())
    replaced = it->second->size();
  std::uint64_t new_usage = used_bytes_ - replaced + blob->size();
  if (quota_bytes_ > 0 && new_usage > quota_bytes_)
    return util::make_error(ErrorCode::kResourceExhausted,
                            "quota exceeded on " + name_ + " writing " + path +
                                " (" + std::to_string(new_usage) + " > " +
                                std::to_string(quota_bytes_) + " bytes)");
  used_bytes_ = new_usage;
  files_[path] = std::move(blob);
  return Status::ok_status();
}

Result<FileBlob> Volume::read(const std::string& path) const {
  auto it = files_.find(path);
  if (it == files_.end())
    return util::make_error(ErrorCode::kNotFound,
                            "no such file: " + name_ + ":" + path);
  return *it->second;
}

Result<std::shared_ptr<const FileBlob>> Volume::read_shared(
    const std::string& path) const {
  auto it = files_.find(path);
  if (it == files_.end())
    return util::make_error(ErrorCode::kNotFound,
                            "no such file: " + name_ + ":" + path);
  return it->second;
}

bool Volume::exists(const std::string& path) const {
  return files_.count(path) > 0;
}

Status Volume::remove(const std::string& path) {
  auto it = files_.find(path);
  if (it == files_.end())
    return util::make_error(ErrorCode::kNotFound,
                            "no such file: " + name_ + ":" + path);
  used_bytes_ -= it->second->size();
  files_.erase(it);
  return Status::ok_status();
}

std::vector<std::string> Volume::list(const std::string& prefix) const {
  std::vector<std::string> out;
  for (const auto& [path, blob] : files_)
    if (path.compare(0, prefix.size(), prefix) == 0) out.push_back(path);
  return out;
}

Result<Volume*> Xspace::create_volume(const std::string& name,
                                      std::uint64_t quota_bytes) {
  if (volumes_.count(name))
    return util::make_error(ErrorCode::kFailedPrecondition,
                            "volume already exists: " + name);
  auto volume = std::make_unique<Volume>(name, quota_bytes);
  Volume* raw = volume.get();
  volumes_[name] = std::move(volume);
  return raw;
}

Volume* Xspace::find_volume(const std::string& name) {
  auto it = volumes_.find(name);
  return it == volumes_.end() ? nullptr : it->second.get();
}

const Volume* Xspace::find_volume(const std::string& name) const {
  auto it = volumes_.find(name);
  return it == volumes_.end() ? nullptr : it->second.get();
}

std::vector<std::string> Xspace::volume_names() const {
  std::vector<std::string> out;
  out.reserve(volumes_.size());
  for (const auto& [name, volume] : volumes_) out.push_back(name);
  return out;
}

Status copy_in(const Xspace& xspace, const std::string& volume,
               const std::string& path, Uspace& uspace,
               const std::string& uspace_name) {
  const Volume* source = xspace.find_volume(volume);
  if (source == nullptr)
    return util::make_error(ErrorCode::kNotFound,
                            "no such volume: " + volume);
  auto blob = source->read_shared(path);
  if (!blob) return blob.error();
  return uspace.write_shared(uspace_name, std::move(blob.value()));
}

Status copy_out(const Uspace& uspace, const std::string& uspace_name,
                Xspace& xspace, const std::string& volume,
                const std::string& path) {
  auto blob = uspace.read_shared(uspace_name);
  if (!blob) return blob.error();
  Volume* destination = xspace.find_volume(volume);
  if (destination == nullptr)
    return util::make_error(ErrorCode::kNotFound,
                            "no such volume: " + volume);
  return destination->write_shared(path, std::move(blob.value()));
}

}  // namespace unicore::uspace
