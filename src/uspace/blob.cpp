#include "uspace/blob.h"

namespace unicore::uspace {

FileBlob FileBlob::from_bytes(util::Bytes content) {
  FileBlob blob;
  blob.size_ = content.size();
  blob.checksum_ = crypto::sha256(content);
  blob.content_ = std::move(content);
  return blob;
}

FileBlob FileBlob::from_string(std::string_view content) {
  return from_bytes(util::to_bytes(content));
}

FileBlob FileBlob::synthetic(std::uint64_t size, std::uint64_t seed) {
  FileBlob blob;
  blob.size_ = size;
  // Identity of a synthetic file is a hash over its (seed, size) header,
  // domain-separated from real content hashes.
  util::ByteWriter w;
  w.str("unicore-synthetic-file");
  w.u64(seed);
  w.u64(size);
  blob.checksum_ = crypto::sha256(w.bytes());
  return blob;
}

FileBlob FileBlob::from_identity(std::uint64_t size,
                                 const crypto::Digest& checksum) {
  FileBlob blob;
  blob.size_ = size;
  blob.checksum_ = checksum;
  return blob;
}

void FileBlob::encode(util::ByteWriter& w) const {
  w.boolean(is_synthetic());
  w.u64(size_);
  w.raw(checksum_);
  if (content_) {
    w.blob(*content_);
  } else {
    // A synthetic blob still costs its logical size on the wire — the
    // simulated network charges by message length, so transfers of
    // synthetic files must not be unrealistically cheap. The padding is
    // skipped (not stored) on decode.
    w.pad(static_cast<std::size_t>(size_));
  }
}

FileBlob FileBlob::decode(util::ByteReader& r) {
  FileBlob blob;
  bool synthetic = r.boolean();
  blob.size_ = r.u64();
  util::Bytes checksum = r.raw(32);
  std::copy(checksum.begin(), checksum.end(), blob.checksum_.begin());
  if (synthetic)
    r.skip(static_cast<std::size_t>(blob.size_));
  else
    blob.content_ = r.blob();
  return blob;
}

}  // namespace unicore::uspace
