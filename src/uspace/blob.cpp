#include "uspace/blob.h"

#include "crypto/chunk_digest.h"

namespace unicore::uspace {

FileBlob FileBlob::from_bytes(util::Bytes content) {
  FileBlob blob;
  blob.size_ = content.size();
  blob.checksum_ = crypto::sha256(content);
  blob.content_ = std::move(content);
  return blob;
}

FileBlob FileBlob::from_string(std::string_view content) {
  return from_bytes(util::to_bytes(content));
}

FileBlob FileBlob::synthetic(std::uint64_t size, std::uint64_t seed) {
  FileBlob blob;
  blob.size_ = size;
  // Identity of a synthetic file is a hash over its (seed, size) header,
  // domain-separated from real content hashes.
  util::ByteWriter w;
  w.str("unicore-synthetic-file");
  w.u64(seed);
  w.u64(size);
  blob.checksum_ = crypto::sha256(w.bytes());
  return blob;
}

FileBlob FileBlob::from_identity(std::uint64_t size,
                                 const crypto::Digest& checksum) {
  FileBlob blob;
  blob.size_ = size;
  blob.checksum_ = checksum;
  return blob;
}

FileBlob FileBlob::from_pinned(
    std::shared_ptr<const store::PinnedBlob> pinned) {
  FileBlob blob;
  blob.size_ = pinned->manifest().size;
  blob.checksum_ = pinned->manifest().checksum;
  blob.stored_ = std::move(pinned);
  return blob;
}

util::Status FileBlob::read_range(std::uint64_t offset, std::uint64_t length,
                                  util::Bytes& out) const {
  if (offset + length > size_)
    return util::make_error(util::ErrorCode::kInvalidArgument,
                            "read beyond the end of the file");
  if (stored_ != nullptr && !stored_->manifest().synthetic)
    return stored_->read_range(offset, length, out);
  if (!content_)
    return util::make_error(util::ErrorCode::kFailedPrecondition,
                            "synthetic blob has no bytes to read");
  out.insert(out.end(),
             content_->begin() + static_cast<std::ptrdiff_t>(offset),
             content_->begin() + static_cast<std::ptrdiff_t>(offset + length));
  return util::Status::ok_status();
}

std::vector<crypto::Digest> FileBlob::chunk_digests(
    std::uint32_t chunk_bytes) const {
  std::vector<crypto::Digest> digests;
  if (chunk_bytes == 0) return digests;
  if (stored_ != nullptr && stored_->manifest().chunk_bytes == chunk_bytes)
    return stored_->manifest().chunks;
  std::uint64_t count = crypto::chunk_count(size_, chunk_bytes);
  digests.reserve(count);
  for (std::uint64_t index = 0; index < count; ++index) {
    std::uint32_t length = crypto::chunk_length(size_, chunk_bytes, index);
    if (is_synthetic()) {
      digests.push_back(
          crypto::synthetic_chunk_digest(checksum_, index, length));
      continue;
    }
    util::Bytes piece;
    // Re-chunking a stored real blob at a foreign granularity reads it
    // chunk-wise; the common path (granularity match) never gets here.
    if (!read_range(index * static_cast<std::uint64_t>(chunk_bytes), length,
                    piece)
             .ok())
      return {};
    digests.push_back(crypto::chunk_content_digest(piece));
  }
  return digests;
}

void FileBlob::encode(util::ByteWriter& w) const {
  w.boolean(is_synthetic());
  w.u64(size_);
  w.raw(checksum_);
  if (content_) {
    w.blob(*content_);
  } else if (stored_ != nullptr && !stored_->manifest().synthetic) {
    // Stored real content crosses the wire as real bytes, one chunk
    // resident at a time.
    w.varint(size_);
    const store::BlobManifest& manifest = stored_->manifest();
    for (std::uint64_t i = 0; i < manifest.chunks.size(); ++i) {
      auto piece = stored_->chunk(i);
      if (piece.ok()) w.raw(piece.value());
    }
  } else {
    // A synthetic blob still costs its logical size on the wire — the
    // simulated network charges by message length, so transfers of
    // synthetic files must not be unrealistically cheap. The padding is
    // skipped (not stored) on decode.
    w.pad(static_cast<std::size_t>(size_));
  }
}

FileBlob FileBlob::decode(util::ByteReader& r) {
  FileBlob blob;
  bool synthetic = r.boolean();
  blob.size_ = r.u64();
  util::Bytes checksum = r.raw(32);
  std::copy(checksum.begin(), checksum.end(), blob.checksum_.begin());
  if (synthetic)
    r.skip(static_cast<std::size_t>(blob.size_));
  else
    blob.content_ = r.blob();
  return blob;
}

std::shared_ptr<const FileBlob> intern_blob(
    const std::shared_ptr<store::ChunkStore>& chunk_store,
    std::shared_ptr<const FileBlob> blob, std::uint32_t chunk_bytes) {
  if (chunk_store == nullptr || blob == nullptr || blob->is_stored())
    return blob;
  util::Result<std::shared_ptr<const store::PinnedBlob>> pinned =
      blob->bytes() != nullptr
          ? store::intern_bytes(chunk_store, *blob->bytes(), blob->checksum(),
                                chunk_bytes)
          : store::intern_synthetic(chunk_store, blob->size(),
                                    blob->checksum(), chunk_bytes);
  if (!pinned.ok()) return blob;
  return std::make_shared<const FileBlob>(
      FileBlob::from_pinned(std::move(pinned).value()));
}

}  // namespace unicore::uspace
