// Per-job trace timelines.
//
// The NJS records one span per lifecycle phase of a consigned AJO —
// consign, incarnate, stage-in, submit, queue-wait, batch-run,
// stage-out, outcome, and sub-AJO hops over PeerLink — against
// simulation time. Spans nest: every child lies inside its parent's
// [start, end] window, giving the JMC (and tests) a causally ordered
// picture of where a job's wall-clock went.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "sim/engine.h"
#include "util/bytes.h"
#include "util/result.h"

namespace unicore::obs {

/// 1-based index into TraceTimeline::spans(); 0 means "no span".
using SpanId = std::uint32_t;

struct Span {
  SpanId id = 0;
  SpanId parent = 0;  // 0 = root span
  std::string name;
  sim::Time start = 0;
  sim::Time end = -1;  // -1 while still open
  std::vector<std::pair<std::string, std::string>> attributes;

  bool closed() const { return end >= 0; }
};

class TraceTimeline {
 public:
  /// Opens a span at `at`; close it later with end().
  SpanId begin(std::string name, sim::Time at, SpanId parent = 0);
  /// Closes an open span. No-op for invalid ids or already-closed spans.
  void end(SpanId id, sim::Time at);
  /// Records an already-finished span (used for phases whose bounds are
  /// only known after the fact, e.g. batch queue-wait).
  SpanId record(std::string name, sim::Time start, sim::Time end,
                SpanId parent = 0);
  void annotate(SpanId id, std::string key, std::string value);

  const std::vector<Span>& spans() const { return spans_; }
  bool empty() const { return spans_.empty(); }
  const Span* find(SpanId id) const;
  /// First span with `name`, or nullptr.
  const Span* find_by_name(std::string_view name) const;
  std::vector<const Span*> children_of(SpanId parent) const;

  /// Structural invariants: every span closed with end >= start, parents
  /// exist and precede their children, and every child's window lies
  /// inside its parent's.
  util::Status validate() const;

  void encode(util::ByteWriter& writer) const;
  static util::Result<TraceTimeline> decode(util::ByteReader& reader);

  /// Indented tree rendering for logs and debugging.
  std::string to_string() const;

 private:
  std::vector<Span> spans_;
};

}  // namespace unicore::obs
