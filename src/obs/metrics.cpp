#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace unicore::obs {
namespace {

Labels sorted(Labels labels) {
  std::sort(labels.begin(), labels.end());
  return labels;
}

std::string format_value(double value) {
  if (std::isfinite(value) && value == std::floor(value) &&
      std::abs(value) < 1e15) {
    return std::to_string(static_cast<std::int64_t>(value));
  }
  std::ostringstream out;
  out << value;
  return out.str();
}

std::string render_labels(const Labels& labels,
                          const std::string& extra_key = {},
                          const std::string& extra_value = {}) {
  if (labels.empty() && extra_key.empty()) return {};
  std::string out = "{";
  bool first = true;
  for (const auto& [key, value] : labels) {
    if (!first) out += ",";
    first = false;
    out += key + "=\"" + value + "\"";
  }
  if (!extra_key.empty()) {
    if (!first) out += ",";
    out += extra_key + "=\"" + extra_value + "\"";
  }
  out += "}";
  return out;
}

void encode_labels(util::ByteWriter& writer, const Labels& labels) {
  writer.varint(labels.size());
  for (const auto& [key, value] : labels) {
    writer.str(key);
    writer.str(value);
  }
}

Labels decode_labels(util::ByteReader& reader) {
  Labels labels;
  std::uint64_t n = reader.varint();
  labels.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    std::string key = reader.str();
    std::string value = reader.str();
    labels.emplace_back(std::move(key), std::move(value));
  }
  return labels;
}

}  // namespace

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), buckets_(bounds_.size() + 1) {
  std::sort(bounds_.begin(), bounds_.end());
}

void Histogram::observe(double value) {
  std::size_t bucket =
      std::lower_bound(bounds_.begin(), bounds_.end(), value) - bounds_.begin();
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double current = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(current, current + value,
                                     std::memory_order_relaxed)) {
  }
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> counts;
  counts.reserve(buckets_.size());
  for (const auto& bucket : buckets_)
    counts.push_back(bucket.load(std::memory_order_relaxed));
  return counts;
}

std::vector<double> latency_buckets() {
  return {0.001, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30,
          60};
}

std::vector<double> duration_buckets() {
  return {1, 5, 15, 60, 300, 900, 1800, 3600, 7200, 14400};
}

const MetricPoint* MetricsSnapshot::find(std::string_view name,
                                         const Labels& labels) const {
  Labels wanted = sorted(labels);
  for (const auto& point : points)
    if (point.name == name && point.labels == wanted) return &point;
  return nullptr;
}

double MetricsSnapshot::total(std::string_view name) const {
  double sum = 0.0;
  for (const auto& point : points) {
    if (point.name != name) continue;
    sum += point.kind == MetricKind::kHistogram
               ? static_cast<double>(point.count)
               : point.value;
  }
  return sum;
}

void MetricsSnapshot::encode(util::ByteWriter& writer) const {
  writer.varint(points.size());
  for (const auto& point : points) {
    writer.u8(static_cast<std::uint8_t>(point.kind));
    writer.str(point.name);
    encode_labels(writer, point.labels);
    writer.f64(point.value);
    if (point.kind == MetricKind::kHistogram) {
      writer.varint(point.bounds.size());
      for (double bound : point.bounds) writer.f64(bound);
      for (std::uint64_t bucket : point.buckets) writer.varint(bucket);
      writer.varint(point.count);
    }
  }
}

util::Result<MetricsSnapshot> MetricsSnapshot::decode(
    util::ByteReader& reader) {
  MetricsSnapshot snapshot;
  std::uint64_t n = reader.varint();
  snapshot.points.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    MetricPoint point;
    std::uint8_t kind = reader.u8();
    if (kind < 1 || kind > 3)
      return util::make_error(util::ErrorCode::kInvalidArgument,
                              "metrics snapshot: bad metric kind " +
                                  std::to_string(kind));
    point.kind = static_cast<MetricKind>(kind);
    point.name = reader.str();
    point.labels = decode_labels(reader);
    point.value = reader.f64();
    if (point.kind == MetricKind::kHistogram) {
      std::uint64_t n_bounds = reader.varint();
      point.bounds.reserve(n_bounds);
      for (std::uint64_t b = 0; b < n_bounds; ++b)
        point.bounds.push_back(reader.f64());
      point.buckets.reserve(n_bounds + 1);
      for (std::uint64_t b = 0; b < n_bounds + 1; ++b)
        point.buckets.push_back(reader.varint());
      point.count = reader.varint();
    }
    snapshot.points.push_back(std::move(point));
  }
  return snapshot;
}

std::string MetricsSnapshot::to_prometheus() const {
  std::string out;
  std::string last_name;
  for (const auto& point : points) {
    if (point.name != last_name) {
      const char* type = point.kind == MetricKind::kCounter   ? "counter"
                         : point.kind == MetricKind::kGauge   ? "gauge"
                                                              : "histogram";
      out += "# TYPE " + point.name + " " + type + "\n";
      last_name = point.name;
    }
    if (point.kind == MetricKind::kHistogram) {
      std::uint64_t cumulative = 0;
      for (std::size_t b = 0; b < point.buckets.size(); ++b) {
        cumulative += point.buckets[b];
        std::string le = b < point.bounds.size()
                             ? format_value(point.bounds[b])
                             : "+Inf";
        out += point.name + "_bucket" + render_labels(point.labels, "le", le) +
               " " + std::to_string(cumulative) + "\n";
      }
      out += point.name + "_sum" + render_labels(point.labels) + " " +
             format_value(point.value) + "\n";
      out += point.name + "_count" + render_labels(point.labels) + " " +
             std::to_string(point.count) + "\n";
    } else {
      out += point.name + render_labels(point.labels) + " " +
             format_value(point.value) + "\n";
    }
  }
  return out;
}

Counter& MetricsRegistry::counter(std::string_view name, Labels labels) {
  std::lock_guard lock(mutex_);
  auto& slot = counters_[{std::string(name), sorted(std::move(labels))}];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(std::string_view name, Labels labels) {
  std::lock_guard lock(mutex_);
  auto& slot = gauges_[{std::string(name), sorted(std::move(labels))}];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(std::string_view name, Labels labels,
                                      std::vector<double> bounds) {
  std::lock_guard lock(mutex_);
  auto& slot = histograms_[{std::string(name), sorted(std::move(labels))}];
  if (!slot) slot = std::make_unique<Histogram>(std::move(bounds));
  return *slot;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot snapshot;
  std::lock_guard lock(mutex_);
  snapshot.points.reserve(counters_.size() + gauges_.size() +
                          histograms_.size());
  for (const auto& [key, counter] : counters_) {
    MetricPoint point;
    point.kind = MetricKind::kCounter;
    point.name = key.first;
    point.labels = key.second;
    point.value = counter->value();
    snapshot.points.push_back(std::move(point));
  }
  for (const auto& [key, gauge] : gauges_) {
    MetricPoint point;
    point.kind = MetricKind::kGauge;
    point.name = key.first;
    point.labels = key.second;
    point.value = gauge->value();
    snapshot.points.push_back(std::move(point));
  }
  for (const auto& [key, histogram] : histograms_) {
    MetricPoint point;
    point.kind = MetricKind::kHistogram;
    point.name = key.first;
    point.labels = key.second;
    point.value = histogram->sum();
    point.bounds = histogram->bounds();
    point.buckets = histogram->bucket_counts();
    point.count = histogram->count();
    snapshot.points.push_back(std::move(point));
  }
  std::sort(snapshot.points.begin(), snapshot.points.end(),
            [](const MetricPoint& a, const MetricPoint& b) {
              return std::tie(a.name, a.labels) < std::tie(b.name, b.labels);
            });
  return snapshot;
}

}  // namespace unicore::obs
