// Usite-wide metrics registry.
//
// The paper's JMC exists purely to monitor jobs; production UNICORE
// (Streit et al., 2005) grew site-wide operational monitoring on top.
// This registry is the in-process half of that story: components
// register labeled counters, gauges, and fixed-bucket histograms once
// (under a mutex) and then record through stable pointers whose hot
// paths are single atomic operations — safe to call from ThreadPool
// workers and cheap enough for per-message network instrumentation.
//
// Snapshots are plain data with a wire codec (consumed by the
// MonitorService protocol request) and a Prometheus-style text render
// (consumed by the benches).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/bytes.h"
#include "util/result.h"

namespace unicore::obs {

/// Metric labels as sorted (key, value) pairs. Registration sorts them,
/// so {a=1,b=2} and {b=2,a=1} name the same series.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Monotonically increasing value. add() is one atomic CAS loop.
class Counter {
 public:
  void add(double delta) {
    double current = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(current, current + delta,
                                         std::memory_order_relaxed)) {
    }
  }
  void increment() { add(1.0); }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Value that can move in both directions (queue depths, free nodes).
class Gauge {
 public:
  void set(double value) { value_.store(value, std::memory_order_relaxed); }
  void add(double delta) {
    double current = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(current, current + delta,
                                         std::memory_order_relaxed)) {
    }
  }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram. Bounds are upper-inclusive (`observation <=
/// bound`); one implicit overflow bucket catches the rest. observe() is
/// a bucket search plus three relaxed atomic adds.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void observe(double value);

  const std::vector<double>& bounds() const { return bounds_; }
  /// Per-bucket counts; size bounds().size() + 1 (last = overflow).
  std::vector<std::uint64_t> bucket_counts() const;
  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<std::uint64_t>> buckets_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Latency-shaped bucket bounds in seconds (1 ms .. 60 s).
std::vector<double> latency_buckets();
/// Batch-duration-shaped bucket bounds in seconds (1 s .. 4 h).
std::vector<double> duration_buckets();

enum class MetricKind : std::uint8_t {
  kCounter = 1,
  kGauge = 2,
  kHistogram = 3,
};

/// One series captured at snapshot time.
struct MetricPoint {
  MetricKind kind = MetricKind::kCounter;
  std::string name;
  Labels labels;
  double value = 0.0;  // counter / gauge value; histogram sum
  // Histogram only:
  std::vector<double> bounds;
  std::vector<std::uint64_t> buckets;  // bounds.size() + 1 entries
  std::uint64_t count = 0;
};

/// Point-in-time copy of every registered series.
struct MetricsSnapshot {
  std::vector<MetricPoint> points;

  /// Exact (name, labels) lookup; nullptr when absent.
  const MetricPoint* find(std::string_view name, const Labels& labels) const;
  /// Sum across every label set of `name`: counter/gauge values, or
  /// histogram observation counts. Zero when the name is absent.
  double total(std::string_view name) const;

  void encode(util::ByteWriter& writer) const;
  static util::Result<MetricsSnapshot> decode(util::ByteReader& reader);

  /// Prometheus exposition-format text dump.
  std::string to_prometheus() const;
};

/// Owner of all series. Registration takes a mutex and returns a
/// reference that stays valid for the registry's lifetime; recording
/// through it never locks.
class MetricsRegistry {
 public:
  Counter& counter(std::string_view name, Labels labels = {});
  Gauge& gauge(std::string_view name, Labels labels = {});
  /// Re-registering an existing histogram returns it unchanged; `bounds`
  /// only applies to the first registration.
  Histogram& histogram(std::string_view name, Labels labels,
                       std::vector<double> bounds);

  MetricsSnapshot snapshot() const;
  std::string render_prometheus() const { return snapshot().to_prometheus(); }

 private:
  using SeriesKey = std::pair<std::string, Labels>;

  mutable std::mutex mutex_;
  std::map<SeriesKey, std::unique_ptr<Counter>> counters_;
  std::map<SeriesKey, std::unique_ptr<Gauge>> gauges_;
  std::map<SeriesKey, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace unicore::obs
