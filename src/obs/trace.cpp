#include "obs/trace.h"

#include <functional>

namespace unicore::obs {

SpanId TraceTimeline::begin(std::string name, sim::Time at, SpanId parent) {
  Span span;
  span.id = static_cast<SpanId>(spans_.size() + 1);
  span.parent = parent;
  span.name = std::move(name);
  span.start = at;
  spans_.push_back(std::move(span));
  return spans_.back().id;
}

void TraceTimeline::end(SpanId id, sim::Time at) {
  if (id == 0 || id > spans_.size()) return;
  Span& span = spans_[id - 1];
  if (!span.closed()) span.end = at;
}

SpanId TraceTimeline::record(std::string name, sim::Time start, sim::Time end,
                             SpanId parent) {
  SpanId id = begin(std::move(name), start, parent);
  spans_[id - 1].end = end;
  return id;
}

void TraceTimeline::annotate(SpanId id, std::string key, std::string value) {
  if (id == 0 || id > spans_.size()) return;
  spans_[id - 1].attributes.emplace_back(std::move(key), std::move(value));
}

const Span* TraceTimeline::find(SpanId id) const {
  if (id == 0 || id > spans_.size()) return nullptr;
  return &spans_[id - 1];
}

const Span* TraceTimeline::find_by_name(std::string_view name) const {
  for (const Span& span : spans_)
    if (span.name == name) return &span;
  return nullptr;
}

std::vector<const Span*> TraceTimeline::children_of(SpanId parent) const {
  std::vector<const Span*> children;
  for (const Span& span : spans_)
    if (span.parent == parent && span.id != parent) children.push_back(&span);
  return children;
}

util::Status TraceTimeline::validate() const {
  for (const Span& span : spans_) {
    if (!span.closed())
      return util::make_error(util::ErrorCode::kFailedPrecondition,
                              "span still open: " + span.name);
    if (span.end < span.start)
      return util::make_error(util::ErrorCode::kInternal,
                              "span ends before it starts: " + span.name);
    if (span.parent != 0) {
      // Children are always recorded after their parent opened.
      if (span.parent >= span.id)
        return util::make_error(util::ErrorCode::kInternal,
                                "span precedes its parent: " + span.name);
      const Span& parent = spans_[span.parent - 1];
      if (span.start < parent.start ||
          (parent.closed() && span.end > parent.end))
        return util::make_error(
            util::ErrorCode::kInternal,
            "span escapes parent window: " + span.name + " in " + parent.name);
    }
  }
  return util::Status::ok_status();
}

void TraceTimeline::encode(util::ByteWriter& writer) const {
  writer.varint(spans_.size());
  for (const Span& span : spans_) {
    writer.varint(span.id);
    writer.varint(span.parent);
    writer.str(span.name);
    writer.i64(span.start);
    writer.i64(span.end);
    writer.varint(span.attributes.size());
    for (const auto& [key, value] : span.attributes) {
      writer.str(key);
      writer.str(value);
    }
  }
}

util::Result<TraceTimeline> TraceTimeline::decode(util::ByteReader& reader) {
  TraceTimeline timeline;
  std::uint64_t n = reader.varint();
  timeline.spans_.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    Span span;
    span.id = static_cast<SpanId>(reader.varint());
    span.parent = static_cast<SpanId>(reader.varint());
    span.name = reader.str();
    span.start = reader.i64();
    span.end = reader.i64();
    if (span.id != i + 1)
      return util::make_error(util::ErrorCode::kInvalidArgument,
                              "trace timeline: non-contiguous span ids");
    std::uint64_t n_attrs = reader.varint();
    span.attributes.reserve(n_attrs);
    for (std::uint64_t a = 0; a < n_attrs; ++a) {
      std::string key = reader.str();
      std::string value = reader.str();
      span.attributes.emplace_back(std::move(key), std::move(value));
    }
    timeline.spans_.push_back(std::move(span));
  }
  return timeline;
}

std::string TraceTimeline::to_string() const {
  std::string out;
  std::function<void(SpanId, int)> render = [&](SpanId parent, int depth) {
    for (const Span& span : spans_) {
      if (span.parent != parent || span.id == parent) continue;
      out.append(static_cast<std::size_t>(depth) * 2, ' ');
      out += span.name + " [" + std::to_string(span.start) + ", " +
             (span.closed() ? std::to_string(span.end) : std::string("open")) +
             "]";
      for (const auto& [key, value] : span.attributes)
        out += " " + key + "=" + value;
      out += "\n";
      render(span.id, depth + 1);
    }
  };
  render(0, 0);
  return out;
}

}  // namespace unicore::obs
