// Discrete-event simulation kernel.
//
// All distributed behaviour in the reproduction — network latency, batch
// queue waits, job runtimes, NJS polling — runs as events on one Engine.
// Execution is single-threaded and deterministic: events fire in
// (time, insertion-sequence) order, so a given seed always produces the
// same trace. Virtual time is kept in microseconds as a signed 64-bit
// count, which spans ±292k years — enough for any batch queue.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace unicore::sim {

/// Virtual time in microseconds since simulation start.
using Time = std::int64_t;

/// Convenience constructors for readable durations.
constexpr Time usec(std::int64_t n) { return n; }
constexpr Time msec(std::int64_t n) { return n * 1000; }
constexpr Time sec(std::int64_t n) { return n * 1'000'000; }
constexpr Time minutes(std::int64_t n) { return n * 60'000'000; }
constexpr Time hours(std::int64_t n) { return n * 3'600'000'000LL; }

/// Seconds as double → Time, for stochastic durations.
constexpr Time from_seconds(double s) {
  return static_cast<Time>(s * 1'000'000.0);
}
constexpr double to_seconds(Time t) { return static_cast<double>(t) / 1e6; }

/// Handle for cancelling a scheduled event.
using EventId = std::uint64_t;

class Engine {
 public:
  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  Time now() const { return now_; }

  /// Schedules `fn` at absolute time `t` (clamped to now()).
  EventId at(Time t, std::function<void()> fn);

  /// Schedules `fn` `dt` after now().
  EventId after(Time dt, std::function<void()> fn) {
    return at(now_ + (dt < 0 ? 0 : dt), std::move(fn));
  }

  /// Cancels a pending event; returns false if it already fired or was
  /// already cancelled.
  bool cancel(EventId id);

  /// Fires the next pending event; returns false when the queue is empty.
  bool step();

  /// Runs to quiescence; returns the number of events fired.
  std::size_t run();

  /// Runs events with time <= `deadline`, then sets now() to `deadline`
  /// (if the simulation had not already passed it). Returns events fired.
  std::size_t run_until(Time deadline);

  std::size_t pending() const { return heap_.size() - cancelled_.size(); }
  std::uint64_t events_fired() const { return fired_; }

 private:
  struct Entry {
    Time time;
    EventId id;
    bool operator>(const Entry& other) const {
      // Earlier time first; FIFO among equal times via ascending id.
      if (time != other.time) return time > other.time;
      return id > other.id;
    }
  };

  Time now_ = 0;
  EventId next_id_ = 1;
  std::uint64_t fired_ = 0;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap_;
  std::unordered_map<EventId, std::function<void()>> handlers_;
  std::unordered_set<EventId> cancelled_;
};

}  // namespace unicore::sim
