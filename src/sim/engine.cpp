#include "sim/engine.h"

#include <utility>

namespace unicore::sim {

EventId Engine::at(Time t, std::function<void()> fn) {
  if (t < now_) t = now_;
  EventId id = next_id_++;
  heap_.push(Entry{t, id});
  handlers_.emplace(id, std::move(fn));
  return id;
}

bool Engine::cancel(EventId id) {
  auto it = handlers_.find(id);
  if (it == handlers_.end()) return false;
  handlers_.erase(it);
  cancelled_.insert(id);
  return true;
}

bool Engine::step() {
  while (!heap_.empty()) {
    Entry top = heap_.top();
    heap_.pop();
    auto cancelled = cancelled_.find(top.id);
    if (cancelled != cancelled_.end()) {
      cancelled_.erase(cancelled);
      continue;
    }
    auto it = handlers_.find(top.id);
    if (it == handlers_.end()) continue;  // defensive; should not happen
    std::function<void()> fn = std::move(it->second);
    handlers_.erase(it);
    now_ = top.time;
    ++fired_;
    fn();
    return true;
  }
  return false;
}

std::size_t Engine::run() {
  std::size_t n = 0;
  while (step()) ++n;
  return n;
}

std::size_t Engine::run_until(Time deadline) {
  std::size_t n = 0;
  for (;;) {
    // Skip cancelled entries to observe the true next event time.
    while (!heap_.empty() && cancelled_.count(heap_.top().id)) {
      cancelled_.erase(heap_.top().id);
      heap_.pop();
    }
    if (heap_.empty() || heap_.top().time > deadline) break;
    if (step()) ++n;
  }
  if (now_ < deadline) now_ = deadline;
  return n;
}

}  // namespace unicore::sim
