#include "njs/journal.h"

#include <algorithm>

#include "ajo/codec.h"

namespace unicore::njs {
namespace {

// AuthenticatedUser codec, local to the journal (the NJS cannot use the
// server-layer codec without a dependency cycle).
void encode_user(util::ByteWriter& w, const gateway::AuthenticatedUser& user) {
  w.str(user.dn.country);
  w.str(user.dn.organization);
  w.str(user.dn.organizational_unit);
  w.str(user.dn.common_name);
  w.str(user.dn.email);
  w.str(user.login);
  w.varint(user.account_groups.size());
  for (const auto& group : user.account_groups) w.str(group);
}

gateway::AuthenticatedUser decode_user(util::ByteReader& r) {
  gateway::AuthenticatedUser user;
  user.dn.country = r.str();
  user.dn.organization = r.str();
  user.dn.organizational_unit = r.str();
  user.dn.common_name = r.str();
  user.dn.email = r.str();
  user.login = r.str();
  std::uint64_t n = r.varint();
  user.account_groups.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) user.account_groups.push_back(r.str());
  return user;
}

}  // namespace

const char* journal_record_type_name(JournalRecordType type) {
  switch (type) {
    case JournalRecordType::kConsigned: return "consigned";
    case JournalRecordType::kBatchSubmitted: return "batch-submitted";
    case JournalRecordType::kActionState: return "action-state";
    case JournalRecordType::kFinalized: return "finalized";
    case JournalRecordType::kDeleted: return "deleted";
    case JournalRecordType::kXferManifest: return "xfer-manifest";
    case JournalRecordType::kXferChunk: return "xfer-chunk";
    case JournalRecordType::kXferDone: return "xfer-done";
    case JournalRecordType::kOwnerClaim: return "owner-claim";
    case JournalRecordType::kXferBundleManifest: return "xfer-bundle-manifest";
    case JournalRecordType::kXferBundleChunk: return "xfer-bundle-chunk";
    case JournalRecordType::kXferBundleDone: return "xfer-bundle-done";
  }
  return "unknown";
}

void MemoryJournalStore::append(JournalRecord record) {
  records_.push_back(std::move(record));
}

void MemoryJournalStore::replay(
    const std::function<void(const JournalRecord&)>& visit) const {
  for (const JournalRecord& record : records_) visit(record);
}

std::size_t MemoryJournalStore::size() const { return records_.size(); }

std::shared_ptr<uspace::Uspace> MemoryJournalStore::workspace(
    const std::string& directory, std::uint64_t quota_bytes) {
  auto it = workspaces_.find(directory);
  if (it != workspaces_.end()) return it->second;
  auto created = std::make_shared<uspace::Uspace>(directory, quota_bytes);
  workspaces_.emplace(directory, created);
  return created;
}

void Journal::record_consigned(
    ajo::JobToken token, const ajo::AbstractJobObject& job,
    const gateway::AuthenticatedUser& user,
    const crypto::Certificate& user_certificate,
    const util::Bytes& idempotency_key,
    const std::vector<std::pair<std::string, uspace::FileBlob>>& staged_files,
    sim::Time consigned_at) {
  util::ByteWriter w;
  w.blob(ajo::encode_action(job));
  w.blob(user_certificate.der());
  encode_user(w, user);
  w.blob(idempotency_key);
  w.varint(staged_files.size());
  for (const auto& [name, blob] : staged_files) {
    w.str(name);
    blob.encode(w);
  }
  w.i64(consigned_at);
  store_->append({JournalRecordType::kConsigned, token, w.take()});
}

void Journal::record_batch_submitted(ajo::JobToken token,
                                     const std::string& action_path,
                                     batch::BatchJobId batch_id) {
  util::ByteWriter w;
  w.str(action_path);
  w.u64(batch_id);
  store_->append({JournalRecordType::kBatchSubmitted, token, w.take()});
}

void Journal::record_action_state(ajo::JobToken token,
                                  const std::string& action_path,
                                  ajo::ActionStatus status) {
  util::ByteWriter w;
  w.str(action_path);
  w.u8(static_cast<std::uint8_t>(status));
  store_->append({JournalRecordType::kActionState, token, w.take()});
}

void Journal::record_finalized(ajo::JobToken token,
                               const ajo::Outcome& outcome) {
  util::ByteWriter w;
  outcome.encode(w);
  store_->append({JournalRecordType::kFinalized, token, w.take()});
}

void Journal::record_deleted(ajo::JobToken token) {
  store_->append({JournalRecordType::kDeleted, token, {}});
}

std::vector<Journal::RecoveredJob> Journal::recover() const {
  std::map<ajo::JobToken, RecoveredJob> jobs;
  store_->replay([&](const JournalRecord& record) {
    try {
      util::ByteReader r{record.payload};
      switch (record.type) {
        case JournalRecordType::kConsigned: {
          RecoveredJob recovered;
          recovered.token = record.token;
          util::Bytes job_wire = r.blob();
          auto action = ajo::decode_action(job_wire);
          if (!action || !action.value()->is_job()) return;
          recovered.job =
              std::move(static_cast<ajo::AbstractJobObject&>(*action.value()));
          auto cert = crypto::Certificate::from_der(r.blob());
          if (!cert) return;
          recovered.user_certificate = std::move(cert.value());
          recovered.user = decode_user(r);
          recovered.idempotency_key = r.blob();
          std::uint64_t n = r.varint();
          for (std::uint64_t i = 0; i < n; ++i) {
            std::string name = r.str();
            recovered.staged_files.emplace_back(std::move(name),
                                                uspace::FileBlob::decode(r));
          }
          recovered.consigned_at = r.i64();
          jobs[record.token] = std::move(recovered);
          break;
        }
        case JournalRecordType::kBatchSubmitted: {
          auto it = jobs.find(record.token);
          if (it == jobs.end()) return;
          std::string path = r.str();
          it->second.batch_ids[path] = r.u64();
          break;
        }
        case JournalRecordType::kActionState:
          break;  // inspection only; replay reconstructs live state
        case JournalRecordType::kFinalized: {
          auto it = jobs.find(record.token);
          if (it == jobs.end()) return;
          auto outcome = ajo::Outcome::decode(r);
          if (outcome) it->second.outcome = std::move(outcome.value());
          break;
        }
        case JournalRecordType::kDeleted:
          jobs.erase(record.token);
          break;
        case JournalRecordType::kXferManifest:
        case JournalRecordType::kXferChunk:
        case JournalRecordType::kXferDone:
          break;  // owned by the transfer engine (xfer::recover_transfers)
        case JournalRecordType::kOwnerClaim:
          break;  // handoff bookkeeping (try_claim), not job state
      }
    } catch (const std::out_of_range&) {
      // Truncated record: skip it rather than abandoning recovery.
    }
  });
  std::vector<RecoveredJob> out;
  out.reserve(jobs.size());
  for (auto& [token, job] : jobs) out.push_back(std::move(job));
  return out;
}

util::Status Journal::try_claim(const std::string& claimant,
                                const std::string& supersede) {
  const std::string current = this->claimant();
  if (!current.empty() && current != claimant && current != supersede)
    return util::make_error(util::ErrorCode::kFailedPrecondition,
                            "journal already claimed by " + current);
  util::ByteWriter w;
  w.str(claimant);
  store_->append({JournalRecordType::kOwnerClaim, 0, w.take()});
  return util::Status::ok_status();
}

std::string Journal::claimant() const {
  std::string current;
  store_->replay([&](const JournalRecord& record) {
    if (record.type != JournalRecordType::kOwnerClaim) return;
    try {
      util::ByteReader r{record.payload};
      current = r.str();
    } catch (const std::out_of_range&) {
    }
  });
  return current;
}

}  // namespace unicore::njs
