#include "njs/njs.h"

#include <algorithm>

#include "ajo/codec.h"
#include "crypto/sha256.h"
#include "util/log.h"

namespace unicore::njs {

using ajo::ActionId;
using ajo::ActionStatus;
using ajo::ActionType;
using ajo::JobToken;
using util::ErrorCode;
using util::Result;
using util::Status;

util::Bytes ForwardedConsignment::signing_input(
    const ajo::AbstractJobObject& job, const crypto::Certificate& user_cert) {
  util::ByteWriter w;
  w.blob(ajo::encode_action(job));
  w.blob(user_cert.der());
  return w.take();
}

util::Bytes ForwardedConsignment::idempotency_key() const {
  util::ByteWriter w;
  w.blob(signing_input(job, user_certificate));
  w.u64(signature.value);
  w.blob(consignor_certificate.der());
  return crypto::digest_bytes(crypto::sha256(w.take()));
}

// ---- internal structures -------------------------------------------------

struct Njs::VsiteRuntime {
  VsiteConfig config;
  std::unique_ptr<batch::BatchSubsystem> subsystem;
  uspace::Xspace xspace;
  TranslationTable table;
  // Opens after consecutive kUnavailable submit failures (dead Vsite);
  // static validation rejections never trip it.
  util::CircuitBreaker breaker;
};

struct Njs::ActionRun {
  ajo::AbstractAction* action = nullptr;
  ActionStatus status = ActionStatus::kPending;
  int pending_predecessors = 0;
  std::vector<const ajo::Dependency*> outgoing;
  ajo::Outcome outcome;
  batch::BatchJobId batch_id = 0;
  std::unique_ptr<GroupRun> subgroup;            // local sub-job
  std::optional<RemoteJobHandle> remote;         // remote sub-job
  std::map<std::string, uspace::FileBlob> staged_files;  // pre-dispatch
  bool dispatched = false;
  bool recovered = false;      // re-attached to a pre-crash batch job
  obs::SpanId span = 0;        // trace span covering this action
  sim::Time ready_at = -1;     // when the action became dispatchable
};

struct Njs::GroupRun {
  ajo::AbstractJobObject* group = nullptr;
  GroupRun* parent = nullptr;          // enclosing group (null at root)
  ActionRun* owner = nullptr;          // the ActionRun this group realises
  VsiteRuntime* runtime = nullptr;     // destination system, if any
  std::shared_ptr<uspace::Uspace> workspace;
  std::map<ActionId, ActionRun> actions;
  int open_actions = 0;  // direct children not yet terminal
  bool held = false;
  obs::SpanId span = 0;  // parent span for this group's action spans
};

struct Njs::JobRun {
  JobToken token = 0;
  ajo::AbstractJobObject job;  // owned deep copy
  gateway::AuthenticatedUser user;
  crypto::Certificate user_certificate;
  FinalHandler on_final;
  GroupRun root;
  sim::Time consigned_at = 0;
  bool finalized = false;
  bool storage_reaped = false;  // workspaces emptied, quota freed
  util::Bytes idempotency_key;  // non-empty for forwarded consignments
  // Terminal Outcome restored from the journal; when set, the job has no
  // live GroupRun tree and query/list answer from this record.
  std::optional<ajo::Outcome> recovered_outcome;
  obs::TraceTimeline trace;
};

// ---- construction ----------------------------------------------------------

Njs::Njs(sim::Engine& engine, util::Rng rng, std::string usite,
         crypto::Credential server_credential)
    : engine_(engine),
      rng_(std::move(rng)),
      usite_(std::move(usite)),
      credential_(std::move(server_credential)),
      metrics_(std::make_shared<obs::MetricsRegistry>()) {
  wire_metrics();
}

Njs::~Njs() = default;

void Njs::wire_metrics() {
  obs::Labels labels{{"usite", usite_}};
  consigned_counter_ =
      &metrics_->counter("unicore_njs_jobs_consigned_total", labels);
  completed_counter_ =
      &metrics_->counter("unicore_njs_jobs_completed_total", labels);
  recoveries_counter_ =
      &metrics_->counter("unicore_njs_recoveries_total", labels);
  dedupe_counter_ =
      &metrics_->counter("unicore_njs_consigns_deduped_total", labels);
  batch_retry_counter_ =
      &metrics_->counter("unicore_njs_batch_retries_total", labels);
  reattach_counter_ =
      &metrics_->counter("unicore_njs_batch_reattached_total", labels);
  storage_reap_counter_ =
      &metrics_->counter("unicore_njs_storages_reaped_total", labels);
  dispatch_latency_hist_ = &metrics_->histogram(
      "unicore_njs_dispatch_latency_seconds", labels, obs::latency_buckets());
  job_duration_hist_ = &metrics_->histogram("unicore_njs_job_duration_seconds",
                                            labels, obs::duration_buckets());
  for (auto& [name, runtime] : vsites_)
    runtime->subsystem->set_metrics(metrics_.get(), usite_);
}

void Njs::set_metrics(std::shared_ptr<obs::MetricsRegistry> registry) {
  if (registry == nullptr || registry == metrics_) return;
  metrics_ = std::move(registry);
  wire_metrics();
}

void Njs::refresh_gauges() {
  metrics_->gauge("unicore_njs_active_jobs", {{"usite", usite_}})
      .set(static_cast<double>(active_jobs()));
}

Result<const obs::TraceTimeline*> Njs::trace(JobToken token) const {
  auto it = jobs_.find(token);
  if (it == jobs_.end())
    return util::make_error(ErrorCode::kNotFound,
                            "no such job: " + std::to_string(token));
  return &it->second->trace;
}

batch::BatchSubsystem& Njs::add_vsite(VsiteConfig config) {
  auto runtime = std::make_shared<VsiteRuntime>();
  runtime->table = config.table.value_or(
      default_translation_table(config.system.architecture));
  runtime->config = std::move(config);
  runtime->subsystem = std::make_unique<batch::BatchSubsystem>(
      engine_, rng_.fork(), runtime->config.system);
  // Every Vsite gets a home volume in its Xspace by default.
  (void)runtime->xspace.create_volume("home", 0);
  const std::string name = runtime->config.system.vsite;
  auto& slot = vsites_[name];
  slot = std::move(runtime);
  slot->subsystem->set_metrics(metrics_.get(), usite_);
  return *slot->subsystem;
}

void Njs::share_vsites(Njs& primary) {
  for (const auto& [name, runtime] : primary.vsites_) vsites_[name] = runtime;
}

std::vector<std::string> Njs::vsites() const {
  std::vector<std::string> out;
  out.reserve(vsites_.size());
  for (const auto& [name, runtime] : vsites_) out.push_back(name);
  return out;
}

batch::BatchSubsystem* Njs::subsystem(const std::string& vsite) {
  auto it = vsites_.find(vsite);
  return it == vsites_.end() ? nullptr : it->second->subsystem.get();
}

uspace::Xspace* Njs::xspace(const std::string& vsite) {
  auto it = vsites_.find(vsite);
  return it == vsites_.end() ? nullptr : &it->second->xspace;
}

Result<resources::ResourcePage> Njs::resource_page(
    const std::string& vsite) const {
  auto it = vsites_.find(vsite);
  if (it == vsites_.end())
    return util::make_error(ErrorCode::kNotFound, "no such vsite: " + vsite);
  const VsiteRuntime& runtime = *it->second;
  const batch::SystemConfig& system = runtime.config.system;

  std::int64_t max_wallclock = 0;
  std::int64_t max_memory = 0;
  for (const auto& queue : system.queues) {
    max_wallclock = std::max(max_wallclock, queue.max_wallclock_seconds);
    max_memory = std::max(max_memory, queue.max_memory_mb);
  }

  resources::ResourcePageEditor editor;
  editor.usite(usite_)
      .vsite(vsite)
      .architecture(system.architecture)
      .operating_system(system.operating_system)
      .peak_gflops(system.gflops_per_processor *
                   static_cast<double>(system.total_processors()))
      .node_count(system.nodes)
      .minimum({1, 1, 1, 0, 0})
      .maximum({system.total_processors(), max_wallclock, max_memory,
                1'048'576, 1'048'576})
      .add_software(resources::SoftwareKind::kCompiler, runtime.table.compiler_f90,
                    "F90");
  for (const auto& item : runtime.config.software)
    editor.add_software(item.kind, item.name, item.version);
  return editor.build();
}

std::vector<resources::ResourcePage> Njs::resource_pages() const {
  std::vector<resources::ResourcePage> pages;
  for (const auto& [name, runtime] : vsites_) {
    auto page = resource_page(name);
    if (page) pages.push_back(std::move(page.value()));
  }
  return pages;
}

sim::Time Njs::staging_delay(const GroupRun& group,
                             std::uint64_t bytes) const {
  double bandwidth = group.runtime != nullptr
                         ? group.runtime->config.disk_bandwidth_bytes_per_sec
                         : 20e6;
  return sim::msec(10) +
         sim::from_seconds(static_cast<double>(bytes) / bandwidth);
}

// ---- consignment -----------------------------------------------------------

Result<JobToken> Njs::consign(
    const ajo::AbstractJobObject& job, const gateway::AuthenticatedUser& user,
    const crypto::Certificate& user_certificate, FinalHandler on_final,
    std::vector<std::pair<std::string, uspace::FileBlob>> staged_files,
    util::Bytes idempotency_key) {
  if (auto status = job.validate(); !status.ok()) return status.error();
  if (!job.usite.empty() && job.usite != usite_)
    return util::make_error(ErrorCode::kInvalidArgument,
                            "job destined for " + job.usite +
                                " consigned to " + usite_);

  // Idempotent consign: a retried consignment (same signed-AJO digest)
  // returns the original token and re-registers the final handler —
  // without this, a retry after a lost reply would run the job twice.
  if (!idempotency_key.empty()) {
    auto key_it = consign_keys_.find(idempotency_key);
    if (key_it != consign_keys_.end()) {
      JobToken token = key_it->second;
      ++consigns_deduped_;
      if (dedupe_counter_) dedupe_counter_->increment();
      auto job_it = jobs_.find(token);
      if (job_it != jobs_.end() && on_final) {
        JobRun& existing = *job_it->second;
        if (existing.finalized) {
          ajo::Outcome outcome =
              existing.recovered_outcome.has_value()
                  ? *existing.recovered_outcome
                  : build_outcome(existing, existing.root,
                                  ajo::QueryService::Detail::kTasks);
          engine_.after(0, [token, outcome = std::move(outcome),
                            handler = std::move(on_final)] {
            handler(token, outcome);
          });
        } else {
          existing.on_final = std::move(on_final);
        }
      }
      UNICORE_INFO("njs/" + usite_)
          << "duplicate consign deduped -> job " << token;
      return token;
    }
  }

  return admit(next_token_++, job, user, user_certificate,
               std::move(on_final), std::move(staged_files),
               std::move(idempotency_key), /*journal_it=*/true);
}

Result<JobToken> Njs::admit(
    JobToken token, const ajo::AbstractJobObject& job,
    const gateway::AuthenticatedUser& user,
    const crypto::Certificate& user_certificate, FinalHandler on_final,
    std::vector<std::pair<std::string, uspace::FileBlob>> staged_files,
    util::Bytes idempotency_key, bool journal_it) {
  auto run = std::make_unique<JobRun>();
  run->token = token;
  run->job = job;
  run->user = user;
  run->user_certificate = user_certificate;
  run->on_final = std::move(on_final);
  run->consigned_at = engine_.now();
  run->root.group = &run->job;
  run->idempotency_key = idempotency_key;

  JobRun& ref = *run;
  jobs_[token] = std::move(run);
  ++jobs_consigned_;
  if (consigned_counter_) consigned_counter_->increment();
  ref.root.span = ref.trace.begin("consign", engine_.now());
  ref.trace.annotate(ref.root.span, "job", ref.job.name());
  ref.trace.annotate(ref.root.span, "user", ref.user.login);

  // Write-ahead: the journal record lands before any action dispatches
  // (dispatch runs behind engine events, never synchronously from here).
  if (journal_it)
    if (Journal* journal = journal_for(token))
      journal->record_consigned(token, ref.job, user, user_certificate,
                                idempotency_key, staged_files, engine_.now());
  if (!idempotency_key.empty())
    consign_keys_[std::move(idempotency_key)] = token;

  if (auto status = start_group(ref, ref.root); !status.ok()) {
    if (!ref.idempotency_key.empty()) consign_keys_.erase(ref.idempotency_key);
    if (Journal* journal = journal_for(token)) journal->record_deleted(token);
    jobs_.erase(token);
    --jobs_consigned_;
    return status.error();
  }

  // Files travelling with the consignment land in the root Uspace before
  // anything dispatches (dispatch_latency_ > 0 guarantees the ordering).
  for (auto& [name, blob] : staged_files) {
    if (ref.root.workspace != nullptr)
      (void)ref.root.workspace->write(name, std::move(blob));
  }

  UNICORE_INFO("njs/" + usite_)
      << "consigned job " << token << " ('" << ref.job.name() << "') for "
      << user.login << ", " << ref.job.total_actions() << " actions";
  finalize_if_done(ref);  // degenerate empty jobs finish immediately
  return token;
}

Status Njs::start_group(JobRun& job, GroupRun& group) {
  // Resolve the destination system: a group names its own Vsite or runs
  // at its parent's.
  if (!group.group->vsite.empty()) {
    auto it = vsites_.find(group.group->vsite);
    if (it == vsites_.end())
      return util::make_error(ErrorCode::kNotFound,
                              usite_ + ": no such vsite: " +
                                  group.group->vsite);
    group.runtime = it->second.get();
  } else if (group.parent != nullptr) {
    group.runtime = group.parent->runtime;
  }

  // The UNICORE job directory for this job group (§5.5).
  std::string directory = usite_ + "/job" + std::to_string(job.token) + "/g" +
                          std::to_string(group.group->id());
  std::uint64_t quota =
      group.runtime != nullptr ? group.runtime->config.uspace_quota_bytes : 0;
  group.workspace = make_workspace(job.token, directory, quota);

  // Build the action table and the dependency counters.
  for (const auto& child : group.group->children()) {
    ActionRun run;
    run.action = child.get();
    run.outcome.action = child->id();
    run.outcome.type = child->type();
    run.outcome.name = child->name();
    group.actions.emplace(child->id(), std::move(run));
  }
  group.open_actions = static_cast<int>(group.actions.size());

  for (const ajo::Dependency& dep : group.group->dependencies()) {
    group.actions.at(dep.successor).pending_predecessors += 1;
    group.actions.at(dep.predecessor).outgoing.push_back(&dep);
  }

  // Kick off the sources of the DAG.
  for (auto& [id, run] : group.actions)
    if (run.pending_predecessors == 0) dispatch_ready(job, group, run);
  return Status::ok_status();
}

void Njs::dispatch_ready(JobRun& job, GroupRun& group, ActionRun& run) {
  if (ajo::is_terminal(run.status)) return;
  if (group.held) {
    run.status = ActionStatus::kHeld;
    run.outcome.status = ActionStatus::kHeld;
    return;
  }
  run.ready_at = engine_.now();
  // The NJS delivers actions with a processing latency; scheduling via
  // the engine also keeps dispatch non-reentrant.
  JobToken token = job.token;
  GroupRun* group_ptr = &group;
  ActionId id = run.action->id();
  engine_.after(dispatch_latency_, [this, token, group_ptr, id,
                                    epoch = epoch_] {
    if (epoch != epoch_) return;    // NJS restarted meanwhile
    auto it = jobs_.find(token);
    if (it == jobs_.end()) return;  // job deleted meanwhile
    auto action_it = group_ptr->actions.find(id);
    if (action_it == group_ptr->actions.end()) return;
    ActionRun& run = action_it->second;
    if (ajo::is_terminal(run.status) || run.dispatched) return;
    if (group_ptr->held) {
      run.status = ActionStatus::kHeld;
      run.outcome.status = ActionStatus::kHeld;
      return;
    }
    dispatch_action(*it->second, *group_ptr, run);
  });
}

void Njs::dispatch_action(JobRun& job, GroupRun& group, ActionRun& run) {
  run.dispatched = true;
  run.outcome.submitted_at = engine_.now();
  if (dispatch_latency_hist_ && run.ready_at >= 0)
    dispatch_latency_hist_->observe(
        sim::to_seconds(engine_.now() - run.ready_at));
  // One span per action, named after its lifecycle phase; sub-jobs name
  // theirs in dispatch_subjob (local vs PeerLink hop).
  const char* phase = nullptr;
  switch (run.action->type()) {
    case ActionType::kCompileTask:
    case ActionType::kLinkTask:
    case ActionType::kUserTask:
    case ActionType::kExecuteScriptTask:
      phase = "submit";
      break;
    case ActionType::kImportTask:
      phase = "stage-in";
      break;
    case ActionType::kExportTask:
      phase = "stage-out";
      break;
    case ActionType::kTransferTask:
      phase = "transfer";
      break;
    default:
      break;
  }
  if (phase != nullptr) {
    run.span = job.trace.begin(phase, engine_.now(), group.span);
    job.trace.annotate(run.span, "action", run.action->name());
  }
  switch (run.action->type()) {
    case ActionType::kCompileTask:
    case ActionType::kLinkTask:
    case ActionType::kUserTask:
    case ActionType::kExecuteScriptTask:
      dispatch_execute(job, group, run);
      break;
    case ActionType::kImportTask:
    case ActionType::kExportTask:
    case ActionType::kTransferTask:
      dispatch_file_task(job, group, run);
      break;
    case ActionType::kAbstractJobObject:
      dispatch_subjob(job, group, run);
      break;
    default:
      complete_action(job, group, run, ActionStatus::kNotSuccessful,
                      "services cannot appear inside a job graph");
      break;
  }
}

batch::BatchSubsystem::CompletionHandler Njs::make_batch_handler(
    JobToken token, GroupRun* group_ptr, ActionId id, bool recovered) {
  return [this, token, group_ptr, id, recovered,
          epoch = epoch_](batch::BatchJobId, const batch::BatchResult& result) {
    if (epoch != epoch_) return;
    auto it = jobs_.find(token);
    if (it == jobs_.end()) return;
    auto action_it = group_ptr->actions.find(id);
    if (action_it == group_ptr->actions.end()) return;
    ActionRun& run = action_it->second;
    if (ajo::is_terminal(run.status)) return;

    JobRun& job_run = *it->second;
    run.outcome.started_at = result.started_at;
    if (run.span != 0 && result.started_at >= result.submitted_at &&
        result.started_at >= 0) {
      job_run.trace.record("queue-wait", result.submitted_at,
                           result.started_at, run.span);
      if (result.finished_at >= result.started_at)
        job_run.trace.record("batch-run", result.started_at,
                             result.finished_at, run.span);
    }
    // Re-attached jobs may have been (partly) accounted before the
    // crash; skip them so a restart can never double-charge (at-most-
    // once accounting, see docs/FAULTS.md).
    if (!recovered && result.started_at >= 0 &&
        result.finished_at > result.started_at) {
      const auto& task =
          static_cast<const ajo::AbstractTaskObject&>(*run.action);
      double cpu_seconds =
          sim::to_seconds(result.finished_at - result.started_at) *
          static_cast<double>(task.resource_request().processors);
      accounting_[job_run.user.login] += cpu_seconds;
      metrics_
          ->counter("unicore_njs_accounting_cpu_seconds_total",
                    {{"usite", usite_}, {"login", job_run.user.login}})
          .add(cpu_seconds);
    }
    ajo::ExecuteOutcome detail;
    detail.exit_code = result.exit_code;
    detail.stdout_text = result.stdout_text;
    detail.stderr_text = result.stderr_text;
    run.outcome.detail = std::move(detail);

    ActionStatus status;
    std::string message;
    switch (result.state) {
      case batch::BatchJobState::kCompleted:
        status = result.exit_code == 0 ? ActionStatus::kSuccessful
                                       : ActionStatus::kNotSuccessful;
        if (result.exit_code != 0)
          message = "exit code " + std::to_string(result.exit_code);
        break;
      case batch::BatchJobState::kKilled:
        status = ActionStatus::kNotSuccessful;
        message = "killed at wallclock limit";
        break;
      case batch::BatchJobState::kFailed:
        status = ActionStatus::kNotSuccessful;
        message = "execution failed: " + result.stderr_text;
        break;
      case batch::BatchJobState::kCancelled:
        status = ActionStatus::kAborted;
        message = "cancelled";
        break;
      default:
        status = ActionStatus::kNotSuccessful;
        message = "unexpected batch state";
        break;
    }
    complete_action(*it->second, *group_ptr, run, status, std::move(message));
  };
}

void Njs::dispatch_execute(JobRun& job, GroupRun& group, ActionRun& run) {
  if (group.runtime == nullptr) {
    complete_action(job, group, run, ActionStatus::kNotSuccessful,
                    "no destination system for task");
    return;
  }

  // Crash recovery: the journal says this action already reached a batch
  // queue — re-attach to that submission instead of duplicating it.
  auto rec = recovered_batch_.find({job.token, action_path(group,
                                                          run.action->id())});
  if (rec != recovered_batch_.end()) {
    batch::BatchJobId batch_id = rec->second;
    recovered_batch_.erase(rec);
    auto reattached = group.runtime->subsystem->reattach(
        batch_id,
        make_batch_handler(job.token, &group, run.action->id(),
                           /*recovered=*/true));
    if (reattached.ok()) {
      run.batch_id = batch_id;
      run.recovered = true;
      run.status = ActionStatus::kQueued;
      run.outcome.status = ActionStatus::kQueued;
      if (reattach_counter_) reattach_counter_->increment();
      job.trace.record("batch-reattach", engine_.now(), engine_.now(),
                       run.span);
      return;
    }
    // The batch job vanished (e.g. the subsystem itself was reset):
    // fall through to a fresh submission.
  }

  dispatch_execute_attempt(job, group, run, 1);
}

void Njs::dispatch_execute_attempt(JobRun& job, GroupRun& group,
                                   ActionRun& run, int attempt) {
  // A dead Vsite fails fast instead of wedging the graph behind full
  // backoff ladders for every action.
  if (!group.runtime->breaker.allow(engine_.now())) {
    complete_action(job, group, run, ActionStatus::kNotSuccessful,
                    "vsite circuit open: " +
                        group.runtime->config.system.vsite);
    return;
  }
  const auto& task = static_cast<const ajo::AbstractTaskObject&>(*run.action);
  auto incarnated = incarnate(task, group.runtime->config.system,
                              group.runtime->table, job.job.account_group);
  if (!incarnated) {
    complete_action(job, group, run, ActionStatus::kNotSuccessful,
                    incarnated.error().message);
    return;
  }
  incarnated.value().spec.workspace = group.workspace;
  job.trace.record("incarnate", engine_.now(), engine_.now(), run.span);

  JobToken token = job.token;
  GroupRun* group_ptr = &group;
  ActionId id = run.action->id();
  auto submitted = group.runtime->subsystem->submit(
      incarnated.value().script, job.user.login,
      std::move(incarnated.value().spec),
      make_batch_handler(token, group_ptr, id, /*recovered=*/false));
  if (!submitted) {
    if (submitted.error().code == ErrorCode::kUnavailable)
      group.runtime->breaker.record_failure(engine_.now());
    if (util::is_retryable(submitted.error().code) &&
        attempt < batch_backoff_.max_attempts) {
      ++batch_retries_;
      if (batch_retry_counter_) batch_retry_counter_->increment();
      job.trace.record("batch-retry", engine_.now(), engine_.now(), run.span);
      sim::Time delay = backoff_delay_us(batch_backoff_, attempt, rng_);
      engine_.after(delay, [this, token, group_ptr, id, attempt,
                            epoch = epoch_] {
        if (epoch != epoch_) return;
        auto it = jobs_.find(token);
        if (it == jobs_.end()) return;
        auto action_it = group_ptr->actions.find(id);
        if (action_it == group_ptr->actions.end()) return;
        ActionRun& run = action_it->second;
        if (ajo::is_terminal(run.status)) return;
        dispatch_execute_attempt(*it->second, *group_ptr, run, attempt + 1);
      });
      return;
    }
    complete_action(job, group, run, ActionStatus::kNotSuccessful,
                    submitted.error().message);
    return;
  }
  group.runtime->breaker.record_success();
  run.batch_id = submitted.value();
  run.status = ActionStatus::kQueued;
  run.outcome.status = ActionStatus::kQueued;
  if (Journal* journal = journal_for(token))
    journal->record_batch_submitted(token,
                                    action_path(group, run.action->id()),
                                    run.batch_id);
}

void Njs::dispatch_file_task(JobRun& job, GroupRun& group, ActionRun& run) {
  JobToken token = job.token;
  GroupRun* group_ptr = &group;
  ActionId id = run.action->id();
  run.status = ActionStatus::kRunning;
  run.outcome.status = ActionStatus::kRunning;
  run.outcome.started_at = engine_.now();

  auto finish = [this, token, group_ptr, id,
                 epoch = epoch_](ActionStatus status, std::string message,
                                 ajo::FileOutcome detail) {
    if (epoch != epoch_) return;
    auto it = jobs_.find(token);
    if (it == jobs_.end()) return;
    auto action_it = group_ptr->actions.find(id);
    if (action_it == group_ptr->actions.end()) return;
    ActionRun& run = action_it->second;
    if (ajo::is_terminal(run.status)) return;
    run.outcome.detail = std::move(detail);
    complete_action(*it->second, *group_ptr, run, status, std::move(message));
  };

  switch (run.action->type()) {
    case ActionType::kImportTask: {
      const auto& import = static_cast<const ajo::ImportTask&>(*run.action);
      uspace::FileBlob blob;
      if (import.source == ajo::ImportTask::Source::kUserWorkstation) {
        blob = uspace::FileBlob::from_bytes(import.inline_content);
      } else {
        if (group.runtime == nullptr)
          return finish(ActionStatus::kNotSuccessful,
                        "no Xspace available for import", {});
        const uspace::Volume* volume =
            group.runtime->xspace.find_volume(import.xspace_source.volume);
        if (volume == nullptr)
          return finish(ActionStatus::kNotSuccessful,
                        "no such volume: " + import.xspace_source.volume, {});
        auto read = volume->read(import.xspace_source.path);
        if (!read)
          return finish(ActionStatus::kNotSuccessful, read.error().message,
                        {});
        blob = std::move(read.value());
      }
      std::uint64_t bytes = blob.size();
      std::string name = import.uspace_name;
      // Capture the workspace by shared_ptr: the GroupRun may be gone
      // (job deleted, NJS restarted) by the time the write lands.
      engine_.after(staging_delay(group, bytes),
                    [workspace = group.workspace, finish, name,
                     blob = std::move(blob), bytes]() mutable {
                      auto status = workspace->write(
                          name, std::move(blob));
                      if (!status.ok())
                        finish(ActionStatus::kNotSuccessful,
                               status.error().message, {});
                      else
                        finish(ActionStatus::kSuccessful, "",
                               {{name}, bytes});
                    });
      return;
    }
    case ActionType::kExportTask: {
      const auto& export_task =
          static_cast<const ajo::ExportTask&>(*run.action);
      auto read = group.workspace->read(export_task.uspace_name);
      if (!read)
        return finish(ActionStatus::kNotSuccessful, read.error().message, {});
      if (group.runtime == nullptr)
        return finish(ActionStatus::kNotSuccessful,
                      "no Xspace available for export", {});
      uspace::Volume* volume =
          group.runtime->xspace.find_volume(export_task.destination.volume);
      if (volume == nullptr)
        return finish(ActionStatus::kNotSuccessful,
                      "no such volume: " + export_task.destination.volume,
                      {});
      std::uint64_t bytes = read.value().size();
      std::string path = export_task.destination.path;
      engine_.after(staging_delay(group, bytes),
                    [finish, volume, path, blob = std::move(read.value()),
                     bytes]() mutable {
                      auto status = volume->write(path, std::move(blob));
                      if (!status.ok())
                        finish(ActionStatus::kNotSuccessful,
                               status.error().message, {});
                      else
                        finish(ActionStatus::kSuccessful, "",
                               {{path}, bytes});
                    });
      return;
    }
    case ActionType::kTransferTask: {
      const auto& transfer =
          static_cast<const ajo::TransferTask&>(*run.action);
      // Shared read: the blob may sit in this workspace, the target
      // workspace, and a chunked transfer's flight window at once —
      // one allocation serves all of them.
      auto read = group.workspace->read_shared(transfer.uspace_name);
      if (!read)
        return finish(ActionStatus::kNotSuccessful, read.error().message, {});
      std::shared_ptr<const uspace::FileBlob> blob = std::move(read.value());
      std::uint64_t bytes = blob->size();
      std::string target_name = transfer.rename_to.empty()
                                    ? transfer.uspace_name
                                    : transfer.rename_to;
      auto target_it = group.actions.find(transfer.target_job);
      if (target_it == group.actions.end())
        return finish(ActionStatus::kNotSuccessful,
                      "transfer target not found", {});
      ActionRun& target = target_it->second;
      if (ajo::is_terminal(target.status))
        return finish(ActionStatus::kNotSuccessful,
                      "transfer target already finished", {});

      if (target.subgroup != nullptr) {
        // Local sub-job, already running: a local Uspace-to-Uspace copy.
        auto workspace = target.subgroup->workspace;
        engine_.after(staging_delay(group, bytes),
                      [finish, workspace, target_name, blob = std::move(blob),
                       bytes]() mutable {
                        auto status = workspace->write_shared(target_name,
                                                              std::move(blob));
                        if (!status.ok())
                          finish(ActionStatus::kNotSuccessful,
                                 status.error().message, {});
                        else
                          finish(ActionStatus::kSuccessful, "",
                                 {{target_name}, bytes});
                      });
      } else if (target.remote.has_value()) {
        // Remote sub-job: NJS–NJS transfer via the gateways (§5.6).
        if (peer_link_ == nullptr)
          return finish(ActionStatus::kNotSuccessful,
                        "no peer link configured", {});
        peer_link_->deliver_file(
            *target.remote, target_name, std::move(blob),
            [finish, target_name, bytes](Status status) {
              if (!status.ok())
                finish(ActionStatus::kNotSuccessful, status.error().message,
                       {});
              else
                finish(ActionStatus::kSuccessful, "", {{target_name}, bytes});
            });
      } else {
        // Sub-job not dispatched yet: stage the file; it travels with the
        // sub-job's consignment (by value: it crosses the wire there).
        target.staged_files[target_name] = *blob;
        finish(ActionStatus::kSuccessful, "staged for sub-job dispatch",
               {{target_name}, bytes});
      }
      return;
    }
    default:
      finish(ActionStatus::kNotSuccessful, "not a file task", {});
  }
}

void Njs::dispatch_subjob(JobRun& job, GroupRun& group, ActionRun& run) {
  auto& sub = static_cast<ajo::AbstractJobObject&>(*run.action);
  bool remote = !sub.usite.empty() && sub.usite != usite_;

  run.span = job.trace.begin(remote ? "peer-consign" : "subjob", engine_.now(),
                             group.span);
  job.trace.annotate(run.span, "action", run.action->name());
  if (remote) job.trace.annotate(run.span, "usite", sub.usite);

  // Collect the dependency files that must accompany the sub-job.
  std::vector<std::pair<std::string, uspace::FileBlob>> staged;
  for (const ajo::Dependency& dep : group.group->dependencies()) {
    if (dep.successor != run.action->id()) continue;
    for (const std::string& file : dep.files) {
      auto blob = group.workspace->read(file);
      if (!blob) {
        complete_action(job, group, run, ActionStatus::kNotSuccessful,
                        "dependency file missing: " + file);
        return;
      }
      staged.emplace_back(file, std::move(blob.value()));
    }
  }
  for (auto& [name, blob] : run.staged_files)
    staged.emplace_back(name, std::move(blob));
  run.staged_files.clear();

  if (!remote) {
    run.subgroup = std::make_unique<GroupRun>();
    run.subgroup->group = &sub;
    run.subgroup->parent = &group;
    run.subgroup->owner = &run;
    run.subgroup->span = run.span;
    run.status = ActionStatus::kRunning;
    run.outcome.status = ActionStatus::kRunning;
    run.outcome.started_at = engine_.now();
    if (auto status = start_group(job, *run.subgroup); !status.ok()) {
      complete_action(job, group, run, ActionStatus::kNotSuccessful,
                      status.error().message);
      return;
    }
    for (auto& [name, blob] : staged)
      (void)run.subgroup->workspace->write(name, std::move(blob));
    // An empty sub-job is immediately successful.
    if (run.subgroup->open_actions == 0 && !ajo::is_terminal(run.status))
      complete_action(job, group, run, ActionStatus::kSuccessful, "");
    return;
  }

  // Remote: endorse and consign to the peer Usite.
  if (peer_link_ == nullptr) {
    complete_action(job, group, run, ActionStatus::kNotSuccessful,
                    "no peer link to reach " + sub.usite);
    return;
  }
  ForwardedConsignment consignment;
  consignment.job = sub;
  consignment.user_certificate = job.user_certificate;
  consignment.consignor_certificate = credential_.certificate;
  consignment.signature = crypto::sign_message(
      credential_.key,
      ForwardedConsignment::signing_input(consignment.job,
                                          consignment.user_certificate));
  consignment.staged_files = std::move(staged);

  run.status = ActionStatus::kConsigned;
  run.outcome.status = ActionStatus::kConsigned;

  JobToken token = job.token;
  GroupRun* group_ptr = &group;
  ActionId id = run.action->id();
  peer_link_->consign(
      sub.usite, consignment,
      [this, token, group_ptr, id, epoch = epoch_](
          Result<RemoteJobHandle> handle) {
        if (epoch != epoch_) return;
        auto it = jobs_.find(token);
        if (it == jobs_.end()) return;
        auto action_it = group_ptr->actions.find(id);
        if (action_it == group_ptr->actions.end()) return;
        ActionRun& run = action_it->second;
        if (ajo::is_terminal(run.status)) return;
        if (!handle) {
          complete_action(*it->second, *group_ptr, run,
                          ActionStatus::kNotSuccessful,
                          "remote consignment rejected: " +
                              handle.error().message);
          return;
        }
        run.remote = handle.value();
        run.outcome.started_at = engine_.now();
        it->second->trace.record("remote-accept", engine_.now(), engine_.now(),
                                 run.span);
      },
      [this, token, group_ptr, id, epoch = epoch_](ajo::Outcome outcome) {
        if (epoch != epoch_) return;
        auto it = jobs_.find(token);
        if (it == jobs_.end()) return;
        auto action_it = group_ptr->actions.find(id);
        if (action_it == group_ptr->actions.end()) return;
        ActionRun& run = action_it->second;
        if (ajo::is_terminal(run.status)) return;
        run.outcome.children = std::move(outcome.children);
        complete_action(*it->second, *group_ptr, run, outcome.status,
                        std::move(outcome.message));
      });
}

void Njs::complete_action(JobRun& job, GroupRun& group, ActionRun& run,
                          ActionStatus status, std::string message) {
  if (ajo::is_terminal(run.status)) return;
  run.status = status;
  run.outcome.status = status;
  run.outcome.message = std::move(message);
  run.outcome.finished_at = engine_.now();
  if (run.span != 0) {
    job.trace.annotate(run.span, "status", ajo::action_status_name(status));
    job.trace.end(run.span, engine_.now());
  }
  if (Journal* journal = journal_for(job.token))
    journal->record_action_state(job.token,
                                 action_path(group, run.outcome.action),
                                 status);
  --group.open_actions;

  if (status == ActionStatus::kSuccessful)
    process_edges(job, group, run);
  else
    propagate_failure(job, group, run);

  if (group.open_actions == 0) {
    // The whole group finished: report it as its owner's result.
    ActionStatus aggregate = aggregate_status(group);
    if (group.owner != nullptr) {
      GroupRun& parent = *group.parent;
      if (!ajo::is_terminal(group.owner->status))
        complete_action(job, parent, *group.owner, aggregate,
                        aggregate == ActionStatus::kSuccessful
                            ? ""
                            : "job group had unsuccessful actions");
    } else {
      finalize_if_done(job);
    }
  }
}

void Njs::propagate_failure(JobRun& job, GroupRun& group, ActionRun& failed) {
  for (const ajo::Dependency* dep : failed.outgoing) {
    auto it = group.actions.find(dep->successor);
    if (it == group.actions.end()) continue;
    ActionRun& successor = it->second;
    if (ajo::is_terminal(successor.status)) continue;
    complete_action(job, group, successor, ActionStatus::kNeverRun,
                    "predecessor " + std::to_string(failed.action->id()) +
                        " did not succeed");
  }
}

void Njs::process_edges(JobRun& job, GroupRun& group, ActionRun& completed) {
  for (const ajo::Dependency* dep : completed.outgoing) {
    if (!group.actions.count(dep->successor)) continue;
    JobToken token = job.token;
    GroupRun* group_ptr = &group;
    ActionId successor_id = dep->successor;

    auto on_staged = [this, token, group_ptr, successor_id,
                      epoch = epoch_](Status status) {
      if (epoch != epoch_) return;
      auto job_it = jobs_.find(token);
      if (job_it == jobs_.end()) return;
      auto action_it = group_ptr->actions.find(successor_id);
      if (action_it == group_ptr->actions.end()) return;
      ActionRun& successor = action_it->second;
      if (ajo::is_terminal(successor.status)) return;
      if (!status.ok()) {
        complete_action(*job_it->second, *group_ptr, successor,
                        ActionStatus::kNotSuccessful,
                        "dependency data unavailable: " +
                            status.error().message);
        return;
      }
      if (--successor.pending_predecessors == 0)
        dispatch_ready(*job_it->second, *group_ptr, successor);
    };

    stage_edge_files_async(job, group, completed, dep->files, on_staged);
  }
}

// Materialises the dependency files produced by `predecessor` into the
// group workspace ("UNICORE then guarantees that the specified data sets
// created by the predecessor are available to the successor", §5.7).
void Njs::stage_edge_files_async(JobRun& job, GroupRun& group,
                                 ActionRun& predecessor,
                                 const std::vector<std::string>& files,
                                 std::function<void(Status)> done) {
  if (files.empty()) {
    done(Status::ok_status());
    return;
  }

  // Case 1: predecessor was a task of this group — its outputs are
  // already in the group workspace; verify they exist.
  if (!predecessor.action->is_job()) {
    for (const std::string& file : files) {
      if (!group.workspace->exists(file)) {
        done(util::make_error(ErrorCode::kNotFound,
                              "declared dependency file missing: " + file));
        return;
      }
    }
    done(Status::ok_status());
    return;
  }

  // Case 2: predecessor was a local sub-job — share from its Uspace
  // (blobs are immutable; no byte copy).
  if (predecessor.subgroup != nullptr) {
    for (const std::string& file : files) {
      auto blob = predecessor.subgroup->workspace->read_shared(file);
      if (!blob) {
        done(util::make_error(ErrorCode::kNotFound,
                              "sub-job did not produce file: " + file));
        return;
      }
      if (auto status =
              group.workspace->write_shared(file, std::move(blob.value()));
          !status.ok()) {
        done(status);
        return;
      }
    }
    done(Status::ok_status());
    return;
  }

  // Case 3: predecessor ran at a remote Usite — fetch the files over the
  // NJS–NJS link, one by one.
  if (!predecessor.remote.has_value() || peer_link_ == nullptr) {
    done(util::make_error(ErrorCode::kUnavailable,
                          "remote sub-job handle unavailable"));
    return;
  }
  auto handle = *predecessor.remote;
  JobToken token = job.token;
  GroupRun* group_ptr = &group;

  // One fetch_files call for the whole dependency set: a bundle-capable
  // peer link answers it with one manifest round trip (docs/DATA.md §3);
  // the PeerLink default degrades to sequential per-file fetches.
  peer_link_->fetch_files(
      handle, files,
      [this, token, group_ptr, names = files, done, epoch = epoch_](
          Result<std::vector<uspace::FileBlob>> blobs) {
        if (epoch != epoch_) return;
        auto it = jobs_.find(token);
        if (it == jobs_.end()) return;
        if (!blobs) {
          done(util::make_error(ErrorCode::kNotFound,
                                "remote dependency files unavailable: " +
                                    blobs.error().message));
          return;
        }
        if (blobs.value().size() != names.size()) {
          done(util::make_error(ErrorCode::kInternal,
                                "dependency fetch returned " +
                                    std::to_string(blobs.value().size()) +
                                    " files, expected " +
                                    std::to_string(names.size())));
          return;
        }
        for (std::size_t i = 0; i < names.size(); ++i) {
          if (auto status = group_ptr->workspace->write(
                  names[i], std::move(blobs.value()[i]));
              !status.ok()) {
            done(status);
            return;
          }
        }
        done(Status::ok_status());
      });
}

void Njs::finalize_if_done(JobRun& job) {
  if (job.finalized) return;
  if (job.root.open_actions != 0) return;
  job.finalized = true;
  ++jobs_completed_;
  if (completed_counter_) completed_counter_->increment();
  if (job_duration_hist_)
    job_duration_hist_->observe(
        sim::to_seconds(engine_.now() - job.consigned_at));
  ActionStatus aggregate = aggregate_status(job.root);
  if (job.root.span != 0) {
    job.trace.record("outcome", engine_.now(), engine_.now(), job.root.span);
    job.trace.annotate(job.root.span, "status",
                       ajo::action_status_name(aggregate));
    job.trace.end(job.root.span, engine_.now());
  }
  UNICORE_INFO("njs/" + usite_)
      << "job " << job.token << " finished: "
      << ajo::action_status_name(aggregate);
  if (Journal* journal = journal_for(job.token))
    journal->record_finalized(
        job.token,
        build_outcome(job, job.root, ajo::QueryService::Detail::kTasks));
  if (job.on_final) {
    auto outcome = build_outcome(job, job.root,
                                 ajo::QueryService::Detail::kTasks);
    auto handler = std::move(job.on_final);
    job.on_final = nullptr;
    handler(job.token, outcome);
  }
  // With a storage policy set, a finishing job may tip the combined
  // terminal-storage bytes over the line; the oldest storages go first,
  // so this job's own outputs survive as long as the quota allows.
  clean_job_storages();
}

ajo::ActionStatus Njs::aggregate_status(const GroupRun& group) const {
  bool all_terminal = true;
  bool any_active = false;
  bool any_failed = false;
  bool any_aborted = false;
  for (const auto& [id, run] : group.actions) {
    if (!ajo::is_terminal(run.status)) {
      all_terminal = false;
      if (run.status == ActionStatus::kQueued ||
          run.status == ActionStatus::kRunning ||
          run.status == ActionStatus::kConsigned)
        any_active = true;
    }
    if (run.status == ActionStatus::kNotSuccessful ||
        run.status == ActionStatus::kNeverRun)
      any_failed = true;
    if (run.status == ActionStatus::kAborted) any_aborted = true;
  }
  if (!all_terminal) return any_active ? ActionStatus::kRunning
                                       : ActionStatus::kPending;
  if (any_aborted) return ActionStatus::kAborted;
  if (any_failed) return ActionStatus::kNotSuccessful;
  return ActionStatus::kSuccessful;
}

ajo::Outcome Njs::build_outcome(const JobRun& job, const GroupRun& group,
                                ajo::QueryService::Detail detail) const {
  ajo::Outcome node;
  node.action = group.group->id();
  node.type = ActionType::kAbstractJobObject;
  node.name = group.group->name();
  node.status = aggregate_status(group);
  node.submitted_at = job.consigned_at;

  if (detail == ajo::QueryService::Detail::kSummary) return node;

  for (const auto& child : group.group->children()) {
    const ActionRun& run = group.actions.at(child->id());
    if (run.subgroup != nullptr) {
      ajo::Outcome sub = build_outcome(job, *run.subgroup, detail);
      sub.action = child->id();
      sub.name = child->name();
      // While the sub-group runs, show the live aggregate; once its
      // owner action is terminal, prefer the recorded result.
      if (ajo::is_terminal(run.status)) {
        sub.status = run.status;
        sub.message = run.outcome.message;
        sub.finished_at = run.outcome.finished_at;
      }
      node.children.push_back(std::move(sub));
      continue;
    }
    if (child->is_job()) {
      // Remote sub-job: one node carrying the remote outcome subtree.
      ajo::Outcome sub = run.outcome;
      if (detail == ajo::QueryService::Detail::kJobGroups)
        sub.children.clear();
      node.children.push_back(std::move(sub));
      continue;
    }
    if (detail == ajo::QueryService::Detail::kJobGroups) continue;
    ajo::Outcome leaf = run.outcome;
    // Map QUEUED to RUNNING live when the batch system started the job.
    if (run.status == ActionStatus::kQueued && group.runtime != nullptr) {
      auto state = group.runtime->subsystem->state(run.batch_id);
      if (state && state.value() == batch::BatchJobState::kRunning)
        leaf.status = ActionStatus::kRunning;
    }
    node.children.push_back(std::move(leaf));
  }
  return node;
}

// ---- crash recovery --------------------------------------------------------

void Njs::set_journal(std::shared_ptr<Journal> journal) {
  journal_ = std::move(journal);
}

void Njs::set_token_partition(std::uint64_t partition) {
  partition_ = partition;
  next_token_ = std::max(next_token_, token_partition_base(partition) + 1);
}

Journal* Njs::journal_for(ajo::JobToken token) const {
  if (adopted_journals_.empty()) return journal_.get();
  auto it = adopted_journals_.find(njs::token_partition(token));
  if (it != adopted_journals_.end()) return it->second.get();
  return journal_.get();
}

std::vector<Journal*> Njs::all_journals() const {
  std::vector<Journal*> out;
  if (journal_ != nullptr) out.push_back(journal_.get());
  for (const auto& [partition, journal] : adopted_journals_)
    if (journal != nullptr) out.push_back(journal.get());
  return out;
}

std::optional<ajo::JobToken> Njs::consign_key_lookup(
    const util::Bytes& key) const {
  auto it = consign_keys_.find(key);
  if (it == consign_keys_.end()) return std::nullopt;
  return it->second;
}

std::shared_ptr<uspace::Uspace> Njs::make_workspace(
    ajo::JobToken token, const std::string& directory,
    std::uint64_t quota_bytes) {
  if (Journal* journal = journal_for(token))
    return journal->workspace(directory, quota_bytes);
  return std::make_shared<uspace::Uspace>(directory, quota_bytes);
}

std::string Njs::action_path(const GroupRun& group, ActionId id) {
  std::vector<const GroupRun*> chain;
  for (const GroupRun* g = &group; g != nullptr; g = g->parent)
    chain.push_back(g);
  std::string path;
  for (auto it = chain.rbegin(); it != chain.rend(); ++it)
    path += "g" + std::to_string((*it)->group->id()) + "/";
  path += "a" + std::to_string(id);
  return path;
}

void Njs::crash() {
  // The NJS process dies: every in-memory JobRun, dedupe key, and
  // pending callback is gone. Bumping the epoch invalidates callbacks
  // already queued inside the engine or held by the batch subsystems.
  ++epoch_;
  jobs_.clear();
  consign_keys_.clear();
  recovered_batch_.clear();
  for (CrashParticipant* participant : crash_participants_)
    participant->on_njs_crash();
  UNICORE_INFO("njs/" + usite_) << "simulated crash (epoch " << epoch_ << ")";
}

std::size_t Njs::replay_journal(Journal& journal, bool own_partition) {
  std::size_t recovered = 0;
  for (auto& image : journal.recover()) {
    if (own_partition) next_token_ = std::max(next_token_, image.token + 1);
    if (jobs_.count(image.token) != 0) continue;  // already live

    if (image.outcome.has_value()) {
      // Terminal before the crash: restore the record, not the run
      // tree, so queries and output reads keep working.
      auto run = std::make_unique<JobRun>();
      run->token = image.token;
      run->job = std::move(image.job);
      run->user = std::move(image.user);
      run->user_certificate = std::move(image.user_certificate);
      run->consigned_at = image.consigned_at;
      run->finalized = true;
      run->idempotency_key = image.idempotency_key;
      run->recovered_outcome = std::move(*image.outcome);
      run->root.group = &run->job;
      std::string directory = usite_ + "/job" + std::to_string(run->token) +
                              "/g" + std::to_string(run->job.id());
      std::uint64_t quota = 0;
      if (auto it = vsites_.find(run->job.vsite); it != vsites_.end())
        quota = it->second->config.uspace_quota_bytes;
      run->root.workspace = make_workspace(run->token, directory, quota);
      if (!image.idempotency_key.empty())
        consign_keys_[image.idempotency_key] = image.token;
      jobs_[image.token] = std::move(run);
      ++recovered;
      continue;
    }

    // Still live at the crash: re-admit through the normal dispatch
    // path. Actions whose batch submissions are journaled re-attach in
    // dispatch_execute; everything else replays idempotently against
    // the durable workspaces.
    for (auto& [path, batch_id] : image.batch_ids)
      recovered_batch_[{image.token, path}] = batch_id;
    auto admitted =
        admit(image.token, image.job, image.user, image.user_certificate,
              nullptr, std::move(image.staged_files), image.idempotency_key,
              /*journal_it=*/false);
    if (!admitted) {
      UNICORE_WARN("njs/" + usite_)
          << "recovery of job " << image.token
          << " failed: " << admitted.error().message;
      continue;
    }
    auto it = jobs_.find(image.token);
    if (it != jobs_.end()) {
      it->second->consigned_at = image.consigned_at;
      it->second->trace.annotate(it->second->root.span, "recovered", "true");
    }
    ++recovered;
  }
  return recovered;
}

Result<std::size_t> Njs::recover() {
  if (journal_ == nullptr)
    return util::make_error(ErrorCode::kFailedPrecondition,
                            "no journal attached");
  std::size_t recovered = replay_journal(*journal_, /*own_partition=*/true);
  // Partitions adopted before the crash come back too — their journals
  // are this replica's responsibility now.
  for (auto& [partition, journal] : adopted_journals_)
    recovered += replay_journal(*journal, /*own_partition=*/false);
  recoveries_ += recovered;
  if (recoveries_counter_ && recovered > 0)
    recoveries_counter_->add(static_cast<double>(recovered));
  // Jobs are back; now let co-resident subsystems (the transfer engine)
  // fold their own journal records against them.
  for (CrashParticipant* participant : crash_participants_)
    participant->on_njs_recover();
  UNICORE_INFO("njs/" + usite_)
      << "recovered " << recovered << " job(s) from " << journal_->records()
      << " journal record(s)";
  return recovered;
}

Result<std::size_t> Njs::adopt(std::uint64_t partition,
                               std::shared_ptr<Journal> journal) {
  if (journal == nullptr)
    return util::make_error(ErrorCode::kInvalidArgument,
                            "adopt: no journal given");
  if (partition == partition_)
    return util::make_error(ErrorCode::kInvalidArgument,
                            "adopt: partition " + std::to_string(partition) +
                                " is this replica's own");
  auto [it, inserted] = adopted_journals_.emplace(partition, journal);
  if (!inserted)
    return util::make_error(ErrorCode::kFailedPrecondition,
                            "partition " + std::to_string(partition) +
                                " already adopted here");
  std::size_t adopted = replay_journal(*journal, /*own_partition=*/false);
  ++adoptions_;
  for (CrashParticipant* participant : crash_participants_)
    participant->on_njs_adopt(*journal);
  UNICORE_INFO("njs/" + usite_)
      << "adopted partition " << partition << ": " << adopted
      << " job(s) from " << journal->records() << " journal record(s)";
  return adopted;
}

// ---- public services -------------------------------------------------------

Result<ajo::Outcome> Njs::query(JobToken token,
                                ajo::QueryService::Detail detail) const {
  auto it = jobs_.find(token);
  if (it == jobs_.end())
    return util::make_error(ErrorCode::kNotFound,
                            "no such job: " + std::to_string(token));
  if (it->second->recovered_outcome.has_value()) {
    ajo::Outcome outcome = *it->second->recovered_outcome;
    if (detail == ajo::QueryService::Detail::kSummary) outcome.children.clear();
    return outcome;
  }
  return build_outcome(*it->second, it->second->root, detail);
}

Result<crypto::DistinguishedName> Njs::owner(JobToken token) const {
  auto it = jobs_.find(token);
  if (it == jobs_.end())
    return util::make_error(ErrorCode::kNotFound,
                            "no such job: " + std::to_string(token));
  return it->second->user.dn;
}

std::vector<JobSummary> Njs::list(
    const crypto::DistinguishedName& user) const {
  std::vector<JobSummary> out;
  for (const auto& [token, job] : jobs_) {
    if (job->user.dn != user) continue;
    JobSummary summary;
    summary.token = token;
    summary.name = job->job.name();
    summary.status = job->recovered_outcome.has_value()
                         ? job->recovered_outcome->status
                         : aggregate_status(job->root);
    summary.consigned_at = job->consigned_at;
    out.push_back(std::move(summary));
  }
  return out;
}

void Njs::abort_group(JobRun& job, GroupRun& group) {
  // Take a snapshot of ids: complete_action mutates the counters and can
  // cascade into parents.
  std::vector<ActionId> ids;
  ids.reserve(group.actions.size());
  for (const auto& [id, run] : group.actions) ids.push_back(id);
  for (ActionId id : ids) {
    ActionRun& run = group.actions.at(id);
    if (ajo::is_terminal(run.status)) continue;
    switch (run.status) {
      case ActionStatus::kQueued:
      case ActionStatus::kRunning:
        if (run.batch_id != 0 && group.runtime != nullptr) {
          // Cancellation completes the action through the batch handler.
          (void)group.runtime->subsystem->cancel(run.batch_id);
          break;
        }
        if (run.subgroup != nullptr) {
          abort_group(job, *run.subgroup);
          break;
        }
        complete_action(job, group, run, ActionStatus::kAborted, "aborted");
        break;
      case ActionStatus::kConsigned:
        if (run.remote.has_value() && peer_link_ != nullptr)
          peer_link_->control(*run.remote,
                              ajo::ControlService::Command::kAbort,
                              [](Status) {});
        complete_action(job, group, run, ActionStatus::kAborted, "aborted");
        break;
      default:
        complete_action(job, group, run, ActionStatus::kAborted, "aborted");
        break;
    }
  }
}

void Njs::set_held(GroupRun& group, bool held) {
  group.held = held;
  for (auto& [id, run] : group.actions)
    if (run.subgroup != nullptr) set_held(*run.subgroup, held);
}

Status Njs::control(JobToken token, ajo::ControlService::Command command) {
  auto it = jobs_.find(token);
  if (it == jobs_.end())
    return util::make_error(ErrorCode::kNotFound,
                            "no such job: " + std::to_string(token));
  JobRun& job = *it->second;
  switch (command) {
    case ajo::ControlService::Command::kAbort:
      abort_group(job, job.root);
      return Status::ok_status();
    case ajo::ControlService::Command::kHold:
      set_held(job.root, true);
      return Status::ok_status();
    case ajo::ControlService::Command::kRelease: {
      set_held(job.root, false);
      // Re-dispatch everything parked in HELD.
      std::function<void(GroupRun&)> release = [&](GroupRun& group) {
        for (auto& [id, run] : group.actions) {
          if (run.status == ActionStatus::kHeld) {
            run.status = ActionStatus::kPending;
            run.outcome.status = ActionStatus::kPending;
            dispatch_ready(job, group, run);
          }
          if (run.subgroup != nullptr) release(*run.subgroup);
        }
      };
      release(job.root);
      return Status::ok_status();
    }
    case ajo::ControlService::Command::kDelete: {
      ajo::ActionStatus status =
          job.recovered_outcome.has_value()
              ? job.recovered_outcome->status
              : build_outcome(job, job.root,
                              ajo::QueryService::Detail::kSummary)
                    .status;
      if (!ajo::is_terminal(status))
        return util::make_error(ErrorCode::kFailedPrecondition,
                                "job still active; abort it first");
      if (!job.idempotency_key.empty())
        consign_keys_.erase(job.idempotency_key);
      if (Journal* journal = journal_for(token)) journal->record_deleted(token);
      jobs_.erase(it);
      return Status::ok_status();
    }
  }
  return util::make_error(ErrorCode::kInvalidArgument, "unknown command");
}

Status Njs::deliver_file(JobToken token, const std::string& name,
                         uspace::FileBlob blob) {
  return deliver_file(token, name,
                      std::make_shared<const uspace::FileBlob>(std::move(blob)));
}

Status Njs::deliver_file(JobToken token, const std::string& name,
                         std::shared_ptr<const uspace::FileBlob> blob) {
  auto it = jobs_.find(token);
  if (it == jobs_.end())
    return util::make_error(ErrorCode::kNotFound,
                            "no such job: " + std::to_string(token));
  // Store-backed sites intern inbound files: identical content across
  // files and jobs is held once (the chunked transfer path arrives
  // already interned; this covers whole-blob deliveries).
  if (chunk_store_ != nullptr)
    blob = uspace::intern_blob(chunk_store_, std::move(blob));
  return it->second->root.workspace->write_shared(name, std::move(blob));
}

Result<uspace::FileBlob> Njs::fetch_file(JobToken token,
                                         const std::string& name) const {
  auto it = jobs_.find(token);
  if (it == jobs_.end())
    return util::make_error(ErrorCode::kNotFound,
                            "no such job: " + std::to_string(token));
  return it->second->root.workspace->read(name);
}

Result<std::shared_ptr<const uspace::FileBlob>> Njs::fetch_file_shared(
    JobToken token, const std::string& name) const {
  auto it = jobs_.find(token);
  if (it == jobs_.end())
    return util::make_error(ErrorCode::kNotFound,
                            "no such job: " + std::to_string(token));
  return it->second->root.workspace->read_shared(name);
}

Result<uspace::FileBlob> Njs::read_output(JobToken token,
                                          const std::string& name) const {
  return fetch_file(token, name);
}

Result<std::shared_ptr<const uspace::FileBlob>> Njs::read_output_shared(
    JobToken token, const std::string& name) const {
  return fetch_file_shared(token, name);
}

// ---- managed job storages ---------------------------------------------------

void Njs::visit_workspaces(
    const GroupRun& group, const std::string& prefix,
    const std::function<void(const std::string&, uspace::Uspace&)>& visit) {
  if (group.workspace != nullptr) visit(prefix, *group.workspace);
  for (const auto& [id, run] : group.actions) {
    if (run.subgroup == nullptr) continue;
    visit_workspaces(
        *run.subgroup,
        prefix + "g" + std::to_string(run.subgroup->group->id()) + "/",
        visit);
  }
}

StorageInfo Njs::make_storage_info(const JobRun& job) const {
  StorageInfo info;
  info.token = job.token;
  info.name = "job" + std::to_string(job.token);
  info.terminal = job.finalized;
  info.reaped = job.storage_reaped;
  info.consigned_at = job.consigned_at;
  visit_workspaces(job.root, "",
                   [&info](const std::string&, uspace::Uspace& workspace) {
                     info.used_bytes += workspace.used_bytes();
                     info.files += workspace.list().size();
                   });
  if (job.root.workspace != nullptr)
    info.quota_bytes = job.root.workspace->quota_bytes();
  return info;
}

std::vector<StorageInfo> Njs::storages(
    const crypto::DistinguishedName& user) const {
  std::vector<StorageInfo> out;
  for (const auto& [token, job] : jobs_) {
    if (job->user.dn != user) continue;
    out.push_back(make_storage_info(*job));
  }
  return out;
}

Result<StorageInfo> Njs::storage_info(JobToken token) const {
  auto it = jobs_.find(token);
  if (it == jobs_.end())
    return util::make_error(ErrorCode::kNotFound,
                            "no such job: " + std::to_string(token));
  return make_storage_info(*it->second);
}

Result<std::vector<std::string>> Njs::storage_files(JobToken token) const {
  auto it = jobs_.find(token);
  if (it == jobs_.end())
    return util::make_error(ErrorCode::kNotFound,
                            "no such job: " + std::to_string(token));
  std::vector<std::string> names;
  visit_workspaces(it->second->root, "",
                   [&names](const std::string& prefix,
                            uspace::Uspace& workspace) {
                     for (auto& name : workspace.list())
                       names.push_back(prefix + name);
                   });
  return names;
}

Result<std::uint64_t> Njs::reap_storage(JobToken token) {
  auto it = jobs_.find(token);
  if (it == jobs_.end())
    return util::make_error(ErrorCode::kNotFound,
                            "no such job: " + std::to_string(token));
  JobRun& job = *it->second;
  if (!job.finalized)
    return util::make_error(ErrorCode::kFailedPrecondition,
                            "job " + std::to_string(token) +
                                " still running: storage not reapable");
  std::uint64_t physical_before =
      chunk_store_ != nullptr ? chunk_store_->stats().physical_bytes : 0;
  std::uint64_t freed = 0;
  visit_workspaces(job.root, "",
                   [&freed](const std::string&, uspace::Uspace& workspace) {
                     freed += workspace.used_bytes();
                     for (auto& name : workspace.list())
                       (void)workspace.remove(name);
                   });
  if (!job.storage_reaped) {
    job.storage_reaped = true;
    ++storages_reaped_;
    if (storage_reap_counter_) storage_reap_counter_->increment();
  }
  std::uint64_t physical_freed = 0;
  if (chunk_store_ != nullptr) {
    // Removing the files dropped their chunk pins; chunks nobody else
    // references were freed. Physical reclaim can be less than `freed`
    // when surviving files still share chunks with the reaped ones.
    physical_freed = physical_before - chunk_store_->stats().physical_bytes;
    metrics_
        ->counter("unicore_store_reap_reclaimed_bytes_total",
                  {{"usite", usite_}})
        .add(static_cast<double>(physical_freed));
  }
  UNICORE_INFO("njs/" + usite_)
      << "reaped storage of job " << token << ": " << freed
      << " logical bytes freed"
      << (chunk_store_ != nullptr
              ? ", " + std::to_string(physical_freed) + " physical"
              : "");
  return freed;
}

std::size_t Njs::clean_job_storages() {
  if (storage_policy_.max_terminal_bytes == 0) return 0;
  // Terminal, unreaped storages oldest-first, with their current sizes.
  std::vector<std::pair<sim::Time, JobToken>> candidates;
  std::uint64_t total = 0;
  for (const auto& [token, job] : jobs_) {
    if (!job->finalized || job->storage_reaped) continue;
    std::uint64_t used = 0;
    visit_workspaces(job->root, "",
                     [&used](const std::string&, uspace::Uspace& workspace) {
                       used += workspace.used_bytes();
                     });
    total += used;
    candidates.emplace_back(job->consigned_at, token);
  }
  std::sort(candidates.begin(), candidates.end());
  std::size_t reaped = 0;
  for (const auto& [consigned_at, token] : candidates) {
    if (total <= storage_policy_.max_terminal_bytes) break;
    auto freed = reap_storage(token);
    if (!freed) continue;
    total -= freed.value() < total ? freed.value() : total;
    ++reaped;
  }
  return reaped;
}

void Njs::record_transfer_span(
    JobToken token, const std::string& name, sim::Time start, sim::Time end,
    const std::vector<std::pair<std::string, std::string>>& attributes) {
  auto it = jobs_.find(token);
  if (it == jobs_.end()) return;
  // Parent 0 (root): transfers can outlive the job phases they feed, so
  // nesting them under a lifecycle span would break trace validation.
  obs::SpanId span = it->second->trace.record(name, start, end, 0);
  for (const auto& [key, value] : attributes)
    it->second->trace.annotate(span, key, value);
}

std::size_t Njs::active_jobs() const {
  std::size_t count = 0;
  for (const auto& [token, job] : jobs_)
    if (!job->finalized) ++count;
  return count;
}

}  // namespace unicore::njs
