// The NJS write-ahead job journal (crash recovery). The paper promises
// "reliable execution of the job parts" (§5.3); the in-memory JobRun
// table alone cannot deliver that, so every consignment and every batch
// submission is first appended to a durable journal. After a crash,
// `Njs::recover()` folds the journal back into jobs: finalized jobs are
// restored with their recorded Outcome, live jobs are re-admitted
// through the normal dispatch path, and actions whose batch jobs were
// already submitted are *re-attached* instead of re-submitted — the
// journal is what makes replay idempotent.
//
// The store is pluggable: it models the NJS host's disks, so it also
// hands out the durable per-job Uspace directories that survive an NJS
// process restart (the batch subsystems and Xspace volumes live in
// other processes and keep their own state).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "ajo/job.h"
#include "ajo/outcome.h"
#include "ajo/services.h"
#include "batch/subsystem.h"
#include "crypto/x509.h"
#include "gateway/gateway.h"
#include "sim/engine.h"
#include "uspace/filespace.h"
#include "util/bytes.h"
#include "util/result.h"

namespace unicore::njs {

enum class JournalRecordType : std::uint8_t {
  kConsigned = 1,       // a job was accepted: full replay material
  kBatchSubmitted = 2,  // an action reached a batch queue
  kActionState = 3,     // per-action state transition (inspection)
  kFinalized = 4,       // the job's terminal Outcome
  kDeleted = 5,         // the owner deleted the job (do not resurrect)
  // Chunked-transfer records (owned by src/xfer/, opaque to job
  // recovery): an inbound transfer manifest, one applied chunk, and the
  // completed-transfer tombstone. See xfer/manifest.h for the codecs.
  kXferManifest = 6,
  kXferChunk = 7,
  kXferDone = 8,
  // Handoff claim (docs/SCALING.md): the named peer replica now owns
  // this journal's partition. Appended by Journal::try_claim; job
  // recovery skips it.
  kOwnerClaim = 9,
  // Bundle-transfer records (docs/DATA.md §3): ONE manifest per bundle
  // of up to kMaxBundleFiles files — the durable-write amortization
  // that pairs with the wire-side RTT amortization — then one record
  // per applied chunk tagged with its in-bundle file index, and the
  // committed-bundle tombstone.
  kXferBundleManifest = 10,
  kXferBundleChunk = 11,
  kXferBundleDone = 12,
};

const char* journal_record_type_name(JournalRecordType type);

/// One append-only entry: the token it belongs to plus a type-specific
/// payload (encoded with the canonical codecs of `util::bytes`).
struct JournalRecord {
  JournalRecordType type = JournalRecordType::kConsigned;
  ajo::JobToken token = 0;
  util::Bytes payload;
};

/// The durable medium. `append`/`replay` persist journal records;
/// `workspace` returns the per-job Uspace directory for `directory`,
/// creating it on first use and returning the *same* object (with its
/// files intact) after a crash — job directories live on disk, not in
/// NJS memory (§5.5).
class JournalStore {
 public:
  virtual ~JournalStore() = default;
  virtual void append(JournalRecord record) = 0;
  virtual void replay(
      const std::function<void(const JournalRecord&)>& visit) const = 0;
  virtual std::size_t size() const = 0;
  virtual std::shared_ptr<uspace::Uspace> workspace(
      const std::string& directory, std::uint64_t quota_bytes) = 0;
};

/// The default store: everything in memory, but *outside* the Njs
/// object, so it survives `Njs::crash()` exactly like a disk would
/// survive a process restart.
class MemoryJournalStore : public JournalStore {
 public:
  void append(JournalRecord record) override;
  void replay(
      const std::function<void(const JournalRecord&)>& visit) const override;
  std::size_t size() const override;
  std::shared_ptr<uspace::Uspace> workspace(
      const std::string& directory, std::uint64_t quota_bytes) override;

 private:
  std::vector<JournalRecord> records_;
  std::map<std::string, std::shared_ptr<uspace::Uspace>> workspaces_;
};

/// Typed facade over a store: encodes/decodes records and folds the log
/// into per-job recovery images.
class Journal {
 public:
  explicit Journal(std::shared_ptr<JournalStore> store)
      : store_(std::move(store)) {}

  void record_consigned(ajo::JobToken token, const ajo::AbstractJobObject& job,
                        const gateway::AuthenticatedUser& user,
                        const crypto::Certificate& user_certificate,
                        const util::Bytes& idempotency_key,
                        const std::vector<std::pair<std::string,
                                                    uspace::FileBlob>>&
                            staged_files,
                        sim::Time consigned_at);
  void record_batch_submitted(ajo::JobToken token,
                              const std::string& action_path,
                              batch::BatchJobId batch_id);
  void record_action_state(ajo::JobToken token, const std::string& action_path,
                           ajo::ActionStatus status);
  void record_finalized(ajo::JobToken token, const ajo::Outcome& outcome);
  void record_deleted(ajo::JobToken token);

  /// Everything `Njs::recover()` needs to re-admit one journaled job.
  struct RecoveredJob {
    ajo::JobToken token = 0;
    ajo::AbstractJobObject job;
    gateway::AuthenticatedUser user;
    crypto::Certificate user_certificate;
    util::Bytes idempotency_key;  // empty for direct user consigns
    std::vector<std::pair<std::string, uspace::FileBlob>> staged_files;
    sim::Time consigned_at = 0;
    // action path -> batch id for every submission that reached a queue
    std::map<std::string, batch::BatchJobId> batch_ids;
    std::optional<ajo::Outcome> outcome;  // set when the job finalized
  };

  /// Replays the log and folds it into one image per surviving job
  /// (deleted jobs are dropped), ordered by token. Records that fail to
  /// decode are skipped — a truncated journal loses jobs, it does not
  /// poison recovery.
  std::vector<RecoveredJob> recover() const;

  std::shared_ptr<uspace::Uspace> workspace(const std::string& directory,
                                            std::uint64_t quota_bytes) {
    return store_->workspace(directory, quota_bytes);
  }

  /// Raw access for subsystems that journal their own record types
  /// (the transfer engine's manifests and chunks). Job recovery skips
  /// record types it does not own.
  void append(JournalRecord record) { store_->append(std::move(record)); }
  void replay(const std::function<void(const JournalRecord&)>& visit) const {
    store_->replay(visit);
  }

  std::size_t records() const { return store_->size(); }

  /// Journal-handoff claim. A claim is an ordinary appended record, so
  /// it lives on the shared store exactly like the job records: the
  /// first peer to claim an orphaned journal owns it, and a later
  /// claim by a *different* claimant is refused kFailedPrecondition —
  /// two peers can never both adopt the same partition. Re-claiming
  /// under the same name is idempotent (a claimant retrying after its
  /// own hiccup). A non-empty `supersede` names one claimant whose
  /// claim may be replaced — the cluster layer passes the name of a
  /// replica it has *itself* declared dead, so a partition whose
  /// adopter also died can be handed off again.
  util::Status try_claim(const std::string& claimant,
                         const std::string& supersede = "");
  /// The latest claimant on the log; empty if the journal was never
  /// handed off.
  std::string claimant() const;

 private:
  std::shared_ptr<JournalStore> store_;
};

}  // namespace unicore::njs
