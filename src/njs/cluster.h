// Horizontal NJS scale-out for one Usite (docs/SCALING.md). A cluster
// owns N NJS replicas that together front the *same* set of Vsites:
// replica i mints job tokens in partition i of the token space
// (njs::kTokenPartitionShift), keeps its own write-ahead journal on its
// own store ("disk"), and shares the Vsite runtimes — batch subsystems,
// Xspace volumes, translation tables — with replica 0, because those
// model the destination systems themselves.
//
// Consignments are routed by a stable hash of the consigning user's DN
// and the job name over the *alive* replicas, with one override: a
// consign carrying an idempotency key that some replica already
// admitted goes back to that replica (retries stay idempotent across
// the cluster). Token-addressed requests (query, control, file
// delivery) route to the partition's current *owner* — the minting
// replica until it dies, its adopter after journal handoff.
//
// Failure model: kill(i) crashes replica i's process. Its journal — a
// disk — survives, and handoff(i, j) lets replica j claim it
// (Journal::try_claim arbitrates: the first claimant wins, a second
// distinct claimant is refused) and replay it. Jobs whose batch
// submissions were already acknowledged re-attach to the shared batch
// subsystems instead of re-submitting — a handoff never duplicates a
// batch job.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "njs/journal.h"
#include "njs/njs.h"
#include "obs/metrics.h"

namespace unicore::njs {

class NjsCluster {
 public:
  /// Builds `replica_count` NJS replicas named `usite`, each with its
  /// own MemoryJournalStore + Journal attached and its token partition
  /// set to its index. Replica 0 is the primary; add Vsites through the
  /// cluster so they are shared to every replica.
  NjsCluster(sim::Engine& engine, util::Rng& rng, std::string usite,
             crypto::Credential credential, std::size_t replica_count = 1);

  NjsCluster(const NjsCluster&) = delete;
  NjsCluster& operator=(const NjsCluster&) = delete;

  const std::string& usite() const { return usite_; }
  std::size_t replica_count() const { return replicas_.size(); }
  std::size_t alive_count() const;

  Njs& replica(std::size_t index) { return *replicas_[index].njs; }
  const Njs& replica(std::size_t index) const {
    return *replicas_[index].njs;
  }
  Njs& primary() { return replica(0); }
  const std::shared_ptr<Journal>& journal(std::size_t index) const {
    return replicas_[index].journal;
  }
  bool alive(std::size_t index) const { return replicas_[index].alive; }

  /// Registers a Vsite on the primary and shares the runtime with every
  /// other replica.
  batch::BatchSubsystem& add_vsite(Njs::VsiteConfig config);

  // --- routing ------------------------------------------------------------

  /// The replica a fresh consignment for (`dn`, `job_name`) routes to:
  /// a stable FNV-1a hash over the alive replicas (a dead replica's
  /// slot probes linearly to the next alive one, leaving every other
  /// assignment untouched). nullopt when no replica is alive.
  std::optional<std::size_t> route(const crypto::DistinguishedName& dn,
                                   const std::string& job_name) const;

  /// The replica that owns `token`'s partition: its minting replica, or
  /// the adopter after a handoff. nullopt while the owner is dead and
  /// the partition unadopted.
  std::optional<std::size_t> owner_of(ajo::JobToken token) const;
  Njs* replica_for_token(ajo::JobToken token);

  /// Routed consignment: an idempotency key already admitted anywhere
  /// in the cluster goes back to its owning replica; everything else is
  /// hash-routed. kUnavailable when no replica is alive.
  util::Result<ajo::JobToken> consign(
      const ajo::AbstractJobObject& job, const gateway::AuthenticatedUser& user,
      const crypto::Certificate& user_certificate,
      Njs::FinalHandler on_final = nullptr,
      std::vector<std::pair<std::string, uspace::FileBlob>> staged_files = {},
      util::Bytes idempotency_key = {});

  /// Job summaries for `user` merged across every alive replica,
  /// ordered by token.
  std::vector<JobSummary> list(const crypto::DistinguishedName& user) const;

  /// Managed job storages for `user` merged across every alive replica,
  /// ordered by token.
  std::vector<StorageInfo> storages(const crypto::DistinguishedName& user)
      const;

  // --- failure / handoff --------------------------------------------------

  /// Crashes replica `index` and marks it dead for routing. With
  /// auto-handoff enabled (the default), the next alive replica claims
  /// and replays the dead one's journal immediately.
  void kill(std::size_t index);

  /// Replica `adopter` claims the journal of dead replica `dead` and
  /// replays it. Fails kFailedPrecondition when `dead` is still alive,
  /// when the journal was already claimed by a different replica
  /// (double handoff), or when `adopter` is dead. Returns jobs adopted.
  util::Result<std::size_t> handoff(std::size_t dead, std::size_t adopter);

  /// Restarts a killed replica via its own journal (Njs::recover).
  /// Refused once the partition was handed off — the adopter owns it.
  util::Result<std::size_t> restart(std::size_t index);

  void set_auto_handoff(bool enabled) { auto_handoff_ = enabled; }
  std::uint64_t handoffs() const { return handoffs_; }

  // --- observability ------------------------------------------------------

  /// Shares `registry` with every replica and publishes the per-replica
  /// gauges unicore_njs_replica_jobs / unicore_njs_replica_handoffs.
  void set_metrics(std::shared_ptr<obs::MetricsRegistry> registry);
  void refresh_gauges();

  std::uint64_t total_jobs_consigned() const;

 private:
  struct Replica {
    std::unique_ptr<Njs> njs;
    std::shared_ptr<Journal> journal;
    bool alive = true;
  };

  std::string usite_;
  std::vector<Replica> replicas_;
  /// partition index -> owning replica index.
  std::vector<std::size_t> owners_;
  bool auto_handoff_ = true;
  std::uint64_t handoffs_ = 0;
  std::shared_ptr<obs::MetricsRegistry> metrics_;
};

}  // namespace unicore::njs
