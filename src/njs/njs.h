// The Network Job Supervisor (§5.5) — the job-management half of the
// UNICORE server.
//
// Responsibilities, as enumerated by the paper:
//   - transform the abstract job into an internal format (incarnation.h),
//   - split it into the job groups destined for different sites,
//   - distribute and control the job groups (PeerLink),
//   - translate abstract specifications via translation tables,
//   - submit the batch jobs to the execution system,
//   - create a UNICORE job directory (Uspace) per job group,
//   - collect standard output/error and make them available (Outcome),
//   - initiate all data transfers, imports, and exports.
//
// Scheduling "is limited to the delivery of the generated batch jobs to
// the destination systems in the specified sequence. It has no means of
// influencing the scheduling on the destination systems" — the NJS only
// orders deliveries; queueing decisions stay with BatchSubsystem.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "ajo/job.h"
#include "ajo/outcome.h"
#include "ajo/services.h"
#include "batch/subsystem.h"
#include "gateway/gateway.h"
#include "njs/incarnation.h"
#include "njs/journal.h"
#include "njs/peer_link.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/engine.h"
#include "uspace/filespace.h"
#include "util/result.h"
#include "util/retry.h"
#include "util/rng.h"

namespace unicore::njs {

/// Token-space striding for NJS partitioning (docs/SCALING.md): replica
/// p of a Usite mints tokens in [p << kTokenPartitionShift,
/// (p+1) << kTokenPartitionShift), so a token names its home partition
/// and replicas never collide. A single-NJS Usite is partition 0 and
/// keeps the familiar tokens 1, 2, 3, …
constexpr unsigned kTokenPartitionShift = 40;

constexpr std::uint64_t token_partition(ajo::JobToken token) {
  return token >> kTokenPartitionShift;
}
constexpr ajo::JobToken token_partition_base(std::uint64_t partition) {
  return static_cast<ajo::JobToken>(partition) << kTokenPartitionShift;
}

/// A subsystem whose in-memory state lives inside the NJS process and
/// must die and be rebuilt with it (the transfer engine's open-transfer
/// table). `on_njs_crash` fires after the NJS wiped its own state;
/// `on_njs_recover` after jobs were rebuilt from the journal, so
/// participants can fold their own journal records against live jobs.
/// `on_njs_adopt` fires after the NJS adopted a dead peer replica's
/// journal (handoff), so participants can fold that journal's records
/// without wiping their own live state.
class CrashParticipant {
 public:
  virtual ~CrashParticipant() = default;
  virtual void on_njs_crash() = 0;
  virtual void on_njs_recover() = 0;
  virtual void on_njs_adopt(const Journal& journal) { (void)journal; }
};

/// One-line job record for the ListService.
struct JobSummary {
  ajo::JobToken token = 0;
  std::string name;
  ajo::ActionStatus status = ajo::ActionStatus::kPending;
  sim::Time consigned_at = 0;
};

/// One job's managed working storage (docs/PORTAL.md): the Uspace tree
/// the NJS created for the job, kept around after completion so outputs
/// can be revisited until the storage is reaped.
struct StorageInfo {
  ajo::JobToken token = 0;
  std::string name;  // "job<token>"
  std::uint64_t used_bytes = 0;
  std::uint64_t quota_bytes = 0;  // 0 = unlimited
  std::size_t files = 0;
  bool terminal = false;  // job finished — the storage is reapable
  bool reaped = false;
  sim::Time consigned_at = 0;
};

/// Quota-driven cleanup of finished jobs' storages (the portal's
/// clean_job_storages behaviour, applied server-side).
struct StoragePolicy {
  /// Combined bytes the storages of *terminal* jobs may hold before the
  /// oldest are reaped automatically. 0 disables automatic cleanup.
  std::uint64_t max_terminal_bytes = 0;
};

class Njs {
 public:
  struct VsiteConfig {
    batch::SystemConfig system;
    /// Empty optional selects default_translation_table(architecture).
    std::optional<TranslationTable> table;
    double disk_bandwidth_bytes_per_sec = 20e6;
    std::uint64_t uspace_quota_bytes = 0;  // 0 = unlimited
    std::vector<resources::SoftwareItem> software;
  };

  Njs(sim::Engine& engine, util::Rng rng, std::string usite,
      crypto::Credential server_credential);
  ~Njs();

  Njs(const Njs&) = delete;
  Njs& operator=(const Njs&) = delete;

  const std::string& usite() const { return usite_; }
  const crypto::Credential& server_credential() const { return credential_; }

  /// Registers a Vsite (one destination system) at this Usite.
  batch::BatchSubsystem& add_vsite(VsiteConfig config);

  /// Shares every Vsite runtime of `primary` with this NJS: the batch
  /// subsystems, Xspace volumes, and translation tables model the
  /// destination systems themselves, which all NJS replicas of one
  /// Usite front together. Required for journal handoff — re-attaching
  /// an adopted batch submission needs the *same* BatchSubsystem
  /// instance the dead replica submitted to.
  void share_vsites(Njs& primary);

  std::vector<std::string> vsites() const;
  batch::BatchSubsystem* subsystem(const std::string& vsite);
  uspace::Xspace* xspace(const std::string& vsite);

  /// The resource page of one Vsite (§5.4), derived from its system
  /// configuration and software catalogue.
  util::Result<resources::ResourcePage> resource_page(
      const std::string& vsite) const;
  std::vector<resources::ResourcePage> resource_pages() const;

  /// Wires this NJS to its peers (owned by the server/grid layer).
  void set_peer_link(PeerLink* link) { peer_link_ = link; }

  /// NJS-side processing latency per dispatched action (default 50 ms);
  /// exposed for benches.
  void set_dispatch_latency(sim::Time latency) { dispatch_latency_ = latency; }

  // --- consignment -------------------------------------------------------

  using FinalHandler = std::function<void(ajo::JobToken, const ajo::Outcome&)>;

  /// Accepts an authenticated job for execution. The gateway has already
  /// performed the consignment check; `user` is the mapped identity and
  /// `user_certificate` the original user certificate (needed to endorse
  /// sub-AJOs to peer sites). `on_final` (optional) fires once when the
  /// job reaches a terminal state.
  /// A non-empty `idempotency_key` (the signed-AJO digest, computed by
  /// the server layer for forwarded consignments) makes the consign
  /// idempotent: a duplicate key returns the original token, and
  /// `on_final` is (re-)registered against the existing job — this is
  /// what lets the peer link retry consigns safely.
  util::Result<ajo::JobToken> consign(
      const ajo::AbstractJobObject& job, const gateway::AuthenticatedUser& user,
      const crypto::Certificate& user_certificate,
      FinalHandler on_final = nullptr,
      std::vector<std::pair<std::string, uspace::FileBlob>> staged_files = {},
      util::Bytes idempotency_key = {});

  /// Attaches the site's content-addressed chunk store. Delivered files
  /// that are not already store-backed are interned into it (chunk-level
  /// dedup across files and jobs), and reap_storage reports the physical
  /// bytes each reap actually returned to the store.
  void set_chunk_store(std::shared_ptr<store::ChunkStore> chunk_store) {
    chunk_store_ = std::move(chunk_store);
  }
  const std::shared_ptr<store::ChunkStore>& chunk_store() const {
    return chunk_store_;
  }

  /// Files arriving with / for a consigned job (inter-site transfers and
  /// consignment-staged dependency data) land in the root Uspace.
  util::Status deliver_file(ajo::JobToken token, const std::string& name,
                            uspace::FileBlob blob);
  util::Status deliver_file(ajo::JobToken token, const std::string& name,
                            std::shared_ptr<const uspace::FileBlob> blob);
  util::Result<uspace::FileBlob> fetch_file(ajo::JobToken token,
                                            const std::string& name) const;
  /// Zero-copy read: the returned blob is shared with the Uspace (blobs
  /// are immutable once written).
  util::Result<std::shared_ptr<const uspace::FileBlob>> fetch_file_shared(
      ajo::JobToken token, const std::string& name) const;

  // --- JMC services ------------------------------------------------------

  util::Result<ajo::Outcome> query(ajo::JobToken token,
                                   ajo::QueryService::Detail detail) const;

  /// Distinguished name of the user a job was consigned for (server-side
  /// ownership checks).
  util::Result<crypto::DistinguishedName> owner(ajo::JobToken token) const;
  std::vector<JobSummary> list(const crypto::DistinguishedName& user) const;
  util::Status control(ajo::JobToken token,
                       ajo::ControlService::Command command);

  /// Reads a file from a terminal job's Uspace (JMC "save output").
  util::Result<uspace::FileBlob> read_output(ajo::JobToken token,
                                             const std::string& name) const;
  util::Result<std::shared_ptr<const uspace::FileBlob>> read_output_shared(
      ajo::JobToken token, const std::string& name) const;

  // --- managed job storages -----------------------------------------------

  /// The working storages of every job `user` consigned here, newest
  /// last (iteration order is token order, which is consignment order).
  std::vector<StorageInfo> storages(const crypto::DistinguishedName& user)
      const;
  util::Result<StorageInfo> storage_info(ajo::JobToken token) const;
  /// Names in the job's storage: root-workspace files plain, sub-group
  /// workspace files prefixed "g<group-id>/".
  util::Result<std::vector<std::string>> storage_files(
      ajo::JobToken token) const;
  /// Empties every workspace of a *terminal* job, freeing its quota
  /// bytes. The job record stays for queries; reading reaped outputs
  /// fails kNotFound. Returns the bytes freed.
  util::Result<std::uint64_t> reap_storage(ajo::JobToken token);

  void set_storage_policy(StoragePolicy policy) { storage_policy_ = policy; }
  const StoragePolicy& storage_policy() const { return storage_policy_; }
  /// Applies the storage policy now: reaps the oldest terminal storages
  /// until their combined bytes fit max_terminal_bytes. Runs
  /// automatically after every job finalization; returns storages
  /// reaped. No-op while the policy is disabled.
  std::size_t clean_job_storages();
  std::uint64_t storages_reaped() const { return storages_reaped_; }

  // --- crash recovery -----------------------------------------------------

  /// Attaches the write-ahead journal. From here on every consignment,
  /// batch submission, and finalization is journaled, and job
  /// workspaces come from the journal store's durable directories.
  void set_journal(std::shared_ptr<Journal> journal);
  const std::shared_ptr<Journal>& journal() const { return journal_; }

  // --- partitioning / handoff (docs/SCALING.md) ---------------------------

  /// Places this replica's tokens at partition `p` of the token space;
  /// call before the first consign. Partition 0 (the default) is the
  /// single-NJS Usite.
  void set_token_partition(std::uint64_t partition);
  std::uint64_t token_partition() const { return partition_; }

  /// The journal a token's records belong to: the replica's own journal
  /// for its home partition, an adopted journal for a partition taken
  /// over by handoff. nullptr when no journal is attached.
  Journal* journal_for(ajo::JobToken token) const;
  /// Own journal first, then every adopted one (no nulls).
  std::vector<Journal*> all_journals() const;

  /// Journal handoff: takes over partition `partition` of a dead peer
  /// replica by replaying its journal — live jobs are re-admitted
  /// through the normal dispatch path and re-attach to batch jobs the
  /// dead replica already submitted (zero duplicate submissions);
  /// terminal jobs are restored as records. The adopted journal keeps
  /// receiving this partition's records afterwards (it is the
  /// partition's log on the shared store). Returns jobs adopted.
  util::Result<std::size_t> adopt(std::uint64_t partition,
                                  std::shared_ptr<Journal> journal);
  std::uint64_t adoptions() const { return adoptions_; }

  /// Token a consign idempotency key already maps to, if any — lets the
  /// routing layer send a retried consign to the replica that owns it.
  std::optional<ajo::JobToken> consign_key_lookup(
      const util::Bytes& key) const;

  /// Registers a subsystem that must be wiped on crash() and rebuilt on
  /// recover(). The pointer must outlive the NJS (or be removed by
  /// destroying the NJS first).
  void add_crash_participant(CrashParticipant* participant) {
    crash_participants_.push_back(participant);
  }

  /// Simulates an NJS process crash: all in-memory job state vanishes.
  /// Vsites, batch subsystems, Xspace volumes, and the journal store
  /// model other processes/disks and survive.
  void crash();

  /// Rebuilds jobs from the journal after a crash(): finalized jobs are
  /// restored with their recorded Outcome; live jobs are re-admitted
  /// through the normal dispatch path, re-attaching to batch jobs that
  /// were already submitted (no duplicate submissions). Returns the
  /// number of jobs recovered.
  util::Result<std::size_t> recover();

  std::uint64_t recoveries() const { return recoveries_; }
  std::uint64_t consigns_deduped() const { return consigns_deduped_; }
  std::uint64_t batch_retries() const { return batch_retries_; }

  /// Backoff ladder for retryable batch-submit failures.
  void set_batch_backoff(util::BackoffPolicy policy) {
    batch_backoff_ = policy;
  }

  // --- statistics ---------------------------------------------------------
  std::size_t active_jobs() const;
  std::uint64_t jobs_consigned() const { return jobs_consigned_; }
  std::uint64_t jobs_completed() const { return jobs_completed_; }

  // --- observability ------------------------------------------------------

  /// Shares `registry` (e.g. one per deployment, owned by the grid) and
  /// re-registers all NJS/batch series there. Never null after
  /// construction: the NJS creates a private registry by default.
  void set_metrics(std::shared_ptr<obs::MetricsRegistry> registry);
  const std::shared_ptr<obs::MetricsRegistry>& metrics() const {
    return metrics_;
  }

  /// Updates sampled gauges (active jobs); call before a snapshot.
  void refresh_gauges();

  /// The recorded lifecycle timeline of a consigned job (MonitorService).
  util::Result<const obs::TraceTimeline*> trace(ajo::JobToken token) const;

  /// Appends a closed span to a job's timeline on behalf of the
  /// transfer engine (chunked deliveries into this job's Uspace).
  /// Silently ignored for unknown tokens.
  void record_transfer_span(
      ajo::JobToken token, const std::string& name, sim::Time start,
      sim::Time end,
      const std::vector<std::pair<std::string, std::string>>& attributes = {});

  /// Accounting (§6 "accounting functions"): processor-seconds consumed
  /// per local login across all Vsites of this Usite, accumulated as
  /// batch jobs finish.
  const std::map<std::string, double>& accounting() const {
    return accounting_;
  }

 private:
  struct VsiteRuntime;
  struct ActionRun;
  struct GroupRun;
  struct JobRun;

  // Admission shared by consign() and recover(): `token` is fixed by
  // the caller; journaling is skipped on the recovery path.
  util::Result<ajo::JobToken> admit(
      ajo::JobToken token, const ajo::AbstractJobObject& job,
      const gateway::AuthenticatedUser& user,
      const crypto::Certificate& user_certificate, FinalHandler on_final,
      std::vector<std::pair<std::string, uspace::FileBlob>> staged_files,
      util::Bytes idempotency_key, bool journal_it);

  // Group/graph engine.
  util::Status start_group(JobRun& job, GroupRun& group);
  void dispatch_ready(JobRun& job, GroupRun& group, ActionRun& run);
  void dispatch_action(JobRun& job, GroupRun& group, ActionRun& run);
  void dispatch_execute(JobRun& job, GroupRun& group, ActionRun& run);
  void dispatch_execute_attempt(JobRun& job, GroupRun& group, ActionRun& run,
                                int attempt);
  batch::BatchSubsystem::CompletionHandler make_batch_handler(
      ajo::JobToken token, GroupRun* group_ptr, ajo::ActionId id,
      bool recovered);
  void dispatch_file_task(JobRun& job, GroupRun& group, ActionRun& run);
  void dispatch_subjob(JobRun& job, GroupRun& group, ActionRun& run);
  void complete_action(JobRun& job, GroupRun& group, ActionRun& run,
                       ajo::ActionStatus status, std::string message);
  void propagate_failure(JobRun& job, GroupRun& group, ActionRun& failed);
  void process_edges(JobRun& job, GroupRun& group, ActionRun& completed);
  void stage_edge_files_async(JobRun& job, GroupRun& group,
                              ActionRun& predecessor,
                              const std::vector<std::string>& files,
                              std::function<void(util::Status)> done);
  void finalize_if_done(JobRun& job);
  ajo::Outcome build_outcome(const JobRun& job, const GroupRun& group,
                             ajo::QueryService::Detail detail) const;
  ajo::ActionStatus aggregate_status(const GroupRun& group) const;
  void abort_group(JobRun& job, GroupRun& group);
  void set_held(GroupRun& group, bool held);
  void wire_metrics();

  /// Stable identifier of an action across restarts (group-id chain +
  /// action id), used as the journal's batch-submission key.
  static std::string action_path(const GroupRun& group, ajo::ActionId id);

  /// Makes a workspace for `directory`: from the durable store of the
  /// token's journal when attached (an adopted job's directory resolves
  /// on the dead replica's store, files intact), otherwise a fresh
  /// in-memory Uspace.
  std::shared_ptr<uspace::Uspace> make_workspace(ajo::JobToken token,
                                                 const std::string& directory,
                                                 std::uint64_t quota_bytes);

  /// Replays one journal's images into live/terminal jobs — the shared
  /// core of recover() and adopt(). `own_partition` advances
  /// next_token_ past replayed tokens (never for adopted partitions).
  std::size_t replay_journal(Journal& journal, bool own_partition);

  sim::Time staging_delay(const GroupRun& group, std::uint64_t bytes) const;

  /// Visits the root workspace (prefix "") and every sub-group
  /// workspace (prefix "g<id>/") of a job's live GroupRun tree.
  static void visit_workspaces(
      const GroupRun& group, const std::string& prefix,
      const std::function<void(const std::string&, uspace::Uspace&)>& visit);
  StorageInfo make_storage_info(const JobRun& job) const;

  sim::Engine& engine_;
  util::Rng rng_;
  std::string usite_;
  crypto::Credential credential_;
  PeerLink* peer_link_ = nullptr;
  sim::Time dispatch_latency_ = sim::msec(50);

  std::map<std::string, std::shared_ptr<VsiteRuntime>> vsites_;
  std::map<std::string, double> accounting_;
  std::map<ajo::JobToken, std::unique_ptr<JobRun>> jobs_;
  ajo::JobToken next_token_ = 1;
  std::uint64_t partition_ = 0;
  std::uint64_t jobs_consigned_ = 0;
  std::uint64_t jobs_completed_ = 0;
  StoragePolicy storage_policy_;
  std::uint64_t storages_reaped_ = 0;
  std::shared_ptr<store::ChunkStore> chunk_store_;

  // Crash-recovery state. `epoch_` is bumped by crash(): every async
  // callback captures the epoch it was created under and drops itself
  // when the NJS has restarted since (the token alone is not enough —
  // recovery re-inserts the same token with fresh GroupRuns).
  std::shared_ptr<Journal> journal_;
  std::map<std::uint64_t, std::shared_ptr<Journal>> adopted_journals_;
  std::uint64_t adoptions_ = 0;
  std::uint64_t epoch_ = 0;
  std::map<util::Bytes, ajo::JobToken> consign_keys_;
  std::map<std::pair<ajo::JobToken, std::string>, batch::BatchJobId>
      recovered_batch_;
  util::BackoffPolicy batch_backoff_;
  std::vector<CrashParticipant*> crash_participants_;
  std::uint64_t recoveries_ = 0;
  std::uint64_t consigns_deduped_ = 0;
  std::uint64_t batch_retries_ = 0;

  std::shared_ptr<obs::MetricsRegistry> metrics_;
  obs::Counter* consigned_counter_ = nullptr;
  obs::Counter* completed_counter_ = nullptr;
  obs::Counter* recoveries_counter_ = nullptr;
  obs::Counter* dedupe_counter_ = nullptr;
  obs::Counter* batch_retry_counter_ = nullptr;
  obs::Counter* reattach_counter_ = nullptr;
  obs::Counter* storage_reap_counter_ = nullptr;
  obs::Histogram* dispatch_latency_hist_ = nullptr;
  obs::Histogram* job_duration_hist_ = nullptr;
};

}  // namespace unicore::njs
