// Interface the NJS uses to talk to peer Usites ("the different servers
// are connected so that (parts of) UNICORE jobs, data, and control
// information can be exchanged", §4.3). The server layer implements it
// over gateway-to-gateway secure channels; tests may substitute an
// in-process fake. All operations are asynchronous, matching §5.3.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "ajo/job.h"
#include "ajo/outcome.h"
#include "ajo/services.h"
#include "uspace/blob.h"
#include "util/result.h"

namespace unicore::njs {

/// A sub-AJO consigned NJS-to-NJS: the job group, the originating user's
/// certificate, and the consigning server's endorsement signature over
/// (job || user certificate).
struct ForwardedConsignment {
  ajo::AbstractJobObject job;
  crypto::Certificate user_certificate;
  crypto::Certificate consignor_certificate;
  crypto::Signature signature;
  /// Dependency files travelling with the job group, staged into its
  /// Uspace on arrival (the analogue of workstation files travelling
  /// inside the AJO, §5.6).
  std::vector<std::pair<std::string, uspace::FileBlob>> staged_files;

  /// Canonical signing input (covers job and user certificate).
  static util::Bytes signing_input(const ajo::AbstractJobObject& job,
                                   const crypto::Certificate& user_cert);

  /// Digest of the signed consignment (signing input, signature, and
  /// consignor certificate). Stable across retries of the same
  /// consignment, so the receiving NJS can dedupe.
  util::Bytes idempotency_key() const;
};

/// Handle of a job consigned at a remote Usite.
struct RemoteJobHandle {
  std::string usite;
  ajo::JobToken token = 0;
};

class PeerLink {
 public:
  virtual ~PeerLink() = default;

  /// Consigns a job group to `usite`. `on_accepted` fires with the
  /// remote token (or the rejection); `on_final` fires once when the
  /// remote job reaches a terminal state, carrying its full outcome.
  virtual void consign(const std::string& usite,
                       const ForwardedConsignment& consignment,
                       std::function<void(util::Result<RemoteJobHandle>)>
                           on_accepted,
                       std::function<void(ajo::Outcome)> on_final) = 0;

  /// Delivers a file into the Uspace of a remote job ("file transfer
  /// between Uspaces ... through NJS–NJS communication via the
  /// gateway", §5.6). The blob is shared, not copied — the transfer
  /// engine holds it across many chunk sends without duplicating it.
  virtual void deliver_file(const RemoteJobHandle& target,
                            const std::string& uspace_name,
                            std::shared_ptr<const uspace::FileBlob> blob,
                            std::function<void(util::Status)> done) = 0;

  /// Fetches a file from the Uspace of a remote job (dependency files
  /// produced by a remote predecessor).
  virtual void fetch_file(const RemoteJobHandle& source,
                          const std::string& uspace_name,
                          std::function<void(util::Result<uspace::FileBlob>)>
                              done) = 0;

  /// Forwards a control command (abort/hold/release/delete).
  virtual void control(const RemoteJobHandle& target,
                       ajo::ControlService::Command command,
                       std::function<void(util::Status)> done) = 0;
};

}  // namespace unicore::njs
