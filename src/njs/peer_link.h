// Interface the NJS uses to talk to peer Usites ("the different servers
// are connected so that (parts of) UNICORE jobs, data, and control
// information can be exchanged", §4.3). The server layer implements it
// over gateway-to-gateway secure channels; tests may substitute an
// in-process fake. All operations are asynchronous, matching §5.3.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "ajo/job.h"
#include "ajo/outcome.h"
#include "ajo/services.h"
#include "uspace/blob.h"
#include "util/result.h"

namespace unicore::njs {

/// A sub-AJO consigned NJS-to-NJS: the job group, the originating user's
/// certificate, and the consigning server's endorsement signature over
/// (job || user certificate).
struct ForwardedConsignment {
  ajo::AbstractJobObject job;
  crypto::Certificate user_certificate;
  crypto::Certificate consignor_certificate;
  crypto::Signature signature;
  /// Dependency files travelling with the job group, staged into its
  /// Uspace on arrival (the analogue of workstation files travelling
  /// inside the AJO, §5.6).
  std::vector<std::pair<std::string, uspace::FileBlob>> staged_files;

  /// Canonical signing input (covers job and user certificate).
  static util::Bytes signing_input(const ajo::AbstractJobObject& job,
                                   const crypto::Certificate& user_cert);

  /// Digest of the signed consignment (signing input, signature, and
  /// consignor certificate). Stable across retries of the same
  /// consignment, so the receiving NJS can dedupe.
  util::Bytes idempotency_key() const;
};

/// Handle of a job consigned at a remote Usite.
struct RemoteJobHandle {
  std::string usite;
  ajo::JobToken token = 0;
};

class PeerLink {
 public:
  virtual ~PeerLink() = default;

  /// Consigns a job group to `usite`. `on_accepted` fires with the
  /// remote token (or the rejection); `on_final` fires once when the
  /// remote job reaches a terminal state, carrying its full outcome.
  virtual void consign(const std::string& usite,
                       const ForwardedConsignment& consignment,
                       std::function<void(util::Result<RemoteJobHandle>)>
                           on_accepted,
                       std::function<void(ajo::Outcome)> on_final) = 0;

  /// Delivers a file into the Uspace of a remote job ("file transfer
  /// between Uspaces ... through NJS–NJS communication via the
  /// gateway", §5.6). The blob is shared, not copied — the transfer
  /// engine holds it across many chunk sends without duplicating it.
  virtual void deliver_file(const RemoteJobHandle& target,
                            const std::string& uspace_name,
                            std::shared_ptr<const uspace::FileBlob> blob,
                            std::function<void(util::Status)> done) = 0;

  /// Fetches a file from the Uspace of a remote job (dependency files
  /// produced by a remote predecessor).
  virtual void fetch_file(const RemoteJobHandle& source,
                          const std::string& uspace_name,
                          std::function<void(util::Result<uspace::FileBlob>)>
                              done) = 0;

  /// Delivers many files into one remote Uspace. The default walks
  /// deliver_file sequentially; links that negotiated the bundle
  /// feature override this with one manifest round trip for the whole
  /// batch (src/xfer bundle mode). Calling with an empty vector
  /// succeeds immediately.
  virtual void deliver_files(
      const RemoteJobHandle& target,
      std::vector<std::pair<std::string,
                            std::shared_ptr<const uspace::FileBlob>>>
          files,
      std::function<void(util::Status)> done) {
    deliver_files_sequential(target, std::move(files), 0, std::move(done));
  }

  /// Fetches many files from one remote Uspace, in request order. The
  /// default walks fetch_file sequentially; bundle-capable links
  /// override.
  virtual void fetch_files(
      const RemoteJobHandle& source, std::vector<std::string> names,
      std::function<void(util::Result<std::vector<uspace::FileBlob>>)> done) {
    auto blobs = std::make_shared<std::vector<uspace::FileBlob>>();
    blobs->reserve(names.size());
    fetch_files_sequential(source, std::move(names), blobs, std::move(done));
  }

  /// Forwards a control command (abort/hold/release/delete).
  virtual void control(const RemoteJobHandle& target,
                       ajo::ControlService::Command command,
                       std::function<void(util::Status)> done) = 0;

 private:
  void deliver_files_sequential(
      const RemoteJobHandle& target,
      std::vector<std::pair<std::string,
                            std::shared_ptr<const uspace::FileBlob>>>
          files,
      std::size_t next, std::function<void(util::Status)> done) {
    if (next >= files.size()) {
      done(util::Status());
      return;
    }
    auto name = files[next].first;
    auto blob = files[next].second;
    deliver_file(target, name, std::move(blob),
                 [this, target, files = std::move(files), next,
                  done = std::move(done)](util::Status status) mutable {
                   if (!status.ok()) {
                     done(std::move(status));
                     return;
                   }
                   deliver_files_sequential(target, std::move(files), next + 1,
                                            std::move(done));
                 });
  }

  void fetch_files_sequential(
      const RemoteJobHandle& source, std::vector<std::string> names,
      std::shared_ptr<std::vector<uspace::FileBlob>> blobs,
      std::function<void(util::Result<std::vector<uspace::FileBlob>>)> done) {
    if (blobs->size() >= names.size()) {
      done(std::move(*blobs));
      return;
    }
    std::string name = names[blobs->size()];
    fetch_file(source, name,
               [this, source, names = std::move(names), blobs,
                done = std::move(done)](
                   util::Result<uspace::FileBlob> blob) mutable {
                 if (!blob.ok()) {
                   done(blob.error());
                   return;
                 }
                 blobs->push_back(std::move(blob).value());
                 fetch_files_sequential(source, std::move(names), blobs,
                                        std::move(done));
               });
  }
};

}  // namespace unicore::njs
