#include "njs/incarnation.h"

#include <sstream>

namespace unicore::njs {

using resources::Architecture;
using util::ErrorCode;
using util::Result;

TranslationTable default_translation_table(Architecture arch) {
  TranslationTable table;
  switch (arch) {
    case Architecture::kCrayT3E:
      table.compiler_f90 = "f90";
      table.linker = "f90";
      table.run_template = "mpprun -n %d ./%s";
      table.default_queue = "prod";
      break;
    case Architecture::kFujitsuVpp700:
      table.compiler_f90 = "frt";
      table.linker = "frt";
      table.run_template = "./%s -np %d";
      table.default_queue = "vpp";
      break;
    case Architecture::kIbmSp2:
      table.compiler_f90 = "xlf90";
      table.linker = "xlf90";
      table.run_template = "poe ./%s -procs %d";
      table.default_queue = "parallel";
      break;
    case Architecture::kNecSx4:
      table.compiler_f90 = "f90sx";
      table.linker = "f90sx";
      table.run_template = "mpirun -np %d ./%s";
      table.default_queue = "sx";
      break;
    case Architecture::kGenericUnix:
      break;
  }
  return table;
}

namespace {

/// Expands "%d" -> processors and "%s" -> executable in a run template.
std::string expand_run_template(const std::string& tmpl,
                                std::int64_t processors,
                                const std::string& executable) {
  std::string out;
  for (std::size_t i = 0; i < tmpl.size(); ++i) {
    if (tmpl[i] == '%' && i + 1 < tmpl.size()) {
      if (tmpl[i + 1] == 'd') {
        out += std::to_string(processors);
        ++i;
        continue;
      }
      if (tmpl[i + 1] == 's') {
        out += executable;
        ++i;
        continue;
      }
    }
    out += tmpl[i];
  }
  return out;
}

std::string shell_quote_lines(const std::string& text) {
  // Payload text (user scripts) is embedded verbatim; directives were
  // already emitted, so nothing needs escaping in the simulated shell.
  return text;
}

}  // namespace

Result<IncarnatedJob> incarnate(const ajo::AbstractTaskObject& task,
                                const batch::SystemConfig& system,
                                const TranslationTable& table,
                                const std::string& account) {
  IncarnatedJob job;
  const resources::ResourceSet& r = task.resource_request();
  job.request.queue = table.default_queue;
  job.request.account = account;
  job.request.processors = r.processors;
  job.request.wallclock_seconds = r.wallclock_seconds;
  job.request.memory_mb = r.memory_mb;
  job.request.job_name =
      task.name().empty() ? std::string(task.type_name()) : task.name();

  std::ostringstream body;

  switch (task.type()) {
    case ajo::ActionType::kCompileTask: {
      const auto& compile = static_cast<const ajo::CompileTask&>(task);
      if (compile.language != "F90")
        return util::make_error(
            ErrorCode::kInvalidArgument,
            "incarnation: only F90 compilation is implemented (got " +
                compile.language + ")");
      body << table.compiler_f90 << " -c";
      for (const auto& flag : compile.compiler_flags) body << " " << flag;
      body << " " << compile.source_file << " -o " << compile.object_file
           << "\n";
      job.spec.required_files.push_back(compile.source_file);
      // Object size modelled as twice the source size is irrelevant to
      // behaviour; a fixed representative size keeps it simple.
      job.spec.output_files.emplace_back(compile.object_file, 64 * 1024);
      break;
    }
    case ajo::ActionType::kLinkTask: {
      const auto& link = static_cast<const ajo::LinkTask&>(task);
      body << table.linker;
      for (const auto& object : link.object_files) body << " " << object;
      for (const auto& library : link.libraries)
        body << " " << table.library_flag << library;
      body << " -o " << link.executable << "\n";
      job.spec.required_files = link.object_files;
      job.spec.output_files.emplace_back(link.executable, 512 * 1024);
      break;
    }
    case ajo::ActionType::kUserTask: {
      const auto& user = static_cast<const ajo::UserTask&>(task);
      body << expand_run_template(table.run_template, r.processors,
                                  user.executable);
      for (const auto& argument : user.arguments) body << " " << argument;
      body << "\n";
      job.spec.required_files.push_back(user.executable);
      break;
    }
    case ajo::ActionType::kExecuteScriptTask: {
      const auto& script = static_cast<const ajo::ExecuteScriptTask&>(task);
      body << shell_quote_lines(script.script);
      if (script.script.empty() || script.script.back() != '\n') body << "\n";
      break;
    }
    default:
      return util::make_error(
          ErrorCode::kInvalidArgument,
          std::string("incarnation: not an execute-family task: ") +
              task.type_name());
  }

  const auto& execute = static_cast<const ajo::ExecuteTask&>(task);
  job.spec.nominal_seconds = execute.behavior.nominal_seconds;
  job.spec.exit_code = execute.behavior.exit_code;
  job.spec.stdout_text = execute.behavior.stdout_text;
  job.spec.stderr_text = execute.behavior.stderr_text;
  for (const auto& [name, size] : execute.behavior.output_files)
    job.spec.output_files.emplace_back(name, size);

  std::ostringstream script;
  script << batch::render_directives(system.architecture, job.request);
  for (const auto& [key, value] : execute.environment)
    script << "export " << key << "=" << value << "\n";
  script << body.str();
  job.script = script.str();
  return job;
}

}  // namespace unicore::njs
