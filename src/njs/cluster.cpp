#include "njs/cluster.h"

#include <algorithm>
#include <utility>

#include "gateway/uudb.h"
#include "util/log.h"

namespace unicore::njs {
namespace {

/// The stable name replica `index` claims journals under.
std::string replica_name(const std::string& usite, std::size_t index) {
  return usite + "#njs" + std::to_string(index);
}

}  // namespace

NjsCluster::NjsCluster(sim::Engine& engine, util::Rng& rng, std::string usite,
                       crypto::Credential credential,
                       std::size_t replica_count)
    : usite_(std::move(usite)) {
  if (replica_count == 0) replica_count = 1;
  replicas_.reserve(replica_count);
  owners_.reserve(replica_count);
  for (std::size_t i = 0; i < replica_count; ++i) {
    Replica replica;
    replica.njs = std::make_unique<Njs>(engine, rng.fork(), usite_, credential);
    replica.journal =
        std::make_shared<Journal>(std::make_shared<MemoryJournalStore>());
    replica.njs->set_token_partition(i);
    // Journals are the handoff substrate, so a multi-replica cluster
    // always attaches them. A single-replica cluster leaves journaling
    // to the deployment (exactly the pre-scale-out behaviour: tests and
    // benches opt in with Njs::set_journal).
    if (replica_count > 1) replica.njs->set_journal(replica.journal);
    if (i > 0) replica.njs->share_vsites(*replicas_[0].njs);
    replicas_.push_back(std::move(replica));
    owners_.push_back(i);
  }
}

std::size_t NjsCluster::alive_count() const {
  std::size_t alive = 0;
  for (const Replica& replica : replicas_)
    if (replica.alive) ++alive;
  return alive;
}

batch::BatchSubsystem& NjsCluster::add_vsite(Njs::VsiteConfig config) {
  batch::BatchSubsystem& subsystem =
      replicas_[0].njs->add_vsite(std::move(config));
  for (std::size_t i = 1; i < replicas_.size(); ++i)
    replicas_[i].njs->share_vsites(*replicas_[0].njs);
  return subsystem;
}

std::optional<std::size_t> NjsCluster::route(
    const crypto::DistinguishedName& dn, const std::string& job_name) const {
  if (alive_count() == 0) return std::nullopt;
  // Hash over the *full* replica set, then probe past dead slots: an
  // assignment only moves when its own replica dies, never because an
  // unrelated replica did.
  std::size_t slot =
      gateway::dn_shard_of(dn.to_string() + "\n" + job_name,
                           replicas_.size());
  for (std::size_t probe = 0; probe < replicas_.size(); ++probe) {
    std::size_t candidate = (slot + probe) % replicas_.size();
    if (replicas_[candidate].alive) return candidate;
  }
  return std::nullopt;
}

std::optional<std::size_t> NjsCluster::owner_of(ajo::JobToken token) const {
  std::uint64_t partition = njs::token_partition(token);
  if (partition >= owners_.size()) return std::nullopt;
  std::size_t owner = owners_[partition];
  if (!replicas_[owner].alive) return std::nullopt;
  return owner;
}

Njs* NjsCluster::replica_for_token(ajo::JobToken token) {
  auto owner = owner_of(token);
  return owner ? replicas_[*owner].njs.get() : nullptr;
}

util::Result<ajo::JobToken> NjsCluster::consign(
    const ajo::AbstractJobObject& job, const gateway::AuthenticatedUser& user,
    const crypto::Certificate& user_certificate, Njs::FinalHandler on_final,
    std::vector<std::pair<std::string, uspace::FileBlob>> staged_files,
    util::Bytes idempotency_key) {
  std::optional<std::size_t> target;
  if (!idempotency_key.empty()) {
    // A retried consign goes back to wherever its key was admitted —
    // after a handoff that is the adopter, which replays the key from
    // the dead replica's journal.
    for (std::size_t i = 0; i < replicas_.size(); ++i) {
      if (!replicas_[i].alive) continue;
      if (replicas_[i].njs->consign_key_lookup(idempotency_key)) {
        target = i;
        break;
      }
    }
  }
  if (!target) target = route(user.dn, job.name());
  if (!target)
    return util::make_error(util::ErrorCode::kUnavailable,
                            "no alive NJS replica at " + usite_);
  return replicas_[*target].njs->consign(job, user, user_certificate,
                                         std::move(on_final),
                                         std::move(staged_files),
                                         std::move(idempotency_key));
}

std::vector<JobSummary> NjsCluster::list(
    const crypto::DistinguishedName& user) const {
  std::vector<JobSummary> merged;
  for (const Replica& replica : replicas_) {
    if (!replica.alive) continue;
    auto part = replica.njs->list(user);
    merged.insert(merged.end(), part.begin(), part.end());
  }
  std::sort(merged.begin(), merged.end(),
            [](const JobSummary& a, const JobSummary& b) {
              return a.token < b.token;
            });
  return merged;
}

std::vector<StorageInfo> NjsCluster::storages(
    const crypto::DistinguishedName& user) const {
  std::vector<StorageInfo> merged;
  for (const Replica& replica : replicas_) {
    if (!replica.alive) continue;
    auto part = replica.njs->storages(user);
    merged.insert(merged.end(), part.begin(), part.end());
  }
  std::sort(merged.begin(), merged.end(),
            [](const StorageInfo& a, const StorageInfo& b) {
              return a.token < b.token;
            });
  return merged;
}

void NjsCluster::kill(std::size_t index) {
  Replica& replica = replicas_[index];
  if (!replica.alive) return;
  replica.njs->crash();
  replica.alive = false;
  UNICORE_WARN("njs-cluster/" + usite_)
      << "replica " << index << " killed (" << alive_count() << "/"
      << replicas_.size() << " alive)";
  if (!auto_handoff_) return;
  for (std::size_t probe = 1; probe < replicas_.size(); ++probe) {
    std::size_t adopter = (index + probe) % replicas_.size();
    if (!replicas_[adopter].alive) continue;
    auto adopted = handoff(index, adopter);
    if (!adopted)
      UNICORE_WARN("njs-cluster/" + usite_)
          << "auto-handoff " << index << " -> " << adopter
          << " failed: " << adopted.error().message;
    return;
  }
}

util::Result<std::size_t> NjsCluster::handoff(std::size_t dead,
                                              std::size_t adopter) {
  if (dead >= replicas_.size() || adopter >= replicas_.size() ||
      dead == adopter)
    return util::make_error(util::ErrorCode::kInvalidArgument,
                            "bad handoff pair");
  if (replicas_[dead].alive)
    return util::make_error(util::ErrorCode::kFailedPrecondition,
                            "replica " + std::to_string(dead) +
                                " is still alive");
  if (!replicas_[adopter].alive)
    return util::make_error(util::ErrorCode::kFailedPrecondition,
                            "adopter " + std::to_string(adopter) +
                                " is dead");

  const std::string dead_name = replica_name(usite_, dead);
  const std::string adopter_name = replica_name(usite_, adopter);
  std::size_t adopted_jobs = 0;
  bool any = false;
  // Every partition the dead replica owned: its home partition plus any
  // it had itself adopted earlier (those may be re-handed off — the
  // cluster declared the previous claimant dead, so its claim is
  // superseded).
  for (std::size_t partition = 0; partition < owners_.size(); ++partition) {
    if (owners_[partition] != dead) continue;
    const std::shared_ptr<Journal>& journal = replicas_[partition].journal;
    util::Status claimed = journal->try_claim(adopter_name, dead_name);
    if (!claimed.ok()) return util::Result<std::size_t>(claimed.error());
    auto adopted = replicas_[adopter].njs->adopt(partition, journal);
    if (!adopted) return adopted;
    adopted_jobs += adopted.value();
    owners_[partition] = adopter;
    any = true;
  }
  if (!any)
    return util::make_error(util::ErrorCode::kFailedPrecondition,
                            "replica " + std::to_string(dead) +
                                " owns no partition (already handed off)");
  ++handoffs_;
  UNICORE_INFO("njs-cluster/" + usite_)
      << "handoff " << dead << " -> " << adopter << ": " << adopted_jobs
      << " jobs adopted";
  refresh_gauges();
  return adopted_jobs;
}

util::Result<std::size_t> NjsCluster::restart(std::size_t index) {
  Replica& replica = replicas_[index];
  if (replica.alive)
    return util::make_error(util::ErrorCode::kFailedPrecondition,
                            "replica is alive");
  if (owners_[index] != index)
    return util::make_error(
        util::ErrorCode::kFailedPrecondition,
        "partition " + std::to_string(index) + " was handed off to replica " +
            std::to_string(owners_[index]));
  auto recovered = replica.njs->recover();
  if (!recovered) return recovered;
  replica.alive = true;
  refresh_gauges();
  return recovered;
}

void NjsCluster::set_metrics(std::shared_ptr<obs::MetricsRegistry> registry) {
  metrics_ = std::move(registry);
  for (Replica& replica : replicas_) replica.njs->set_metrics(metrics_);
  refresh_gauges();
}

void NjsCluster::refresh_gauges() {
  if (!metrics_) return;
  for (std::size_t i = 0; i < replicas_.size(); ++i) {
    obs::Labels labels{{"usite", usite_}, {"replica", std::to_string(i)}};
    metrics_->gauge("unicore_njs_replica_jobs", labels)
        .set(static_cast<double>(replicas_[i].njs->jobs_consigned()));
    metrics_->gauge("unicore_njs_replica_handoffs", labels)
        .set(static_cast<double>(replicas_[i].njs->adoptions()));
  }
}

std::uint64_t NjsCluster::total_jobs_consigned() const {
  std::uint64_t total = 0;
  for (const Replica& replica : replicas_)
    total += replica.njs->jobs_consigned();
  return total;
}

}  // namespace unicore::njs
