// Incarnation: translating abstract tasks into real batch jobs (§5.5).
//
// "transform the abstract job into a Codine internal format ...
//  translate the abstract specifications into the local system specific
//  nomenclature using translation tables ... submit the batch jobs to
//  the execution system."
//
// For each destination architecture a TranslationTable supplies the
// local nomenclature (compiler and linker names, parallel-run command,
// library flags); incarnate() combines it with the dialect directive
// renderer (batch/dialect.h) to produce the full script, plus the
// structured ExecutionSpec the simulated batch system interprets.
#pragma once

#include <string>

#include "ajo/tasks.h"
#include "batch/dialect.h"
#include "batch/subsystem.h"
#include "batch/target_system.h"
#include "util/result.h"

namespace unicore::njs {

/// Site-specific nomenclature for one architecture. The site
/// administrator "establishes the environment for running UNICORE.
/// This includes setting up the translation tables" (§5.5); defaults
/// for the 1999 systems come from default_translation_table().
struct TranslationTable {
  std::string shell = "/bin/sh";
  std::string compiler_f90 = "f90";   // F90 is what the prototype compiles
  std::string linker = "f90";
  std::string library_flag = "-l";    // prefix per library
  /// printf-style template for launching an `n`-processor executable;
  /// "%d" is replaced by the processor count, "%s" by the executable.
  std::string run_template = "./%s";
  std::string default_queue = "default";
};

/// The built-in tables for the four 1999 systems + generic UNIX.
TranslationTable default_translation_table(resources::Architecture arch);

/// The "Codine internal format" — the intermediate representation the
/// NJS builds from an abstract task before handing it to the batch
/// subsystem (§5.5 step 1). Keeping it explicit lets tests pin down
/// each translation stage separately.
struct IncarnatedJob {
  batch::BatchRequest request;   // directive-level resources
  std::string script;            // full vendor-dialect script
  batch::ExecutionSpec spec;     // structured semantics for the simulator
};

/// Translates one execute-family task for the given system. The job
/// name is derived from the task name; `account` comes from the AJO.
util::Result<IncarnatedJob> incarnate(const ajo::AbstractTaskObject& task,
                                      const batch::SystemConfig& system,
                                      const TranslationTable& table,
                                      const std::string& account);

}  // namespace unicore::njs
