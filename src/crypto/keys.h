// Public-key primitives: toy RSA signatures and classic Diffie–Hellman.
//
// Substitution note (DESIGN.md §2): the modulus is 64 bits instead of
// 1024+, so these keys have no cryptographic strength — but keygen,
// sign, verify, and key agreement run the genuine algorithms, which is
// what the middleware's code paths exercise.
#pragma once

#include <cstdint>
#include <string>

#include "crypto/modmath.h"
#include "crypto/sha256.h"
#include "util/bytes.h"
#include "util/rng.h"

namespace unicore::crypto {

/// RSA public key (n, e).
struct PublicKey {
  std::uint64_t n = 0;
  std::uint64_t e = 0;

  bool operator==(const PublicKey&) const = default;
  bool valid() const { return n > 1 && e > 1; }
  std::string to_string() const;
};

/// RSA private key; keeps the public half alongside d.
struct PrivateKey {
  PublicKey pub;
  std::uint64_t d = 0;
};

/// RSA signature: sig = H(m)^d mod n, with H(m) the 64-bit digest prefix
/// reduced mod n.
struct Signature {
  std::uint64_t value = 0;
  bool operator==(const Signature&) const = default;
};

/// Generates an RSA keypair with two 32-bit primes (64-bit modulus).
PrivateKey generate_keypair(util::Rng& rng);

/// Signs a message digest.
Signature sign_digest(const PrivateKey& key, const Digest& digest);
Signature sign_message(const PrivateKey& key, util::ByteView message);

/// Verifies sig against the digest under `key`.
bool verify_digest(const PublicKey& key, const Digest& digest,
                   const Signature& sig);
bool verify_message(const PublicKey& key, util::ByteView message,
                    const Signature& sig);

/// Diffie–Hellman over the fixed 64-bit prime group used by the
/// SecureChannel handshake.
struct DhKeyPair {
  std::uint64_t secret = 0;  // a
  std::uint64_t public_value = 0;  // g^a mod p
};

/// The group parameters (largest 64-bit prime, generator 5).
std::uint64_t dh_prime();
std::uint64_t dh_generator();

DhKeyPair dh_generate(util::Rng& rng);

/// Computes (peer_public ^ secret) mod p.
std::uint64_t dh_shared_secret(const DhKeyPair& mine, std::uint64_t peer_public);

}  // namespace unicore::crypto
