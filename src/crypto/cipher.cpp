#include "crypto/cipher.h"

#include "crypto/hmac.h"

namespace unicore::crypto {

util::Bytes ctr_crypt(const SymmetricKey& key, std::uint64_t nonce,
                      util::ByteView data) {
  util::Bytes out(data.size());
  std::uint64_t counter = 0;
  std::size_t pos = 0;
  while (pos < data.size()) {
    util::ByteWriter block_input;
    block_input.raw(key.material);
    block_input.u64(nonce);
    block_input.u64(counter++);
    Digest stream = sha256(block_input.bytes());
    std::size_t take = std::min<std::size_t>(stream.size(), data.size() - pos);
    for (std::size_t i = 0; i < take; ++i)
      out[pos + i] = data[pos + i] ^ stream[i];
    pos += take;
  }
  return out;
}

namespace {
Digest record_tag(const SymmetricKey& mac_key, std::uint64_t nonce,
                  util::ByteView ciphertext, util::ByteView aad) {
  util::ByteWriter mac_input;
  mac_input.u64(nonce);
  mac_input.blob(ciphertext);
  mac_input.blob(aad);
  return hmac_sha256(mac_key.material, mac_input.bytes());
}
}  // namespace

SealedRecord seal(const SymmetricKey& enc_key, const SymmetricKey& mac_key,
                  std::uint64_t nonce, util::ByteView plaintext,
                  util::ByteView aad) {
  SealedRecord record;
  record.nonce = nonce;
  record.ciphertext = ctr_crypt(enc_key, nonce, plaintext);
  record.tag = record_tag(mac_key, nonce, record.ciphertext, aad);
  return record;
}

util::Result<util::Bytes> open(const SymmetricKey& enc_key,
                               const SymmetricKey& mac_key,
                               const SealedRecord& record,
                               util::ByteView aad) {
  Digest expected = record_tag(mac_key, record.nonce, record.ciphertext, aad);
  if (!util::constant_time_equal(expected, record.tag))
    return util::make_error(util::ErrorCode::kAuthenticationFailed,
                            "record MAC verification failed");
  return ctr_crypt(enc_key, record.nonce, record.ciphertext);
}

}  // namespace unicore::crypto
