#include "crypto/cipher.h"

#include <cstring>

#include "crypto/hmac.h"

namespace unicore::crypto {

namespace {

/// Generic keystream for non-standard key lengths (kept for tests that
/// exercise odd keys); assembles (key || nonce || counter) per block.
void ctr_crypt_generic(const SymmetricKey& key, std::uint64_t nonce,
                       std::uint8_t* data, std::size_t size) {
  std::uint64_t counter = 0;
  std::size_t pos = 0;
  while (pos < size) {
    util::ByteWriter block_input;
    block_input.raw(key.material);
    block_input.u64(nonce);
    block_input.u64(counter++);
    Digest stream = sha256(block_input.bytes());
    std::size_t take = std::min<std::size_t>(stream.size(), size - pos);
    for (std::size_t i = 0; i < take; ++i) data[pos + i] ^= stream[i];
    pos += take;
  }
}

std::size_t put_varint(std::uint8_t* out, std::uint64_t v) {
  std::size_t n = 0;
  while (v >= 0x80) {
    out[n++] = static_cast<std::uint8_t>(v) | 0x80;
    v >>= 7;
  }
  out[n++] = static_cast<std::uint8_t>(v);
  return n;
}

/// Tag over (nonce || blob(ciphertext) || blob(aad)) — the same bytes
/// the original one-shot HMAC consumed, streamed so multi-megabyte
/// transfer chunks are never copied into a MAC input buffer.
Digest record_tag(const SymmetricKey& mac_key, std::uint64_t nonce,
                  util::ByteView ciphertext, util::ByteView aad) {
  HmacSha256 mac(mac_key.material);
  std::uint8_t header[18];  // 8-byte nonce + worst-case varint
  for (int i = 0; i < 8; ++i)
    header[i] = static_cast<std::uint8_t>(nonce >> (56 - 8 * i));
  std::size_t n = 8 + put_varint(header + 8, ciphertext.size());
  mac.update(util::ByteView(header, n));
  mac.update(ciphertext);
  std::uint8_t aad_len[10];
  mac.update(util::ByteView(aad_len, put_varint(aad_len, aad.size())));
  mac.update(aad);
  return mac.finish();
}

}  // namespace

void ctr_crypt_inplace(const SymmetricKey& key, std::uint64_t nonce,
                       std::uint8_t* data, std::size_t size) {
  if (key.material.size() != 32)
    return ctr_crypt_generic(key, nonce, data, size);
  // One pre-padded compression block: key(32) || nonce(8) || counter(8)
  // || 0x80 || zeros || 384 as the 64-bit bit length. Identical bytes to
  // what Sha256 would feed its compression for the 48-byte message, so
  // the keystream matches the generic path exactly.
  std::uint8_t block[64];
  std::memcpy(block, key.material.data(), 32);
  for (int i = 0; i < 8; ++i)
    block[32 + i] = static_cast<std::uint8_t>(nonce >> (56 - 8 * i));
  std::memset(block + 40, 0, 24);
  block[48] = 0x80;
  block[62] = 0x01;  // 48 * 8 = 384 = 0x0180 bits
  block[63] = 0x80;

  std::uint64_t counter = 0;
  std::size_t pos = 0;
  while (pos < size) {
    for (int i = 0; i < 8; ++i)
      block[40 + i] = static_cast<std::uint8_t>(counter >> (56 - 8 * i));
    ++counter;
    Digest stream = sha256_single_block(block);
    std::size_t take = std::min<std::size_t>(stream.size(), size - pos);
    for (std::size_t i = 0; i < take; ++i) data[pos + i] ^= stream[i];
    pos += take;
  }
}

util::Bytes ctr_crypt(const SymmetricKey& key, std::uint64_t nonce,
                      util::ByteView data) {
  util::Bytes out(data.begin(), data.end());
  ctr_crypt_inplace(key, nonce, out.data(), out.size());
  return out;
}

Digest seal_inplace(const SymmetricKey& enc_key, const SymmetricKey& mac_key,
                    std::uint64_t nonce, MutableByteView data,
                    util::ByteView aad) {
  ctr_crypt_inplace(enc_key, nonce, data.data(), data.size());
  return record_tag(mac_key, nonce, util::ByteView(data.data(), data.size()),
                    aad);
}

Digest seal_inplace(const SymmetricKey& enc_key, const SymmetricKey& mac_key,
                    std::uint64_t nonce, util::Bytes& data,
                    util::ByteView aad) {
  return seal_inplace(enc_key, mac_key, nonce,
                      MutableByteView(data.data(), data.size()), aad);
}

util::Status open_inplace(const SymmetricKey& enc_key,
                          const SymmetricKey& mac_key, std::uint64_t nonce,
                          MutableByteView data, const Digest& tag,
                          util::ByteView aad) {
  Digest expected = record_tag(
      mac_key, nonce, util::ByteView(data.data(), data.size()), aad);
  if (!util::constant_time_equal(expected, tag))
    return util::make_error(util::ErrorCode::kAuthenticationFailed,
                            "record MAC verification failed");
  ctr_crypt_inplace(enc_key, nonce, data.data(), data.size());
  return util::Status::ok_status();
}

util::Status open_inplace(const SymmetricKey& enc_key,
                          const SymmetricKey& mac_key, std::uint64_t nonce,
                          util::Bytes& data, const Digest& tag,
                          util::ByteView aad) {
  return open_inplace(enc_key, mac_key, nonce,
                      MutableByteView(data.data(), data.size()), tag, aad);
}

SealedRecord seal(const SymmetricKey& enc_key, const SymmetricKey& mac_key,
                  std::uint64_t nonce, util::ByteView plaintext,
                  util::ByteView aad) {
  SealedRecord record;
  record.nonce = nonce;
  record.ciphertext.assign(plaintext.begin(), plaintext.end());
  record.tag = seal_inplace(enc_key, mac_key, nonce, record.ciphertext, aad);
  return record;
}

util::Result<util::Bytes> open(const SymmetricKey& enc_key,
                               const SymmetricKey& mac_key,
                               const SealedRecord& record,
                               util::ByteView aad) {
  util::Bytes data = record.ciphertext;
  if (auto status = open_inplace(enc_key, mac_key, record.nonce, data,
                                 record.tag, aad);
      !status.ok())
    return status.error();
  return data;
}

}  // namespace unicore::crypto
