// 64-bit modular arithmetic: the number theory underneath the toy RSA
// and Diffie–Hellman primitives (see DESIGN.md §2 for the substitution
// rationale — protocol logic is real, only the key size is scaled down).
#pragma once

#include <cstdint>

#include "util/rng.h"

namespace unicore::crypto {

/// (a * b) mod m without overflow.
std::uint64_t mulmod(std::uint64_t a, std::uint64_t b, std::uint64_t m);

/// (base ^ exp) mod m by square-and-multiply.
std::uint64_t powmod(std::uint64_t base, std::uint64_t exp, std::uint64_t m);

/// Running count of powmod invocations — every public-key operation
/// (RSA sign/verify, DH key generation and agreement) is one or more
/// modular exponentiations, so this is the "crypto operation" meter the
/// handshake benchmarks read to compare full vs resumed handshakes.
std::uint64_t powmod_ops();
void reset_powmod_ops();

/// Greatest common divisor.
std::uint64_t gcd(std::uint64_t a, std::uint64_t b);

/// Modular inverse of a mod m; returns 0 when gcd(a, m) != 1.
std::uint64_t modinv(std::uint64_t a, std::uint64_t m);

/// Deterministic Miller–Rabin, exact for all 64-bit integers.
bool is_prime(std::uint64_t n);

/// Uniform random prime with exactly `bits` bits (2 <= bits <= 63).
std::uint64_t random_prime(util::Rng& rng, int bits);

}  // namespace unicore::crypto
