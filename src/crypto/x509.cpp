#include "crypto/x509.h"

#include <algorithm>

namespace unicore::crypto {

using asn1::Value;
using util::Bytes;
using util::ByteView;
using util::Error;
using util::ErrorCode;
using util::Result;
using util::Status;

// ---- DistinguishedName -------------------------------------------------

std::string DistinguishedName::to_string() const {
  std::string out;
  auto add = [&out](const char* key, const std::string& value) {
    if (value.empty()) return;
    if (!out.empty()) out += ", ";
    out += key;
    out += '=';
    out += value;
  };
  add("C", country);
  add("O", organization);
  add("OU", organizational_unit);
  add("CN", common_name);
  add("E", email);
  return out;
}

Value DistinguishedName::to_asn1() const {
  return Value::sequence({Value::utf8(country), Value::utf8(organization),
                          Value::utf8(organizational_unit),
                          Value::utf8(common_name), Value::utf8(email)});
}

Result<DistinguishedName> DistinguishedName::from_asn1(const Value& v) {
  if (!v.is_sequence() || v.as_sequence().size() != 5)
    return util::make_error(ErrorCode::kInvalidArgument,
                            "x509: malformed distinguished name");
  const auto& items = v.as_sequence();
  for (const auto& item : items)
    if (!item.is_utf8())
      return util::make_error(ErrorCode::kInvalidArgument,
                              "x509: DN attribute is not a UTF8String");
  DistinguishedName dn;
  dn.country = items[0].as_utf8();
  dn.organization = items[1].as_utf8();
  dn.organizational_unit = items[2].as_utf8();
  dn.common_name = items[3].as_utf8();
  dn.email = items[4].as_utf8();
  return dn;
}

// ---- Certificate -------------------------------------------------------

namespace {

Value public_key_to_asn1(const PublicKey& key) {
  return Value::sequence({Value::integer(static_cast<std::int64_t>(key.n)),
                          Value::integer(static_cast<std::int64_t>(key.e))});
}

Result<PublicKey> public_key_from_asn1(const Value& v) {
  if (!v.is_sequence() || v.as_sequence().size() != 2 ||
      !v.as_sequence()[0].is_integer() || !v.as_sequence()[1].is_integer())
    return util::make_error(ErrorCode::kInvalidArgument,
                            "x509: malformed public key");
  PublicKey key;
  key.n = static_cast<std::uint64_t>(v.as_sequence()[0].as_integer());
  key.e = static_cast<std::uint64_t>(v.as_sequence()[1].as_integer());
  return key;
}

Value tbs_to_asn1(const Certificate& cert) {
  return Value::sequence(
      {Value::integer(cert.version),
       Value::integer(static_cast<std::int64_t>(cert.serial)),
       cert.issuer.to_asn1(), cert.subject.to_asn1(),
       Value::utc_time(cert.not_before), Value::utc_time(cert.not_after),
       public_key_to_asn1(cert.subject_key),
       Value::integer(cert.key_usage), Value::boolean(cert.is_ca)});
}

}  // namespace

Bytes Certificate::tbs_der() const { return asn1::encode(tbs_to_asn1(*this)); }

Bytes Certificate::der() const {
  Value full = Value::sequence(
      {tbs_to_asn1(*this),
       Value::integer(static_cast<std::int64_t>(signature.value))});
  return asn1::encode(full);
}

Result<Certificate> Certificate::from_der(ByteView der) {
  auto decoded = asn1::decode(der);
  if (!decoded) return decoded.error();
  const Value& full = decoded.value();
  if (!full.is_sequence() || full.as_sequence().size() != 2)
    return util::make_error(ErrorCode::kInvalidArgument,
                            "x509: malformed certificate envelope");
  const Value& tbs = full.as_sequence()[0];
  const Value& sig = full.as_sequence()[1];
  if (!tbs.is_sequence() || tbs.as_sequence().size() != 9 || !sig.is_integer())
    return util::make_error(ErrorCode::kInvalidArgument,
                            "x509: malformed tbs certificate");
  const auto& f = tbs.as_sequence();

  Certificate cert;
  try {
    cert.version = static_cast<std::int32_t>(f[0].as_integer());
    cert.serial = static_cast<std::uint64_t>(f[1].as_integer());
    auto issuer = DistinguishedName::from_asn1(f[2]);
    if (!issuer) return issuer.error();
    cert.issuer = std::move(issuer.value());
    auto subject = DistinguishedName::from_asn1(f[3]);
    if (!subject) return subject.error();
    cert.subject = std::move(subject.value());
    cert.not_before = f[4].as_utc_time();
    cert.not_after = f[5].as_utc_time();
    auto key = public_key_from_asn1(f[6]);
    if (!key) return key.error();
    cert.subject_key = key.value();
    cert.key_usage = static_cast<std::uint8_t>(f[7].as_integer());
    cert.is_ca = f[8].as_boolean();
  } catch (const std::runtime_error& e) {
    return util::make_error(ErrorCode::kInvalidArgument,
                            std::string("x509: ") + e.what());
  }
  cert.signature.value = static_cast<std::uint64_t>(sig.as_integer());
  return cert;
}

Digest Certificate::fingerprint() const { return sha256(der()); }

bool Certificate::verify_signature(const PublicKey& issuer_key) const {
  return verify_message(issuer_key, tbs_der(), signature);
}

// ---- RevocationList ----------------------------------------------------

Bytes RevocationList::tbs_der() const {
  asn1::ValueList serial_values;
  serial_values.reserve(serials.size());
  for (std::uint64_t s : serials)
    serial_values.push_back(Value::integer(static_cast<std::int64_t>(s)));
  Value tbs = Value::sequence({issuer.to_asn1(), Value::utc_time(issued_at),
                               Value::sequence(std::move(serial_values))});
  return asn1::encode(tbs);
}

bool RevocationList::verify_signature(const PublicKey& issuer_key) const {
  return verify_message(issuer_key, tbs_der(), signature);
}

bool RevocationList::contains(std::uint64_t serial) const {
  return std::binary_search(serials.begin(), serials.end(), serial);
}

// ---- TrustStore ----------------------------------------------------------

void TrustStore::add_root(Certificate root) {
  roots_.push_back(std::move(root));
  ++generation_;
}

Status TrustStore::add_crl(RevocationList crl) {
  for (const Certificate& root : roots_) {
    if (root.subject == crl.issuer &&
        crl.verify_signature(root.subject_key)) {
      // Replace any previous CRL from the same issuer.
      std::erase_if(crls_, [&](const RevocationList& existing) {
        return existing.issuer == crl.issuer;
      });
      crls_.push_back(std::move(crl));
      ++generation_;
      return Status::ok_status();
    }
  }
  return util::make_error(ErrorCode::kAuthenticationFailed,
                          "crl not signed by a trusted root");
}

const Certificate* TrustStore::find_issuer(
    const DistinguishedName& name, std::span<const Certificate> pool) const {
  for (const Certificate& cert : pool)
    if (cert.subject == name) return &cert;
  return nullptr;
}

bool TrustStore::is_revoked(const Certificate& cert) const {
  for (const RevocationList& crl : crls_)
    if (crl.issuer == cert.issuer && crl.contains(cert.serial)) return true;
  return false;
}

Status TrustStore::validate(const Certificate& leaf,
                            std::span<const Certificate> intermediates,
                            const ValidationOptions& options) const {
  if (options.required_usage != 0 && !leaf.has_usage(options.required_usage))
    return util::make_error(ErrorCode::kPermissionDenied,
                            "certificate lacks required key usage");

  const Certificate* current = &leaf;
  for (std::size_t depth = 0; depth < options.max_chain_depth; ++depth) {
    if (!current->valid_at(options.now))
      return util::make_error(ErrorCode::kAuthenticationFailed,
                              "certificate outside validity window: " +
                                  current->subject.to_string());
    if (is_revoked(*current))
      return util::make_error(ErrorCode::kAuthenticationFailed,
                              "certificate revoked: " +
                                  current->subject.to_string());
    if (depth > 0 && !current->is_ca)
      return util::make_error(ErrorCode::kAuthenticationFailed,
                              "intermediate is not a CA certificate");

    // Trusted root reached? Roots are matched by exact content so a
    // forged look-alike root cannot terminate the chain.
    if (const Certificate* root = find_issuer(current->issuer, roots_)) {
      if (!current->verify_signature(root->subject_key))
        return util::make_error(ErrorCode::kAuthenticationFailed,
                                "signature verification failed against root");
      if (!root->valid_at(options.now))
        return util::make_error(ErrorCode::kAuthenticationFailed,
                                "trusted root expired");
      return Status::ok_status();
    }

    const Certificate* issuer = find_issuer(current->issuer, intermediates);
    if (issuer == nullptr)
      return util::make_error(ErrorCode::kAuthenticationFailed,
                              "no issuer found for " +
                                  current->issuer.to_string());
    if (!current->verify_signature(issuer->subject_key))
      return util::make_error(ErrorCode::kAuthenticationFailed,
                              "signature verification failed in chain");
    current = issuer;
  }
  return util::make_error(ErrorCode::kAuthenticationFailed,
                          "certificate chain too deep");
}

// ---- CertificateAuthority ------------------------------------------------

CertificateAuthority::CertificateAuthority(DistinguishedName name,
                                           util::Rng& rng, std::int64_t now,
                                           std::int64_t validity_seconds) {
  credential_.key = generate_keypair(rng);
  Certificate& cert = credential_.certificate;
  cert.serial = 1;
  cert.issuer = name;
  cert.subject = std::move(name);
  cert.not_before = now;
  cert.not_after = now + validity_seconds;
  cert.subject_key = credential_.key.pub;
  cert.key_usage = kUsageCertSign | kUsageDigitalSignature;
  cert.is_ca = true;
  cert.signature = sign_message(credential_.key, cert.tbs_der());
}

Certificate CertificateAuthority::issue(const DistinguishedName& subject,
                                        const PublicKey& subject_key,
                                        std::int64_t now,
                                        std::int64_t validity_seconds,
                                        std::uint8_t usage, bool is_ca) {
  Certificate cert;
  cert.serial = next_serial_++;
  cert.issuer = credential_.certificate.subject;
  cert.subject = subject;
  cert.not_before = now;
  cert.not_after = now + validity_seconds;
  cert.subject_key = subject_key;
  cert.key_usage = usage;
  cert.is_ca = is_ca;
  cert.signature = sign_message(credential_.key, cert.tbs_der());
  return cert;
}

Credential CertificateAuthority::issue_credential(
    const DistinguishedName& subject, util::Rng& rng, std::int64_t now,
    std::int64_t validity_seconds, std::uint8_t usage) {
  Credential credential;
  credential.key = generate_keypair(rng);
  credential.certificate =
      issue(subject, credential.key.pub, now, validity_seconds, usage);
  return credential;
}

void CertificateAuthority::revoke(std::uint64_t serial) {
  auto it = std::lower_bound(revoked_.begin(), revoked_.end(), serial);
  if (it == revoked_.end() || *it != serial) revoked_.insert(it, serial);
}

bool CertificateAuthority::is_revoked(std::uint64_t serial) const {
  return std::binary_search(revoked_.begin(), revoked_.end(), serial);
}

RevocationList CertificateAuthority::crl(std::int64_t now) const {
  RevocationList crl;
  crl.issuer = credential_.certificate.subject;
  crl.issued_at = now;
  crl.serials = revoked_;
  crl.signature = sign_message(credential_.key, crl.tbs_der());
  return crl;
}

}  // namespace unicore::crypto
