#include "crypto/bundle.h"

namespace unicore::crypto {

using util::Bytes;
using util::ByteView;
using util::ErrorCode;
using util::Result;
using util::Status;

Bytes SoftwareBundle::signing_input() const {
  util::ByteWriter w;
  w.str(name);
  w.u32(version);
  w.blob(payload);
  return w.take();
}

Bytes SoftwareBundle::encode() const {
  util::ByteWriter w;
  w.str(name);
  w.u32(version);
  w.blob(payload);
  w.blob(signer.der());
  w.u64(signature.value);
  return w.take();
}

Result<SoftwareBundle> SoftwareBundle::decode(ByteView wire) {
  try {
    util::ByteReader r(wire);
    SoftwareBundle bundle;
    bundle.name = r.str();
    bundle.version = r.u32();
    bundle.payload = r.blob();
    Bytes cert_der = r.blob();
    auto cert = Certificate::from_der(cert_der);
    if (!cert) return cert.error();
    bundle.signer = std::move(cert.value());
    bundle.signature.value = r.u64();
    if (!r.done())
      return util::make_error(ErrorCode::kInvalidArgument,
                              "bundle: trailing bytes");
    return bundle;
  } catch (const std::out_of_range&) {
    return util::make_error(ErrorCode::kInvalidArgument,
                            "bundle: truncated encoding");
  }
}

SoftwareBundle make_bundle(std::string name, std::uint32_t version,
                           Bytes payload, const Credential& developer) {
  SoftwareBundle bundle;
  bundle.name = std::move(name);
  bundle.version = version;
  bundle.payload = std::move(payload);
  bundle.signer = developer.certificate;
  bundle.signature = sign_message(developer.key, bundle.signing_input());
  return bundle;
}

Status verify_bundle(const SoftwareBundle& bundle, const TrustStore& trust,
                     std::int64_t now) {
  ValidationOptions options;
  options.now = now;
  options.required_usage = kUsageCodeSign;
  if (auto status = trust.validate(bundle.signer, {}, options); !status.ok())
    return status;
  if (!verify_message(bundle.signer.subject_key, bundle.signing_input(),
                      bundle.signature))
    return util::make_error(ErrorCode::kAuthenticationFailed,
                            "bundle: payload signature invalid");
  return Status::ok_status();
}

}  // namespace unicore::crypto
