#include "crypto/chunk_digest.h"

namespace unicore::crypto {

Digest chunk_content_digest(util::ByteView payload) {
  return sha256(payload);
}

Digest synthetic_chunk_digest(const Digest& file_checksum,
                              std::uint64_t index, std::uint32_t length) {
  util::ByteWriter w;
  w.str("unicore-xfer-chunk");
  w.raw(file_checksum);
  w.u64(index);
  w.u32(length);
  return sha256(w.bytes());
}

std::uint64_t chunk_count(std::uint64_t size, std::uint32_t chunk_bytes) {
  if (chunk_bytes == 0) return 0;
  if (size == 0) return 1;
  return (size + chunk_bytes - 1) / chunk_bytes;
}

std::uint32_t chunk_length(std::uint64_t size, std::uint32_t chunk_bytes,
                           std::uint64_t index) {
  std::uint64_t offset = index * static_cast<std::uint64_t>(chunk_bytes);
  std::uint64_t remaining = size > offset ? size - offset : 0;
  return static_cast<std::uint32_t>(
      remaining < chunk_bytes ? remaining : chunk_bytes);
}

}  // namespace unicore::crypto
