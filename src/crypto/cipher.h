// Symmetric record protection for the SecureChannel.
//
// The keystream is SHA-256 in counter mode over (key || nonce || counter)
// — a standard hash-CTR construction. seal()/open() provide
// encrypt-then-MAC authenticated encryption: ciphertext is XOR with the
// keystream, the tag is HMAC-SHA256 over (nonce || ciphertext || aad).
#pragma once

#include <cstdint>

#include "crypto/sha256.h"
#include "util/bytes.h"
#include "util/result.h"

namespace unicore::crypto {

/// Symmetric key (32 bytes of HKDF output).
struct SymmetricKey {
  util::Bytes material;  // 32 bytes
};

/// XORs `data` with the hash-CTR keystream for (key, nonce). Applying it
/// twice with the same parameters restores the plaintext.
util::Bytes ctr_crypt(const SymmetricKey& key, std::uint64_t nonce,
                      util::ByteView data);

/// In-place variant — the record-layer hot path. For the standard
/// 32-byte keys each keystream block is one pre-padded SHA-256
/// compression with only the counter bytes patched per block: no
/// allocation and no per-block input assembly.
void ctr_crypt_inplace(const SymmetricKey& key, std::uint64_t nonce,
                       std::uint8_t* data, std::size_t size);

/// Sealed (encrypted + authenticated) record.
struct SealedRecord {
  std::uint64_t nonce = 0;
  util::Bytes ciphertext;
  Digest tag{};
};

/// Encrypt-then-MAC. `aad` is authenticated but not encrypted (used for
/// record headers / sequence numbers).
SealedRecord seal(const SymmetricKey& enc_key, const SymmetricKey& mac_key,
                  std::uint64_t nonce, util::ByteView plaintext,
                  util::ByteView aad);

/// Verifies the tag (constant-time) and decrypts. Fails with
/// kAuthenticationFailed on any mismatch.
util::Result<util::Bytes> open(const SymmetricKey& enc_key,
                               const SymmetricKey& mac_key,
                               const SealedRecord& record, util::ByteView aad);

/// Mutable view over a slice of an existing buffer. The vectored record
/// path seals/opens records through views like this — slices of one
/// batch frame or of a caller's payload — so the kernels never require
/// the record to own its memory.
using MutableByteView = std::span<std::uint8_t>;

/// Copy-free seal: encrypts `data` in place (plaintext -> ciphertext)
/// and returns the tag over (nonce || ciphertext || aad).
Digest seal_inplace(const SymmetricKey& enc_key, const SymmetricKey& mac_key,
                    std::uint64_t nonce, util::Bytes& data,
                    util::ByteView aad);

/// Vectored variant: the record is a view into a larger buffer (e.g. one
/// record of a coalesced batch frame, or a fragment slice of a large
/// payload). Byte-identical output to the owning overload.
Digest seal_inplace(const SymmetricKey& enc_key, const SymmetricKey& mac_key,
                    std::uint64_t nonce, MutableByteView data,
                    util::ByteView aad);

/// Copy-free open: verifies `tag` (constant-time) and decrypts `data` in
/// place (ciphertext -> plaintext). On failure `data` is left encrypted.
util::Status open_inplace(const SymmetricKey& enc_key,
                          const SymmetricKey& mac_key, std::uint64_t nonce,
                          util::Bytes& data, const Digest& tag,
                          util::ByteView aad);

/// Vectored variant of open_inplace (see the seal counterpart).
util::Status open_inplace(const SymmetricKey& enc_key,
                          const SymmetricKey& mac_key, std::uint64_t nonce,
                          MutableByteView data, const Digest& tag,
                          util::ByteView aad);

}  // namespace unicore::crypto
