#include "crypto/hmac.h"

#include <stdexcept>

namespace unicore::crypto {

Digest hmac_sha256(util::ByteView key, util::ByteView data) {
  std::array<std::uint8_t, 64> block{};
  if (key.size() > block.size()) {
    Digest kd = sha256(key);
    std::copy(kd.begin(), kd.end(), block.begin());
  } else {
    std::copy(key.begin(), key.end(), block.begin());
  }

  std::array<std::uint8_t, 64> ipad, opad;
  for (std::size_t i = 0; i < 64; ++i) {
    ipad[i] = block[i] ^ 0x36;
    opad[i] = block[i] ^ 0x5c;
  }

  Digest inner = Sha256().update(ipad).update(data).finish();
  return Sha256().update(opad).update(inner).finish();
}

HmacSha256::HmacSha256(util::ByteView key) {
  std::array<std::uint8_t, 64> block{};
  if (key.size() > block.size()) {
    Digest kd = sha256(key);
    std::copy(kd.begin(), kd.end(), block.begin());
  } else {
    std::copy(key.begin(), key.end(), block.begin());
  }
  std::array<std::uint8_t, 64> ipad;
  for (std::size_t i = 0; i < 64; ++i) {
    ipad[i] = block[i] ^ 0x36;
    opad_[i] = block[i] ^ 0x5c;
  }
  inner_.update(ipad);
}

Digest HmacSha256::finish() {
  Digest inner = inner_.finish();
  return Sha256().update(opad_).update(inner).finish();
}

Digest hkdf_extract(util::ByteView salt, util::ByteView ikm) {
  return hmac_sha256(salt, ikm);
}

util::Bytes hkdf_expand(const Digest& prk, util::ByteView info,
                        std::size_t length) {
  if (length > 255 * 32)
    throw std::invalid_argument("hkdf_expand: length too large");
  util::Bytes out;
  out.reserve(length);
  util::Bytes previous;
  std::uint8_t counter = 1;
  while (out.size() < length) {
    util::Bytes msg = previous;
    util::append(msg, info);
    msg.push_back(counter++);
    Digest t = hmac_sha256(prk, msg);
    previous.assign(t.begin(), t.end());
    std::size_t take = std::min<std::size_t>(32, length - out.size());
    out.insert(out.end(), t.begin(), t.begin() + static_cast<std::ptrdiff_t>(take));
  }
  return out;
}

}  // namespace unicore::crypto
