// SHA-256 (FIPS 180-4), implemented from scratch.
//
// Used as the single hash primitive of the security architecture:
// certificate fingerprints and signatures, HMAC record protection, the
// CTR keystream, and content checksums for staged files.
#pragma once

#include <array>
#include <cstdint>

#include "util/bytes.h"

namespace unicore::crypto {

using Digest = std::array<std::uint8_t, 32>;

/// Incremental SHA-256 context.
class Sha256 {
 public:
  Sha256();

  Sha256& update(util::ByteView data);
  Sha256& update(std::string_view s) {
    return update(util::ByteView(reinterpret_cast<const std::uint8_t*>(s.data()),
                                 s.size()));
  }

  /// Finishes the hash; the context must not be reused afterwards.
  Digest finish();

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint32_t, 8> state_;
  std::array<std::uint8_t, 64> buffer_;
  std::size_t buffered_ = 0;
  std::uint64_t total_bits_ = 0;
};

/// One-shot convenience.
Digest sha256(util::ByteView data);
Digest sha256(std::string_view s);

/// Digest of a message that is exactly one pre-padded compression block:
/// `block` must already carry the 0x80 terminator and the 64-bit length
/// in its last 8 bytes. One compression call, no buffering — the CTR
/// keystream kernel patches a counter into a fixed 64-byte template and
/// calls this per block instead of re-running the incremental context.
Digest sha256_single_block(const std::uint8_t block[64]);

/// True when the process selected a hardware (SHA-NI) compression path at
/// startup. Both paths produce bit-identical digests; this only reports
/// which one is active (benchmarks record it in their context).
bool sha256_hardware_accelerated();

/// Forces the portable compression path (false) or re-runs hardware
/// detection (true). Exists so tests can cross-check both backends on the
/// same machine; not thread-safe against concurrent hashing.
void set_sha256_acceleration(bool enabled);

/// Digest as a Bytes value (for wire formats).
util::Bytes digest_bytes(const Digest& d);

/// First 8 bytes of the digest as a big-endian integer; used as the
/// to-be-signed representative in the toy RSA scheme.
std::uint64_t digest_prefix64(const Digest& d);

}  // namespace unicore::crypto
