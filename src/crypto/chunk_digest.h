// Per-chunk content digests, shared by the transfer wire (src/xfer)
// and the content-addressed chunk store (src/store).
//
// Both layers key chunks by the same SHA-256 digest: the wire verifies
// each chunk against it on accept, and the store interns chunks under
// it. Keeping the computation in one place below both layers is what
// makes chunk-level dedup sound — a chunk that arrives over the wire
// with digest D is byte-identical to the stored chunk filed under D,
// so the receiver may acknowledge it without writing a byte.
#pragma once

#include <cstdint>

#include "crypto/sha256.h"
#include "util/bytes.h"

namespace unicore::crypto {

/// Digest of a real chunk: SHA-256 over its payload bytes.
Digest chunk_content_digest(util::ByteView payload);

/// Digest of a synthetic chunk (no payload bytes exist): a
/// domain-separated hash over (file checksum, index, length), tying
/// every piece to the file identity declared at open.
Digest synthetic_chunk_digest(const Digest& file_checksum,
                              std::uint64_t index, std::uint32_t length);

/// Number of chunks a file of `size` bytes splits into at `chunk_bytes`
/// granularity (one empty chunk for an empty file, so open/close still
/// round-trip).
std::uint64_t chunk_count(std::uint64_t size, std::uint32_t chunk_bytes);

/// Byte length of chunk `index` of a `size`-byte file.
std::uint32_t chunk_length(std::uint64_t size, std::uint32_t chunk_bytes,
                           std::uint64_t index);

}  // namespace unicore::crypto
