// X.509v3-style certificates, DER-encoded via the asn1 module.
//
// The certificate is the user's "unique UNICORE user identification"
// (§4): the gateway maps the subject distinguished name to a local login,
// the secure channel performs mutual authentication with server and user
// certificates, and signed software bundles carry developer certificates.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "asn1/der.h"
#include "crypto/keys.h"
#include "crypto/sha256.h"
#include "util/bytes.h"
#include "util/result.h"

namespace unicore::crypto {

/// X.500-style distinguished name; the subset of attributes the DFN-PCA
/// guidelines used for UNICORE certificates.
struct DistinguishedName {
  std::string country;              // C
  std::string organization;         // O
  std::string organizational_unit;  // OU
  std::string common_name;          // CN
  std::string email;                // E

  bool operator==(const DistinguishedName&) const = default;

  /// RFC 2253-style rendering, e.g. "C=DE, O=FZ Juelich, CN=Jane Doe".
  std::string to_string() const;

  asn1::Value to_asn1() const;
  static util::Result<DistinguishedName> from_asn1(const asn1::Value& v);
};

/// Key-usage bits carried in the certificate extension.
enum KeyUsage : std::uint8_t {
  kUsageDigitalSignature = 1 << 0,
  kUsageCertSign = 1 << 1,
  kUsageCodeSign = 1 << 2,   // signed applet bundles
  kUsageServerAuth = 1 << 3, // gateway / web server certificates
  kUsageClientAuth = 1 << 4, // user certificates
};

/// A v3 certificate. Timestamps are seconds since the simulation epoch.
struct Certificate {
  std::int32_t version = 3;
  std::uint64_t serial = 0;
  DistinguishedName issuer;
  DistinguishedName subject;
  std::int64_t not_before = 0;
  std::int64_t not_after = 0;
  PublicKey subject_key;
  std::uint8_t key_usage = 0;
  bool is_ca = false;
  Signature signature;  // issuer's signature over tbs_der()

  bool operator==(const Certificate&) const = default;

  /// DER encoding of the to-be-signed portion (everything but the
  /// signature); canonical, so it is also the signing input.
  util::Bytes tbs_der() const;

  /// Full DER encoding including the signature.
  util::Bytes der() const;
  static util::Result<Certificate> from_der(util::ByteView der);

  /// SHA-256 over the full DER encoding.
  Digest fingerprint() const;

  /// True when `issuer_key` verifies this certificate's signature.
  bool verify_signature(const PublicKey& issuer_key) const;

  bool valid_at(std::int64_t now) const {
    return now >= not_before && now <= not_after;
  }
  bool has_usage(std::uint8_t usage) const {
    return (key_usage & usage) == usage;
  }
};

/// Certificate plus matching private key — a complete identity.
struct Credential {
  Certificate certificate;
  PrivateKey key;
};

/// A signed certificate revocation list.
struct RevocationList {
  DistinguishedName issuer;
  std::int64_t issued_at = 0;
  std::vector<std::uint64_t> serials;  // sorted
  Signature signature;

  util::Bytes tbs_der() const;
  bool verify_signature(const PublicKey& issuer_key) const;
  bool contains(std::uint64_t serial) const;
};

/// Validation policy for TrustStore::validate.
struct ValidationOptions {
  std::int64_t now = 0;
  std::uint8_t required_usage = 0;
  std::size_t max_chain_depth = 4;
};

/// Trusted roots plus current CRLs; performs full chain validation.
class TrustStore {
 public:
  void add_root(Certificate root);
  /// Installs/replaces the CRL for its issuer. Rejected unless signed by
  /// a known root (or a root itself).
  util::Status add_crl(RevocationList crl);

  /// Validates `leaf`, chaining through `intermediates` to a trusted
  /// root. Checks signatures, validity windows, CA flags, key usage on
  /// the leaf, and revocation of every certificate in the chain.
  util::Status validate(const Certificate& leaf,
                        std::span<const Certificate> intermediates,
                        const ValidationOptions& options) const;

  const std::vector<Certificate>& roots() const { return roots_; }

  /// Bumped on every root or CRL change. Validation caches and session
  /// tickets stamp the generation they were minted under and treat a
  /// mismatch as "revalidate from scratch" — the invalidation hook that
  /// makes revocation take effect on already-warm fast paths.
  std::uint64_t generation() const { return generation_; }

 private:
  const Certificate* find_issuer(const DistinguishedName& name,
                                 std::span<const Certificate> pool) const;
  bool is_revoked(const Certificate& cert) const;

  std::vector<Certificate> roots_;
  std::vector<RevocationList> crls_;
  std::uint64_t generation_ = 1;
};

/// A certificate authority: issues certificates, maintains revocations,
/// and publishes signed CRLs. Models the DFN-PCA role of §5.2.
class CertificateAuthority {
 public:
  /// Creates a self-signed root valid for `validity_seconds` from `now`.
  CertificateAuthority(DistinguishedName name, util::Rng& rng,
                       std::int64_t now, std::int64_t validity_seconds);

  const Certificate& certificate() const { return credential_.certificate; }
  const Credential& credential() const { return credential_; }

  /// Issues a certificate for `subject_key`.
  Certificate issue(const DistinguishedName& subject,
                    const PublicKey& subject_key, std::int64_t now,
                    std::int64_t validity_seconds, std::uint8_t usage,
                    bool is_ca = false);

  /// Convenience: generates a keypair and issues over it.
  Credential issue_credential(const DistinguishedName& subject,
                              util::Rng& rng, std::int64_t now,
                              std::int64_t validity_seconds,
                              std::uint8_t usage);

  void revoke(std::uint64_t serial);
  bool is_revoked(std::uint64_t serial) const;

  /// Signed CRL as of `now`.
  RevocationList crl(std::int64_t now) const;

 private:
  Credential credential_;
  std::uint64_t next_serial_ = 2;  // serial 1 is the root itself
  std::vector<std::uint64_t> revoked_;
};

}  // namespace unicore::crypto
