// HMAC-SHA256 (RFC 2104) and HKDF (RFC 5869).
//
// HMAC protects the record layer of the SecureChannel; HKDF derives the
// per-direction session keys from the Diffie–Hellman shared secret during
// the SSL-style handshake.
#pragma once

#include "crypto/sha256.h"
#include "util/bytes.h"

namespace unicore::crypto {

/// HMAC-SHA256 over `data` with `key` (any key length).
Digest hmac_sha256(util::ByteView key, util::ByteView data);

/// Incremental HMAC-SHA256: streams large inputs (record-layer MACs over
/// multi-megabyte transfer chunks) without assembling the whole message
/// in one buffer first.
class HmacSha256 {
 public:
  explicit HmacSha256(util::ByteView key);

  HmacSha256& update(util::ByteView data) {
    inner_.update(data);
    return *this;
  }

  /// Finishes the MAC; the context must not be reused afterwards.
  Digest finish();

 private:
  Sha256 inner_;
  std::array<std::uint8_t, 64> opad_{};
};

/// HKDF-Extract: PRK = HMAC(salt, ikm).
Digest hkdf_extract(util::ByteView salt, util::ByteView ikm);

/// HKDF-Expand: derives `length` bytes of key material bound to `info`.
/// length must be <= 255 * 32.
util::Bytes hkdf_expand(const Digest& prk, util::ByteView info,
                        std::size_t length);

}  // namespace unicore::crypto
