// HMAC-SHA256 (RFC 2104) and HKDF (RFC 5869).
//
// HMAC protects the record layer of the SecureChannel; HKDF derives the
// per-direction session keys from the Diffie–Hellman shared secret during
// the SSL-style handshake.
#pragma once

#include "crypto/sha256.h"
#include "util/bytes.h"

namespace unicore::crypto {

/// HMAC-SHA256 over `data` with `key` (any key length).
Digest hmac_sha256(util::ByteView key, util::ByteView data);

/// HKDF-Extract: PRK = HMAC(salt, ikm).
Digest hkdf_extract(util::ByteView salt, util::ByteView ikm);

/// HKDF-Expand: derives `length` bytes of key material bound to `info`.
/// length must be <= 255 * 32.
util::Bytes hkdf_expand(const Digest& prk, util::ByteView info,
                        std::size_t length);

}  // namespace unicore::crypto
