// Signed software bundles — the reproduction's analogue of UNICORE's
// signed Java applets (§4.1/§5.2): the client fetches the JPA/JMC
// software from the Usite server at connect time and verifies the
// developer signature before "running" it, so the user always works with
// the latest, untampered version.
#pragma once

#include <cstdint>
#include <string>

#include "crypto/x509.h"
#include "util/bytes.h"
#include "util/result.h"

namespace unicore::crypto {

struct SoftwareBundle {
  std::string name;          // "JPA", "JMC"
  std::uint32_t version = 0; // monotonically increasing release number
  util::Bytes payload;       // the "applet" bytes
  Certificate signer;        // developer certificate (code-signing usage)
  Signature signature;       // over canonical encoding of name|version|payload

  /// Canonical byte string the developer signs.
  util::Bytes signing_input() const;

  /// Serialized form served over the wire.
  util::Bytes encode() const;
  static util::Result<SoftwareBundle> decode(util::ByteView wire);
};

/// Creates and signs a bundle with the developer credential.
SoftwareBundle make_bundle(std::string name, std::uint32_t version,
                           util::Bytes payload, const Credential& developer);

/// Verifies the developer chain against `trust` and the payload
/// signature; `options.required_usage` is forced to kUsageCodeSign.
util::Status verify_bundle(const SoftwareBundle& bundle,
                           const TrustStore& trust, std::int64_t now);

}  // namespace unicore::crypto
