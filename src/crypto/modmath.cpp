#include "crypto/modmath.h"

#include <stdexcept>

namespace unicore::crypto {

std::uint64_t mulmod(std::uint64_t a, std::uint64_t b, std::uint64_t m) {
  return static_cast<std::uint64_t>(
      static_cast<__uint128_t>(a) * b % m);
}

namespace {
std::uint64_t g_powmod_ops = 0;
}  // namespace

std::uint64_t powmod_ops() { return g_powmod_ops; }

void reset_powmod_ops() { g_powmod_ops = 0; }

std::uint64_t powmod(std::uint64_t base, std::uint64_t exp, std::uint64_t m) {
  ++g_powmod_ops;
  if (m == 1) return 0;
  std::uint64_t result = 1;
  base %= m;
  while (exp > 0) {
    if (exp & 1) result = mulmod(result, base, m);
    base = mulmod(base, base, m);
    exp >>= 1;
  }
  return result;
}

std::uint64_t gcd(std::uint64_t a, std::uint64_t b) {
  while (b != 0) {
    std::uint64_t t = a % b;
    a = b;
    b = t;
  }
  return a;
}

std::uint64_t modinv(std::uint64_t a, std::uint64_t m) {
  // Extended Euclid over signed 128-bit to tolerate the intermediate
  // negative coefficients.
  __int128 t = 0, new_t = 1;
  __int128 r = m, new_r = a % m;
  while (new_r != 0) {
    __int128 q = r / new_r;
    __int128 tmp = t - q * new_t;
    t = new_t;
    new_t = tmp;
    tmp = r - q * new_r;
    r = new_r;
    new_r = tmp;
  }
  if (r != 1) return 0;  // not invertible
  if (t < 0) t += m;
  return static_cast<std::uint64_t>(t);
}

namespace {
// Witness check for Miller–Rabin.
bool witness_composite(std::uint64_t a, std::uint64_t d, int r,
                       std::uint64_t n) {
  std::uint64_t x = powmod(a, d, n);
  if (x == 1 || x == n - 1) return false;
  for (int i = 1; i < r; ++i) {
    x = mulmod(x, x, n);
    if (x == n - 1) return false;
  }
  return true;
}
}  // namespace

bool is_prime(std::uint64_t n) {
  if (n < 2) return false;
  for (std::uint64_t p : {2ULL, 3ULL, 5ULL, 7ULL, 11ULL, 13ULL, 17ULL, 19ULL,
                          23ULL, 29ULL, 31ULL, 37ULL}) {
    if (n == p) return true;
    if (n % p == 0) return false;
  }
  std::uint64_t d = n - 1;
  int r = 0;
  while ((d & 1) == 0) {
    d >>= 1;
    ++r;
  }
  // This witness set is proven complete for all n < 3.3e24.
  for (std::uint64_t a : {2ULL, 3ULL, 5ULL, 7ULL, 11ULL, 13ULL, 17ULL, 19ULL,
                          23ULL, 29ULL, 31ULL, 37ULL}) {
    if (witness_composite(a, d, r, n)) return false;
  }
  return true;
}

std::uint64_t random_prime(util::Rng& rng, int bits) {
  if (bits < 2 || bits > 63)
    throw std::invalid_argument("random_prime: bits out of range");
  for (;;) {
    std::uint64_t candidate = rng.next();
    candidate >>= (64 - bits);
    candidate |= 1ULL << (bits - 1);  // force the top bit
    candidate |= 1;                   // force odd
    if (is_prime(candidate)) return candidate;
  }
}

}  // namespace unicore::crypto
