#include "crypto/keys.h"

namespace unicore::crypto {

std::string PublicKey::to_string() const {
  return "rsa(n=" + std::to_string(n) + ",e=" + std::to_string(e) + ")";
}

PrivateKey generate_keypair(util::Rng& rng) {
  constexpr std::uint64_t kPublicExponent = 65537;
  for (;;) {
    std::uint64_t p = random_prime(rng, 32);
    std::uint64_t q = random_prime(rng, 32);
    if (p == q) continue;
    std::uint64_t n = p * q;  // < 2^64, no overflow
    std::uint64_t phi = (p - 1) * (q - 1);
    if (gcd(kPublicExponent, phi) != 1) continue;
    std::uint64_t d = modinv(kPublicExponent, phi);
    if (d == 0) continue;
    PrivateKey key;
    key.pub.n = n;
    key.pub.e = kPublicExponent;
    key.d = d;
    return key;
  }
}

Signature sign_digest(const PrivateKey& key, const Digest& digest) {
  std::uint64_t h = digest_prefix64(digest) % key.pub.n;
  return Signature{powmod(h, key.d, key.pub.n)};
}

Signature sign_message(const PrivateKey& key, util::ByteView message) {
  return sign_digest(key, sha256(message));
}

bool verify_digest(const PublicKey& key, const Digest& digest,
                   const Signature& sig) {
  if (!key.valid()) return false;
  std::uint64_t h = digest_prefix64(digest) % key.n;
  return powmod(sig.value, key.e, key.n) == h;
}

bool verify_message(const PublicKey& key, util::ByteView message,
                    const Signature& sig) {
  return verify_digest(key, sha256(message), sig);
}

std::uint64_t dh_prime() {
  // Largest 64-bit prime: 2^64 - 59.
  return 0xffffffffffffffc5ULL;
}

std::uint64_t dh_generator() { return 5; }

DhKeyPair dh_generate(util::Rng& rng) {
  DhKeyPair pair;
  // Secret exponent in [2, p-2].
  pair.secret = 2 + rng.below(dh_prime() - 3);
  pair.public_value = powmod(dh_generator(), pair.secret, dh_prime());
  return pair;
}

std::uint64_t dh_shared_secret(const DhKeyPair& mine,
                               std::uint64_t peer_public) {
  return powmod(peer_public, mine.secret, dh_prime());
}

}  // namespace unicore::crypto
