#include "xfer/service.h"

#include <algorithm>
#include <utility>

namespace unicore::xfer {

using util::Bytes;
using util::ErrorCode;
using util::make_error;
using util::Result;

std::uint32_t Service::clamp_chunk_bytes(std::uint32_t proposed) const {
  return std::clamp(proposed, limits_.min_chunk_bytes,
                    limits_.max_chunk_bytes);
}

std::uint64_t Service::buffered_total() const {
  std::uint64_t total = 0;
  for (const auto& [key, incoming] : incoming_)
    total += incoming->assembly.buffered_bytes();
  return total;
}

std::uint32_t Service::credit_for(const Assembly& assembly) const {
  std::uint64_t buffered = buffered_total();
  std::uint64_t room = buffered < limits_.buffer_limit_bytes
                           ? limits_.buffer_limit_bytes - buffered
                           : 0;
  std::uint64_t chunks = room / std::max<std::uint32_t>(
                                    assembly.chunk_bytes(), 1);
  return static_cast<std::uint32_t>(std::clamp<std::uint64_t>(
      chunks, 1, limits_.max_credit));  // never stall a sender completely
}

void Service::update_gauges() {
  auto& m = *njs_.metrics();
  obs::Labels labels{{"usite", njs_.usite()}};
  m.gauge("unicore_xfer_open_inbound", labels)
      .set(static_cast<double>(incoming_.size()));
  m.gauge("unicore_xfer_open_outbound", labels)
      .set(static_cast<double>(outgoing_.size()));
  m.gauge("unicore_xfer_buffered_bytes", labels)
      .set(static_cast<double>(buffered_total()));
}

std::uint64_t Service::satisfy_open(Incoming& incoming,
                                    const PushOpenRequest& request) {
  // The sender's digest manifest is only meaningful at the granularity
  // it was computed for; a clamped chunk size invalidates it.
  if (store_ == nullptr || request.digests.empty() ||
      incoming.assembly.chunk_bytes() != request.proposed_chunk_bytes)
    return 0;
  std::uint64_t satisfied =
      incoming.assembly.satisfy_from_store(request.digests);
  if (satisfied > 0) {
    chunks_deduped_ += satisfied;
    njs_.metrics()
        ->counter("unicore_xfer_dedup_chunks_total",
                  {{"usite", njs_.usite()}})
        .add(static_cast<double>(satisfied));
  }
  return satisfied;
}

PushOpenReply Service::resume_reply(const Incoming& incoming) const {
  PushOpenReply reply;
  reply.transfer_id = incoming.id;
  reply.chunk_bytes = incoming.assembly.chunk_bytes();
  reply.credit = credit_for(incoming.assembly);
  reply.have = incoming.assembly.bitmap().ranges();
  return reply;
}

Result<Bytes> Service::open(const crypto::DistinguishedName& principal,
                            bool server_peer, Role role, util::ByteReader& r) {
  switch (role) {
    case Role::kPush:
      if (!server_peer)
        return make_error(ErrorCode::kPermissionDenied,
                          "push requires a peer server certificate");
      return open_push(principal, r);
    case Role::kPeerPull:
      if (!server_peer)
        return make_error(ErrorCode::kPermissionDenied,
                          "peer pull requires a peer server certificate");
      return open_pull(principal, role, r);
    case Role::kClientPull:
      if (server_peer)
        return make_error(ErrorCode::kPermissionDenied,
                          "client pull requires a user certificate");
      return open_pull(principal, role, r);
  }
  return make_error(ErrorCode::kInvalidArgument, "unknown transfer role");
}

Result<Bytes> Service::open_push(const crypto::DistinguishedName& principal,
                                 util::ByteReader& r) {
  PushOpenRequest request = PushOpenRequest::decode(r);

  if (completed_.count(request.key) != 0) {
    // Already delivered (possibly before a crash): report every chunk
    // present so the sender goes straight to close.
    PushOpenReply reply;
    reply.transfer_id = 0;
    reply.chunk_bytes = clamp_chunk_bytes(request.proposed_chunk_bytes);
    reply.credit = 0;
    reply.have = {
        ChunkRange{0, chunk_count(request.size, reply.chunk_bytes)}};
    return reply.encode();
  }

  if (auto it = incoming_.find(request.key); it != incoming_.end()) {
    Incoming& incoming = *it->second;
    if (incoming.manifest.principal != principal)
      return make_error(ErrorCode::kPermissionDenied,
                        "transfer belongs to another principal");
    if (incoming.manifest.size != request.size ||
        incoming.manifest.checksum != request.checksum ||
        incoming.manifest.synthetic != request.synthetic)
      return make_error(ErrorCode::kFailedPrecondition,
                        "open does not match the journaled manifest");
    // Chunks the store gained since the interruption (or that recovery
    // could not re-satisfy) are acked here instead of retransmitted.
    satisfy_open(incoming, request);
    return resume_reply(incoming).encode();
  }

  // New transfer: the target job must exist here.
  if (auto owner = njs_.owner(request.token); !owner.ok())
    return owner.error();

  auto incoming = std::make_unique<Incoming>();
  incoming->manifest.key = request.key;
  incoming->manifest.token = request.token;
  incoming->manifest.name = request.name;
  incoming->manifest.size = request.size;
  incoming->manifest.checksum = request.checksum;
  incoming->manifest.synthetic = request.synthetic;
  incoming->manifest.chunk_bytes =
      clamp_chunk_bytes(request.proposed_chunk_bytes);
  incoming->manifest.principal = principal;
  incoming->assembly =
      Assembly(request.size, request.checksum, request.synthetic,
               incoming->manifest.chunk_bytes);
  if (store_ != nullptr) incoming->assembly.attach_store(store_);
  incoming->id = next_id_++;
  incoming->opened_at = engine_.now();
  if (njs::Journal* journal = njs_.journal_for(incoming->manifest.token))
    journal_manifest(*journal, incoming->manifest);
  // Dedup at open: chunks the store already holds are reported in the
  // reply's `have` ranges — for an unchanged dataset the sender goes
  // straight to close without pushing a byte of payload.
  satisfy_open(*incoming, request);

  PushOpenReply reply = resume_reply(*incoming);
  incoming_by_id_[incoming->id] = incoming.get();
  incoming_.emplace(request.key, std::move(incoming));
  update_gauges();
  return reply.encode();
}

Result<Bytes> Service::open_pull(const crypto::DistinguishedName& principal,
                                 Role role, util::ByteReader& r) {
  PullOpenRequest request = PullOpenRequest::decode(role, r);
  if (role == Role::kClientPull) {
    auto owner = njs_.owner(request.token);
    if (!owner.ok()) return owner.error();
    if (!(owner.value() == principal))
      return make_error(ErrorCode::kPermissionDenied,
                        "job belongs to another user");
  }
  auto blob = njs_.fetch_file_shared(request.token, request.name);
  if (!blob.ok()) return blob.error();

  std::uint32_t inline_limit =
      std::min(request.inline_limit, limits_.inline_limit);
  PullOpenReply reply;
  if (blob.value()->size() <= inline_limit) {
    reply.inline_blob = true;
    reply.blob = *blob.value();
    return reply.encode();
  }

  Outgoing outgoing;
  outgoing.id = next_id_++;
  outgoing.blob = std::move(blob).value();
  outgoing.chunk_bytes = clamp_chunk_bytes(request.proposed_chunk_bytes);
  reply.inline_blob = false;
  reply.transfer_id = outgoing.id;
  reply.chunk_bytes = outgoing.chunk_bytes;
  reply.size = outgoing.blob->size();
  reply.checksum = outgoing.blob->checksum();
  reply.synthetic = outgoing.blob->is_synthetic();
  auto [it, inserted] = outgoing_.emplace(outgoing.id, std::move(outgoing));
  touch_outgoing(it->second);
  update_gauges();
  return reply.encode();
}

Result<Bytes> Service::chunk(const crypto::DistinguishedName& principal,
                             bool server_peer, Role role, util::ByteReader& r) {
  if (role == Role::kPush) {
    if (!server_peer)
      return make_error(ErrorCode::kPermissionDenied,
                        "push requires a peer server certificate");
    PushChunkRequest request = PushChunkRequest::decode(r);
    auto it = incoming_by_id_.find(request.transfer_id);
    if (it == incoming_by_id_.end())
      return make_error(ErrorCode::kNotFound,
                        "no such transfer (receiver restarted?)");
    Incoming& incoming = *it->second;
    if (incoming.manifest.principal != principal)
      return make_error(ErrorCode::kPermissionDenied,
                        "transfer belongs to another principal");

    PushChunkReply reply;
    if (incoming.assembly.bitmap().test(request.chunk.index)) {
      // Idempotent re-delivery: journaled (and possibly acked) before a
      // crash or a lost ack. Never applied twice.
      ++duplicates_suppressed_;
      njs_.metrics()
          ->counter("unicore_xfer_duplicate_chunks_total",
                    {{"usite", njs_.usite()}})
          .increment();
      reply.applied = false;
      reply.credit = credit_for(incoming.assembly);
      return reply.encode();
    }
    if (!incoming.assembly.synthetic() &&
        buffered_total() + request.chunk.length > limits_.buffer_limit_bytes)
      return make_error(ErrorCode::kResourceExhausted,
                        "receive window full");  // retryable: backs off

    util::Status accepted = incoming.assembly.accept(request.chunk);
    if (!accepted.ok()) return accepted.error();
    // Write-ahead: the chunk must be durable before the ack can leave —
    // a crash after this append answers the retransmit as a duplicate.
    if (njs::Journal* journal = njs_.journal_for(incoming.manifest.token))
      journal_chunk(*journal, incoming.manifest, request.chunk);
    ++chunks_applied_;
    update_gauges();
    reply.applied = true;
    reply.credit = credit_for(incoming.assembly);
    return reply.encode();
  }

  // Pull side: serve a chunk of an open outbound read.
  PullChunkRequest request = PullChunkRequest::decode(role, r);
  auto it = outgoing_.find(request.transfer_id);
  if (it == outgoing_.end())
    return make_error(ErrorCode::kNotFound,
                      "no such transfer (source restarted?)");
  Outgoing& outgoing = it->second;
  if (request.index >=
      chunk_count(outgoing.blob->size(), outgoing.chunk_bytes))
    return make_error(ErrorCode::kInvalidArgument, "chunk index out of range");
  touch_outgoing(outgoing);
  Chunk chunk = make_chunk(*outgoing.blob, request.index, outgoing.chunk_bytes);
  util::ByteWriter w;
  chunk.encode(w);
  return w.take();
}

Result<Bytes> Service::close(const crypto::DistinguishedName& principal,
                             bool server_peer, Role role, util::ByteReader& r) {
  if (role == Role::kPush) {
    if (!server_peer)
      return make_error(ErrorCode::kPermissionDenied,
                        "push requires a peer server certificate");
    return close_push(principal, r);
  }
  CloseRequest request = CloseRequest::decode(role, r);
  if (auto it = outgoing_.find(request.transfer_id); it != outgoing_.end()) {
    if (it->second.expiry != 0) engine_.cancel(it->second.expiry);
    outgoing_.erase(it);
    update_gauges();
  }
  return Bytes{};  // idempotent: closing an unknown read is fine
}

Result<Bytes> Service::close_push(const crypto::DistinguishedName& principal,
                                  util::ByteReader& r) {
  CloseRequest request = CloseRequest::decode(Role::kPush, r);
  if (completed_.count(request.key) != 0) return Bytes{};  // idempotent

  auto by_id = incoming_by_id_.find(request.transfer_id);
  Incoming* incoming = by_id != incoming_by_id_.end() ? by_id->second : nullptr;
  if (incoming == nullptr) {
    auto by_key = incoming_.find(request.key);
    if (by_key != incoming_.end()) incoming = by_key->second.get();
  }
  if (incoming == nullptr)
    return make_error(ErrorCode::kNotFound,
                      "no such transfer (receiver restarted?)");
  if (incoming->manifest.principal != principal)
    return make_error(ErrorCode::kPermissionDenied,
                      "transfer belongs to another principal");
  if (!incoming->assembly.complete())
    return make_error(
        ErrorCode::kFailedPrecondition,
        "transfer incomplete: " +
            std::to_string(incoming->assembly.bitmap().count()) + "/" +
            std::to_string(incoming->assembly.bitmap().total()) + " chunks");

  auto blob = incoming->assembly.finish();
  if (!blob.ok())
    return make_error(ErrorCode::kInternal,
                      "whole-file verification failed: " +
                          blob.error().message);
  auto status = njs_.deliver_file(
      incoming->manifest.token, incoming->manifest.name,
      std::make_shared<const uspace::FileBlob>(std::move(blob).value()));
  if (!status.ok()) return status.error();

  if (njs::Journal* journal = njs_.journal_for(incoming->manifest.token))
    journal_done(*journal, incoming->manifest);
  njs_.record_transfer_span(
      incoming->manifest.token, "xfer-in", incoming->opened_at, engine_.now(),
      {{"file", incoming->manifest.name},
       {"bytes", std::to_string(incoming->manifest.size)},
       {"chunks", std::to_string(incoming->assembly.bitmap().total())},
       {"from", incoming->manifest.principal.common_name}});
  ++transfers_completed_;
  util::Bytes key = incoming->manifest.key;  // copy: erase frees `incoming`
  completed_.insert(key);
  incoming_by_id_.erase(incoming->id);
  incoming_.erase(key);
  update_gauges();
  return Bytes{};
}

void Service::touch_outgoing(Outgoing& outgoing) {
  if (outgoing.expiry != 0) engine_.cancel(outgoing.expiry);
  std::uint64_t id = outgoing.id;
  outgoing.expiry = engine_.after(limits_.read_idle_timeout, [this, id] {
    outgoing_.erase(id);
    update_gauges();
  });
}

void Service::on_njs_crash() {
  // The process died: every in-memory table goes. The journal (a disk)
  // is what on_njs_recover rebuilds from.
  incoming_.clear();
  incoming_by_id_.clear();
  completed_.clear();
  for (auto& [id, outgoing] : outgoing_)
    if (outgoing.expiry != 0) engine_.cancel(outgoing.expiry);
  outgoing_.clear();
  update_gauges();
}

void Service::on_njs_recover() {
  for (njs::Journal* journal : njs_.all_journals()) fold_journal(*journal);
}

void Service::on_njs_adopt(const njs::Journal& journal) {
  fold_journal(journal);
}

void Service::fold_journal(const njs::Journal& journal) {
  for (util::Bytes& key : completed_transfer_keys(journal))
    completed_.insert(std::move(key));
  for (RecoveredTransfer& recovered : recover_transfers(journal)) {
    // Already live here (adopt fold beside open transfers) — keep it.
    if (incoming_.count(recovered.manifest.key) != 0) continue;
    // The target job must have survived recovery too.
    if (!njs_.owner(recovered.manifest.token).ok()) continue;
    auto incoming = std::make_unique<Incoming>();
    incoming->assembly = Assembly(
        recovered.manifest.size, recovered.manifest.checksum,
        recovered.manifest.synthetic, recovered.manifest.chunk_bytes);
    if (store_ != nullptr) incoming->assembly.attach_store(store_);
    incoming->manifest = std::move(recovered.manifest);
    incoming->id = next_id_++;  // fresh id: the old one is dead with the
                                // process, senders re-open by key
    incoming->opened_at = engine_.now();
    for (const Chunk& chunk : recovered.chunks) {
      // Already verified and journaled; re-journaling would double the
      // log, so fold straight into the assembly.
      incoming->assembly.accept(chunk);
    }
    incoming_by_id_[incoming->id] = incoming.get();
    incoming_.emplace(incoming->manifest.key, std::move(incoming));
    ++transfers_recovered_;
    njs_.metrics()
        ->counter("unicore_xfer_recovered_transfers_total",
                  {{"usite", njs_.usite()}})
        .increment();
  }
  update_gauges();
}

}  // namespace unicore::xfer
