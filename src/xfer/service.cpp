#include "xfer/service.h"

#include <algorithm>
#include <utility>

namespace unicore::xfer {

using util::Bytes;
using util::ErrorCode;
using util::make_error;
using util::Result;

std::uint32_t Service::clamp_chunk_bytes(std::uint32_t proposed) const {
  return std::clamp(proposed, limits_.min_chunk_bytes,
                    limits_.max_chunk_bytes);
}

std::uint64_t Service::buffered_total() const {
  std::uint64_t total = 0;
  for (const auto& [key, incoming] : incoming_)
    total += incoming->assembly.buffered_bytes();
  for (const auto& [key, bundle] : bundles_)
    for (const Assembly& assembly : bundle->assemblies)
      total += assembly.buffered_bytes();
  return total;
}

std::uint32_t Service::credit_for_bytes(std::uint32_t chunk_bytes) const {
  std::uint64_t buffered = buffered_total();
  std::uint64_t room = buffered < limits_.buffer_limit_bytes
                           ? limits_.buffer_limit_bytes - buffered
                           : 0;
  std::uint64_t chunks = room / std::max<std::uint32_t>(chunk_bytes, 1);
  return static_cast<std::uint32_t>(std::clamp<std::uint64_t>(
      chunks, 1, limits_.max_credit));  // never stall a sender completely
}

std::uint32_t Service::credit_for(const Assembly& assembly) const {
  return credit_for_bytes(assembly.chunk_bytes());
}

void Service::count_open(const char* kind) {
  njs_.metrics()
      ->counter("unicore_xfer_opens_total",
                {{"usite", njs_.usite()}, {"kind", kind}})
      .increment();
}

void Service::update_gauges() {
  auto& m = *njs_.metrics();
  obs::Labels labels{{"usite", njs_.usite()}};
  m.gauge("unicore_xfer_open_inbound", labels)
      .set(static_cast<double>(incoming_.size() + bundles_.size()));
  m.gauge("unicore_xfer_open_outbound", labels)
      .set(static_cast<double>(outgoing_.size() + outgoing_bundles_.size()));
  m.gauge("unicore_xfer_buffered_bytes", labels)
      .set(static_cast<double>(buffered_total()));
}

std::uint64_t Service::satisfy_open(Incoming& incoming,
                                    const PushOpenRequest& request) {
  // The sender's digest manifest is only meaningful at the granularity
  // it was computed for; a clamped chunk size invalidates it.
  if (store_ == nullptr || request.digests.empty() ||
      incoming.assembly.chunk_bytes() != request.proposed_chunk_bytes)
    return 0;
  std::uint64_t satisfied =
      incoming.assembly.satisfy_from_store(request.digests);
  if (satisfied > 0) {
    chunks_deduped_ += satisfied;
    njs_.metrics()
        ->counter("unicore_xfer_dedup_chunks_total",
                  {{"usite", njs_.usite()}})
        .add(static_cast<double>(satisfied));
  }
  return satisfied;
}

PushOpenReply Service::resume_reply(const Incoming& incoming) const {
  PushOpenReply reply;
  reply.transfer_id = incoming.id;
  reply.chunk_bytes = incoming.assembly.chunk_bytes();
  reply.credit = credit_for(incoming.assembly);
  reply.have = incoming.assembly.bitmap().ranges();
  return reply;
}

Result<Bytes> Service::open(const crypto::DistinguishedName& principal,
                            bool server_peer, Role role, util::ByteReader& r) {
  count_open("file");
  switch (role) {
    case Role::kPush:
      if (!server_peer)
        return make_error(ErrorCode::kPermissionDenied,
                          "push requires a peer server certificate");
      return open_push(principal, role, r);
    case Role::kClientPush:
      if (server_peer)
        return make_error(ErrorCode::kPermissionDenied,
                          "client push requires a user certificate");
      return open_push(principal, role, r);
    case Role::kPeerPull:
      if (!server_peer)
        return make_error(ErrorCode::kPermissionDenied,
                          "peer pull requires a peer server certificate");
      return open_pull(principal, role, r);
    case Role::kClientPull:
      if (server_peer)
        return make_error(ErrorCode::kPermissionDenied,
                          "client pull requires a user certificate");
      return open_pull(principal, role, r);
  }
  return make_error(ErrorCode::kInvalidArgument, "unknown transfer role");
}

Result<Bytes> Service::open_push(const crypto::DistinguishedName& principal,
                                 Role role, util::ByteReader& r) {
  PushOpenRequest request = PushOpenRequest::decode(role, r);

  if (completed_.count(request.key) != 0) {
    // Already delivered (possibly before a crash): report every chunk
    // present so the sender goes straight to close.
    PushOpenReply reply;
    reply.transfer_id = 0;
    reply.chunk_bytes = clamp_chunk_bytes(request.proposed_chunk_bytes);
    reply.credit = 0;
    reply.have = {
        ChunkRange{0, chunk_count(request.size, reply.chunk_bytes)}};
    return reply.encode();
  }

  if (auto it = incoming_.find(request.key); it != incoming_.end()) {
    Incoming& incoming = *it->second;
    if (incoming.manifest.principal != principal)
      return make_error(ErrorCode::kPermissionDenied,
                        "transfer belongs to another principal");
    if (incoming.manifest.size != request.size ||
        incoming.manifest.checksum != request.checksum ||
        incoming.manifest.synthetic != request.synthetic)
      return make_error(ErrorCode::kFailedPrecondition,
                        "open does not match the journaled manifest");
    // Chunks the store gained since the interruption (or that recovery
    // could not re-satisfy) are acked here instead of retransmitted.
    satisfy_open(incoming, request);
    return resume_reply(incoming).encode();
  }

  // New transfer: the target job must exist here (and, for a client
  // staging its own job, belong to the caller).
  auto owner = njs_.owner(request.token);
  if (!owner.ok()) return owner.error();
  if (role == Role::kClientPush && !(owner.value() == principal))
    return make_error(ErrorCode::kPermissionDenied,
                      "job belongs to another user");

  auto incoming = std::make_unique<Incoming>();
  incoming->manifest.key = request.key;
  incoming->manifest.token = request.token;
  incoming->manifest.name = request.name;
  incoming->manifest.size = request.size;
  incoming->manifest.checksum = request.checksum;
  incoming->manifest.synthetic = request.synthetic;
  incoming->manifest.chunk_bytes =
      clamp_chunk_bytes(request.proposed_chunk_bytes);
  incoming->manifest.principal = principal;
  incoming->assembly =
      Assembly(request.size, request.checksum, request.synthetic,
               incoming->manifest.chunk_bytes);
  if (store_ != nullptr) incoming->assembly.attach_store(store_);
  incoming->id = next_id_++;
  incoming->opened_at = engine_.now();
  if (njs::Journal* journal = njs_.journal_for(incoming->manifest.token))
    journal_manifest(*journal, incoming->manifest);
  // Dedup at open: chunks the store already holds are reported in the
  // reply's `have` ranges — for an unchanged dataset the sender goes
  // straight to close without pushing a byte of payload.
  satisfy_open(*incoming, request);

  PushOpenReply reply = resume_reply(*incoming);
  incoming_by_id_[incoming->id] = incoming.get();
  incoming_.emplace(request.key, std::move(incoming));
  update_gauges();
  return reply.encode();
}

Result<Bytes> Service::open_pull(const crypto::DistinguishedName& principal,
                                 Role role, util::ByteReader& r) {
  PullOpenRequest request = PullOpenRequest::decode(role, r);
  if (role == Role::kClientPull) {
    auto owner = njs_.owner(request.token);
    if (!owner.ok()) return owner.error();
    if (!(owner.value() == principal))
      return make_error(ErrorCode::kPermissionDenied,
                        "job belongs to another user");
  }
  auto blob = njs_.fetch_file_shared(request.token, request.name);
  if (!blob.ok()) return blob.error();

  std::uint32_t inline_limit =
      std::min(request.inline_limit, limits_.inline_limit);
  PullOpenReply reply;
  if (blob.value()->size() <= inline_limit) {
    reply.inline_blob = true;
    reply.blob = *blob.value();
    return reply.encode();
  }

  Outgoing outgoing;
  outgoing.id = next_id_++;
  outgoing.blob = std::move(blob).value();
  outgoing.chunk_bytes = clamp_chunk_bytes(request.proposed_chunk_bytes);
  reply.inline_blob = false;
  reply.transfer_id = outgoing.id;
  reply.chunk_bytes = outgoing.chunk_bytes;
  reply.size = outgoing.blob->size();
  reply.checksum = outgoing.blob->checksum();
  reply.synthetic = outgoing.blob->is_synthetic();
  // The pull-path dedup manifest: a puller with a chunk store satisfies
  // matching chunks locally and only requests the rest.
  reply.digests = outgoing.blob->chunk_digests(outgoing.chunk_bytes);
  auto [it, inserted] = outgoing_.emplace(outgoing.id, std::move(outgoing));
  touch_outgoing(it->second);
  update_gauges();
  return reply.encode();
}

Result<Bytes> Service::chunk(const crypto::DistinguishedName& principal,
                             bool server_peer, Role role, util::ByteReader& r) {
  if (role_is_push(role)) {
    if (role == Role::kPush && !server_peer)
      return make_error(ErrorCode::kPermissionDenied,
                        "push requires a peer server certificate");
    if (role == Role::kClientPush && server_peer)
      return make_error(ErrorCode::kPermissionDenied,
                        "client push requires a user certificate");
    // The transfer id tells bundle chunks from single-file ones: both
    // tables draw ids from one counter, so a hit is unambiguous.
    std::uint64_t transfer_id = r.u64();
    if (auto bundle_it = bundles_by_id_.find(transfer_id);
        bundle_it != bundles_by_id_.end())
      return bundle_push_chunk(principal, *bundle_it->second, r);
    // Unknown ids (e.g. stale after a crash) bail before the body is
    // decoded: a stale BUNDLE chunk's body has a different layout, and
    // mis-decoding it here would throw instead of driving a resume.
    auto it = incoming_by_id_.find(transfer_id);
    if (it == incoming_by_id_.end())
      return make_error(ErrorCode::kNotFound,
                        "no such transfer (receiver restarted?)");
    PushChunkRequest request;
    request.role = role;
    request.transfer_id = transfer_id;
    request.chunk = Chunk::decode(r);
    Incoming& incoming = *it->second;
    if (incoming.manifest.principal != principal)
      return make_error(ErrorCode::kPermissionDenied,
                        "transfer belongs to another principal");

    PushChunkReply reply;
    if (incoming.assembly.bitmap().test(request.chunk.index)) {
      // Idempotent re-delivery: journaled (and possibly acked) before a
      // crash or a lost ack. Never applied twice.
      ++duplicates_suppressed_;
      njs_.metrics()
          ->counter("unicore_xfer_duplicate_chunks_total",
                    {{"usite", njs_.usite()}})
          .increment();
      reply.applied = false;
      reply.credit = credit_for(incoming.assembly);
      return reply.encode();
    }
    if (!incoming.assembly.synthetic() &&
        buffered_total() + request.chunk.length > limits_.buffer_limit_bytes)
      return make_error(ErrorCode::kResourceExhausted,
                        "receive window full");  // retryable: backs off

    util::Status accepted = incoming.assembly.accept(request.chunk);
    if (!accepted.ok()) return accepted.error();
    // Write-ahead: the chunk must be durable before the ack can leave —
    // a crash after this append answers the retransmit as a duplicate.
    if (njs::Journal* journal = njs_.journal_for(incoming.manifest.token))
      journal_chunk(*journal, incoming.manifest, request.chunk);
    ++chunks_applied_;
    update_gauges();
    reply.applied = true;
    reply.credit = credit_for(incoming.assembly);
    return reply.encode();
  }

  // Pull side: serve a chunk of an open outbound read.
  std::uint64_t transfer_id = r.u64();
  if (auto bundle_it = outgoing_bundles_.find(transfer_id);
      bundle_it != outgoing_bundles_.end()) {
    BundlePullChunkRequest request =
        BundlePullChunkRequest::decode(role, transfer_id, r);
    OutgoingBundle& outgoing = bundle_it->second;
    if (request.file_index >= outgoing.blobs.size())
      return make_error(ErrorCode::kInvalidArgument,
                        "bundle file index out of range");
    const uspace::FileBlob& blob = *outgoing.blobs[request.file_index];
    if (request.index >= chunk_count(blob.size(), outgoing.chunk_bytes))
      return make_error(ErrorCode::kInvalidArgument,
                        "chunk index out of range");
    touch_outgoing_bundle(outgoing);
    Chunk chunk = make_chunk(blob, request.index, outgoing.chunk_bytes);
    util::ByteWriter w;
    chunk.encode(w);
    return w.take();
  }
  PullChunkRequest request;
  request.role = role;
  request.transfer_id = transfer_id;
  request.index = r.u64();
  auto it = outgoing_.find(request.transfer_id);
  if (it == outgoing_.end())
    return make_error(ErrorCode::kNotFound,
                      "no such transfer (source restarted?)");
  Outgoing& outgoing = it->second;
  if (request.index >=
      chunk_count(outgoing.blob->size(), outgoing.chunk_bytes))
    return make_error(ErrorCode::kInvalidArgument, "chunk index out of range");
  touch_outgoing(outgoing);
  Chunk chunk = make_chunk(*outgoing.blob, request.index, outgoing.chunk_bytes);
  util::ByteWriter w;
  chunk.encode(w);
  return w.take();
}

Result<Bytes> Service::close(const crypto::DistinguishedName& principal,
                             bool server_peer, Role role, util::ByteReader& r) {
  if (role_is_push(role)) {
    if (role == Role::kPush && !server_peer)
      return make_error(ErrorCode::kPermissionDenied,
                        "push requires a peer server certificate");
    if (role == Role::kClientPush && server_peer)
      return make_error(ErrorCode::kPermissionDenied,
                        "client push requires a user certificate");
    return close_push(principal, role, r);
  }
  CloseRequest request = CloseRequest::decode(role, r);
  if (auto it = outgoing_.find(request.transfer_id); it != outgoing_.end()) {
    if (it->second.expiry != 0) engine_.cancel(it->second.expiry);
    outgoing_.erase(it);
    update_gauges();
  }
  return Bytes{};  // idempotent: closing an unknown read is fine
}

Result<Bytes> Service::close_push(const crypto::DistinguishedName& principal,
                                  Role role, util::ByteReader& r) {
  CloseRequest request = CloseRequest::decode(role, r);
  if (completed_.count(request.key) != 0) return Bytes{};  // idempotent

  auto by_id = incoming_by_id_.find(request.transfer_id);
  Incoming* incoming = by_id != incoming_by_id_.end() ? by_id->second : nullptr;
  if (incoming == nullptr) {
    auto by_key = incoming_.find(request.key);
    if (by_key != incoming_.end()) incoming = by_key->second.get();
  }
  if (incoming == nullptr)
    return make_error(ErrorCode::kNotFound,
                      "no such transfer (receiver restarted?)");
  if (incoming->manifest.principal != principal)
    return make_error(ErrorCode::kPermissionDenied,
                      "transfer belongs to another principal");
  if (!incoming->assembly.complete())
    return make_error(
        ErrorCode::kFailedPrecondition,
        "transfer incomplete: " +
            std::to_string(incoming->assembly.bitmap().count()) + "/" +
            std::to_string(incoming->assembly.bitmap().total()) + " chunks");

  auto blob = incoming->assembly.finish();
  if (!blob.ok())
    return make_error(ErrorCode::kInternal,
                      "whole-file verification failed: " +
                          blob.error().message);
  auto status = njs_.deliver_file(
      incoming->manifest.token, incoming->manifest.name,
      std::make_shared<const uspace::FileBlob>(std::move(blob).value()));
  if (!status.ok()) return status.error();

  if (njs::Journal* journal = njs_.journal_for(incoming->manifest.token))
    journal_done(*journal, incoming->manifest);
  njs_.record_transfer_span(
      incoming->manifest.token, "xfer-in", incoming->opened_at, engine_.now(),
      {{"file", incoming->manifest.name},
       {"bytes", std::to_string(incoming->manifest.size)},
       {"chunks", std::to_string(incoming->assembly.bitmap().total())},
       {"from", incoming->manifest.principal.common_name}});
  ++transfers_completed_;
  util::Bytes key = incoming->manifest.key;  // copy: erase frees `incoming`
  completed_.insert(key);
  incoming_by_id_.erase(incoming->id);
  incoming_.erase(key);
  update_gauges();
  return Bytes{};
}

// ---- bundles ---------------------------------------------------------------

util::Status Service::deliver_bundle_file(IncomingBundle& bundle,
                                          std::uint32_t index) {
  auto blob = bundle.assemblies[index].finish();
  if (!blob.ok())
    return make_error(ErrorCode::kInternal,
                      "whole-file verification failed: " +
                          blob.error().message);
  auto status = njs_.deliver_file(
      bundle.manifest.token, bundle.manifest.files[index].name,
      std::make_shared<const uspace::FileBlob>(std::move(blob).value()));
  if (!status.ok()) return status.error();
  bundle.delivered[index] = true;
  // Free the drained buffers; delivered[] keeps re-deliveries duplicate.
  bundle.assemblies[index] = Assembly();
  ++bundle_files_delivered_;
  return util::Status();
}

std::uint64_t Service::satisfy_bundle_open(IncomingBundle& bundle,
                                           const BundleOpenRequest& request) {
  // Like satisfy_open: the manifests are only meaningful at the
  // granularity they were computed for.
  if (store_ == nullptr ||
      bundle.manifest.chunk_bytes != request.proposed_chunk_bytes)
    return 0;
  std::uint64_t satisfied = 0;
  for (std::uint32_t i = 0; i < bundle.assemblies.size(); ++i) {
    if (bundle.delivered[i] || request.files[i].digests.empty()) continue;
    satisfied += bundle.assemblies[i].satisfy_from_store(
        request.files[i].digests);
    // Fully warm files deliver straight from the open — the whole-batch
    // dedup that turns an unchanged tree into one RTT. A delivery
    // failure leaves the file complete-but-undelivered; close retries.
    if (bundle.assemblies[i].complete())
      (void)deliver_bundle_file(bundle, i);
  }
  if (satisfied > 0) {
    chunks_deduped_ += satisfied;
    njs_.metrics()
        ->counter("unicore_xfer_dedup_chunks_total",
                  {{"usite", njs_.usite()}})
        .add(static_cast<double>(satisfied));
  }
  return satisfied;
}

BundleOpenReply Service::bundle_resume_reply(
    const IncomingBundle& bundle) const {
  BundleOpenReply reply;
  reply.transfer_id = bundle.id;
  reply.chunk_bytes = bundle.manifest.chunk_bytes;
  reply.credit = credit_for_bytes(bundle.manifest.chunk_bytes);
  reply.files.resize(bundle.assemblies.size());
  for (std::size_t i = 0; i < bundle.assemblies.size(); ++i) {
    reply.files[i].complete =
        bundle.delivered[i] || bundle.assemblies[i].complete();
    if (!reply.files[i].complete)
      reply.files[i].have = bundle.assemblies[i].bitmap().ranges();
  }
  return reply;
}

Result<Bytes> Service::bundle_open(const crypto::DistinguishedName& principal,
                                   bool server_peer, Role role,
                                   util::ByteReader& r) {
  count_open("bundle");
  switch (role) {
    case Role::kPush:
      if (!server_peer)
        return make_error(ErrorCode::kPermissionDenied,
                          "push requires a peer server certificate");
      return bundle_open_push(principal, role, r);
    case Role::kClientPush:
      if (server_peer)
        return make_error(ErrorCode::kPermissionDenied,
                          "client push requires a user certificate");
      return bundle_open_push(principal, role, r);
    case Role::kPeerPull:
      if (!server_peer)
        return make_error(ErrorCode::kPermissionDenied,
                          "peer pull requires a peer server certificate");
      return bundle_open_pull(principal, role, r);
    case Role::kClientPull:
      if (server_peer)
        return make_error(ErrorCode::kPermissionDenied,
                          "client pull requires a user certificate");
      return bundle_open_pull(principal, role, r);
  }
  return make_error(ErrorCode::kInvalidArgument, "unknown transfer role");
}

Result<Bytes> Service::bundle_open_push(
    const crypto::DistinguishedName& principal, Role role,
    util::ByteReader& r) {
  BundleOpenRequest request = BundleOpenRequest::decode(r);
  request.role = role;
  if (request.files.empty() || request.files.size() > kMaxBundleFiles)
    return make_error(ErrorCode::kInvalidArgument,
                      "bundle file count out of range");

  if (completed_bundles_.count(request.key) != 0) {
    // Already committed (possibly before a crash): report every file
    // complete so the sender goes straight to close.
    BundleOpenReply reply;
    reply.transfer_id = 0;
    reply.chunk_bytes = clamp_chunk_bytes(request.proposed_chunk_bytes);
    reply.credit = 0;
    reply.files.resize(request.files.size());
    for (BundleFileState& file : reply.files) file.complete = true;
    return reply.encode();
  }

  if (auto it = bundles_.find(request.key); it != bundles_.end()) {
    IncomingBundle& bundle = *it->second;
    if (bundle.manifest.principal != principal)
      return make_error(ErrorCode::kPermissionDenied,
                        "bundle belongs to another principal");
    if (bundle.manifest.files.size() != request.files.size())
      return make_error(ErrorCode::kFailedPrecondition,
                        "open does not match the journaled bundle manifest");
    for (std::size_t i = 0; i < request.files.size(); ++i) {
      const BundleFileMeta& meta = bundle.manifest.files[i];
      const BundleFileEntry& entry = request.files[i];
      if (meta.name != entry.name || meta.size != entry.size ||
          meta.checksum != entry.checksum ||
          meta.synthetic != entry.synthetic)
        return make_error(ErrorCode::kFailedPrecondition,
                          "open does not match the journaled bundle manifest");
    }
    // Chunks the store gained since the interruption are acked here.
    satisfy_bundle_open(bundle, request);
    return bundle_resume_reply(bundle).encode();
  }

  // New bundle: the target job must exist here (and, for a client
  // staging its own job, belong to the caller).
  auto owner = njs_.owner(request.token);
  if (!owner.ok()) return owner.error();
  if (role == Role::kClientPush && !(owner.value() == principal))
    return make_error(ErrorCode::kPermissionDenied,
                      "job belongs to another user");

  auto bundle = std::make_unique<IncomingBundle>();
  bundle->manifest.key = request.key;
  bundle->manifest.token = request.token;
  bundle->manifest.chunk_bytes =
      clamp_chunk_bytes(request.proposed_chunk_bytes);
  bundle->manifest.principal = principal;
  bundle->manifest.files.reserve(request.files.size());
  bundle->assemblies.reserve(request.files.size());
  for (const BundleFileEntry& entry : request.files) {
    BundleFileMeta meta;
    meta.name = entry.name;
    meta.size = entry.size;
    meta.checksum = entry.checksum;
    meta.synthetic = entry.synthetic;
    bundle->manifest.files.push_back(std::move(meta));
    Assembly assembly(entry.size, entry.checksum, entry.synthetic,
                      bundle->manifest.chunk_bytes);
    if (store_ != nullptr) assembly.attach_store(store_);
    bundle->assemblies.push_back(std::move(assembly));
  }
  bundle->delivered.assign(request.files.size(), false);
  bundle->id = next_id_++;
  bundle->opened_at = engine_.now();
  // ONE durable record covers the whole bundle — the journal-side
  // amortization that pairs with the single open/close RTT.
  if (njs::Journal* journal = njs_.journal_for(bundle->manifest.token))
    journal_bundle_manifest(*journal, bundle->manifest);
  {
    auto& m = *njs_.metrics();
    obs::Labels labels{{"usite", njs_.usite()}};
    m.counter("unicore_xfer_bundle_files_total", labels)
        .add(static_cast<double>(request.files.size()));
    // Against the per-file baseline of one open + one close RTT per
    // file, a bundle spends two RTTs total: 2n - 2 saved.
    m.counter("unicore_xfer_rtts_saved_total", labels)
        .add(static_cast<double>(2 * request.files.size() - 2));
  }
  satisfy_bundle_open(*bundle, request);

  BundleOpenReply reply = bundle_resume_reply(*bundle);
  bundles_by_id_[bundle->id] = bundle.get();
  bundles_.emplace(request.key, std::move(bundle));
  update_gauges();
  return reply.encode();
}

Result<Bytes> Service::bundle_open_pull(
    const crypto::DistinguishedName& principal, Role role,
    util::ByteReader& r) {
  BundlePullOpenRequest request = BundlePullOpenRequest::decode(role, r);
  if (request.names.empty() || request.names.size() > kMaxBundleFiles)
    return make_error(ErrorCode::kInvalidArgument,
                      "bundle file count out of range");
  if (role == Role::kClientPull) {
    auto owner = njs_.owner(request.token);
    if (!owner.ok()) return owner.error();
    if (!(owner.value() == principal))
      return make_error(ErrorCode::kPermissionDenied,
                        "job belongs to another user");
  }

  OutgoingBundle outgoing;
  outgoing.chunk_bytes = clamp_chunk_bytes(request.proposed_chunk_bytes);
  BundlePullOpenReply reply;
  reply.chunk_bytes = outgoing.chunk_bytes;
  reply.files.reserve(request.names.size());
  outgoing.blobs.reserve(request.names.size());
  for (const std::string& name : request.names) {
    auto blob = njs_.fetch_file_shared(request.token, name);
    if (!blob.ok()) return blob.error();
    BundlePullFileInfo info;
    info.size = blob.value()->size();
    info.checksum = blob.value()->checksum();
    info.synthetic = blob.value()->is_synthetic();
    // The reply's digests ARE the pull-path manifest negotiation: the
    // puller's store satisfies matching chunks without a request.
    info.digests = blob.value()->chunk_digests(outgoing.chunk_bytes);
    reply.files.push_back(std::move(info));
    outgoing.blobs.push_back(std::move(blob).value());
  }
  outgoing.id = next_id_++;
  reply.transfer_id = outgoing.id;
  auto [it, inserted] =
      outgoing_bundles_.emplace(outgoing.id, std::move(outgoing));
  touch_outgoing_bundle(it->second);
  update_gauges();
  return reply.encode();
}

Result<Bytes> Service::bundle_push_chunk(
    const crypto::DistinguishedName& principal, IncomingBundle& bundle,
    util::ByteReader& r) {
  BundleChunkRequest request = BundleChunkRequest::decode(bundle.id, r);
  if (bundle.manifest.principal != principal)
    return make_error(ErrorCode::kPermissionDenied,
                      "bundle belongs to another principal");
  if (request.file_index >= bundle.assemblies.size())
    return make_error(ErrorCode::kInvalidArgument,
                      "bundle file index out of range");
  Assembly& assembly = bundle.assemblies[request.file_index];

  PushChunkReply reply;
  if (bundle.delivered[request.file_index] ||
      assembly.bitmap().test(request.chunk.index)) {
    // Idempotent re-delivery, exactly like the single-file path.
    ++duplicates_suppressed_;
    njs_.metrics()
        ->counter("unicore_xfer_duplicate_chunks_total",
                  {{"usite", njs_.usite()}})
        .increment();
    reply.applied = false;
    reply.credit = credit_for_bytes(bundle.manifest.chunk_bytes);
    return reply.encode();
  }
  if (!assembly.synthetic() &&
      buffered_total() + request.chunk.length > limits_.buffer_limit_bytes)
    return make_error(ErrorCode::kResourceExhausted,
                      "receive window full");  // retryable: backs off

  util::Status accepted = assembly.accept(request.chunk);
  if (!accepted.ok()) return accepted.error();
  // Write-ahead: durable before the ack can leave, like journal_chunk.
  if (njs::Journal* journal = njs_.journal_for(bundle.manifest.token))
    journal_bundle_chunk(*journal, bundle.manifest, request.file_index,
                         request.chunk);
  ++chunks_applied_;
  // Files deliver eagerly as their last chunk lands — the close only
  // commits the bundle, it does not gate any file's visibility.
  if (assembly.complete()) {
    util::Status delivered = deliver_bundle_file(bundle, request.file_index);
    if (!delivered.ok()) return delivered.error();
  }
  update_gauges();
  reply.applied = true;
  reply.credit = credit_for_bytes(bundle.manifest.chunk_bytes);
  return reply.encode();
}

Result<Bytes> Service::bundle_close(const crypto::DistinguishedName& principal,
                                    bool server_peer, Role role,
                                    util::ByteReader& r) {
  if (role_is_push(role)) {
    if (role == Role::kPush && !server_peer)
      return make_error(ErrorCode::kPermissionDenied,
                        "push requires a peer server certificate");
    if (role == Role::kClientPush && server_peer)
      return make_error(ErrorCode::kPermissionDenied,
                        "client push requires a user certificate");
    return bundle_close_push(principal, role, r);
  }
  BundleCloseRequest request = BundleCloseRequest::decode(role, r);
  if (auto it = outgoing_bundles_.find(request.transfer_id);
      it != outgoing_bundles_.end()) {
    if (it->second.expiry != 0) engine_.cancel(it->second.expiry);
    outgoing_bundles_.erase(it);
    update_gauges();
  }
  return Bytes{};  // idempotent: closing an unknown read is fine
}

Result<Bytes> Service::bundle_close_push(
    const crypto::DistinguishedName& principal, Role role,
    util::ByteReader& r) {
  BundleCloseRequest request = BundleCloseRequest::decode(role, r);
  if (completed_bundles_.count(request.key) != 0) return Bytes{};  // idempotent

  auto by_id = bundles_by_id_.find(request.transfer_id);
  IncomingBundle* bundle =
      by_id != bundles_by_id_.end() ? by_id->second : nullptr;
  if (bundle == nullptr) {
    auto by_key = bundles_.find(request.key);
    if (by_key != bundles_.end()) bundle = by_key->second.get();
  }
  if (bundle == nullptr)
    return make_error(ErrorCode::kNotFound,
                      "no such bundle (receiver restarted?)");
  if (bundle->manifest.principal != principal)
    return make_error(ErrorCode::kPermissionDenied,
                      "bundle belongs to another principal");

  // Retry files whose delivery failed earlier (complete assemblies).
  std::size_t delivered_count = 0;
  for (std::uint32_t i = 0; i < bundle->assemblies.size(); ++i) {
    if (!bundle->delivered[i] && bundle->assemblies[i].complete()) {
      util::Status status = deliver_bundle_file(*bundle, i);
      if (!status.ok()) return status.error();
    }
    if (bundle->delivered[i]) ++delivered_count;
  }
  if (delivered_count != bundle->delivered.size())
    return make_error(
        ErrorCode::kFailedPrecondition,
        "bundle incomplete: " + std::to_string(delivered_count) + "/" +
            std::to_string(bundle->delivered.size()) + " files");

  if (njs::Journal* journal = njs_.journal_for(bundle->manifest.token))
    journal_bundle_done(*journal, bundle->manifest);
  std::uint64_t bytes = 0;
  for (const BundleFileMeta& file : bundle->manifest.files)
    bytes += file.size;
  njs_.record_transfer_span(
      bundle->manifest.token, "xfer-bundle-in", bundle->opened_at,
      engine_.now(),
      {{"files", std::to_string(bundle->manifest.files.size())},
       {"bytes", std::to_string(bytes)},
       {"from", bundle->manifest.principal.common_name}});
  ++bundles_completed_;
  util::Bytes key = bundle->manifest.key;  // copy: erase frees `bundle`
  completed_bundles_.insert(key);
  bundles_by_id_.erase(bundle->id);
  bundles_.erase(key);
  update_gauges();
  return Bytes{};
}

void Service::touch_outgoing_bundle(OutgoingBundle& outgoing) {
  if (outgoing.expiry != 0) engine_.cancel(outgoing.expiry);
  std::uint64_t id = outgoing.id;
  outgoing.expiry = engine_.after(limits_.read_idle_timeout, [this, id] {
    outgoing_bundles_.erase(id);
    update_gauges();
  });
}

void Service::touch_outgoing(Outgoing& outgoing) {
  if (outgoing.expiry != 0) engine_.cancel(outgoing.expiry);
  std::uint64_t id = outgoing.id;
  outgoing.expiry = engine_.after(limits_.read_idle_timeout, [this, id] {
    outgoing_.erase(id);
    update_gauges();
  });
}

void Service::on_njs_crash() {
  // The process died: every in-memory table goes. The journal (a disk)
  // is what on_njs_recover rebuilds from.
  incoming_.clear();
  incoming_by_id_.clear();
  completed_.clear();
  for (auto& [id, outgoing] : outgoing_)
    if (outgoing.expiry != 0) engine_.cancel(outgoing.expiry);
  outgoing_.clear();
  bundles_.clear();
  bundles_by_id_.clear();
  completed_bundles_.clear();
  for (auto& [id, outgoing] : outgoing_bundles_)
    if (outgoing.expiry != 0) engine_.cancel(outgoing.expiry);
  outgoing_bundles_.clear();
  update_gauges();
}

void Service::on_njs_recover() {
  for (njs::Journal* journal : njs_.all_journals()) fold_journal(*journal);
}

void Service::on_njs_adopt(const njs::Journal& journal) {
  fold_journal(journal);
}

void Service::fold_journal(const njs::Journal& journal) {
  for (util::Bytes& key : completed_transfer_keys(journal))
    completed_.insert(std::move(key));
  for (RecoveredTransfer& recovered : recover_transfers(journal)) {
    // Already live here (adopt fold beside open transfers) — keep it.
    if (incoming_.count(recovered.manifest.key) != 0) continue;
    // The target job must have survived recovery too.
    if (!njs_.owner(recovered.manifest.token).ok()) continue;
    auto incoming = std::make_unique<Incoming>();
    incoming->assembly = Assembly(
        recovered.manifest.size, recovered.manifest.checksum,
        recovered.manifest.synthetic, recovered.manifest.chunk_bytes);
    if (store_ != nullptr) incoming->assembly.attach_store(store_);
    incoming->manifest = std::move(recovered.manifest);
    incoming->id = next_id_++;  // fresh id: the old one is dead with the
                                // process, senders re-open by key
    incoming->opened_at = engine_.now();
    for (const Chunk& chunk : recovered.chunks) {
      // Already verified and journaled; re-journaling would double the
      // log, so fold straight into the assembly.
      incoming->assembly.accept(chunk);
    }
    incoming_by_id_[incoming->id] = incoming.get();
    incoming_.emplace(incoming->manifest.key, std::move(incoming));
    ++transfers_recovered_;
    njs_.metrics()
        ->counter("unicore_xfer_recovered_transfers_total",
                  {{"usite", njs_.usite()}})
        .increment();
  }
  for (util::Bytes& key : completed_bundle_keys(journal))
    completed_bundles_.insert(std::move(key));
  for (RecoveredBundle& recovered : recover_bundles(journal)) {
    if (bundles_.count(recovered.manifest.key) != 0) continue;
    if (!njs_.owner(recovered.manifest.token).ok()) continue;
    auto bundle = std::make_unique<IncomingBundle>();
    bundle->assemblies.reserve(recovered.manifest.files.size());
    for (const BundleFileMeta& meta : recovered.manifest.files) {
      Assembly assembly(meta.size, meta.checksum, meta.synthetic,
                        recovered.manifest.chunk_bytes);
      if (store_ != nullptr) assembly.attach_store(store_);
      bundle->assemblies.push_back(std::move(assembly));
    }
    bundle->delivered.assign(recovered.manifest.files.size(), false);
    bundle->manifest = std::move(recovered.manifest);
    bundle->id = next_id_++;  // fresh id, senders re-open by key
    bundle->opened_at = engine_.now();
    for (auto& [file_index, chunk] : recovered.chunks) {
      if (file_index >= bundle->assemblies.size()) continue;
      // Already verified and journaled; fold straight in.
      bundle->assemblies[file_index].accept(chunk);
    }
    // Files whose last chunk landed before the crash re-deliver into
    // the (durable) workspace — idempotent, same file content.
    for (std::uint32_t i = 0; i < bundle->assemblies.size(); ++i)
      if (bundle->assemblies[i].complete())
        (void)deliver_bundle_file(*bundle, i);
    bundles_by_id_[bundle->id] = bundle.get();
    bundles_.emplace(bundle->manifest.key, std::move(bundle));
    ++bundles_recovered_;
    njs_.metrics()
        ->counter("unicore_xfer_recovered_bundles_total",
                  {{"usite", njs_.usite()}})
        .increment();
  }
  update_gauges();
}

}  // namespace unicore::xfer
