// Durable transfer state: the manifest describing an inbound transfer,
// the per-chunk records that make chunk delivery idempotent across a
// receiver crash, and the fold that reconstructs half-finished
// transfers from the NJS journal on recovery.
//
// The receiver journals a chunk BEFORE acknowledging it. A crash
// between the append and the ack therefore re-delivers a chunk the
// journal already holds — recovery rebuilds the bitmap from the log,
// the re-delivered copy is answered as a duplicate, and no byte is
// applied twice.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "crypto/sha256.h"
#include "crypto/x509.h"
#include "njs/journal.h"
#include "util/bytes.h"
#include "xfer/chunk.h"
#include "xfer/wire.h"

namespace unicore::xfer {

/// Everything the receiver must remember about an inbound transfer to
/// survive a crash: the durable key, the target file identity, the
/// negotiated geometry, and who opened it.
struct Manifest {
  util::Bytes key;  // 32-byte transfer key (see make_transfer_key)
  ajo::JobToken token = 0;
  std::string name;
  std::uint64_t size = 0;
  crypto::Digest checksum{};
  bool synthetic = false;
  std::uint32_t chunk_bytes = kDefaultChunkBytes;
  crypto::DistinguishedName principal;  // who is allowed to resume it

  void encode(util::ByteWriter& w) const;
  static Manifest decode(util::ByteReader& r);
};

/// Journal appenders. Chunk records for real transfers carry the
/// payload bytes (this is a write-ahead log — the bytes must survive
/// the crash, not just the fact of their arrival); synthetic chunks
/// journal geometry only.
void journal_manifest(njs::Journal& journal, const Manifest& manifest);
void journal_chunk(njs::Journal& journal, const Manifest& manifest,
                   const Chunk& chunk);
void journal_done(njs::Journal& journal, const Manifest& manifest);

/// One half-finished transfer folded out of the journal.
struct RecoveredTransfer {
  Manifest manifest;
  std::vector<Chunk> chunks;  // in journal order, no duplicates
};

/// Replays the journal's xfer records into the set of transfers that
/// were open at crash time (kXferDone erases). Records that fail to
/// decode are skipped, mirroring Journal::recover().
std::vector<RecoveredTransfer> recover_transfers(const njs::Journal& journal);

/// Keys of transfers that finished (kXferDone). After a receiver crash
/// these make a re-opened completed transfer answer "all chunks
/// present" instead of accepting the bytes a second time.
std::vector<util::Bytes> completed_transfer_keys(const njs::Journal& journal);

// ---- bundles ---------------------------------------------------------------

/// Identity of one file inside a durable bundle manifest.
struct BundleFileMeta {
  std::string name;
  std::uint64_t size = 0;
  crypto::Digest checksum{};
  bool synthetic = false;

  void encode(util::ByteWriter& w) const;
  static BundleFileMeta decode(util::ByteReader& r);
};

/// Everything the receiver must remember about an inbound bundle: one
/// journal record covers every file, which is the durable-write
/// amortization that pairs with the wire's single open/close RTT.
struct BundleManifest {
  util::Bytes key;  // 32-byte bundle key (see make_bundle_key)
  ajo::JobToken token = 0;
  std::uint32_t chunk_bytes = kDefaultChunkBytes;
  crypto::DistinguishedName principal;  // who is allowed to resume it
  std::vector<BundleFileMeta> files;

  void encode(util::ByteWriter& w) const;
  static BundleManifest decode(util::ByteReader& r);
};

/// Bundle journal appenders — same WAL-before-ack contract as the
/// single-file trio; chunk records add the in-bundle file index.
void journal_bundle_manifest(njs::Journal& journal,
                             const BundleManifest& manifest);
void journal_bundle_chunk(njs::Journal& journal,
                          const BundleManifest& manifest,
                          std::uint32_t file_index, const Chunk& chunk);
void journal_bundle_done(njs::Journal& journal,
                         const BundleManifest& manifest);

/// One half-finished bundle folded out of the journal.
struct RecoveredBundle {
  BundleManifest manifest;
  /// (file index, chunk) pairs in journal order, no duplicates.
  std::vector<std::pair<std::uint32_t, Chunk>> chunks;
};

/// Replays the journal's bundle records into the bundles that were
/// open at crash time (kXferBundleDone erases).
std::vector<RecoveredBundle> recover_bundles(const njs::Journal& journal);

/// Keys of bundles that committed (kXferBundleDone).
std::vector<util::Bytes> completed_bundle_keys(const njs::Journal& journal);

}  // namespace unicore::xfer
