#include "xfer/wire.h"

#include <algorithm>

#include "crypto/chunk_digest.h"

namespace unicore::xfer {

using util::ByteReader;
using util::Bytes;
using util::ByteWriter;

namespace {

crypto::Digest read_digest(ByteReader& r) {
  Bytes raw = r.raw(32);
  crypto::Digest digest;
  std::copy(raw.begin(), raw.end(), digest.begin());
  return digest;
}

}  // namespace

std::uint64_t chunk_count(std::uint64_t size, std::uint32_t chunk_bytes) {
  return crypto::chunk_count(size, chunk_bytes);
}

void Chunk::encode(ByteWriter& w) const {
  w.u64(index);
  w.u32(length);
  w.boolean(synthetic);
  w.raw(digest);
  if (synthetic)
    w.pad(length);  // charges the wire without storing the bytes
  else
    w.blob(data);
}

Chunk Chunk::decode(ByteReader& r) {
  Chunk chunk;
  chunk.index = r.u64();
  chunk.length = r.u32();
  chunk.synthetic = r.boolean();
  chunk.digest = read_digest(r);
  if (chunk.synthetic)
    r.skip(chunk.length);
  else
    chunk.data = r.blob();
  return chunk;
}

crypto::Digest chunk_digest(util::ByteView payload) {
  return crypto::chunk_content_digest(payload);
}

crypto::Digest synthetic_chunk_digest(const crypto::Digest& file_checksum,
                                      std::uint64_t index,
                                      std::uint32_t length) {
  return crypto::synthetic_chunk_digest(file_checksum, index, length);
}

Chunk make_chunk(const uspace::FileBlob& blob, std::uint64_t index,
                 std::uint32_t chunk_bytes) {
  Chunk chunk;
  chunk.index = index;
  std::uint64_t offset = index * static_cast<std::uint64_t>(chunk_bytes);
  std::uint64_t remaining = blob.size() > offset ? blob.size() - offset : 0;
  chunk.length = static_cast<std::uint32_t>(
      std::min<std::uint64_t>(remaining, chunk_bytes));
  chunk.synthetic = blob.is_synthetic();
  if (chunk.synthetic) {
    chunk.digest =
        synthetic_chunk_digest(blob.checksum(), index, chunk.length);
  } else {
    // Inline and store-backed blobs alike: read_range walks stored
    // blobs one chunk at a time, so a multi-GiB file never has to be
    // resident to be sent.
    chunk.data.reserve(chunk.length);
    (void)blob.read_range(offset, chunk.length, chunk.data);
    chunk.digest = chunk_digest(chunk.data);
  }
  return chunk;
}

Bytes make_transfer_key(const std::string& source_usite, ajo::JobToken token,
                        const std::string& name,
                        const crypto::Digest& checksum, std::uint64_t size) {
  ByteWriter w;
  w.str("unicore-xfer-key");
  w.str(source_usite);
  w.u64(token);
  w.str(name);
  w.raw(checksum);
  w.u64(size);
  return crypto::digest_bytes(crypto::sha256(w.bytes()));
}

void encode_ranges(ByteWriter& w, const std::vector<ChunkRange>& ranges) {
  w.varint(ranges.size());
  for (const ChunkRange& range : ranges) {
    w.u64(range.first);
    w.u64(range.count);
  }
}

std::vector<ChunkRange> decode_ranges(ByteReader& r) {
  std::uint64_t n = r.varint();
  std::vector<ChunkRange> ranges;
  ranges.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    ChunkRange range;
    range.first = r.u64();
    range.count = r.u64();
    ranges.push_back(range);
  }
  return ranges;
}

// ---- kXferOpen -------------------------------------------------------------

Bytes PushOpenRequest::encode() const {
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(role));
  w.blob(key);
  w.u64(token);
  w.str(name);
  w.u64(size);
  w.raw(checksum);
  w.boolean(synthetic);
  w.u32(proposed_chunk_bytes);
  w.varint(digests.size());
  for (const crypto::Digest& digest : digests) w.raw(digest);
  return w.take();
}

PushOpenRequest PushOpenRequest::decode(Role role, ByteReader& r) {
  PushOpenRequest request;
  request.role = role;
  request.key = r.blob();
  request.token = r.u64();
  request.name = r.str();
  request.size = r.u64();
  request.checksum = read_digest(r);
  request.synthetic = r.boolean();
  request.proposed_chunk_bytes = r.u32();
  std::uint64_t n = r.varint();
  request.digests.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) request.digests.push_back(read_digest(r));
  return request;
}

Bytes PushOpenReply::encode() const {
  ByteWriter w;
  w.u64(transfer_id);
  w.u32(chunk_bytes);
  w.u32(credit);
  encode_ranges(w, have);
  return w.take();
}

PushOpenReply PushOpenReply::decode(ByteReader& r) {
  PushOpenReply reply;
  reply.transfer_id = r.u64();
  reply.chunk_bytes = r.u32();
  reply.credit = r.u32();
  reply.have = decode_ranges(r);
  return reply;
}

Bytes PullOpenRequest::encode() const {
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(role));
  w.u64(token);
  w.str(name);
  w.u32(proposed_chunk_bytes);
  w.u32(inline_limit);
  return w.take();
}

PullOpenRequest PullOpenRequest::decode(Role role, ByteReader& r) {
  PullOpenRequest request;
  request.role = role;
  request.token = r.u64();
  request.name = r.str();
  request.proposed_chunk_bytes = r.u32();
  request.inline_limit = r.u32();
  return request;
}

Bytes PullOpenReply::encode() const {
  ByteWriter w;
  w.boolean(inline_blob);
  if (inline_blob) {
    blob.encode(w);
    return w.take();
  }
  w.u64(transfer_id);
  w.u32(chunk_bytes);
  w.u64(size);
  w.raw(checksum);
  w.boolean(synthetic);
  w.varint(digests.size());
  for (const crypto::Digest& digest : digests) w.raw(digest);
  return w.take();
}

PullOpenReply PullOpenReply::decode(ByteReader& r) {
  PullOpenReply reply;
  reply.inline_blob = r.boolean();
  if (reply.inline_blob) {
    reply.blob = uspace::FileBlob::decode(r);
    return reply;
  }
  reply.transfer_id = r.u64();
  reply.chunk_bytes = r.u32();
  reply.size = r.u64();
  reply.checksum = read_digest(r);
  reply.synthetic = r.boolean();
  std::uint64_t n = r.varint();
  reply.digests.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) reply.digests.push_back(read_digest(r));
  return reply;
}

// ---- kXferChunk ------------------------------------------------------------

Bytes PushChunkRequest::encode() const {
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(role));
  w.u64(transfer_id);
  chunk.encode(w);
  return w.take();
}

PushChunkRequest PushChunkRequest::decode(ByteReader& r) {
  PushChunkRequest request;
  request.transfer_id = r.u64();
  request.chunk = Chunk::decode(r);
  return request;
}

Bytes PushChunkReply::encode() const {
  ByteWriter w;
  w.boolean(applied);
  w.u32(credit);
  return w.take();
}

PushChunkReply PushChunkReply::decode(ByteReader& r) {
  PushChunkReply reply;
  reply.applied = r.boolean();
  reply.credit = r.u32();
  return reply;
}

Bytes PullChunkRequest::encode() const {
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(role));
  w.u64(transfer_id);
  w.u64(index);
  return w.take();
}

PullChunkRequest PullChunkRequest::decode(Role role, ByteReader& r) {
  PullChunkRequest request;
  request.role = role;
  request.transfer_id = r.u64();
  request.index = r.u64();
  return request;
}

// ---- kXferClose ------------------------------------------------------------

Bytes CloseRequest::encode() const {
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(role));
  w.u64(transfer_id);
  if (role_is_push(role)) w.blob(key);
  return w.take();
}

CloseRequest CloseRequest::decode(Role role, ByteReader& r) {
  CloseRequest request;
  request.role = role;
  request.transfer_id = r.u64();
  if (role_is_push(role)) request.key = r.blob();
  return request;
}

// ---- kXferBundleOpen -------------------------------------------------------

void BundleFileEntry::encode(ByteWriter& w) const {
  w.str(name);
  w.u64(size);
  w.raw(checksum);
  w.boolean(synthetic);
  w.varint(digests.size());
  for (const crypto::Digest& digest : digests) w.raw(digest);
}

BundleFileEntry BundleFileEntry::decode(ByteReader& r) {
  BundleFileEntry entry;
  entry.name = r.str();
  entry.size = r.u64();
  entry.checksum = read_digest(r);
  entry.synthetic = r.boolean();
  std::uint64_t n = r.varint();
  entry.digests.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) entry.digests.push_back(read_digest(r));
  return entry;
}

Bytes BundleOpenRequest::encode() const {
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(role));
  w.blob(key);
  w.u64(token);
  w.u32(proposed_chunk_bytes);
  w.varint(files.size());
  for (const BundleFileEntry& file : files) file.encode(w);
  return w.take();
}

BundleOpenRequest BundleOpenRequest::decode(ByteReader& r) {
  BundleOpenRequest request;
  request.key = r.blob();
  request.token = r.u64();
  request.proposed_chunk_bytes = r.u32();
  std::uint64_t n = r.varint();
  request.files.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i)
    request.files.push_back(BundleFileEntry::decode(r));
  return request;
}

void BundleFileState::encode(ByteWriter& w) const {
  w.boolean(complete);
  encode_ranges(w, have);
}

BundleFileState BundleFileState::decode(ByteReader& r) {
  BundleFileState state;
  state.complete = r.boolean();
  state.have = decode_ranges(r);
  return state;
}

Bytes BundleOpenReply::encode() const {
  ByteWriter w;
  w.u64(transfer_id);
  w.u32(chunk_bytes);
  w.u32(credit);
  w.varint(files.size());
  for (const BundleFileState& file : files) file.encode(w);
  return w.take();
}

BundleOpenReply BundleOpenReply::decode(ByteReader& r) {
  BundleOpenReply reply;
  reply.transfer_id = r.u64();
  reply.chunk_bytes = r.u32();
  reply.credit = r.u32();
  std::uint64_t n = r.varint();
  reply.files.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i)
    reply.files.push_back(BundleFileState::decode(r));
  return reply;
}

Bytes BundleChunkRequest::encode() const {
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(role));
  w.u64(transfer_id);
  w.u32(file_index);
  chunk.encode(w);
  return w.take();
}

BundleChunkRequest BundleChunkRequest::decode(std::uint64_t transfer_id,
                                              ByteReader& r) {
  BundleChunkRequest request;
  request.transfer_id = transfer_id;
  request.file_index = r.u32();
  request.chunk = Chunk::decode(r);
  return request;
}

Bytes BundlePullOpenRequest::encode() const {
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(role));
  w.u64(token);
  w.u32(proposed_chunk_bytes);
  w.varint(names.size());
  for (const std::string& name : names) w.str(name);
  return w.take();
}

BundlePullOpenRequest BundlePullOpenRequest::decode(Role role, ByteReader& r) {
  BundlePullOpenRequest request;
  request.role = role;
  request.token = r.u64();
  request.proposed_chunk_bytes = r.u32();
  std::uint64_t n = r.varint();
  request.names.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) request.names.push_back(r.str());
  return request;
}

void BundlePullFileInfo::encode(ByteWriter& w) const {
  w.u64(size);
  w.raw(checksum);
  w.boolean(synthetic);
  w.varint(digests.size());
  for (const crypto::Digest& digest : digests) w.raw(digest);
}

BundlePullFileInfo BundlePullFileInfo::decode(ByteReader& r) {
  BundlePullFileInfo info;
  info.size = r.u64();
  info.checksum = read_digest(r);
  info.synthetic = r.boolean();
  std::uint64_t n = r.varint();
  info.digests.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) info.digests.push_back(read_digest(r));
  return info;
}

Bytes BundlePullOpenReply::encode() const {
  ByteWriter w;
  w.u64(transfer_id);
  w.u32(chunk_bytes);
  w.varint(files.size());
  for (const BundlePullFileInfo& file : files) file.encode(w);
  return w.take();
}

BundlePullOpenReply BundlePullOpenReply::decode(ByteReader& r) {
  BundlePullOpenReply reply;
  reply.transfer_id = r.u64();
  reply.chunk_bytes = r.u32();
  std::uint64_t n = r.varint();
  reply.files.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i)
    reply.files.push_back(BundlePullFileInfo::decode(r));
  return reply;
}

Bytes BundlePullChunkRequest::encode() const {
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(role));
  w.u64(transfer_id);
  w.u32(file_index);
  w.u64(index);
  return w.take();
}

BundlePullChunkRequest BundlePullChunkRequest::decode(Role role,
                                                      std::uint64_t transfer_id,
                                                      ByteReader& r) {
  BundlePullChunkRequest request;
  request.role = role;
  request.transfer_id = transfer_id;
  request.file_index = r.u32();
  request.index = r.u64();
  return request;
}

// ---- kXferBundleClose ------------------------------------------------------

Bytes BundleCloseRequest::encode() const {
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(role));
  w.u64(transfer_id);
  if (role_is_push(role)) w.blob(key);
  return w.take();
}

BundleCloseRequest BundleCloseRequest::decode(Role role, ByteReader& r) {
  BundleCloseRequest request;
  request.role = role;
  request.transfer_id = r.u64();
  if (role_is_push(role)) request.key = r.blob();
  return request;
}

Bytes make_bundle_key(const std::string& source_usite, ajo::JobToken token,
                      const std::vector<BundleFileEntry>& files) {
  ByteWriter w;
  w.str("unicore-xfer-bundle-key");
  w.str(source_usite);
  w.u64(token);
  w.varint(files.size());
  for (const BundleFileEntry& file : files) {
    w.str(file.name);
    w.raw(file.checksum);
    w.u64(file.size);
  }
  return crypto::digest_bytes(crypto::sha256(w.bytes()));
}

}  // namespace unicore::xfer
